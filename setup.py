"""Setup shim for offline/legacy editable installs.

All project metadata lives in pyproject.toml (the canonical config; CI
installs with plain ``pip install -e .[dev]``).  This shim only exists for
environments whose setuptools lacks the ``wheel`` package needed by PEP 660
editable builds: there, use ``python setup.py develop`` or
``PYTHONPATH=src`` instead.
"""

from setuptools import setup

setup()
