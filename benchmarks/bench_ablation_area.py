"""Ablation bench: miniaturization (section 1 claims).

"System miniaturization increases also sensor response and requires small
samples."  Sweeping the working-electrode area shows (a) the diffusive
settling time dropping quadratically with the electrode length scale and
(b) the absolute current (and hence the sample volume needed to sustain
it) shrinking with area, while the area-normalized sensitivity stays put.
"""

from repro.core.registry import build_sensor, spec_by_id
from repro.electrodes.geometry import ElectrodeGeometry


def run() -> dict:
    sensor = build_sensor(spec_by_id("glucose/this-work"))
    areas_mm2 = (13.0, 2.0, 0.25, 0.05)
    results = {}
    for area_mm2 in areas_mm2:
        geometry = ElectrodeGeometry.from_area(area_mm2 * 1e-6)
        settle_s = geometry.steady_state_time_s()
        current_a = (sensor.layer.steady_state_current(0.5e-3, area_mm2 * 1e-6))
        results[area_mm2] = {
            "settling_s": settle_s,
            "current_at_0p5mM_a": current_a,
        }
    return results


def test_ablation_area(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for area_mm2, values in results.items():
        print(f"  {area_mm2:6.2f} mm^2: settle {values['settling_s']:8.1f} s, "
              f"i(0.5 mM) {values['current_at_0p5mM_a'] * 1e9:10.2f} nA")

    areas = sorted(results, reverse=True)  # big -> small
    settles = [results[a]["settling_s"] for a in areas]
    currents = [results[a]["current_at_0p5mM_a"] for a in areas]

    # Smaller electrodes settle faster (quadratically in length scale).
    assert all(a > b for a, b in zip(settles, settles[1:]))
    assert settles[0] / settles[-1] > 100.0
    # Current scales linearly with area -> smaller samples suffice.
    assert all(a > b for a, b in zip(currents, currents[1:]))
