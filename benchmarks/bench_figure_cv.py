"""Bench: figure-equivalent cyclic-voltammogram family (section 3.1).

"A linear-sweep potential is applied forward and backward ... the
hysteresis plot gives qualitative and quantitative information ... the
peak height is proportional to drug concentration."
"""

import numpy as np

from repro.experiments.figures import cv_family_figure


def run() -> dict:
    return cv_family_figure("cyp/cyclophosphamide", n_levels=6, seed=13)


def test_figure_cv_family(benchmark):
    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    levels = np.array(figure["levels_molar"])
    heights = np.array(figure["peak_heights_a"])

    print("\nCP levels [uM]:", np.array2string(levels * 1e6, precision=1))
    print("peak heights [uA]:", np.array2string(heights * 1e6, precision=3))

    # Peak height grows with concentration...
    assert np.all(np.diff(heights) > 0)
    # ...approximately linearly in the low range (r > 0.99).
    r = np.corrcoef(levels, heights)[0, 1]
    assert r > 0.99

    # Every voltammogram shows hysteresis: forward and backward branches
    # of the cycle differ (the CNT film's capacitive envelope).
    for __, record in figure["voltammograms"]:
        n = record.current_a.size
        forward = record.current_a[: n // 2]
        backward = record.current_a[n // 2:][::-1]
        m = min(forward.size, backward.size)
        assert not np.allclose(forward[:m], backward[:m], rtol=1e-3)
