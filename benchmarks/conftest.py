"""Benchmark configuration.

Each benchmark regenerates one table or figure of the paper through the
full simulated pipeline, asserts the *shape* claims (who wins, rough
factors, crossovers) and prints the regenerated rows so the run log doubles
as the reproduction record.  Heavy end-to-end benches run one round
(``benchmark.pedantic``); micro-benches use the default calibration.

Perf trajectory: engine benches also drop a machine-readable
``BENCH_<name>.json`` next to this file (override the directory with
``BENCH_JSON_DIR``) through the :func:`bench_json` fixture, so speedups
are *tracked* across PRs, not just asserted once.  The speedup gates
themselves run once, for every registered workload, in
``bench_core.py`` through the shared harness
(:mod:`repro.engine.core.bench`); the per-engine bench files keep only
their domain claims.  The workload-scale plan factories live here so
the domain benches and the unified speedup gate time the same plans.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest


@pytest.fixture()
def rng():
    return np.random.default_rng(2012)  # DAC 2012


@pytest.fixture(scope="session")
def historical_point():
    """The pre-engine scalar pipeline, reproduced from the primitives.

    ``measure_amperometric_point`` is now itself an engine wrapper with
    a kernel cache, so timing it would compare engine against engine;
    this keeps the calibration baseline honest (one full technique ->
    chain -> DSP pass per point, clean path recomputed every time).
    """
    from repro.signal.steady_state import extract_steady_state

    def point(sensor, concentration, rng=None, add_noise=True):
        record = sensor.ca_protocol.simulate_step(
            sensor.steady_state_current, concentration,
            duration_s=16.0, response_time_s=sensor.response_time_s)
        acquired = sensor.chain.acquire(
            record.current_a, record.sampling_rate_hz, rng=rng,
            add_noise=add_noise)
        value = extract_steady_state(acquired.time_s,
                                     acquired.current_a).value
        if add_noise and sensor.repeatability_std_a > 0:
            value += float(rng.normal(0.0, sensor.repeatability_std_a))
        return value

    return point


@pytest.fixture(scope="session")
def calibration_panel():
    """The glucose sensor panel with its per-sensor grids (blanks in)."""
    from repro.core.calibration import default_protocol_for_range
    from repro.core.registry import build_sensor, specs_by_group

    sensors = tuple(build_sensor(spec)
                    for spec in specs_by_group("glucose"))
    protocols = [default_protocol_for_range(
        sensor.linear_range_upper_molar()) for sensor in sensors]
    grids = tuple((0.0,) + tuple(p.concentrations_molar)
                  for p in protocols)
    return sensors, grids


@pytest.fixture(scope="session")
def monitor_week_plan():
    """Factory for the monitor bench plan: 12 wearers, one week, 5 min."""
    from repro.engine.monitor import MonitorPlan, glucose_cohort

    def make(chunk_samples=4096, duration_h=7 * 24.0, keep_traces=True):
        return MonitorPlan(
            channels=glucose_cohort(12), duration_h=duration_h,
            sample_period_s=300.0, chunk_samples=chunk_samples,
            seed=2012, keep_traces=keep_traces)

    return make


@pytest.fixture(scope="session")
def therapy_course_plan():
    """Factory for the therapy bench plan: 24 patients, 6 doses, 12 h."""
    from repro.engine.therapy import TherapyPlan
    from repro.pk import CYCLOSPORINE
    from repro.therapy import BayesianTroughController

    def make(chunk_samples=4096, keep_traces=True, **overrides):
        drug = CYCLOSPORINE
        cohort = drug.population.sample(24, seed=2012)
        controller = BayesianTroughController(
            prior=drug.typical_model(),
            target_trough_molar=drug.window.target_trough_molar,
            observation_sigma_molar=4e-7)
        settings = dict(controller=controller, n_doses=6,
                        dose_interval_h=12.0, sample_period_s=900.0,
                        chunk_samples=chunk_samples, seed=2012,
                        process_noise_sigma_molar=1e-7,
                        wander_sigma_a=2e-9, keep_traces=keep_traces)
        settings.update(overrides)
        return TherapyPlan.for_drug(drug, cohort, **settings)

    return make


@pytest.fixture(scope="session")
def estimation_cohort_plan():
    """Factory for the estimation bench plan: 96 channels, three days."""
    from repro.engine.estimation import EstimationPlan
    from repro.engine.monitor import MonitorPlan, glucose_cohort

    def make(n_channels=96, duration_h=3 * 24.0):
        return EstimationPlan(monitor=MonitorPlan(
            channels=glucose_cohort(n_channels), duration_h=duration_h,
            sample_period_s=300.0, seed=2012))

    return make


@pytest.fixture()
def bench_json():
    """Writer for machine-readable benchmark records.

    Returns a callable ``write(name, **payload)`` that serializes the
    payload (sorted keys, 2-space indent) to ``BENCH_<name>.json`` in
    ``BENCH_JSON_DIR`` (default: the benchmarks directory) and returns
    the path.  Keep payloads flat and numeric so cross-PR tooling can
    diff them without schema knowledge.
    """
    def write(name: str, **payload) -> Path:
        directory = Path(os.environ.get("BENCH_JSON_DIR",
                                        Path(__file__).resolve().parent))
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                        + "\n")
        return path

    return write
