"""Benchmark configuration.

Each benchmark regenerates one table or figure of the paper through the
full simulated pipeline, asserts the *shape* claims (who wins, rough
factors, crossovers) and prints the regenerated rows so the run log doubles
as the reproduction record.  Heavy end-to-end benches run one round
(``benchmark.pedantic``); micro-benches use the default calibration.
"""

import numpy as np
import pytest


@pytest.fixture()
def rng():
    return np.random.default_rng(2012)  # DAC 2012
