"""Benchmark configuration.

Each benchmark regenerates one table or figure of the paper through the
full simulated pipeline, asserts the *shape* claims (who wins, rough
factors, crossovers) and prints the regenerated rows so the run log doubles
as the reproduction record.  Heavy end-to-end benches run one round
(``benchmark.pedantic``); micro-benches use the default calibration.

Perf trajectory: engine benches also drop a machine-readable
``BENCH_<name>.json`` next to this file (override the directory with
``BENCH_JSON_DIR``) through the :func:`bench_json` fixture, so speedups
are *tracked* across PRs, not just asserted once.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest


@pytest.fixture()
def rng():
    return np.random.default_rng(2012)  # DAC 2012


@pytest.fixture()
def bench_json():
    """Writer for machine-readable benchmark records.

    Returns a callable ``write(name, **payload)`` that serializes the
    payload (sorted keys, 2-space indent) to ``BENCH_<name>.json`` in
    ``BENCH_JSON_DIR`` (default: the benchmarks directory) and returns
    the path.  Keep payloads flat and numeric so cross-PR tooling can
    diff them without schema knowledge.
    """
    def write(name: str, **payload) -> Path:
        directory = Path(os.environ.get("BENCH_JSON_DIR",
                                        Path(__file__).resolve().parent))
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                        + "\n")
        return path

    return write
