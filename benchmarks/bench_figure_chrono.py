"""Bench: figure-equivalent chronoamperometric staircase (section 3.1).

"The working electrode potential is set at +650 mV and the current
variation is recorded" — successive equal glucose additions produce a
monotone staircase whose step heights shrink as Michaelis-Menten saturation
sets in.
"""

import numpy as np

from repro.experiments.figures import chrono_staircase_figure


def run() -> dict:
    return chrono_staircase_figure("glucose/this-work", n_additions=8,
                                   step_duration_s=20.0, seed=11)


def test_figure_chrono_staircase(benchmark):
    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    current = figure["acquired_current_a"]
    n_steps = len(figure["concentrations_molar"])
    n_per_step = current.size // n_steps
    plateaus = np.array([current[(k + 1) * n_per_step - 1]
                         for k in range(n_steps)])

    print("\nstaircase plateaus [nA]:",
          np.array2string(plateaus * 1e9, precision=2))

    # Monotone staircase...
    assert np.all(np.diff(plateaus) > 0)
    # ...with shrinking increments (saturation bend).
    increments = np.diff(plateaus)
    assert increments[-1] < increments[0]
    # Potential held at +650 mV throughout.
    assert np.all(figure["record"].potential_v == 0.65)
