"""Bench: Table 2, CYP drug-sensor section (4 sensors, cyclic voltammetry).

Shape claims (paper section 3.2.4): sensitivity ordering arachidonic acid
(1140) > Ftorafur (883) > ifosfamide (160) > cyclophosphamide (102), all
with micromolar-or-better detection limits — the numbers motivating the
"personalized therapy" application.
"""

from repro.core.validation import ranking_matches, within_factor
from repro.experiments.table2 import rows_to_text, run_table2

EXPECTED_ORDER = [
    "cyp/arachidonic-acid",
    "cyp/ftorafur",
    "cyp/ifosfamide",
    "cyp/cyclophosphamide",
]

PAPER_LOD_UM = {
    "cyp/arachidonic-acid": 0.4,
    "cyp/ftorafur": 0.7,
    "cyp/ifosfamide": 2.0,
    "cyp/cyclophosphamide": 2.0,
}


def run() -> dict:
    return run_table2(groups=["cyp"], seed=7)


def test_table2_cyp(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + rows_to_text(rows))

    sensitivities = {sid: row.measured_sensitivity
                     for sid, row in rows.items()}
    assert ranking_matches(sensitivities, EXPECTED_ORDER)

    for sensor_id, row in rows.items():
        assert within_factor(row.measured_sensitivity,
                             row.spec.paper_sensitivity, 1.25)
        # LODs land within sampling scatter of the published values.
        assert within_factor(row.measured_lod_um,
                             PAPER_LOD_UM[sensor_id], 3.0)
        assert row.measured_lod_um < 10.0  # micromolar-class detection
