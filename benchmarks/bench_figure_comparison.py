"""Bench: figure-equivalent grouped comparison chart (Table 2 rollup).

The cross-sensor comparison the paper's discussion walks through: grouped
sensitivity and LOD bars for all 18 sensors, regenerated from the full
pipeline.
"""

from repro.experiments.figures import comparison_chart
from repro.experiments.table2 import run_table2


def run() -> dict:
    rows = run_table2(seed=7)
    return {"rows": rows, "chart": comparison_chart(rows)}


def test_figure_comparison_chart(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    chart = result["chart"]

    assert set(chart) == {"glucose", "lactate", "glutamate", "cyp"}
    assert sum(len(entries) for entries in chart.values()) == 18

    print()
    for group, entries in chart.items():
        print(f"[{group}]")
        for label, sensitivity, lod in entries:
            bar = "#" * max(1, min(60, int(sensitivity ** 0.5)))
            print(f"  {label:<34} {sensitivity:9.2f} uA/mM/cm^2 "
                  f"LOD {lod:7.2f} uM  {bar}")

    # Spot shape checks across groups: CYP sensors deliver the largest
    # sensitivities of the whole table (their Km are tiny), while the
    # CNT/mineral-oil lactate paste [41] is the weakest of all 18.
    flat = [(label, s) for entries in chart.values()
            for label, s, __ in entries]
    top_label = max(flat, key=lambda item: item[1])[0]
    bottom_label = min(flat, key=lambda item: item[1])[0]
    assert "CYP" in top_label
    assert "mineral oil" in bottom_label
