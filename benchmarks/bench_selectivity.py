"""Bench: selectivity matrix of the metabolite panel (abstract claim).

"It shows superior performance thanks to the excellent properties of
electron transfer and selectivity showed by enzymes immobilized on carbon
nanotubes."  The bench exposes each metabolite channel to every analyte
and prints the normalized response matrix; a selective platform yields a
near-identity matrix.
"""

from repro.core.registry import build_sensor, spec_by_id
from repro.core.selectivity import selectivity_matrix, worst_cross_talk


def run() -> dict:
    sensors = {
        "glucose": build_sensor(spec_by_id("glucose/this-work")),
        "lactate": build_sensor(spec_by_id("lactate/this-work")),
        "glutamate": build_sensor(spec_by_id("glutamate/this-work")),
    }
    return selectivity_matrix(sensors, test_concentration_molar=2e-4)


def test_selectivity_matrix(benchmark):
    matrix = benchmark.pedantic(run, rounds=1, iterations=1)

    analytes = matrix["analytes"]
    print("\n" + " " * 18 + "".join(f"{a:>12}" for a in analytes))
    for name, row in matrix["rows"].items():
        print(f"  {name + ' channel':<16}"
              + "".join(f"{value:12.4f}" for value in row))

    # Identity diagonal, sub-percent cross-talk.
    for i, row in enumerate(matrix["rows"].values()):
        assert row[i] == 1.0 or abs(row[i] - 1.0) < 1e-6
    assert worst_cross_talk(matrix) < 0.01
