"""Bench: serving throughput and bounded suspend/resume memory.

Two acceptance gates on the online serving subsystem, recorded in
``BENCH_serve.json`` so serving performance is tracked across PRs:

* **throughput** — a :class:`~repro.serve.StreamSession` advancing a
  16-channel monitor cohort in hourly blocks must sustain at least
  ``SERVE_THROUGHPUT_FLOOR`` (default 1000) readings per second per
  channel-batch in steady state.  Streaming must stay cheap enough to
  track a live fleet, not just replay one offline.
* **bounded memory** — the serialized snapshot of a suspended session
  must be the same size whether the stream has run for one hour or a
  month (traces excluded: carry state only).  This is what makes
  suspend-at-k/resume bounded-memory — the property the serving ISSUE
  names as the acceptance gate.
"""

from __future__ import annotations

import json
import time

from repro.engine.core import floor_from_env
from repro.engine.monitor import (
    MonitorPlan,
    RecalibrationPolicy,
    glucose_cohort,
)
from repro.serve import StreamSession

N_CHANNELS = 16
BLOCK_SAMPLES = 60          # one hour of 1-min readings per advance


def _plan(duration_h: float, recalibrate: bool = True) -> MonitorPlan:
    """A 16-wearer, 1-min cadence cohort (traceless: serving state)."""
    return MonitorPlan(
        channels=glucose_cohort(N_CHANNELS), duration_h=duration_h,
        sample_period_s=60.0, chunk_samples=BLOCK_SAMPLES, seed=2012,
        keep_traces=False,
        recalibration=RecalibrationPolicy(reference_interval_h=12.0,
                                          enabled=recalibrate))


def test_streaming_throughput_floor(bench_json):
    """Steady-state advance() must beat the readings/s floor."""
    floor = floor_from_env("SERVE_THROUGHPUT_FLOOR", 1000.0)
    session = StreamSession("monitor", _plan(duration_h=24.0))
    session.advance(BLOCK_SAMPLES)          # warm caches off the clock
    start = time.perf_counter()
    samples = 0
    while not session.done:
        samples += session.advance(BLOCK_SAMPLES).n_samples
    elapsed = time.perf_counter() - start
    readings_per_s = samples / elapsed      # per channel-batch
    payload = {
        "n_channels": N_CHANNELS,
        "block_samples": BLOCK_SAMPLES,
        "samples_streamed": samples,
        "elapsed_s": round(elapsed, 4),
        "readings_per_s": round(readings_per_s, 1),
        "floor_readings_per_s": floor,
    }
    path = bench_json("serve", **payload)
    print(f"\nserve stream: {readings_per_s:,.0f} readings/s per "
          f"channel-batch over {samples} samples "
          f"(floor {floor:,.0f}) -> {path.name}")
    assert readings_per_s >= floor, payload


def test_snapshot_size_is_stream_length_independent(bench_json):
    """Suspend-at-k memory must not grow with k (carry state only).

    Open-loop wear: the recalibration event log is the one term that
    grows — with accepted re-fits (a few floats per reference event),
    never with samples — so it is switched off here to gate the pure
    carry state.  Traces are off too (``keep_traces=False`` is the
    serving configuration); with them on, the snapshot would grow with
    the cursor by design, since it carries the result prefix.
    """
    plan = _plan(duration_h=31 * 24.0, recalibrate=False)
    session = StreamSession("monitor", plan)
    session.advance(60)                     # one hour in
    early = len(json.dumps(session.export_state()))
    session.advance(60 * 24 * 30)           # a month in
    late = len(json.dumps(session.export_state()))
    drift = abs(late - early) / early
    print(f"\nsnapshot bytes: 1 h in {early:,}, 30 d in {late:,} "
          f"({drift * 100:.2f} % drift)")
    assert drift < 0.02, (early, late)
    bench_json("serve_snapshot", early_bytes=early, late_bytes=late,
               drift_fraction=round(drift, 6))
