"""Bench: every registered workload through the shared speedup harness.

One loop replaces the four per-engine speedup gates: for each workload
registered on the execution core, the chunked executor is timed against
that workload's honest scalar baseline and gated on the floor named by
its kernel set (``floor_env``, 5x by default, relaxed in CI).  Each
workload still drops its historical ``BENCH_<record>.json`` payload, and
the whole sweep additionally lands in one unified ``BENCH_core.json``
(workload -> payload) so the perf trajectory of the whole execution core
diffs as a single file across PRs.

Baselines are chosen per workload to keep the claim honest:

* **calibration** — the pre-engine scalar pipeline (one full
  technique -> chain -> DSP pass per cell), not ``run_scalar``, whose
  single-cell batch calls would share the engine's kernel cache;
* **monitor** / **therapy** — the per-(channel, sample) scalar
  reference, i.e. ``run_scalar(workload, plan)``;
* **estimation** — scalar filter + smoother on precomputed currents
  (the wear simulation feeding both paths is identical and vectorized,
  so timing it would dilute the filter claim).
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.engine import BatchPlan
from repro.engine.core import (
    floor_from_env,
    kernels_for,
    measure_speedup,
    registered_workloads,
    run_scalar,
    run_workload,
)
from repro.inference.kalman import (
    kalman_filter_batch,
    kalman_filter_scalar,
    rts_smoother_batch,
    rts_smoother_scalar,
)
from repro.inference.observation import (
    monitor_observation_model,
    rail_censored_mask,
)
from repro.rng import spawn_generators

N_REPLICATES = 25


def _calibration_bench(panel, historical_point):
    """Batched campaign vs. the historical per-point pipeline."""
    sensors, grids = panel
    plan = BatchPlan(sensors=sensors, concentrations_molar=grids,
                     replicates=N_REPLICATES, seed=7)
    rngs = spawn_generators(7, plan.n_cells)

    def slow():
        values = []
        flat = 0
        for sensor, grid in zip(sensors, grids):
            for concentration in grid:
                for __ in range(N_REPLICATES):
                    values.append(historical_point(
                        sensor, concentration, rngs[flat]))
                    flat += 1
        return np.array(values)

    return (lambda: run_workload("calibration", plan), slow,
            dict(n_cells=plan.n_cells))


def _streaming_bench(workload, plan):
    """Chunked executor vs. the per-(channel, sample) scalar loop."""
    n_channels = getattr(plan, "n_channels", None) or plan.n_patients
    extras = dict(n_channels=n_channels, n_samples=plan.n_samples,
                  n_readings=n_channels * plan.n_samples)
    return (lambda: run_workload(workload, plan),
            lambda: run_scalar(workload, plan), extras)


def _estimation_bench(plan):
    """Batch vs. scalar filter + smoother on precomputed currents."""
    monitor_result = run_workload("monitor", plan.monitor)
    model = monitor_observation_model(plan.monitor)
    censored = rail_censored_mask(
        [channel.sensor for channel in plan.monitor.channels],
        monitor_result.measured_current_a)
    r = np.where(censored, np.inf,
                 model.measurement_variance_a2[:, None])
    z = monitor_result.measured_current_a
    args = (model.gain_a_per_molar, model.offset_a, r,
            model.a_signal, model.q_signal,
            model.a_wander, model.q_wander)

    def fast():
        trace = kalman_filter_batch(z, *args)
        return rts_smoother_batch(trace, model.a_signal, model.a_wander)

    def slow():
        trace = kalman_filter_scalar(z, *args)
        return rts_smoother_scalar(trace, model.a_signal,
                                   model.a_wander)

    extras = dict(n_channels=plan.n_channels, n_samples=plan.n_samples,
                  n_readings=plan.n_channels * plan.n_samples)
    return fast, slow, extras


def test_registered_workload_speedups(bench_json, historical_point,
                                      calibration_panel,
                                      monitor_week_plan,
                                      therapy_course_plan,
                                      estimation_cohort_plan):
    """One gate for all workloads: each must beat its scalar baseline."""
    benches = {
        "calibration": lambda: _calibration_bench(calibration_panel,
                                                  historical_point),
        "monitor": lambda: _streaming_bench(
            "monitor", monitor_week_plan(keep_traces=False)),
        "therapy": lambda: _streaming_bench(
            "therapy", therapy_course_plan(keep_traces=False)),
        "estimation": lambda: _estimation_bench(estimation_cohort_plan()),
    }
    unified = {}
    for workload in registered_workloads():
        if workload not in benches:
            pytest.fail(f"registered workload {workload!r} has no bench "
                        "spec: add one to benchmarks/bench_core.py")
        kernels = kernels_for(workload)
        fast, slow, extras = benches[workload]()
        payload = measure_speedup(
            fast, slow, floor_from_env(kernels.floor_env),
            extras=extras, scalar_repeats=1)
        path = bench_json(kernels.bench_record, **payload)
        unified[workload] = payload
        print(f"\n{workload}: scalar {payload['scalar_wall_s'] * 1e3:.0f}"
              f" ms, chunked {payload['batch_wall_s'] * 1e3:.1f} ms -> "
              f"{payload['speedup']:.1f}x (floor "
              f"{payload['speedup_floor']:.1f}x) -> {path}")
    print(f"unified record -> {bench_json('core', **unified)}")
    below = {workload: payload["speedup"]
             for workload, payload in unified.items()
             if payload["speedup"] < payload["speedup_floor"]}
    assert not below, f"speedups below their floors: {below}"


def _loop_uninstrumented(kernels, plan):
    """Byte-for-byte replica of the executor's pre-telemetry loop.

    This is the honest baseline for the overhead gate: the exact
    compile -> init_state -> segment/chunk -> finalize sequence with no
    recorder lookup at all.  If :func:`repro.engine.core.executor.execute`
    ever grows per-chunk telemetry work on its disabled branch, the
    ratio against this loop catches it.
    """
    compiled = kernels.compile(plan)
    state = kernels.init_state(plan)
    for segment in compiled.segments:
        kernels.begin_segment(plan, state, segment)
        for start in range(segment.start, segment.stop,
                           compiled.chunk_samples):
            stop = min(start + compiled.chunk_samples, segment.stop)
            kernels.run_chunk(plan, state, segment, start, stop)
        kernels.end_segment(plan, state, segment)
    return kernels.finalize(plan, state)


def _interleaved_min_wall_s(fn_a, fn_b, repeats):
    """Best-of-N wall time for two contenders, sampled interleaved.

    Alternating A and B within every round means slow drift (thermal,
    another process waking up) hits both sides equally instead of
    biasing whichever ran second; the min over rounds then discards
    the noise.
    """
    best_a = best_b = float("inf")
    for __ in range(repeats):
        t0 = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, best_b


def test_disabled_telemetry_overhead(bench_json, monitor_week_plan):
    """The telemetry zero-cost gate: with the recorder disabled,
    ``execute()`` must match the raw uninstrumented loop to within
    ``TELEMETRY_OVERHEAD_CEILING`` (3 % by default, relaxed in CI).

    The delta is merged into ``BENCH_core.json`` under
    ``telemetry_overhead`` so the cost of the disabled branch is
    tracked across PRs alongside the workload speedups.
    """
    from repro.engine.core.executor import execute
    from repro.telemetry import NULL_METRICS, set_metrics_registry, set_recorder

    ceiling = float(os.environ.get("TELEMETRY_OVERHEAD_CEILING", "0.03"))
    kernels = kernels_for("monitor")
    plan = monitor_week_plan(keep_traces=False)
    previous = set_recorder(None)  # the disabled default, explicitly
    previous_registry = set_metrics_registry(NULL_METRICS)
    try:
        execute(kernels, plan)  # warm kernel caches for both paths
        _loop_uninstrumented(kernels, plan)
        raw_s, instrumented_s = _interleaved_min_wall_s(
            lambda: _loop_uninstrumented(kernels, plan),
            lambda: execute(kernels, plan), repeats=20)
    finally:
        set_recorder(previous)
        set_metrics_registry(previous_registry)
    overhead = instrumented_s / raw_s - 1.0

    directory = Path(os.environ.get("BENCH_JSON_DIR",
                                    Path(__file__).resolve().parent))
    core_path = directory / "BENCH_core.json"
    merged = (json.loads(core_path.read_text())
              if core_path.is_file() else {})
    merged["telemetry_overhead"] = {
        "raw_wall_s": raw_s, "disabled_wall_s": instrumented_s,
        "overhead": overhead, "ceiling": ceiling}
    print(f"\ntelemetry off: raw {raw_s * 1e3:.1f} ms, execute() "
          f"{instrumented_s * 1e3:.1f} ms -> {overhead * 100:+.2f}% "
          f"(ceiling {ceiling * 100:.0f}%) -> "
          f"{bench_json('core', **merged)}")
    assert overhead <= ceiling, (
        f"disabled-telemetry overhead {overhead * 100:.2f}% exceeds "
        f"ceiling {ceiling * 100:.0f}%")


def test_enabled_metrics_overhead(bench_json, monitor_week_plan):
    """The metrics cheap-when-on gate: with a live
    :class:`~repro.telemetry.MetricsRegistry` installed (recorder
    still disabled), ``execute()`` must stay within
    ``METRICS_OVERHEAD_CEILING`` (3 % by default, relaxed in CI) of
    the raw uninstrumented loop.

    This bounds the *enabled* cost — one ``perf_counter`` pair plus a
    histogram observe and two counter incs per chunk — which is the
    price every campaign worker and serving process pays when
    ``REPRO_METRICS=1``.  The delta lands in ``BENCH_core.json`` under
    ``metrics_overhead`` next to ``telemetry_overhead``.
    """
    from repro.engine.core.executor import execute
    from repro.telemetry import (
        MetricsRegistry,
        set_metrics_registry,
        set_recorder,
    )

    ceiling = float(os.environ.get("METRICS_OVERHEAD_CEILING", "0.03"))
    kernels = kernels_for("monitor")
    plan = monitor_week_plan(keep_traces=False)
    registry = MetricsRegistry()
    previous = set_recorder(None)
    previous_registry = set_metrics_registry(registry)
    try:
        execute(kernels, plan)  # warm kernel caches and series lookup
        _loop_uninstrumented(kernels, plan)
        raw_s, enabled_s = _interleaved_min_wall_s(
            lambda: _loop_uninstrumented(kernels, plan),
            lambda: execute(kernels, plan), repeats=20)
    finally:
        set_recorder(previous)
        set_metrics_registry(previous_registry)
    overhead = enabled_s / raw_s - 1.0
    snapshot = registry.snapshot()
    n_chunks = sum(
        row["value"]
        for row in snapshot["instruments"].get(
            "repro_core_chunks_total", {}).get("series", []))

    directory = Path(os.environ.get("BENCH_JSON_DIR",
                                    Path(__file__).resolve().parent))
    core_path = directory / "BENCH_core.json"
    merged = (json.loads(core_path.read_text())
              if core_path.is_file() else {})
    merged["metrics_overhead"] = {
        "raw_wall_s": raw_s, "enabled_wall_s": enabled_s,
        "overhead": overhead, "ceiling": ceiling,
        "chunks_metered": n_chunks}
    print(f"\nmetrics on: raw {raw_s * 1e3:.1f} ms, execute() "
          f"{enabled_s * 1e3:.1f} ms -> {overhead * 100:+.2f}% "
          f"(ceiling {ceiling * 100:.0f}%, {n_chunks:.0f} chunks "
          f"metered) -> {bench_json('core', **merged)}")
    assert n_chunks > 0, "enabled registry recorded no chunks"
    assert overhead <= ceiling, (
        f"enabled-metrics overhead {overhead * 100:.2f}% exceeds "
        f"ceiling {ceiling * 100:.0f}%")
