"""Bench: chunked streaming monitor vs. the scalar day-by-day wear loop.

The monitoring engine's reason to exist: a cohort of (patient x sensor)
channels advanced through a week of wear as ``(n_channels, chunk)``
array blocks must beat the historical one-(channel, sample)-at-a-time
Python loop by a wide margin while reporting the same wear physics.
Asserts:

* chunk-size invariance — the same plan streamed in 17-sample slivers
  and in one whole-horizon block agrees to <= 1e-9 (the engine's
  reproducibility contract: results depend on (seed, channel, sample
  index), never on chunking);
* scalar equivalence — the vectorized path agrees with the scalar
  day-by-day reference to <= 1e-9 on every trace;
* the chunked monitor runs >= 5x faster than the scalar loop;
* deterministic replay under a fixed seed.
"""

import os
import time

import numpy as np

from repro.engine.monitor import (
    MonitorPlan,
    glucose_cohort,
    run_monitor,
    run_monitor_scalar,
)

N_PATIENTS = 12
DURATION_H = 7 * 24.0
SAMPLE_PERIOD_S = 300.0
# The acceptance floor is 5x (typically ~100x here).  Shared CI runners
# add scheduler/BLAS-contention noise the min-of-3 timing cannot fully
# absorb, so CI can relax the gate via the environment instead of
# skipping it.
SPEEDUP_FLOOR = float(os.environ.get("MONITOR_SPEEDUP_FLOOR", "5.0"))


def week_plan(chunk_samples: int = 4096,
              duration_h: float = DURATION_H,
              keep_traces: bool = True) -> MonitorPlan:
    return MonitorPlan(
        channels=glucose_cohort(N_PATIENTS),
        duration_h=duration_h,
        sample_period_s=SAMPLE_PERIOD_S,
        chunk_samples=chunk_samples,
        seed=2012,
        keep_traces=keep_traces,
    )


def _best_of(fn, repeats: int = 3) -> float:
    """Minimum wall-clock over ``repeats`` runs (noise-robust timing)."""
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_chunk_size_invariance():
    whole = run_monitor(week_plan(chunk_samples=10 ** 6))
    slivers = run_monitor(week_plan(chunk_samples=17))
    np.testing.assert_allclose(
        slivers.estimated_concentration_molar,
        whole.estimated_concentration_molar, rtol=0.0, atol=1e-9)
    np.testing.assert_allclose(
        slivers.measured_current_a, whole.measured_current_a,
        rtol=0.0, atol=1e-15)
    np.testing.assert_allclose(slivers.mard, whole.mard,
                               rtol=0.0, atol=1e-9)
    assert slivers.recalibration_times_h == whole.recalibration_times_h


def test_scalar_equivalence():
    # Two wear days keep the O(n_channels x n_samples) scalar loop honest
    # but affordable inside the equivalence gate.
    plan = week_plan(chunk_samples=64, duration_h=48.0)
    batch = run_monitor(plan)
    scalar = run_monitor_scalar(plan)
    np.testing.assert_allclose(
        batch.true_concentration_molar, scalar.true_concentration_molar,
        rtol=0.0, atol=1e-9)
    np.testing.assert_allclose(
        batch.estimated_concentration_molar,
        scalar.estimated_concentration_molar, rtol=0.0, atol=1e-9)
    np.testing.assert_allclose(batch.mard, scalar.mard,
                               rtol=0.0, atol=1e-9)
    assert batch.recalibration_times_h == scalar.recalibration_times_h


def test_monitor_speedup(benchmark, bench_json):
    plan = week_plan(keep_traces=False)
    n_readings = plan.n_channels * plan.n_samples

    # Warm both paths once (imports, registry composition).
    run_monitor(plan)
    scalar_s = _best_of(lambda: run_monitor_scalar(plan), repeats=1)
    result = benchmark.pedantic(lambda: run_monitor(plan),
                                rounds=3, iterations=1)
    batch_s = _best_of(lambda: run_monitor(plan))

    speedup = scalar_s / batch_s
    print(f"\n{plan.n_channels} channels x {plan.n_samples} samples "
          f"({n_readings} readings over {plan.duration_h:.0f} h): "
          f"scalar {scalar_s * 1e3:.0f} ms, chunked {batch_s * 1e3:.1f} ms "
          f"-> {speedup:.1f}x")
    print(result.summary())
    path = bench_json(
        "monitor",
        n_channels=plan.n_channels,
        n_samples=plan.n_samples,
        n_readings=n_readings,
        scalar_wall_s=scalar_s,
        batch_wall_s=batch_s,
        speedup=speedup,
        speedup_floor=SPEEDUP_FLOOR,
    )
    print(f"perf record -> {path}")
    assert result.plan.n_samples == plan.n_samples
    assert speedup >= SPEEDUP_FLOOR, (
        f"monitor speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor")


def test_deterministic_replay():
    a = run_monitor(week_plan())
    b = run_monitor(week_plan())
    np.testing.assert_array_equal(a.estimated_concentration_molar,
                                  b.estimated_concentration_molar)
    np.testing.assert_array_equal(a.mard, b.mard)


def test_recalibration_pays_for_itself():
    """The wear narrative the engine exists to quantify: the finger-stick
    policy must cut cohort MARD hard versus open-loop wear."""
    from dataclasses import replace

    from repro.engine.monitor import RecalibrationPolicy

    closed = run_monitor(week_plan(keep_traces=False))
    open_loop = run_monitor(replace(
        week_plan(keep_traces=False),
        recalibration=RecalibrationPolicy(enabled=False)))
    closed_mard = float(np.mean(closed.mard))
    open_mard = float(np.mean(open_loop.mard))
    print(f"\ncohort MARD: recalibrated {closed_mard * 100:.1f} % vs "
          f"open-loop {open_mard * 100:.1f} %")
    assert closed_mard < 0.5 * open_mard
