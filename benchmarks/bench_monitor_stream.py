"""Bench: the wear narrative the streaming monitor exists to quantify.

The finger-stick recalibration policy must cut cohort MARD hard versus
open-loop wear over a week-long cohort stream.

The speedup gate for this workload (and every other registered one)
runs in ``bench_core.py`` through the shared harness
(:mod:`repro.engine.core.bench`); the execution-contract gates (chunk
invariance, scalar equivalence, deterministic replay) live in
``tests/engine/test_core_contract.py``.
"""

from dataclasses import replace

import numpy as np

from repro.engine.monitor import RecalibrationPolicy, run_monitor


def test_recalibration_pays_for_itself(monitor_week_plan):
    """The wear narrative the engine exists to quantify: the finger-stick
    policy must cut cohort MARD hard versus open-loop wear."""
    closed = run_monitor(monitor_week_plan(keep_traces=False))
    open_loop = run_monitor(replace(
        monitor_week_plan(keep_traces=False),
        recalibration=RecalibrationPolicy(enabled=False)))
    closed_mard = float(np.mean(closed.mard))
    open_mard = float(np.mean(open_loop.mard))
    print(f"\ncohort MARD: recalibrated {closed_mard * 100:.1f} % vs "
          f"open-loop {open_mard * 100:.1f} %")
    assert closed_mard < 0.5 * open_mard
