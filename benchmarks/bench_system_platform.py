"""Bench: system-integration study (sections 1 and 2.5).

Regenerates the platform-based-design arguments: the reference biosensing
node composes validly, heterogeneous technology partitioning beats a
single-node SoC, the Guiducci-style 3-D stack is geometrically feasible
with a disposable biolayer, and the platform NRE crossover arrives within
a handful of derivative products.
"""

from repro.system.blocks import STANDARD_BLOCKS
from repro.system.composition import reference_biosensor_node
from repro.system.nre import platform_vs_custom_crossover
from repro.system.scaling import homogeneous_vs_heterogeneous
from repro.system.stack3d import guiducci_stack


def run() -> dict:
    design = reference_biosensor_node()
    stack = guiducci_stack()
    scaling = homogeneous_vs_heterogeneous(STANDARD_BLOCKS)
    nre = platform_vs_custom_crossover(
        [b.kind.value for b in STANDARD_BLOCKS], 180.0)
    return {
        "design": design,
        "stack": stack,
        "scaling": scaling,
        "nre": nre,
    }


def test_system_platform_study(benchmark):
    result = benchmark.pedantic(run, rounds=3, iterations=1)
    design = result["design"]
    stack = result["stack"]
    scaling = result["scaling"]
    nre = result["nre"]

    print("\n" + design.summary())
    print(f"3-D stack: footprint {stack.footprint_mm2:.1f} mm^2, "
          f"{stack.total_tsvs()} TSVs, "
          f"thickness {stack.total_thickness_um():.0f} um, "
          f"replaceable fraction {stack.replacement_cost_fraction():.0%}")
    print(f"scaling: homogeneous best {scaling['homogeneous_node_nm']:.0f} nm "
          f"at ${scaling['homogeneous_cost_usd']:.2f}, heterogeneous "
          f"${scaling['heterogeneous_cost_usd']:.2f} "
          f"(saving x{scaling['saving_ratio']:.2f})")
    print(f"NRE: full-custom ${nre['full_custom_nre_usd'] / 1e6:.2f}M per "
          f"product, platform crossover at "
          f"{nre['crossover_products']:.0f} products")

    assert design.analog_fraction() > 0.5
    assert stack.is_feasible()
    assert len(stack.disposable_layers()) == 1
    assert scaling["saving_ratio"] > 1.0
    assert nre["crossover_products"] <= 10
