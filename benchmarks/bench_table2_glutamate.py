"""Bench: Table 2, glutamate section (4 sensors).

Shape claims (paper section 3.2.3): literature sensitivities are higher than
ours by up to three orders of magnitude ([1] at 384 vs our 0.9), but our
0-2 mM linear range is the widest — "useful for some particular applications
like cell culture monitoring".
"""

from repro.core.validation import ranking_matches, within_factor
from repro.experiments.table2 import rows_to_text, run_table2

EXPECTED_ORDER = [
    "glutamate/ammam2010",  # 384
    "glutamate/zhang2006",  # 85
    "glutamate/pan1996",    # 16.1
    "glutamate/this-work",  # 0.9
]


def run() -> dict:
    return run_table2(groups=["glutamate"], seed=7)


def test_table2_glutamate(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + rows_to_text(rows))

    sensitivities = {sid: row.measured_sensitivity
                     for sid, row in rows.items()}
    assert ranking_matches(sensitivities, EXPECTED_ORDER)

    ours = rows["glutamate/this-work"]
    best = rows["glutamate/ammam2010"]
    # "up to three orders of magnitude" sensitivity gap.
    gap = best.measured_sensitivity / ours.measured_sensitivity
    assert 100.0 < gap < 1000.0

    # Our range is the widest by an order of magnitude.
    for sid, row in rows.items():
        if sid != "glutamate/this-work":
            assert ours.measured_range_mm[1] > 5 * row.measured_range_mm[1]

    for row in rows.values():
        assert within_factor(row.measured_sensitivity,
                             row.spec.paper_sensitivity, 1.2)
