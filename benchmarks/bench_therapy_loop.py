"""Bench: vectorized closed-loop therapy vs. the per-patient loop.

The therapy engine's reason to exist: a cohort of virtual patients
dosed, measured and re-dosed through a multi-day course as
``(n_patients, chunk)`` array blocks must beat the historical
one-(patient, sample)-at-a-time Python loop by a wide margin while
reporting the same physics and the *same doses*.  Asserts:

* scalar equivalence — the vectorized path agrees with the per-patient
  reference to <= 1e-9 on every trace and every administered dose;
* chunk-size invariance — the same plan streamed in 11-sample slivers
  and whole-interval blocks agrees to <= 1e-9;
* the chunked engine runs >= 5x faster than the per-patient loop;
* deterministic replay under a fixed seed;
* the closed loop earns its keep — the Bayesian controller shrinks
  cohort trough error versus fixed dosing on a phenotype-mixed cohort.

Also drops ``BENCH_therapy.json`` (speedup, n_patients, wall times)
via the ``bench_json`` fixture so the perf trajectory is tracked
across PRs.
"""

import os
import time
from dataclasses import replace

import numpy as np

from repro.engine.therapy import TherapyPlan, run_therapy, run_therapy_scalar
from repro.pk import CYCLOSPORINE
from repro.pk.dosing import steady_state_trough_per_mol
from repro.therapy import BayesianTroughController, FixedRegimenController

N_PATIENTS = 24
N_DOSES = 6
DOSE_INTERVAL_H = 12.0
SAMPLE_PERIOD_S = 900.0
# The acceptance floor is 5x (typically ~40x here).  Shared CI runners
# add scheduler/BLAS-contention noise the min-of-3 timing cannot fully
# absorb, so CI can relax the gate via the environment instead of
# skipping it.
SPEEDUP_FLOOR = float(os.environ.get("THERAPY_SPEEDUP_FLOOR", "5.0"))


def course_plan(chunk_samples: int = 4096,
                keep_traces: bool = True) -> TherapyPlan:
    drug = CYCLOSPORINE
    cohort = drug.population.sample(N_PATIENTS, seed=2012)
    controller = BayesianTroughController(
        prior=drug.typical_model(),
        target_trough_molar=drug.window.target_trough_molar,
        observation_sigma_molar=4e-7)
    return TherapyPlan.for_drug(
        drug, cohort, controller=controller, n_doses=N_DOSES,
        dose_interval_h=DOSE_INTERVAL_H, sample_period_s=SAMPLE_PERIOD_S,
        chunk_samples=chunk_samples, seed=2012,
        process_noise_sigma_molar=1e-7, wander_sigma_a=2e-9,
        keep_traces=keep_traces)


def _best_of(fn, repeats: int = 3) -> float:
    """Minimum wall-clock over ``repeats`` runs (noise-robust timing)."""
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_scalar_equivalence():
    plan = course_plan(chunk_samples=48)
    batch = run_therapy(plan)
    scalar = run_therapy_scalar(plan)
    np.testing.assert_allclose(
        batch.true_concentration_molar, scalar.true_concentration_molar,
        rtol=0.0, atol=1e-9)
    np.testing.assert_allclose(
        batch.estimated_concentration_molar,
        scalar.estimated_concentration_molar, rtol=0.0, atol=1e-9)
    np.testing.assert_allclose(batch.doses_mol, scalar.doses_mol,
                               rtol=1e-9, atol=0.0)
    np.testing.assert_allclose(batch.trough_abs_rel_error,
                               scalar.trough_abs_rel_error,
                               rtol=0.0, atol=1e-9)
    np.testing.assert_array_equal(batch.n_recalibrations,
                                  scalar.n_recalibrations)


def test_chunk_size_invariance():
    whole = run_therapy(course_plan(chunk_samples=10 ** 6))
    slivers = run_therapy(course_plan(chunk_samples=11))
    np.testing.assert_allclose(
        slivers.estimated_concentration_molar,
        whole.estimated_concentration_molar, rtol=0.0, atol=1e-9)
    np.testing.assert_allclose(slivers.doses_mol, whole.doses_mol,
                               rtol=0.0, atol=1e-18)
    np.testing.assert_allclose(slivers.measured_current_a,
                               whole.measured_current_a,
                               rtol=0.0, atol=1e-15)
    np.testing.assert_array_equal(slivers.n_recalibrations,
                                  whole.n_recalibrations)


def test_deterministic_replay():
    a = run_therapy(course_plan())
    b = run_therapy(course_plan())
    np.testing.assert_array_equal(a.doses_mol, b.doses_mol)
    np.testing.assert_array_equal(a.estimated_concentration_molar,
                                  b.estimated_concentration_molar)


def test_therapy_speedup(benchmark, bench_json):
    plan = course_plan(keep_traces=False)
    n_readings = plan.n_patients * plan.n_samples

    # Warm both paths once (imports, registry composition).
    run_therapy(plan)
    scalar_s = _best_of(lambda: run_therapy_scalar(plan), repeats=1)
    result = benchmark.pedantic(lambda: run_therapy(plan),
                                rounds=3, iterations=1)
    batch_s = _best_of(lambda: run_therapy(plan))

    speedup = scalar_s / batch_s
    print(f"\n{plan.n_patients} patients x {plan.n_doses} doses "
          f"({n_readings} readings over {plan.duration_h:.0f} h): "
          f"scalar {scalar_s * 1e3:.0f} ms, chunked {batch_s * 1e3:.1f} ms "
          f"-> {speedup:.1f}x")
    print(result.summary())
    path = bench_json(
        "therapy",
        n_patients=plan.n_patients,
        n_doses=plan.n_doses,
        n_readings=n_readings,
        scalar_wall_s=scalar_s,
        batch_wall_s=batch_s,
        speedup=speedup,
        speedup_floor=SPEEDUP_FLOOR,
    )
    print(f"perf record -> {path}")
    assert result.plan.n_samples == plan.n_samples
    assert speedup >= SPEEDUP_FLOOR, (
        f"therapy speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor")


def test_personalization_pays_for_itself():
    """The loop's raison d'etre quantified: on a phenotype-mixed cohort
    the model-informed controller must cut the trough-targeting error
    of fixed population dosing hard."""
    drug = CYCLOSPORINE
    per_mol = float(steady_state_trough_per_mol(
        drug.typical_model().params(), DOSE_INTERVAL_H)[0])
    fixed_dose = drug.window.target_trough_molar / per_mol
    plan = course_plan(keep_traces=False)
    fixed_plan = replace(
        plan, controller=FixedRegimenController(dose_mol=fixed_dose))
    bayes = run_therapy(plan)
    fixed = run_therapy(fixed_plan)
    bayes_error = float(np.mean(bayes.trough_abs_rel_error))
    fixed_error = float(np.mean(fixed.trough_abs_rel_error))
    print(f"\ncohort trough error: bayesian {bayes_error * 100:.1f} % vs "
          f"fixed {fixed_error * 100:.1f} %")
    print(bayes.phenotype_summary())
    assert bayes_error < 0.75 * fixed_error
