"""Bench: the closed loop's raison d'etre, quantified on a mixed cohort.

On a phenotype-mixed cohort the model-informed Bayesian controller must
cut the trough-targeting error of fixed population dosing hard.

The speedup gate for this workload (and every other registered one)
runs in ``bench_core.py`` through the shared harness
(:mod:`repro.engine.core.bench`); the execution-contract gates (chunk
invariance, scalar equivalence, deterministic replay) live in
``tests/engine/test_core_contract.py``.
"""

from dataclasses import replace

import numpy as np

from repro.engine.therapy import run_therapy
from repro.pk import CYCLOSPORINE
from repro.pk.dosing import steady_state_trough_per_mol
from repro.therapy import FixedRegimenController

DOSE_INTERVAL_H = 12.0


def test_personalization_pays_for_itself(therapy_course_plan):
    """The loop's raison d'etre quantified: on a phenotype-mixed cohort
    the model-informed controller must cut the trough-targeting error
    of fixed population dosing hard."""
    drug = CYCLOSPORINE
    per_mol = float(steady_state_trough_per_mol(
        drug.typical_model().params(), DOSE_INTERVAL_H)[0])
    fixed_dose = drug.window.target_trough_molar / per_mol
    plan = therapy_course_plan(keep_traces=False)
    fixed_plan = replace(
        plan, controller=FixedRegimenController(dose_mol=fixed_dose))
    bayes = run_therapy(plan)
    fixed = run_therapy(fixed_plan)
    bayes_error = float(np.mean(bayes.trough_abs_rel_error))
    fixed_error = float(np.mean(fixed.trough_abs_rel_error))
    print(f"\ncohort trough error: bayesian {bayes_error * 100:.1f} % vs "
          f"fixed {fixed_error * 100:.1f} %")
    print(bayes.phenotype_summary())
    assert bayes_error < 0.75 * fixed_error
