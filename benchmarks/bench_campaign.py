"""Bench: campaign fan-out throughput and the crash/resume guarantee.

Two gates on one 64-shard monitor campaign:

* **throughput** — the multi-worker ``ProcessPoolExecutor`` path must
  run the campaign at least ``CAMPAIGN_SPEEDUP_FLOOR``x (default 2x)
  faster than the in-process single-worker path, *and* write a
  byte-identical export while doing it.  The assertion needs real
  parallel hardware, so it is skipped (and recorded as ungated in the
  JSON) on single-CPU machines; CI runners gate it.
* **crash/resume** — a throttled subprocess campaign is ``SIGKILL``ed
  (whole process group, like a machine crash) mid-shard and resumed
  from its store; the final export must be byte-identical to the
  uninterrupted single-worker reference.

Both land in ``BENCH_campaign.json`` so fleet throughput is tracked
across PRs alongside the engine speedups.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaigns import (
    ArtifactStore,
    CampaignSpec,
    resume_campaign,
    run_campaign,
)
from repro.campaigns.runner import THROTTLE_ENV
from repro.engine.core import floor_from_env
from repro.scenarios import Scenario

REPO_ROOT = Path(__file__).resolve().parent.parent

N_SHARDS = 64
MULTI_WORKERS = 4
KILL_SHARDS = 16
KILL_THROTTLE_S = 0.15


def _effective_cpus() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _fleet_spec(n_shards: int) -> CampaignSpec:
    """A 64-way fleet of two-week, 16-patient wear simulations."""
    return CampaignSpec(
        name="bench-fleet", n_shards=n_shards, seed=2012,
        base=Scenario(
            workload="monitor", name="wear",
            spec={"cohort": {"sensor": "glucose/this-work",
                             "analyte": "glucose", "n_patients": 16},
                  "duration_h": 336.0, "sample_period_s": 300.0,
                  "keep_traces": False}))


def _export(store_path: Path) -> str:
    with ArtifactStore.open(store_path) as store:
        return store.export_json()


def _kill_resume_drill(spec: CampaignSpec, reference_export: str,
                       tmp_path: Path) -> dict:
    """SIGKILL a throttled subprocess campaign mid-shard and resume it.

    Returns the JSON payload fields; asserts byte-identity.
    """
    spec_file = spec.save(tmp_path / "kill-fleet.json")
    store_path = tmp_path / "killed.sqlite"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    env[THROTTLE_ENV] = str(KILL_THROTTLE_S)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", "run",
         str(spec_file), "--store", str(store_path), "--workers", "2"],
        env=env, cwd=REPO_ROOT, stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL, start_new_session=True)
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            assert process.poll() is None, \
                "campaign finished before the kill landed"
            if store_path.exists():
                try:
                    with ArtifactStore.open(store_path,
                                            readonly=True) as store:
                        if store.counts()["done"] >= 2:
                            break
                except ValueError:
                    pass  # store mid-creation
            time.sleep(0.02)
        else:
            pytest.fail("campaign never reached the kill point")
    finally:
        try:
            os.killpg(process.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        process.wait()
    time.sleep(0.1)
    with ArtifactStore.open(store_path, readonly=True) as store:
        killed_counts = store.counts()
    assert killed_counts["done"] < spec.n_shards, \
        "kill landed after completion; raise the throttle"
    report = resume_campaign(store_path, workers=1)
    assert report.counts["done"] == spec.n_shards
    resumed_identical = _export(store_path) == reference_export
    assert resumed_identical, \
        "resumed store export differs from the uninterrupted run"
    return {
        "kill_n_shards": spec.n_shards,
        "kill_done_at_kill": killed_counts["done"],
        "kill_resumed_shards": report.n_executed,
        "resume_byte_identical": resumed_identical,
    }


def test_campaign_throughput_and_crash_resume(bench_json, tmp_path):
    """The campaign runner's two acceptance gates, one JSON record."""
    floor = floor_from_env("CAMPAIGN_SPEEDUP_FLOOR", default=2.0)
    cpus = _effective_cpus()
    spec = _fleet_spec(N_SHARDS)

    single = run_campaign(spec, tmp_path / "single.sqlite", workers=1)
    assert single.counts["done"] == N_SHARDS
    reference_export = _export(tmp_path / "single.sqlite")

    multi = run_campaign(spec, tmp_path / "multi.sqlite",
                         workers=MULTI_WORKERS)
    assert multi.counts["done"] == N_SHARDS
    assert _export(tmp_path / "multi.sqlite") == reference_export, \
        "multi-worker store export differs from single-worker"
    speedup = single.elapsed_s / multi.elapsed_s
    speedup_gated = cpus >= 2

    drill = _kill_resume_drill(
        _fleet_spec(KILL_SHARDS), _export_reference_for(
            _fleet_spec(KILL_SHARDS), tmp_path), tmp_path)

    payload = dict(
        n_shards=N_SHARDS,
        workers=MULTI_WORKERS,
        effective_cpus=cpus,
        single_wall_s=single.elapsed_s,
        multi_wall_s=multi.elapsed_s,
        single_shards_per_s=single.throughput_shards_per_s,
        multi_shards_per_s=multi.throughput_shards_per_s,
        speedup=speedup,
        speedup_floor=floor,
        speedup_gated=speedup_gated,
        **drill,
    )
    path = bench_json("campaign", **payload)
    print(f"\ncampaign fan-out: single {single.elapsed_s:.2f} s, "
          f"{MULTI_WORKERS} workers {multi.elapsed_s:.2f} s -> "
          f"{speedup:.1f}x (floor {floor:.1f}x, "
          f"{'gated' if speedup_gated else 'ungated: single CPU'}); "
          f"kill at {drill['kill_done_at_kill']}/{KILL_SHARDS} done, "
          f"resume byte-identical -> {path}")
    if speedup_gated:
        assert speedup >= floor, (
            f"multi-worker speedup {speedup:.2f}x below the "
            f"{floor:.1f}x floor on {cpus} CPUs")


def _export_reference_for(spec: CampaignSpec, tmp_path: Path) -> str:
    """Uninterrupted single-worker reference export for ``spec``."""
    store_path = tmp_path / "kill-reference.sqlite"
    run_campaign(spec, store_path, workers=1)
    return _export(store_path)
