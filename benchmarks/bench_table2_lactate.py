"""Bench: Table 2, lactate section (5 sensors).

Shape claims (paper section 3.2.2): the N-doped CNT sensor [16] beats ours
on sensitivity (40 vs 25) but its 0.014-0.325 mM range misses physiological
lactate, while our 0-1 mM range fits; the CNT/mineral-oil paste [41] and
titanate [57] sensors are orders of magnitude less sensitive; carbon beats
the titanate material.
"""

from repro.analytes.physiological import covers_physiological_range
from repro.core.validation import within_factor
from repro.experiments.table2 import rows_to_text, run_table2


def run() -> dict:
    return run_table2(groups=["lactate"], seed=7)


def test_table2_lactate(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + rows_to_text(rows))

    goran = rows["lactate/goran2011"]
    ours = rows["lactate/this-work"]

    # [16] wins sensitivity by ~1.6x ...
    assert goran.measured_sensitivity > ours.measured_sensitivity
    assert within_factor(
        goran.measured_sensitivity / ours.measured_sensitivity,
        40.0 / 25.0, 1.3)
    # ... but only our range covers the cell-culture window.
    assert covers_physiological_range(
        "cell-culture lactate", 0.0, ours.measured_range_mm[1] * 1e-3)
    assert not covers_physiological_range(
        "cell-culture lactate",
        goran.spec.paper_range_mm[0] * 1e-3,
        goran.measured_range_mm[1] * 1e-3)

    # Paste and titanate sensors sit two orders of magnitude below ours.
    for weak_id in ("lactate/rubianes2005", "lactate/yang2008"):
        assert rows[weak_id].measured_sensitivity \
            < ours.measured_sensitivity / 50.0

    # Every row reproduces its published sensitivity within 20 %.
    for row in rows.values():
        assert within_factor(row.measured_sensitivity,
                             row.spec.paper_sensitivity, 1.2)
