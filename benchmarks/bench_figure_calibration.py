"""Bench: figure-equivalent calibration curves for all seven own sensors.

Each developed sensor's signal-vs-concentration curve: linear at low
concentration, bending over past the published range (Michaelis-Menten).
"""

import numpy as np

from repro.core.registry import TABLE1_SPECS
from repro.experiments.figures import calibration_curve_figure


def run() -> list:
    return [calibration_curve_figure(spec, n_points=8, seed=17)
            for spec in TABLE1_SPECS]


def test_figure_calibration_curves(benchmark):
    figures = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(figures) == 7

    for spec, figure in zip(TABLE1_SPECS, figures):
        signals = figure["signals_a"]
        concentrations = figure["concentrations_molar"]
        # Monotone response.
        assert signals[-1] > signals[0], spec.sensor_id
        # Saturation: last-segment slope below first-segment slope.
        # Wide two-segment spans keep the slope estimates out of the
        # per-point noise (the smallest-range sensors sit near their LOD).
        first = ((signals[2] - signals[0])
                 / (concentrations[2] - concentrations[0]))
        last = ((signals[-1] - signals[-3])
                / (concentrations[-1] - concentrations[-3]))
        assert last < 0.9 * first, spec.sensor_id
        print(f"{spec.sensor_id:26s} initial slope "
              f"{first:.3e} A/M, final slope {last:.3e} A/M")
        __ = np.asarray(signals)
