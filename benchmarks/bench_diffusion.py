"""Bench: diffusion-engine validation and throughput.

Micro-benchmarks of the finite-difference substrate with accuracy
assertions against the closed-form laws (Cottrell, Randles-Sevcik): the
solver must stay both fast and correct.
"""

import numpy as np

from repro.chem.cottrell import cottrell_current
from repro.chem.diffusion import DiffusionGrid1D, ElectrodeDiffusionSystem
from repro.chem.randles_sevcik import peak_current_reversible
from repro.chem.species import FERRICYANIDE
from repro.constants import FARADAY


def test_crank_nicolson_cottrell(benchmark):
    def run() -> float:
        grid = DiffusionGrid1D.for_transient(7e-10, 1.0, 500, 1e-3)
        fluxes = grid.run(500)
        return FARADAY * 1e-6 * fluxes[-1]

    simulated = benchmark(run)
    analytic = cottrell_current(1.0, 1, 1e-6, 1e-3, 7e-10)
    assert abs(simulated - analytic) / analytic < 5e-3


def test_cv_engine_randles_sevcik(benchmark):
    from repro.techniques.cyclic_voltammetry import CyclicVoltammetry

    def run() -> float:
        cv = CyclicVoltammetry(0.6, -0.2, 0.05, sampling_rate_hz=400.0)
        record = cv.simulate_solution_couple(
            FERRICYANIDE.with_rate_enhancement(50.0), 1e-3, 0.0, 7e-6)
        forward = record.current_a[: record.time_s.size // 2]
        return float(abs(forward.min()))

    simulated = benchmark.pedantic(run, rounds=3, iterations=1)
    analytic = peak_current_reversible(1, 7e-6, FERRICYANIDE.diffusion_ox,
                                       1e-3, 0.05)
    assert abs(simulated - analytic) / analytic < 0.05


def test_explicit_stepper_throughput(benchmark):
    system = ElectrodeDiffusionSystem(FERRICYANIDE, 1e-6, 1e-3, 0.0,
                                      10.0, 2000)
    potentials = np.linspace(0.5, -0.3, 2000)

    def run() -> float:
        currents = system.run(potentials)
        return float(currents[-1])

    benchmark.pedantic(run, rounds=1, iterations=1)
