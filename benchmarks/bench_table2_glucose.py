"""Bench: Table 2, glucose section (5 sensors).

Shape claims (paper section 3.2.1): our MWCNT/Nafion + GOD sensor shows the
best sensitivity AND the best limit of detection among the CNT+GOD sensors;
the sensitivity ordering is [42] < [49] < [55] < [18] < this work.
"""

from repro.core.validation import ranking_matches, within_factor
from repro.experiments.table2 import rows_to_text, run_table2

EXPECTED_ORDER = [
    "glucose/this-work",   # 55.5
    "glucose/hua2012",     # 23.5
    "glucose/wang2003",    # 14.2
    "glucose/tsai2005",    # 4.7
    "glucose/ryu2010",     # 4.05
]


def run() -> dict:
    return run_table2(groups=["glucose"], seed=7)


def test_table2_glucose(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + rows_to_text(rows))

    sensitivities = {sid: row.measured_sensitivity
                     for sid, row in rows.items()}
    assert ranking_matches(sensitivities, EXPECTED_ORDER)

    ours = rows["glucose/this-work"]
    assert within_factor(ours.measured_sensitivity, 55.5, 1.2)
    assert within_factor(ours.measured_lod_um, 2.0, 2.0)
    assert within_factor(ours.measured_range_mm[1], 1.0, 1.4)
    for sid, row in rows.items():
        if sid != "glucose/this-work":
            assert ours.measured_lod_um < row.measured_lod_um
