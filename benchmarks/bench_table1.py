"""Bench: regenerate Table 1 (features of the developed biosensors)."""

from repro.experiments.table1 import PAPER_TABLE1, run_table1


def test_table1(benchmark):
    result = benchmark.pedantic(run_table1, rounds=3, iterations=1)
    print("\n" + result["text"])
    assert result["matches"], "generated Table 1 differs from the paper"
    assert len(result["rows"]) == len(PAPER_TABLE1) == 7
