"""Bench: batch engine vs. scalar per-point loop on a calibration sweep.

The engine's reason to exist: a Table-2-style campaign (sensor panel x
concentration grid x replicates) evaluated as vectorized array operations
must beat the historical one-point-per-call loop by a wide margin while
reporting the same physics.  Asserts:

* noiseless batch and scalar outputs are numerically equivalent (1e-12);
* the batched campaign runs >= 5x faster than the scalar loop;
* the full glucose-panel campaign through ``run_batch`` matches the
  scalar loop cell count.
"""

import os
import time

import numpy as np

from repro.core.calibration import default_protocol_for_range
from repro.core.registry import build_sensor, specs_by_group
from repro.engine import BatchPlan, run_batch
from repro.engine import kernels
from repro.rng import spawn_generators
from repro.signal.steady_state import extract_steady_state

N_REPLICATES = 25
# The acceptance floor is 5x (typically ~8x here).  Shared CI runners add
# scheduler/BLAS-contention noise the min-of-3 timing cannot fully absorb,
# so CI relaxes the gate via the environment instead of skipping it.
SPEEDUP_FLOOR = float(os.environ.get("ENGINE_SPEEDUP_FLOOR", "5.0"))


def build_panel():
    sensors = tuple(build_sensor(spec) for spec in specs_by_group("glucose"))
    protocols = [default_protocol_for_range(
        sensor.linear_range_upper_molar()) for sensor in sensors]
    grids = tuple((0.0,) + tuple(p.concentrations_molar) for p in protocols)
    return sensors, grids


def historical_point(sensor, concentration, rng=None, add_noise=True):
    """The pre-engine scalar pipeline, reproduced from the primitives.

    ``measure_amperometric_point`` is now itself an engine wrapper with a
    kernel cache, so timing it would compare engine against engine; this
    keeps the baseline honest (one full technique -> chain -> DSP pass
    per point, clean path recomputed every time)."""
    record = sensor.ca_protocol.simulate_step(
        sensor.steady_state_current, concentration,
        duration_s=16.0, response_time_s=sensor.response_time_s)
    acquired = sensor.chain.acquire(
        record.current_a, record.sampling_rate_hz, rng=rng,
        add_noise=add_noise)
    value = extract_steady_state(acquired.time_s, acquired.current_a).value
    if add_noise and sensor.repeatability_std_a > 0:
        value += float(rng.normal(0.0, sensor.repeatability_std_a))
    return value


def scalar_sweep(sensors, grids, rngs, add_noise=True):
    """The historical per-point loop: one call per cell."""
    values = []
    flat = 0
    for sensor, grid in zip(sensors, grids):
        for concentration in grid:
            for __ in range(N_REPLICATES):
                rng = rngs[flat] if rngs is not None else None
                values.append(historical_point(
                    sensor, concentration, rng, add_noise=add_noise))
                flat += 1
    return np.array(values)


def batched_sweep(sensors, grids, seed, add_noise=True):
    plan = BatchPlan(sensors=sensors, concentrations_molar=grids,
                     replicates=N_REPLICATES, seed=seed,
                     add_noise=add_noise)
    return run_batch(plan).flat_values()


def test_noiseless_equivalence():
    sensors, grids = build_panel()
    batch = batched_sweep(sensors, grids, seed=None, add_noise=False)
    scalar = scalar_sweep(sensors, grids, rngs=None, add_noise=False)
    np.testing.assert_allclose(batch, scalar, rtol=1e-12, atol=0.0)


def _best_of(fn, repeats: int = 3) -> float:
    """Minimum wall-clock over ``repeats`` runs (noise-robust timing —
    a single sample on a shared CI runner is one scheduler hiccup away
    from a spurious failure)."""
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batch_speedup(benchmark, bench_json):
    sensors, grids = build_panel()
    n_cells = sum(len(g) for g in grids) * N_REPLICATES
    rngs = spawn_generators(7, n_cells)

    # Warm both paths once (butter-design and kernel caches, imports).
    batched_sweep(sensors, grids, seed=7)
    scalar_sweep(sensors, grids, rngs)

    scalar_s = _best_of(lambda: scalar_sweep(sensors, grids, rngs))
    kernels.clear_caches()  # the batch pays its own kernel costs
    result = benchmark.pedantic(
        lambda: batched_sweep(sensors, grids, seed=7),
        rounds=3, iterations=1)
    batch_s = _best_of(lambda: batched_sweep(sensors, grids, seed=7))

    speedup = scalar_s / batch_s
    print(f"\n{n_cells} cells: scalar {scalar_s * 1e3:.1f} ms, "
          f"batch {batch_s * 1e3:.1f} ms -> {speedup:.1f}x")
    path = bench_json(
        "engine",
        n_cells=n_cells,
        scalar_wall_s=scalar_s,
        batch_wall_s=batch_s,
        speedup=speedup,
        speedup_floor=SPEEDUP_FLOOR,
    )
    print(f"perf record -> {path}")
    assert result.size == n_cells
    assert speedup >= SPEEDUP_FLOOR, (
        f"batch speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor")


def test_deterministic_replay():
    sensors, grids = build_panel()
    a = batched_sweep(sensors, grids, seed=123)
    b = batched_sweep(sensors, grids, seed=123)
    np.testing.assert_array_equal(a, b)
