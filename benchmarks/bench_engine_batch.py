"""Bench: batch engine vs. the historical per-point calibration pipeline.

The engine's reason to exist: a Table-2-style campaign (sensor panel x
concentration grid x replicates) evaluated as vectorized array
operations must report the same physics as the historical
one-point-per-call loop.  Asserts the noiseless batch and scalar outputs
are numerically equivalent (1e-12) on the full glucose panel.

The speedup gate for this workload (and every other registered one)
runs in ``bench_core.py`` through the shared harness
(:mod:`repro.engine.core.bench`); the execution-contract gates (chunk
invariance, scalar equivalence, deterministic replay) live in
``tests/engine/test_core_contract.py``.
"""

import numpy as np

from repro.engine import BatchPlan, run_batch

N_REPLICATES = 25


def test_noiseless_equivalence(calibration_panel, historical_point):
    sensors, grids = calibration_panel
    plan = BatchPlan(sensors=sensors, concentrations_molar=grids,
                     replicates=N_REPLICATES, seed=None, add_noise=False)
    batch = run_batch(plan).flat_values()
    scalar = np.array([
        historical_point(sensor, concentration, add_noise=False)
        for sensor, grid in zip(sensors, grids)
        for concentration in grid
        for __ in range(N_REPLICATES)])
    np.testing.assert_allclose(batch, scalar, rtol=1e-12, atol=0.0)
