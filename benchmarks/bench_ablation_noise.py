"""Ablation bench: noise floor vs limit of detection (section 2.5 claim).

"A benefit of integration is better performance with respect to
signal-to-noise ratio."  Sweeping the per-measurement noise of the glucose
sensor shows the extracted LOD tracking 3 sigma / slope — quantifying why
an integrated low-noise front-end directly buys detection limit.
"""

from dataclasses import replace

import numpy as np

from repro.core.calibration import default_protocol_for_range, run_calibration
from repro.core.registry import build_sensor, spec_by_id


def run() -> dict:
    base = build_sensor(spec_by_id("glucose/this-work"))
    protocol = default_protocol_for_range(1e-3, n_blanks=12)
    results = {}
    for factor in (0.3, 1.0, 3.0, 10.0):
        sensor = replace(base,
                         repeatability_std_a=base.repeatability_std_a * factor)
        calibration = run_calibration(sensor, protocol,
                                      np.random.default_rng(19))
        results[factor] = calibration.lod_molar * 1e6
    return results


def test_ablation_noise_vs_lod(benchmark):
    lods = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for factor, lod_um in lods.items():
        print(f"  noise x{factor:<5} -> LOD {lod_um:7.3f} uM")

    factors = sorted(lods)
    # LOD grows monotonically with the noise floor...
    values = [lods[f] for f in factors]
    assert all(a < b for a, b in zip(values, values[1:]))
    # ...and roughly proportionally (3 sigma / slope scaling): the 33x
    # noise span maps to a 10-100x LOD span.
    span = lods[factors[-1]] / lods[factors[0]]
    assert 10.0 < span < 120.0
