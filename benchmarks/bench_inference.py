"""Bench: batch Kalman reconstruction vs. the scalar per-channel loop.

The inference subsystem's acceptance gate, in four claims:

* **bit-identity** — the vectorized filter + RTS smoother agree with
  the per-(channel, sample) scalar reference to <= 1e-9 on every
  posterior mean and variance;
* **speed** — the batch path beats the scalar loop by >= 5x on a
  cohort-sized block (the reason the vectorized path exists);
* **calibration** — the 95 % credible intervals empirically cover the
  ground truth within [0.90, 0.99] on a seeded cohort, for both the
  causal filter and the smoother (a filter with wrong intervals is
  *confidently* wrong — worse than none);
* **value** — the model-based reconstruction beats the monitor's linear
  estimator on MARD, and handing the therapy controller filtered
  troughs (with variances) improves cohort time-in-range over raw
  readouts.

Also drops ``BENCH_inference.json`` (speedup, cohort size, wall times)
via the ``bench_json`` fixture so the perf trajectory is tracked across
PRs.
"""

import os
import time
from dataclasses import replace

import numpy as np

from repro.engine.estimation import (
    EstimationPlan,
    run_estimation,
    run_estimation_scalar,
)
from repro.engine.monitor import MonitorPlan, glucose_cohort, run_monitor
from repro.engine.therapy import TherapyPlan, run_therapy
from repro.inference.kalman import (
    kalman_filter_batch,
    kalman_filter_scalar,
    rts_smoother_batch,
    rts_smoother_scalar,
)
from repro.inference.observation import (
    monitor_observation_model,
    rail_censored_mask,
)
from repro.pk import CYCLOSPORINE
from repro.therapy import BayesianTroughController

N_CHANNELS = 96
DURATION_H = 3 * 24.0
SAMPLE_PERIOD_S = 300.0
# The acceptance floor is 5x (typically ~15-30x here).  Shared CI
# runners add scheduler/BLAS-contention noise the min-of-3 timing
# cannot fully absorb, so CI can relax the gate via the environment
# instead of skipping it.
SPEEDUP_FLOOR = float(os.environ.get("INFERENCE_SPEEDUP_FLOOR", "5.0"))


def cohort_plan(n_channels: int = N_CHANNELS,
                duration_h: float = DURATION_H) -> EstimationPlan:
    return EstimationPlan(monitor=MonitorPlan(
        channels=glucose_cohort(n_channels),
        duration_h=duration_h,
        sample_period_s=SAMPLE_PERIOD_S,
        seed=2012,
    ))


def filter_inputs(plan: EstimationPlan):
    """The (measurements, observation-model) pair both paths consume."""
    monitor_result = run_monitor(plan.monitor)
    model = monitor_observation_model(plan.monitor)
    censored = rail_censored_mask(
        [channel.sensor for channel in plan.monitor.channels],
        monitor_result.measured_current_a)
    r = np.where(censored, np.inf,
                 model.measurement_variance_a2[:, None])
    return monitor_result.measured_current_a, model, r


def _best_of(fn, repeats: int = 3) -> float:
    """Minimum wall-clock over ``repeats`` runs (noise-robust timing)."""
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_scalar_equivalence():
    plan = cohort_plan(n_channels=6, duration_h=24.0)
    batch = run_estimation(plan)
    scalar = run_estimation_scalar(plan)
    np.testing.assert_allclose(
        batch.filtered_concentration_molar,
        scalar.filtered_concentration_molar, rtol=0.0, atol=1e-9)
    np.testing.assert_allclose(
        batch.filtered_std_molar, scalar.filtered_std_molar,
        rtol=0.0, atol=1e-9)
    np.testing.assert_allclose(
        batch.smoothed_concentration_molar,
        scalar.smoothed_concentration_molar, rtol=0.0, atol=1e-9)
    np.testing.assert_allclose(
        batch.smoothed_std_molar, scalar.smoothed_std_molar,
        rtol=0.0, atol=1e-9)
    np.testing.assert_allclose(batch.filtered_rmse_molar,
                               scalar.filtered_rmse_molar,
                               rtol=0.0, atol=1e-9)


def test_deterministic_replay():
    a = run_estimation(cohort_plan(n_channels=4, duration_h=12.0))
    b = run_estimation(cohort_plan(n_channels=4, duration_h=12.0))
    np.testing.assert_array_equal(a.filtered_concentration_molar,
                                  b.filtered_concentration_molar)
    np.testing.assert_array_equal(a.smoothed_std_molar,
                                  b.smoothed_std_molar)


def test_inference_speedup(benchmark, bench_json):
    plan = cohort_plan()
    z, model, r = filter_inputs(plan)
    n_readings = plan.n_channels * plan.n_samples
    args = (model.gain_a_per_molar, model.offset_a, r,
            model.a_signal, model.q_signal,
            model.a_wander, model.q_wander)

    def batch_pass():
        trace = kalman_filter_batch(z, *args)
        return rts_smoother_batch(trace, model.a_signal, model.a_wander)

    def scalar_pass():
        trace = kalman_filter_scalar(z, *args)
        return rts_smoother_scalar(trace, model.a_signal, model.a_wander)

    batch_pass()  # warm caches before timing
    scalar_s = _best_of(scalar_pass, repeats=1)
    result = benchmark.pedantic(batch_pass, rounds=3, iterations=1)
    batch_s = _best_of(batch_pass)

    speedup = scalar_s / batch_s
    print(f"\n{plan.n_channels} channels x {plan.n_samples} samples "
          f"({n_readings} readings over {plan.duration_h:.0f} h): "
          f"scalar {scalar_s * 1e3:.0f} ms, batch {batch_s * 1e3:.1f} ms "
          f"-> {speedup:.1f}x")
    assert result is not None
    path = bench_json(
        "inference",
        n_channels=plan.n_channels,
        n_samples=plan.n_samples,
        n_readings=n_readings,
        scalar_wall_s=scalar_s,
        batch_wall_s=batch_s,
        speedup=speedup,
        speedup_floor=SPEEDUP_FLOOR,
    )
    print(f"perf record -> {path}")
    assert speedup >= SPEEDUP_FLOOR, (
        f"inference speedup {speedup:.2f}x below the "
        f"{SPEEDUP_FLOOR}x floor")


def test_interval_coverage_calibrated():
    """The uncertainty claim: nominal 95 % bands must cover 90-99 % of
    the ground truth on a seeded cohort, filter and smoother alike."""
    result = run_estimation(cohort_plan())
    filtered = float(np.mean(result.filtered_coverage))
    smoothed = float(np.mean(result.smoothed_coverage))
    print(f"\nempirical 95 %-interval coverage: filtered "
          f"{filtered * 100:.1f} %, smoothed {smoothed * 100:.1f} %")
    assert 0.90 <= filtered <= 0.99, filtered
    assert 0.90 <= smoothed <= 0.99, smoothed


def test_reconstruction_beats_linear_estimator():
    """The accuracy claim: the model-based filter must cut the monitor's
    linear-estimator MARD hard, and smoothing must not be worse."""
    result = run_estimation(cohort_plan())
    filtered = float(np.mean(result.filtered_mard))
    linear = float(np.mean(result.linear_mard))
    smoothed_rmse = float(np.mean(result.smoothed_rmse_molar))
    filtered_rmse = float(np.mean(result.filtered_rmse_molar))
    print(f"\ncohort MARD: filtered {filtered * 100:.1f} % vs linear "
          f"estimator {linear * 100:.1f} %")
    assert filtered < 0.5 * linear
    assert smoothed_rmse <= filtered_rmse * 1.01


def test_filtered_troughs_improve_dosing():
    """The closed-loop claim: Bayesian dosing on Kalman-filtered trough
    estimates (variance-weighted) must beat the same controller on raw
    noisy readouts — more time in the therapeutic window, tighter
    trough targeting."""
    drug = CYCLOSPORINE
    cohort = drug.population.sample(24, seed=2012)
    controller = BayesianTroughController(
        prior=drug.typical_model(),
        target_trough_molar=drug.window.target_trough_molar,
        observation_sigma_molar=4e-7)
    raw_plan = TherapyPlan.for_drug(
        drug, cohort, controller=controller, n_doses=6,
        dose_interval_h=12.0, sample_period_s=900.0, seed=2012,
        process_noise_sigma_molar=1e-7, wander_sigma_a=2e-9,
        keep_traces=False)
    filtered_plan = replace(raw_plan, filter_troughs=True)
    raw = run_therapy(raw_plan)
    filtered = run_therapy(filtered_plan)
    raw_tir = float(np.mean(raw.time_in_range))
    filtered_tir = float(np.mean(filtered.time_in_range))
    raw_err = float(np.mean(raw.trough_abs_rel_error))
    filtered_err = float(np.mean(filtered.trough_abs_rel_error))
    print(f"\ntime-in-range: filtered troughs {filtered_tir * 100:.1f} % "
          f"vs raw readouts {raw_tir * 100:.1f} %; trough error "
          f"{filtered_err * 100:.1f} % vs {raw_err * 100:.1f} %")
    assert filtered_tir > raw_tir
    assert filtered_err < raw_err
