"""Bench: the inference subsystem's accuracy and calibration claims.

Three domain claims on a cohort-sized reconstruction:

* **calibration** — the 95 % credible intervals empirically cover the
  ground truth within [0.90, 0.99] on a seeded cohort, for both the
  causal filter and the smoother (a filter with wrong intervals is
  *confidently* wrong — worse than none);
* **value** — the model-based reconstruction beats the monitor's linear
  estimator on MARD, and smoothing must not be worse;
* **closed loop** — handing the therapy controller Kalman-filtered
  troughs (with variances) improves cohort time-in-range over raw
  readouts.

The speedup gate for this workload (and every other registered one)
runs in ``bench_core.py`` through the shared harness
(:mod:`repro.engine.core.bench`); the execution-contract gates (chunk
invariance, scalar equivalence, deterministic replay) live in
``tests/engine/test_core_contract.py``.
"""

from dataclasses import replace

import numpy as np

from repro.engine.estimation import run_estimation
from repro.engine.therapy import run_therapy


def test_interval_coverage_calibrated(estimation_cohort_plan):
    """The uncertainty claim: nominal 95 % bands must cover 90-99 % of
    the ground truth on a seeded cohort, filter and smoother alike."""
    result = run_estimation(estimation_cohort_plan())
    filtered = float(np.mean(result.filtered_coverage))
    smoothed = float(np.mean(result.smoothed_coverage))
    print(f"\nempirical 95 %-interval coverage: filtered "
          f"{filtered * 100:.1f} %, smoothed {smoothed * 100:.1f} %")
    assert 0.90 <= filtered <= 0.99, filtered
    assert 0.90 <= smoothed <= 0.99, smoothed


def test_reconstruction_beats_linear_estimator(estimation_cohort_plan):
    """The accuracy claim: the model-based filter must cut the monitor's
    linear-estimator MARD hard, and smoothing must not be worse."""
    result = run_estimation(estimation_cohort_plan())
    filtered = float(np.mean(result.filtered_mard))
    linear = float(np.mean(result.linear_mard))
    smoothed_rmse = float(np.mean(result.smoothed_rmse_molar))
    filtered_rmse = float(np.mean(result.filtered_rmse_molar))
    print(f"\ncohort MARD: filtered {filtered * 100:.1f} % vs linear "
          f"estimator {linear * 100:.1f} %")
    assert filtered < 0.5 * linear
    assert smoothed_rmse <= filtered_rmse * 1.01


def test_filtered_troughs_improve_dosing(therapy_course_plan):
    """The closed-loop claim: Bayesian dosing on Kalman-filtered trough
    estimates (variance-weighted) must beat the same controller on raw
    noisy readouts — more time in the therapeutic window, tighter
    trough targeting."""
    raw_plan = therapy_course_plan(keep_traces=False)
    filtered_plan = replace(raw_plan, filter_troughs=True)
    raw = run_therapy(raw_plan)
    filtered = run_therapy(filtered_plan)
    raw_tir = float(np.mean(raw.time_in_range))
    filtered_tir = float(np.mean(filtered.time_in_range))
    raw_err = float(np.mean(raw.trough_abs_rel_error))
    filtered_err = float(np.mean(filtered.trough_abs_rel_error))
    print(f"\ntime-in-range: filtered troughs {filtered_tir * 100:.1f} % "
          f"vs raw readouts {raw_tir * 100:.1f} %; trough error "
          f"{filtered_err * 100:.1f} % vs {raw_err * 100:.1f} %")
    assert filtered_tir > raw_tir
    assert filtered_err < raw_err
