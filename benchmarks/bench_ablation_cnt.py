"""Ablation bench: what the carbon nanotubes buy (sections 2.4 / 3).

The paper attributes its sensitivity edge to the CNT film's electron
transfer and enzyme-hosting properties.  This ablation rebuilds the
glucose sensor with the film progressively degraded — no CNTs, poor
dispersion, full Nafion film — and measures the resulting sensitivity
through the full pipeline.  The monotone recovery of sensitivity with
film quality is the paper's core materials claim.
"""

from dataclasses import replace

import numpy as np

from repro.core.calibration import default_protocol_for_range, run_calibration
from repro.core.registry import build_sensor, spec_by_id
from repro.nano.dispersion import MINERAL_OIL
from repro.nano.film import NanostructuredFilm


def _with_film(film: NanostructuredFilm):
    """Rebuild the glucose sensor around a different film.

    The enzyme layer's collection efficiency is recomputed from the film —
    the physical channel through which the film changes sensitivity.
    """
    sensor = build_sensor(spec_by_id("glucose/this-work"))
    layer = replace(sensor.layer,
                    collection_efficiency=film.collection_efficiency())
    return replace(sensor, film=film, layer=layer)


def run() -> dict:
    films = {
        "bare electrode": NanostructuredFilm.bare(),
        "CNT in mineral oil": NanostructuredFilm(
            medium=MINERAL_OIL, loading_kg_m2=3e-4),
        "MWCNT/Nafion (paper)": NanostructuredFilm.mwcnt_nafion(),
    }
    results = {}
    for name, film in films.items():
        sensor = _with_film(film)
        protocol = default_protocol_for_range(1e-3)
        calibration = run_calibration(sensor, protocol,
                                      np.random.default_rng(7))
        results[name] = calibration.sensitivity_paper
    return results


def test_ablation_cnt(benchmark):
    sensitivities = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, sensitivity in sensitivities.items():
        print(f"  {name:<24} {sensitivity:8.2f} uA mM^-1 cm^-2")

    bare = sensitivities["bare electrode"]
    oil = sensitivities["CNT in mineral oil"]
    paper = sensitivities["MWCNT/Nafion (paper)"]
    # Monotone improvement with film quality.
    assert bare < oil < paper
    # The full CNT/Nafion film at least doubles the bare sensitivity.
    assert paper > 2.0 * bare
