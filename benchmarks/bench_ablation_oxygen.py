"""Ablation bench: oxygen limitation of the oxidase sensors.

The implantable-operation perspective of the paper (sections 1 / 2.5):
oxidases need dissolved O2 as co-substrate.  Sweeping the oxygen level
from beaker to subcutaneous-tissue conditions shows the ping-pong
signature — the mid-range signal and linear range collapse while the
initial slope survives — and how an oxygen-permeable membrane recovers
part of the loss.
"""

from repro.enzymes.catalog import GLUCOSE_OXIDASE
from repro.enzymes.oxygen import (
    AIR_SATURATED_O2_MOLAR,
    TISSUE_O2_MOLAR,
    OxygenDependence,
)


def run() -> dict:
    naked = OxygenDependence(enzyme=GLUCOSE_OXIDASE)
    membraned = OxygenDependence(enzyme=GLUCOSE_OXIDASE,
                                 oxygen_permeability=3.0)
    conditions = {
        "O2-saturated buffer": 1.0e-3,
        "air-saturated buffer": AIR_SATURATED_O2_MOLAR,
        "venous blood": 0.05e-3,
        "subcutaneous tissue": TISSUE_O2_MOLAR,
    }
    results = {}
    for name, oxygen in conditions.items():
        results[name] = {
            "oxygen_molar": oxygen,
            "midrange_retention": naked.midrange_retention(oxygen),
            "linear_upper_mm": naked.apparent_linear_upper(oxygen) * 1e3,
            "membraned_retention": membraned.midrange_retention(oxygen),
        }
    return results


def test_ablation_oxygen(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, values in results.items():
        print(f"  {name:<22} O2 {values['oxygen_molar'] * 1e3:5.2f} mM: "
              f"signal x{values['midrange_retention']:.2f}, "
              f"linear to {values['linear_upper_mm']:6.2f} mM "
              f"(membrane: x{values['membraned_retention']:.2f})")

    beaker = results["air-saturated buffer"]
    tissue = results["subcutaneous tissue"]
    # Tissue oxygen collapses both the mid-range signal and the range.
    assert tissue["midrange_retention"] < 0.3 * beaker["midrange_retention"]
    assert tissue["linear_upper_mm"] < 0.3 * beaker["linear_upper_mm"]
    # An O2-permeable membrane recovers a useful fraction.
    assert tissue["membraned_retention"] > 1.5 * tissue["midrange_retention"]