"""Telemetry: spans, counters, and trace export for every execution layer.

The observability subsystem the execution core, the campaign runner and
the CLI all share.  Four small modules:

* :mod:`~repro.telemetry.recorder` — the instrumentation API:
  ``span()`` context managers, monotonic counters, gauges, and the
  process-local active recorder.  **Disabled is a strict no-op**: the
  default :data:`NULL_RECORDER` allocates nothing, and hot paths branch
  once on :attr:`Recorder.enabled` (the disabled executor path is gated
  to within 3 % of the uninstrumented loop in
  ``benchmarks/bench_core.py``).
* :mod:`~repro.telemetry.aggregate` — :class:`InMemoryRecorder`, the
  enabled recorder: keeps every span, accumulates counters, renders
  ``summary()`` (count / total / p50 / p95 per span name).
* :mod:`~repro.telemetry.sinks` — :class:`JsonlSink`, the streaming
  JSONL trace writer (and :func:`read_jsonl` to load traces back).
* :mod:`~repro.telemetry.perfetto` — the Chrome/Perfetto
  ``trace_event`` exporter: open the written file in
  https://ui.perfetto.dev for a flame graph of any run.

Enable with ``REPRO_TELEMETRY=1`` (plus optional
``REPRO_TELEMETRY_TRACE=/path.jsonl``), the ``--telemetry`` flag on
``python -m repro run``, or programmatically::

    from repro.telemetry import InMemoryRecorder, set_recorder

    recorder = InMemoryRecorder()
    set_recorder(recorder)
    run_workload("monitor", plan)          # spans land in the recorder
    print(recorder.render_summary())

Campaign-side telemetry (shard lifecycle events, worker utilization,
`python -m repro campaign report`) persists in the artifact store's
schema-versioned ``telemetry`` table — see
:mod:`repro.campaigns.report`.  Wall-clock telemetry never leaks into
deterministic exports: ``export_json`` stays byte-identical across
interrupted/resumed runs, instrumented or not.
"""

from repro.telemetry.aggregate import (
    InMemoryRecorder,
    percentile,
    summarize_spans,
)
from repro.telemetry.perfetto import (
    complete_event,
    perfetto_json,
    process_name_event,
    span_trace_events,
    thread_name_event,
    write_perfetto,
)
from repro.telemetry.recorder import (
    ENABLE_ENV,
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    SpanRecord,
    TRACE_ENV,
    count,
    gauge,
    get_recorder,
    recorder_from_env,
    set_recorder,
    span,
    telemetry_env_enabled,
)
from repro.telemetry.sinks import JsonlSink, read_jsonl

__all__ = [
    "ENABLE_ENV",
    "InMemoryRecorder",
    "JsonlSink",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "SpanRecord",
    "TRACE_ENV",
    "complete_event",
    "count",
    "gauge",
    "get_recorder",
    "percentile",
    "perfetto_json",
    "process_name_event",
    "read_jsonl",
    "recorder_from_env",
    "set_recorder",
    "span",
    "span_trace_events",
    "summarize_spans",
    "telemetry_env_enabled",
    "thread_name_event",
    "write_perfetto",
]
