"""Telemetry: spans, counters, metrics, and trace export for every layer.

The observability subsystem the execution core, the serve front door,
the campaign runner and the CLI all share.  Five small modules:

* :mod:`~repro.telemetry.recorder` — the instrumentation API:
  ``span()`` context managers, monotonic counters, gauges, the
  process-local active recorder, and trace correlation
  (:func:`new_trace_id` / :func:`trace_context` /
  :func:`current_trace_id`).  **Disabled is a strict no-op**: the
  default :data:`NULL_RECORDER` allocates nothing, and hot paths branch
  once on :attr:`Recorder.enabled` (the disabled executor path is gated
  to within 3 % of the uninstrumented loop in
  ``benchmarks/bench_core.py``).
* :mod:`~repro.telemetry.metrics` — the SLO layer: typed
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments
  with label sets and cardinality caps behind a process-wide
  :class:`MetricsRegistry`, snapshot merge across processes, quantile
  estimation, and Prometheus text exposition
  (:func:`render_prometheus` / :func:`parse_prometheus`).  The same
  null-object discipline: :data:`NULL_METRICS` by default, enabled via
  ``REPRO_METRICS=1`` or :func:`set_metrics_registry`, gated <= 3 %
  enabled overhead on the executor.
* :mod:`~repro.telemetry.aggregate` — :class:`InMemoryRecorder`, the
  enabled recorder: keeps every span, accumulates counters, renders
  ``summary()`` (count / total / p50 / p95 per span name).
* :mod:`~repro.telemetry.sinks` — :class:`JsonlSink`, the streaming
  JSONL trace writer (and :func:`read_jsonl` to load traces back).
* :mod:`~repro.telemetry.perfetto` — the Chrome/Perfetto
  ``trace_event`` exporter: open the written file in
  https://ui.perfetto.dev for a flame graph of any run.

Enable with ``REPRO_TELEMETRY=1`` (plus optional
``REPRO_TELEMETRY_TRACE=/path.jsonl``), the ``--telemetry`` flag on
``python -m repro run``, or programmatically::

    from repro.telemetry import InMemoryRecorder, set_recorder

    recorder = InMemoryRecorder()
    set_recorder(recorder)
    run_workload("monitor", plan)          # spans land in the recorder
    print(recorder.render_summary())

Campaign-side telemetry (shard lifecycle events, worker utilization,
per-shard metrics snapshots, `python -m repro campaign report`)
persists in the artifact store's schema-versioned ``telemetry`` table —
see :mod:`repro.campaigns.report`.  Wall-clock telemetry never leaks
into deterministic exports: ``export_json`` stays byte-identical across
interrupted/resumed runs, instrumented or not.
"""

from repro.telemetry.aggregate import (
    InMemoryRecorder,
    percentile,
    summarize_spans,
)
from repro.telemetry.metrics import (
    DEFAULT_CARDINALITY_CAP,
    DEFAULT_LATENCY_BUCKETS_S,
    METRICS_ENV,
    METRICS_SCHEMA_VERSION,
    NULL_METRICS,
    OVERFLOW_LABEL,
    PROMETHEUS_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    exponential_buckets,
    format_metric_value,
    gc_collection_counts,
    get_metrics_registry,
    histogram_quantile,
    merge_snapshots,
    metrics_env_enabled,
    metrics_registry_from_env,
    parse_prometheus,
    render_prometheus,
    render_snapshot,
    require_snapshot,
    rss_bytes,
    set_metrics_registry,
    snapshot_histogram_rows,
)
from repro.telemetry.perfetto import (
    complete_event,
    perfetto_json,
    process_name_event,
    span_trace_events,
    thread_name_event,
    write_perfetto,
)
from repro.telemetry.recorder import (
    ENABLE_ENV,
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    SpanRecord,
    TRACE_ENV,
    count,
    current_trace_id,
    gauge,
    get_recorder,
    new_trace_id,
    recorder_from_env,
    set_recorder,
    span,
    telemetry_env_enabled,
    trace_context,
)
from repro.telemetry.sinks import JsonlSink, read_jsonl

__all__ = [
    "Counter",
    "DEFAULT_CARDINALITY_CAP",
    "DEFAULT_LATENCY_BUCKETS_S",
    "ENABLE_ENV",
    "Gauge",
    "Histogram",
    "InMemoryRecorder",
    "JsonlSink",
    "METRICS_ENV",
    "METRICS_SCHEMA_VERSION",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_RECORDER",
    "NullMetricsRegistry",
    "NullRecorder",
    "OVERFLOW_LABEL",
    "PROMETHEUS_CONTENT_TYPE",
    "Recorder",
    "SpanRecord",
    "TRACE_ENV",
    "complete_event",
    "count",
    "current_trace_id",
    "exponential_buckets",
    "format_metric_value",
    "gauge",
    "gc_collection_counts",
    "get_metrics_registry",
    "get_recorder",
    "histogram_quantile",
    "merge_snapshots",
    "metrics_env_enabled",
    "metrics_registry_from_env",
    "new_trace_id",
    "parse_prometheus",
    "percentile",
    "perfetto_json",
    "process_name_event",
    "read_jsonl",
    "recorder_from_env",
    "render_prometheus",
    "render_snapshot",
    "require_snapshot",
    "rss_bytes",
    "set_metrics_registry",
    "set_recorder",
    "snapshot_histogram_rows",
    "span",
    "span_trace_events",
    "summarize_spans",
    "telemetry_env_enabled",
    "thread_name_event",
    "trace_context",
    "write_perfetto",
]
