"""The in-memory aggregator: spans and counters a process can report on.

:class:`InMemoryRecorder` is the enabled recorder everything else
composes with: it keeps every completed :class:`~repro.telemetry.SpanRecord`,
accumulates counters and gauges, forwards each event to any attached
sinks (JSONL trace files), and renders the per-span-name statistics —
count / total / p50 / p95 — that ``python -m repro run --telemetry``
prints and campaign workers embed in their shard rows.

The aggregation here is process-local but thread-safe: the recorder
hooks serialize on one lock (covering both the in-memory aggregates
and the sink fan-out), so the serve thread pool can record spans and
counters concurrently without torn lines or lost increments.
Cross-process aggregation is the campaign store's job
(:mod:`repro.campaigns.report`).
"""

from __future__ import annotations

import json
import math
import threading
from pathlib import Path
from typing import Iterable, Sequence

from repro.telemetry.recorder import Recorder, SpanRecord


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of ``values`` (``q`` in [0, 1]).

    The same estimator as ``numpy.percentile``'s default, implemented
    on plain floats so the telemetry layer stays dependency-light.

    Raises:
        ValueError: on an empty sequence or ``q`` outside [0, 1].
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(values)
    position = q * (len(ordered) - 1)
    below = math.floor(position)
    above = min(below + 1, len(ordered) - 1)
    weight = position - below
    return ordered[below] * (1.0 - weight) + ordered[above] * weight


def summarize_spans(spans: Iterable[SpanRecord]) -> dict[str, dict]:
    """Per-span-name statistics: count, total and p50/p95 durations.

    Returns:
        ``{name: {"count", "total_s", "p50_s", "p95_s"}}``, names
        sorted by descending ``total_s`` (slowest first).
    """
    durations: dict[str, list[float]] = {}
    for record in spans:
        durations.setdefault(record.name, []).append(record.duration_s)
    stats = {
        name: {
            "count": len(values),
            "total_s": sum(values),
            "p50_s": percentile(values, 0.50),
            "p95_s": percentile(values, 0.95),
        }
        for name, values in durations.items()
    }
    return dict(sorted(stats.items(),
                       key=lambda item: -item[1]["total_s"]))


class InMemoryRecorder(Recorder):
    """The enabled recorder: aggregate in memory, forward to sinks.

    Args:
        sinks: objects with ``emit(event: dict)`` / ``close()`` (e.g.
            :class:`~repro.telemetry.JsonlSink`); every span, counter
            and gauge event is forwarded as it is recorded.
    """

    enabled = True

    def __init__(self, sinks: Iterable = ()) -> None:
        """Start with empty aggregates and the given sinks."""
        super().__init__()
        self.spans: list[SpanRecord] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self._sinks = list(sinks)
        # One lock covers aggregate mutation AND sink emission so a
        # span's append and its JSONL line stay in the same order
        # across threads (the serve pool records concurrently).
        self._hook_lock = threading.Lock()

    # -- recorder hooks --------------------------------------------------

    def _on_span(self, record: SpanRecord) -> None:
        """Keep the span and forward its trace event to every sink."""
        with self._hook_lock:
            self.spans.append(record)
            if self._sinks:
                self._emit(record.to_event())

    def _on_count(self, name: str, value: float) -> None:
        """Accumulate the counter and forward the increment event."""
        with self._hook_lock:
            self.counters[name] = self.counters.get(name, 0.0) + value
            if self._sinks:
                self._emit({"type": "counter", "name": name,
                            "value": value})

    def _on_gauge(self, name: str, value: float) -> None:
        """Latest-wins gauge update, forwarded to every sink."""
        with self._hook_lock:
            self.gauges[name] = value
            if self._sinks:
                self._emit({"type": "gauge", "name": name,
                            "value": value})

    def _emit(self, event: dict) -> None:
        for sink in self._sinks:
            sink.emit(event)

    def close(self) -> None:
        """Close every attached sink (flushes JSONL trace files)."""
        with self._hook_lock:
            for sink in self._sinks:
                sink.close()

    # -- reporting ---------------------------------------------------------

    def summary(self) -> dict[str, dict]:
        """Count / total / p50 / p95 seconds per span name
        (:func:`summarize_spans` over everything recorded so far)."""
        return summarize_spans(self.spans)

    def render_summary(self) -> str:
        """The summary plus counters/gauges as an aligned text block."""
        lines = ["telemetry summary"]
        stats = self.summary()
        if stats:
            lines.append(f"  {'span':<24} {'count':>7} {'total':>10} "
                         f"{'p50':>10} {'p95':>10}")
            for name, row in stats.items():
                lines.append(
                    f"  {name:<24} {row['count']:>7d} "
                    f"{row['total_s'] * 1e3:>8.1f}ms "
                    f"{row['p50_s'] * 1e3:>8.2f}ms "
                    f"{row['p95_s'] * 1e3:>8.2f}ms")
        else:
            lines.append("  (no spans recorded)")
        for label, table in (("counter", self.counters),
                             ("gauge", self.gauges)):
            for name in sorted(table):
                lines.append(f"  {label} {name} = {table[name]:g}")
        return "\n".join(lines)

    def write_jsonl(self, path: "str | Path") -> Path:
        """Dump everything recorded so far as a JSONL trace file.

        One JSON object per line: every span (in completion order),
        then final counter totals and gauge values.  Equivalent to the
        stream a live :class:`~repro.telemetry.JsonlSink` would have
        captured, for recorders that aggregated first.
        """
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as handle:
            for record in self.spans:
                handle.write(json.dumps(record.to_event(),
                                        sort_keys=True) + "\n")
            for name in sorted(self.counters):
                handle.write(json.dumps(
                    {"type": "counter", "name": name,
                     "value": self.counters[name]}, sort_keys=True) + "\n")
            for name in sorted(self.gauges):
                handle.write(json.dumps(
                    {"type": "gauge", "name": name,
                     "value": self.gauges[name]}, sort_keys=True) + "\n")
        return target

    def to_perfetto(self) -> dict:
        """The recorded spans as a Chrome/Perfetto ``trace_event`` dict
        (:func:`repro.telemetry.perfetto.perfetto_json`)."""
        from repro.telemetry.perfetto import perfetto_json

        return perfetto_json(self.spans)
