"""The instrumentation primitives: spans, counters, and the active recorder.

Everything the rest of the codebase touches to emit telemetry lives
here, built around one invariant: **disabled telemetry is a strict
no-op**.  The default process-local recorder is :data:`NULL_RECORDER`,
whose ``span()`` hands back one shared, allocation-free context manager
and whose ``count()``/``gauge()`` bodies are empty — and the hot paths
(:func:`repro.engine.core.executor.execute`) additionally branch on
:attr:`Recorder.enabled` so a disabled run never constructs a single
telemetry object per chunk (gated by the overhead benchmark in
``benchmarks/bench_core.py`` and the counting-stub test in
``tests/telemetry/test_recorder.py``).

Telemetry turns on either programmatically (:func:`set_recorder` with
an :class:`~repro.telemetry.InMemoryRecorder`) or from the environment:
``REPRO_TELEMETRY=1`` makes :func:`get_recorder` build an in-memory
recorder on first use, and ``REPRO_TELEMETRY_TRACE=/path.jsonl``
additionally streams every event to a JSONL trace sink
(:mod:`repro.telemetry.sinks`).

Span timestamps come from ``time.perf_counter`` — monotonic and
comparable within one process, which is all a flame graph needs.  The
wall-clock side of telemetry (campaign shard lifecycle) lives in the
campaign store and is deliberately excluded from deterministic exports,
exactly like ``elapsed_s``.

**Trace correlation.**  :func:`new_trace_id` mints an opaque id and
:func:`trace_context` scopes it over a stretch of work via
``contextvars`` (the serve front door opens one per request, the
campaign runner one per shard).  While a trace id is active, every
completed span carries it in ``attrs["trace_id"]`` — so it lands in the
JSONL trace and the Perfetto timeline — and every histogram observation
in :mod:`repro.telemetry.metrics` stamps it as an exemplar, letting a
slow bucket be chased back to one request's spans.

**Thread-safety.**  The nesting-depth counter is thread-local (each
serve worker thread nests independently), and the shipped recorders
(:class:`~repro.telemetry.InMemoryRecorder`, with
:class:`~repro.telemetry.JsonlSink` underneath) serialize their hooks
with locks, so concurrent spans from a thread pool interleave without
tearing lines or losing counts.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

#: Environment switch: a truthy value ("1", "true", "yes", "on")
#: makes :func:`get_recorder` start an in-memory recorder.
ENABLE_ENV = "REPRO_TELEMETRY"

#: Environment knob: a JSONL file path; when telemetry is enabled the
#: env-built recorder streams every event there as it is recorded.
TRACE_ENV = "REPRO_TELEMETRY_TRACE"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def telemetry_env_enabled(environ: Mapping[str, str] | None = None) -> bool:
    """Whether the environment asks for telemetry (``REPRO_TELEMETRY``).

    Args:
        environ: mapping to consult (default ``os.environ``).

    Returns:
        True for the truthy spellings ``1``/``true``/``yes``/``on``
        (case-insensitive); False for anything else, including unset.
    """
    if environ is None:
        environ = os.environ
    return environ.get(ENABLE_ENV, "").strip().lower() in _TRUTHY


_TRACE_ID: contextvars.ContextVar["str | None"] = contextvars.ContextVar(
    "repro_trace_id", default=None)


def new_trace_id() -> str:
    """Mint an opaque 16-hex-digit trace id.

    Random (uuid4-derived), not sequential: ids minted concurrently by
    serve threads and campaign worker processes must not collide.
    """
    return uuid.uuid4().hex[:16]


def current_trace_id() -> "str | None":
    """The trace id active in this context, or None outside any trace."""
    return _TRACE_ID.get()


@contextmanager
def trace_context(trace_id: "str | None" = None) -> Iterator[str]:
    """Scope ``trace_id`` (minted if None) over the ``with`` body.

    Every span completed inside the body carries the id in
    ``attrs["trace_id"]``; histogram observations stamp it as their
    exemplar.  Context-local (``contextvars``), so concurrent asyncio
    tasks and threads each see only their own id.  Note that
    ``loop.run_in_executor`` does **not** propagate context — wrap
    executor calls with ``contextvars.copy_context().run`` to carry the
    id across (the serve front door does exactly this).

    Yields:
        The active trace id.
    """
    if trace_id is None:
        trace_id = new_trace_id()
    token = _TRACE_ID.set(trace_id)
    try:
        yield trace_id
    finally:
        _TRACE_ID.reset(token)


@dataclass(frozen=True)
class SpanRecord:
    """One completed span: a named, timed stretch of work.

    Attributes:
        name: span name (dotted, e.g. ``core.run_chunk``).
        start_s: ``time.perf_counter()`` at entry — monotonic,
            process-local seconds; use deltas, never wall-clock.
        duration_s: elapsed seconds between entry and exit.
        depth: nesting depth at entry (0 for a root span).
        error: exception class name if the span body raised, else None
            (the exception itself always propagates).
        attrs: caller-supplied key/value annotations.
    """

    name: str
    start_s: float
    duration_s: float
    depth: int
    error: str | None = None
    attrs: dict = field(default_factory=dict)

    def to_event(self) -> dict:
        """The span as a flat JSONL trace event dict."""
        event = {"type": "span", "name": self.name, "ts_s": self.start_s,
                 "dur_s": self.duration_s, "depth": self.depth}
        if self.error is not None:
            event["error"] = self.error
        if self.attrs:
            event["attrs"] = self.attrs
        return event


class _Span:
    """Context manager timing one span on an enabled recorder.

    Exception-safe by construction: ``__exit__`` records the span with
    the exception's class name and returns False, so the error both
    shows up in the trace and propagates to the caller unchanged.
    """

    __slots__ = ("_recorder", "_name", "_attrs", "_start", "_depth")

    def __init__(self, recorder: "Recorder", name: str, attrs: dict):
        self._recorder = recorder
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        """Start the clock and push one nesting level."""
        self._depth = self._recorder._depth
        self._recorder._depth = self._depth + 1
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Record the span (error-annotated if raising); never swallow.

        A :func:`current_trace_id` active at exit is stamped into the
        span's attrs as ``trace_id`` (without clobbering an explicit
        caller-supplied one), correlating the span — and the JSONL
        line it becomes — with its request or shard.
        """
        duration = time.perf_counter() - self._start
        self._recorder._depth = self._depth
        trace_id = current_trace_id()
        if trace_id is not None and "trace_id" not in self._attrs:
            self._attrs["trace_id"] = trace_id
        self._recorder._on_span(SpanRecord(
            name=self._name, start_s=self._start, duration_s=duration,
            depth=self._depth,
            error=exc_type.__name__ if exc_type is not None else None,
            attrs=self._attrs))
        return False


class _NullSpan:
    """The shared no-op span: enter/exit do nothing, allocate nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        """No-op entry."""
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """No-op exit; exceptions propagate."""
        return False


_NULL_SPAN = _NullSpan()


class Recorder:
    """Base recorder: the three instrumentation verbs.

    Subclasses override the ``_on_*`` hooks to aggregate or stream the
    events; callers only ever use :meth:`span`, :meth:`count` and
    :meth:`gauge` (or the module-level conveniences that dispatch to
    the active recorder).

    Attributes:
        enabled: hot paths may branch on this once and skip
            instrumentation entirely when False.
    """

    enabled = True

    def __init__(self) -> None:
        """Initialize the (thread-local) nesting-depth counter."""
        self._local = threading.local()

    @property
    def _depth(self) -> int:
        # Depth is per *thread*: each serve worker nests its own spans
        # independently, so a shared counter would let one thread's
        # nesting leak into another's records.
        return getattr(self._local, "depth", 0)

    @_depth.setter
    def _depth(self, value: int) -> None:
        self._local.depth = value

    def span(self, name: str, **attrs: Any) -> "_Span | _NullSpan":
        """A context manager timing ``name`` around its ``with`` body."""
        return _Span(self, name, attrs)

    def count(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the monotonic counter ``name``."""
        self._on_count(name, float(value))

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest ``value``."""
        self._on_gauge(name, float(value))

    def record_span(self, record: SpanRecord) -> None:
        """Feed an externally produced, already-completed span in.

        The replay path: a campaign worker aggregates one shard's spans
        in a private recorder, then replays them into the process-level
        recorder (and through it, any attached trace sinks) once the
        shard finishes.
        """
        self._on_span(record)

    def close(self) -> None:
        """Flush/close any attached sinks (default: nothing to do)."""

    # -- subclass hooks ------------------------------------------------

    def _on_span(self, record: SpanRecord) -> None:
        """Receive one completed span (default: drop it)."""

    def _on_count(self, name: str, value: float) -> None:
        """Receive one counter increment (default: drop it)."""

    def _on_gauge(self, name: str, value: float) -> None:
        """Receive one gauge update (default: drop it)."""


class NullRecorder(Recorder):
    """The disabled recorder: every verb is a strict no-op.

    ``span()`` returns one shared, slotted context manager, so even
    code that does not branch on :attr:`enabled` pays no allocation
    when telemetry is off.
    """

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        """The shared no-op span (no allocation, no timing)."""
        return _NULL_SPAN

    def count(self, name: str, value: float = 1.0) -> None:
        """No-op."""

    def gauge(self, name: str, value: float) -> None:
        """No-op."""


#: The process-wide disabled recorder (the default active recorder).
NULL_RECORDER = NullRecorder()

_ACTIVE: Recorder | None = None


def recorder_from_env(environ: Mapping[str, str] | None = None) -> Recorder:
    """Build the recorder the environment asks for.

    ``REPRO_TELEMETRY`` truthy yields an
    :class:`~repro.telemetry.InMemoryRecorder` (with a JSONL sink
    attached when ``REPRO_TELEMETRY_TRACE`` names a path); anything
    else yields :data:`NULL_RECORDER`.
    """
    if environ is None:
        environ = os.environ
    if not telemetry_env_enabled(environ):
        return NULL_RECORDER
    from repro.telemetry.aggregate import InMemoryRecorder
    from repro.telemetry.sinks import JsonlSink

    trace_path = environ.get(TRACE_ENV, "").strip()
    sinks = (JsonlSink(trace_path),) if trace_path else ()
    return InMemoryRecorder(sinks=sinks)


def get_recorder() -> Recorder:
    """The process-local active recorder.

    Lazily initialized from the environment on first call
    (:func:`recorder_from_env`); :data:`NULL_RECORDER` unless telemetry
    was enabled.  Hot paths call this once per operation and branch on
    :attr:`Recorder.enabled`.
    """
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = recorder_from_env()
    return _ACTIVE


def set_recorder(recorder: Recorder | None) -> Recorder | None:
    """Install ``recorder`` as the process-local active recorder.

    Args:
        recorder: the new active recorder, or None to fall back to
            lazy re-initialization from the environment on the next
            :func:`get_recorder` call.

    Returns:
        The previously active recorder (None if never initialized) —
        hand it back to ``set_recorder`` to restore the prior state.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder
    return previous


def span(name: str, **attrs: Any):
    """Module-level convenience: a span on the active recorder."""
    return get_recorder().span(name, **attrs)


def count(name: str, value: float = 1.0) -> None:
    """Module-level convenience: a counter add on the active recorder."""
    get_recorder().count(name, value)


def gauge(name: str, value: float) -> None:
    """Module-level convenience: a gauge set on the active recorder."""
    get_recorder().gauge(name, value)
