"""Trace sinks: stream telemetry events to disk as they happen.

A sink is anything with ``emit(event: dict)`` and ``close()``.  The one
shipped here, :class:`JsonlSink`, appends one JSON object per line —
the trace format ``python -m repro run --trace-out`` writes, CI uploads
as a workflow artifact, and :func:`read_jsonl` loads back for tooling
and tests.  Sinks exist for *live* capture (a crash loses at most the
unflushed tail); post-hoc dumps of an aggregated run go through
:meth:`repro.telemetry.InMemoryRecorder.write_jsonl` instead.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path


class JsonlSink:
    """Append-only JSONL trace writer (one event object per line).

    The file opens lazily on the first event, so constructing a sink
    (e.g. from ``REPRO_TELEMETRY_TRACE``) costs nothing if the run
    never records.  Thread-safe: a lock serializes open/emit/close, so
    events from a thread pool land as whole lines in arrival order.
    Usable as a context manager; :meth:`close` is idempotent.
    """

    def __init__(self, path: "str | Path") -> None:
        """Remember the target path; the file opens on first emit."""
        self.path = Path(path)
        self._handle = None
        self._lock = threading.Lock()

    def emit(self, event: dict) -> None:
        """Write one event as a JSON line (keys sorted, flushed)."""
        with self._lock:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("w", encoding="utf-8")
            self._handle.write(json.dumps(event, sort_keys=True) + "\n")
            self._handle.flush()

    def close(self) -> None:
        """Close the file if it was ever opened (safe to call twice)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "JsonlSink":
        """Context-manager entry: the sink itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the file."""
        self.close()


def read_jsonl(path: "str | Path") -> list[dict]:
    """Load a JSONL trace file back into a list of event dicts.

    Blank lines are skipped; malformed lines raise ``ValueError``
    naming the line number, so a truncated trace fails loudly.
    """
    events = []
    for number, line in enumerate(
            Path(path).read_text(encoding="utf-8").splitlines(), start=1):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as error:
            raise ValueError(
                f"{path}:{number}: malformed trace line: {error}") from None
    return events
