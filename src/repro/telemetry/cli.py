"""The telemetry command line: ``python -m repro telemetry ...``.

One subcommand today::

    python -m repro telemetry summary fleet.sqlite     # campaign store
    python -m repro telemetry summary snapshot.json    # saved snapshot
    python -m repro telemetry summary fleet.sqlite --json
    python -m repro telemetry summary fleet.sqlite --prometheus

``summary`` renders a metrics snapshot — counters, gauges, histogram
percentiles and exemplars — from either source.  The source type is
auto-detected from the file's content: a SQLite campaign store (its
``metrics`` telemetry events are merged into one fleet-wide snapshot
via :func:`~repro.telemetry.merge_snapshots`) or a JSON file holding
one :meth:`~repro.telemetry.MetricsRegistry.snapshot` payload.
``--json`` emits the merged snapshot itself; ``--prometheus`` emits
the text exposition (format 0.0.4) so a saved snapshot can be pushed
through any Prometheus tooling offline.  The subcommand is registered
onto the main ``python -m repro`` parser by
:func:`add_telemetry_commands`.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

#: File problems the CLI reports as exit code 2 instead of a
#: traceback: missing files, malformed snapshots, schema mismatches.
_USAGE_ERRORS = (FileNotFoundError, FileExistsError, ValueError)

#: The magic header every SQLite 3 database file starts with — the
#: sniff that routes ``summary`` to the campaign-store reader.
_SQLITE_MAGIC = b"SQLite format 3"


def load_snapshot(source: Path) -> dict:
    """Read one metrics snapshot from a store or a JSON file.

    Args:
        source: a campaign SQLite store (merged across shards) or a
            JSON file holding one registry snapshot.

    Returns:
        A schema-checked snapshot dict.

    Raises:
        FileNotFoundError: the source does not exist.
        ValueError: the file is neither a campaign store with metrics
            events nor a valid snapshot payload.
    """
    from repro.telemetry.metrics import require_snapshot

    if not source.is_file():
        raise FileNotFoundError(f"no such file: {source}")
    with source.open("rb") as handle:
        header = handle.read(len(_SQLITE_MAGIC))
    if header == _SQLITE_MAGIC:
        from repro.campaigns.report import merged_metrics
        from repro.campaigns.store import ArtifactStore

        with ArtifactStore.open(source, readonly=True) as store:
            merged = merged_metrics(store.telemetry_events())
        if merged is None:
            raise ValueError(
                f"{source} holds no metrics snapshots — run the "
                "campaign with REPRO_METRICS=1 to record them")
        return merged
    try:
        payload = json.loads(source.read_text())
    except json.JSONDecodeError as error:
        raise ValueError(f"{source} is neither a SQLite campaign "
                         f"store nor JSON: {error}") from None
    return dict(require_snapshot(payload))


def _cmd_summary(args: argparse.Namespace) -> int:
    """Render one snapshot as a table, JSON, or text exposition."""
    from repro.telemetry.metrics import render_prometheus, render_snapshot

    try:
        snapshot = load_snapshot(args.source)
    except _USAGE_ERRORS as error:
        print(error)
        return 2
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    elif args.prometheus:
        print(render_prometheus(snapshot), end="")
    else:
        print(render_snapshot(snapshot))
    return 0


def add_telemetry_commands(subparsers) -> None:
    """Register the ``telemetry`` subcommand tree on the main CLI."""
    telemetry = subparsers.add_parser(
        "telemetry",
        help="inspect recorded metrics snapshots and campaign stores")
    commands = telemetry.add_subparsers(dest="telemetry_command",
                                        required=True)

    summary_p = commands.add_parser(
        "summary", help="render a metrics snapshot: counters, gauges, "
                        "histogram percentiles, exemplars")
    summary_p.add_argument(
        "source", type=Path,
        help="a campaign SQLite store (shards merged fleet-wide) or "
             "a JSON snapshot file")
    group = summary_p.add_mutually_exclusive_group()
    group.add_argument("--json", action="store_true",
                       help="emit the merged snapshot as JSON")
    group.add_argument("--prometheus", action="store_true",
                       help="emit the text exposition (format 0.0.4)")
    summary_p.set_defaults(func=_cmd_summary)
