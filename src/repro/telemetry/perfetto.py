"""Chrome/Perfetto ``trace_event`` export: flame graphs from spans.

Serializes recorded spans into the JSON object format both
``chrome://tracing`` and the Perfetto UI (https://ui.perfetto.dev) load
directly: a ``traceEvents`` list of complete (``"ph": "X"``) events
with microsecond ``ts``/``dur``, plus ``"M"`` metadata events naming
the process and per-worker tracks.  One schema serves both telemetry
sources:

* in-process engine spans (``python -m repro run --perfetto-out``) via
  :func:`perfetto_json`;
* campaign shard lifecycles from the artifact store's telemetry table
  (``python -m repro campaign report --perfetto-out``), which builds
  its events with :func:`complete_event` / :func:`thread_name_event`,
  one track per worker process.

Timestamps are normalized so the earliest event sits at ``ts = 0`` —
traces are relative timelines, never wall-clock artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.telemetry.recorder import SpanRecord


def complete_event(name: str, ts_s: float, dur_s: float, pid: int = 1,
                   tid: int = 1, cat: str = "repro",
                   args: dict | None = None) -> dict:
    """One ``"ph": "X"`` (complete) trace event.

    Args:
        name: event label shown on the track.
        ts_s: start time in seconds (converted to integer-friendly µs).
        dur_s: duration in seconds.
        pid / tid: process/track ids (Perfetto groups by these).
        cat: event category (filterable in the UI).
        args: optional key/value payload shown in the detail pane.
    """
    event = {"name": name, "cat": cat, "ph": "X",
             "ts": round(ts_s * 1e6, 3), "dur": round(dur_s * 1e6, 3),
             "pid": pid, "tid": tid}
    if args:
        event["args"] = args
    return event


def thread_name_event(pid: int, tid: int, name: str) -> dict:
    """A ``"ph": "M"`` metadata event naming track ``tid``."""
    return {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": name}}


def process_name_event(pid: int, name: str) -> dict:
    """A ``"ph": "M"`` metadata event naming process ``pid``."""
    return {"name": "process_name", "ph": "M", "pid": pid,
            "args": {"name": name}}


def span_trace_events(spans: Iterable[SpanRecord], pid: int = 1,
                      tid: int = 1) -> list[dict]:
    """Spans as complete events, timestamps normalized to start at 0.

    Error spans carry ``args.error`` so failed stretches are visible in
    the UI; span attrs pass through as event args.
    """
    records = list(spans)
    if not records:
        return []
    t0 = min(record.start_s for record in records)
    events = []
    for record in records:
        args: dict = dict(record.attrs)
        if record.error is not None:
            args["error"] = record.error
        events.append(complete_event(
            record.name, record.start_s - t0, record.duration_s,
            pid=pid, tid=tid, args=args or None))
    return events


def perfetto_json(spans: Iterable[SpanRecord],
                  process_name: str = "repro",
                  counters: dict | None = None) -> dict:
    """The full Perfetto-loadable trace object for one process's spans.

    Args:
        spans: completed :class:`~repro.telemetry.SpanRecord` entries.
        process_name: label for the single process track.
        counters: optional final counter totals, attached as the
            ``otherData`` payload (visible in the UI's trace info).

    Returns:
        ``{"traceEvents": [...], "displayTimeUnit": "ms", ...}`` —
        ``json.dumps`` of this is a file the Perfetto UI opens as-is.
    """
    events = [process_name_event(1, process_name),
              thread_name_event(1, 1, "engine")]
    events += span_trace_events(spans, pid=1, tid=1)
    trace = {"traceEvents": events, "displayTimeUnit": "ms"}
    if counters:
        trace["otherData"] = {name: str(value)
                              for name, value in sorted(counters.items())}
    return trace


def write_perfetto(path: "str | Path", spans: Iterable[SpanRecord],
                   process_name: str = "repro",
                   counters: dict | None = None) -> Path:
    """Serialize :func:`perfetto_json` to ``path`` and return it."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(
        perfetto_json(spans, process_name=process_name,
                      counters=counters),
        indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return target
