"""Typed metrics: counters, gauges, histograms, and Prometheus export.

The SLO layer of the telemetry subsystem.  Where spans
(:mod:`repro.telemetry.recorder`) answer *where did this one run spend
its time*, the instruments here answer *how is the fleet doing*:
per-endpoint latency distributions, queue depths, error rates —
aggregable across processes and scrapeable by Prometheus.

Three typed instruments behind one :class:`MetricsRegistry`:

* :class:`Counter` — monotonically increasing totals (``inc``);
* :class:`Gauge` — last-written level (``set``/``inc``/``dec``);
* :class:`Histogram` — observation distributions over **fixed
  exponential buckets** (``observe``), carrying an exemplar — the
  last observation's value plus the :func:`~repro.telemetry.recorder.current_trace_id`
  active when it was recorded — so a slow bucket links straight back
  to one request's span tree in the JSONL/Perfetto trace.

Every instrument is a *family*: a name plus a fixed tuple of label
names, materializing one series per distinct label-value set.  Label
cardinality is capped per family (:data:`DEFAULT_CARDINALITY_CAP`);
series beyond the cap collapse into a single ``__overflow__`` series
instead of growing without bound — a mis-labelled hot path cannot OOM
the process or melt the scrape.

The registry follows the :data:`~repro.telemetry.NULL_RECORDER`
discipline exactly: the process-wide default is :data:`NULL_METRICS`,
whose instruments are shared no-op objects, and hot paths branch once
on :attr:`MetricsRegistry.enabled` (the enabled path itself is gated
<= 3 % on the core executor in ``benchmarks/bench_core.py``).  Turn
metrics on with ``REPRO_METRICS=1``, programmatically via
:func:`set_metrics_registry`, or implicitly by running the serve front
door (which always meters itself).

Cross-process aggregation goes through **snapshots**: a registry
serializes to a schema-versioned dict (:meth:`MetricsRegistry.snapshot`),
snapshots merge exactly (:func:`merge_snapshots` — counters and
histogram buckets add, gauges keep the max), and the campaign runner
persists one snapshot per shard in the artifact store so
``python -m repro campaign report`` and ``python -m repro telemetry
summary`` can render fleet-wide latency histograms.

Prometheus text exposition (format version 0.0.4, the content type the
serve front door answers on ``GET /metrics?format=prometheus``) is
rendered by :func:`render_prometheus` and round-trip-checked by
:func:`parse_prometheus`, a deliberately strict line-format validator
used by the golden-format tests and the CI scrape drill.
"""

from __future__ import annotations

import gc
import math
import os
import re
import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping, Sequence

from repro.telemetry.recorder import current_trace_id

#: Environment switch: a truthy value ("1", "true", "yes", "on") makes
#: :func:`get_metrics_registry` start a real registry on first use.
METRICS_ENV = "REPRO_METRICS"

#: Version stamp of the snapshot dict layout; :func:`merge_snapshots`
#: and the store readers refuse snapshots from a different version.
METRICS_SCHEMA_VERSION = 1

#: Default cap on distinct label sets per instrument family; series
#: beyond it collapse into one :data:`OVERFLOW_LABEL` series.
DEFAULT_CARDINALITY_CAP = 64

#: The label value every capped-out series collapses into.
OVERFLOW_LABEL = "__overflow__"

#: The content type of Prometheus text exposition format 0.0.4 — what
#: ``GET /metrics?format=prometheus`` answers with.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_TRUTHY = frozenset({"1", "true", "yes", "on"})

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def metrics_env_enabled(environ: Mapping[str, str] | None = None) -> bool:
    """Whether the environment asks for metrics (``REPRO_METRICS``).

    Args:
        environ: mapping to consult (default ``os.environ``).

    Returns:
        True for the truthy spellings ``1``/``true``/``yes``/``on``
        (case-insensitive); False for anything else, including unset.
    """
    if environ is None:
        environ = os.environ
    return environ.get(METRICS_ENV, "").strip().lower() in _TRUTHY


def exponential_buckets(start: float, factor: float,
                        count: int) -> tuple[float, ...]:
    """``count`` histogram upper bounds growing geometrically.

    Args:
        start: the first (smallest) finite upper bound, > 0.
        factor: the ratio between consecutive bounds, > 1.
        count: number of finite bounds, >= 1 (the implicit ``+Inf``
            overflow bucket is always appended by the histogram).

    Returns:
        Strictly increasing finite upper bounds
        ``(start, start*factor, ...)``.

    Raises:
        ValueError: on non-positive ``start``, ``factor`` <= 1, or
            ``count`` < 1.
    """
    if start <= 0.0:
        raise ValueError(f"start must be > 0, got {start}")
    if factor <= 1.0:
        raise ValueError(f"factor must be > 1, got {factor}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return tuple(start * factor ** i for i in range(count))


#: The default latency buckets: 100 µs doubling up to ~3.3 s, plus the
#: implicit ``+Inf`` overflow — wide enough for a cache-hit health
#: check and a cohort-heavy estimation job on one scale.
DEFAULT_LATENCY_BUCKETS_S = exponential_buckets(1e-4, 2.0, 16)


def format_metric_value(value: float) -> str:
    """One canonical string per float — the exposition value format.

    Integral values render without a fractional part (``3`` not
    ``3.0``), everything else through ``repr`` so no precision is
    lost; infinities use the Prometheus ``+Inf``/``-Inf`` spelling.
    """
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _render_labels(labels: Mapping[str, str],
                   extra: "tuple[str, str] | None" = None) -> str:
    """The ``{name="value",...}`` block (empty string when unlabelled)."""
    pairs = [(name, labels[name]) for name in sorted(labels)]
    if extra is not None:
        pairs.append(extra)
        pairs.sort()
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label_value(str(value))}"'
                     for name, value in pairs)
    return "{" + inner + "}"


class _NullSeries:
    """The shared no-op series: every verb of every type, doing nothing.

    One slotted object serves as the disabled counter, gauge *and*
    histogram series (and family — ``labels()`` returns itself), so
    code holding instruments from :data:`NULL_METRICS` pays neither
    allocation nor branching.
    """

    __slots__ = ()

    def labels(self, **values: str) -> "_NullSeries":
        """No-op family access: the shared series itself."""
        return self

    def inc(self, value: float = 1.0) -> None:
        """No-op."""

    def dec(self, value: float = 1.0) -> None:
        """No-op."""

    def set(self, value: float) -> None:
        """No-op."""

    def observe(self, value: float) -> None:
        """No-op."""


_NULL_SERIES = _NullSeries()


class _CounterSeries:
    """One monotonic counter series (a label-value set of a family)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0.0

    @property
    def value(self) -> float:
        """The accumulated total."""
        return self._value

    def inc(self, value: float = 1.0) -> None:
        """Add ``value`` (must be >= 0: counters only go up)."""
        if value < 0.0:
            raise ValueError(
                f"counters are monotonic; cannot inc by {value}")
        with self._lock:
            self._value += value


class _GaugeSeries:
    """One gauge series: a level that can move both ways."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0.0

    @property
    def value(self) -> float:
        """The last written level."""
        return self._value

    def set(self, value: float) -> None:
        """Overwrite the level."""
        with self._lock:
            self._value = float(value)

    def inc(self, value: float = 1.0) -> None:
        """Move the level up by ``value``."""
        with self._lock:
            self._value += value

    def dec(self, value: float = 1.0) -> None:
        """Move the level down by ``value``."""
        with self._lock:
            self._value -= value


class _HistogramSeries:
    """One histogram series: per-bucket counts, sum, count, exemplar."""

    __slots__ = ("_lock", "_bounds", "bucket_counts", "sum", "count",
                 "exemplar")

    def __init__(self, lock: threading.RLock,
                 bounds: "tuple[float, ...]") -> None:
        self._lock = lock
        self._bounds = bounds
        #: Per-bucket (non-cumulative) observation counts; the last
        #: entry is the ``+Inf`` overflow bucket.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        #: The most recent observation recorded while a trace id was
        #: active: ``{"value": v, "trace_id": t}`` (None before one).
        self.exemplar: "dict | None" = None

    def observe(self, value: float) -> None:
        """Record one observation (and its trace-id exemplar, if any)."""
        value = float(value)
        index = bisect_left(self._bounds, value)
        trace_id = current_trace_id()
        with self._lock:
            self.bucket_counts[index] += 1
            self.sum += value
            self.count += 1
            if trace_id is not None:
                self.exemplar = {"value": value, "trace_id": trace_id}

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (``q`` in [0, 1])."""
        return histogram_quantile(self._bounds, self.bucket_counts, q)


class _Family:
    """Shared family machinery: label validation, series, the cap."""

    kind = "untyped"
    _series_type: type

    def __init__(self, name: str, help_text: str,
                 label_names: "tuple[str, ...]",
                 lock: threading.RLock,
                 cardinality_cap: int) -> None:
        self.name = name
        self.help = help_text
        self.label_names = label_names
        self.cardinality_cap = cardinality_cap
        self.overflowed = 0
        self._lock = lock
        self._series: "dict[tuple[str, ...], Any]" = {}

    def _new_series(self):
        return self._series_type(self._lock)

    def labels(self, **values: str):
        """The series for one label-value set (created on first use).

        Label names must match the family's declared names exactly;
        values are coerced to ``str``.  Once the family holds
        :attr:`cardinality_cap` distinct series, any *new* label set
        collapses into the single :data:`OVERFLOW_LABEL` series (and
        :attr:`overflowed` counts the collapses) — bounded memory and
        scrape size by construction.
        """
        if set(values) != set(self.label_names):
            raise ValueError(
                f"{self.name} takes labels {sorted(self.label_names)}, "
                f"got {sorted(values)}")
        key = tuple(str(values[name]) for name in self.label_names)
        with self._lock:
            series = self._series.get(key)
            if series is not None:
                return series
            if len(self._series) >= self.cardinality_cap:
                self.overflowed += 1
                overflow_key = tuple(OVERFLOW_LABEL
                                     for __ in self.label_names)
                series = self._series.get(overflow_key)
                if series is None:
                    series = self._new_series()
                    self._series[overflow_key] = series
                return series
            series = self._new_series()
            self._series[key] = series
            return series

    def items(self) -> "list[tuple[dict[str, str], Any]]":
        """``(labels_dict, series)`` pairs, sorted by label values."""
        with self._lock:
            pairs = sorted(self._series.items())
        return [(dict(zip(self.label_names, key)), series)
                for key, series in pairs]


class Counter(_Family):
    """A monotonically increasing total (requests served, errors seen).

    Unlabelled families may call :meth:`inc` directly; labelled ones
    go through :meth:`~_Family.labels` first.
    """

    kind = "counter"
    _series_type = _CounterSeries

    def inc(self, value: float = 1.0) -> None:
        """Add ``value`` to the unlabelled series."""
        self.labels().inc(value)

    @property
    def value(self) -> float:
        """The unlabelled series' total (0 before any increment)."""
        series = self._series.get(())
        return series.value if series is not None else 0.0


class Gauge(_Family):
    """A level that moves both ways (queue depth, in-flight jobs, RSS)."""

    kind = "gauge"
    _series_type = _GaugeSeries

    def set(self, value: float) -> None:
        """Overwrite the unlabelled series' level."""
        self.labels().set(value)

    def inc(self, value: float = 1.0) -> None:
        """Move the unlabelled series up by ``value``."""
        self.labels().inc(value)

    def dec(self, value: float = 1.0) -> None:
        """Move the unlabelled series down by ``value``."""
        self.labels().dec(value)

    @property
    def value(self) -> float:
        """The unlabelled series' level (0 before any write)."""
        series = self._series.get(())
        return series.value if series is not None else 0.0


class Histogram(_Family):
    """An observation distribution over fixed exponential buckets.

    Args:
        buckets: strictly increasing finite upper bounds (the ``+Inf``
            overflow bucket is implicit).  Defaults to
            :data:`DEFAULT_LATENCY_BUCKETS_S`.

    Each series keeps per-bucket counts, the sum and count of all
    observations, and an **exemplar**: the last observation recorded
    while a :func:`~repro.telemetry.recorder.current_trace_id` was
    active, linking the distribution back to one concrete traced
    request or shard.
    """

    kind = "histogram"
    _series_type = _HistogramSeries

    def __init__(self, name: str, help_text: str,
                 label_names: "tuple[str, ...]",
                 lock: threading.RLock, cardinality_cap: int,
                 buckets: "Sequence[float] | None" = None) -> None:
        super().__init__(name, help_text, label_names, lock,
                         cardinality_cap)
        bounds = tuple(float(b) for b in (
            buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS_S))
        if not bounds:
            raise ValueError(f"{name}: histogram needs >= 1 bucket")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError(
                f"{name}: buckets must be finite (+Inf is implicit)")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"{name}: buckets must be strictly increasing")
        self.buckets = bounds

    def _new_series(self) -> _HistogramSeries:
        return _HistogramSeries(self._lock, self.buckets)

    def observe(self, value: float) -> None:
        """Record one observation on the unlabelled series."""
        self.labels().observe(value)


class MetricsRegistry:
    """The process-wide home of every instrument family.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call registers the family, later calls with a matching signature
    return the same object, and a mismatched re-registration (same
    name, different type, labels or buckets) raises — silent aliasing
    is how dashboards lie.

    Thread-safe throughout (one registry lock shared with every
    series), so serve's thread pool, the asyncio loop and campaign
    shard code can all write concurrently.
    """

    enabled = True

    def __init__(self,
                 cardinality_cap: int = DEFAULT_CARDINALITY_CAP) -> None:
        """An empty registry with the given per-family label cap."""
        if cardinality_cap < 1:
            raise ValueError(
                f"cardinality_cap must be >= 1, got {cardinality_cap}")
        self.cardinality_cap = cardinality_cap
        self._lock = threading.RLock()
        self._families: "dict[str, _Family]" = {}

    def _register(self, kind: type, name: str, help_text: str,
                  labels: Iterable[str], **kwargs):
        if not _NAME_RE.match(name):
            raise ValueError(
                f"invalid metric name {name!r} (want "
                "[a-zA-Z_:][a-zA-Z0-9_:]*)")
        label_names = tuple(labels)
        for label in label_names:
            if not _LABEL_NAME_RE.match(label) \
                    or label.startswith("__"):
                raise ValueError(f"invalid label name {label!r}")
        if len(set(label_names)) != len(label_names):
            raise ValueError(f"duplicate label names {label_names}")
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if type(family) is not kind \
                        or family.label_names != label_names \
                        or kwargs.get("buckets") is not None \
                        and getattr(family, "buckets", None) \
                        != tuple(float(b) for b in kwargs["buckets"]):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}{family.label_names} and cannot "
                        "be re-registered with a different signature")
                return family
            family = kind(name, help_text, label_names, self._lock,
                          self.cardinality_cap, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "",
                labels: Iterable[str] = ()) -> Counter:
        """Get or create the :class:`Counter` family ``name``."""
        return self._register(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "",
              labels: Iterable[str] = ()) -> Gauge:
        """Get or create the :class:`Gauge` family ``name``."""
        return self._register(Gauge, name, help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  labels: Iterable[str] = (),
                  buckets: "Sequence[float] | None" = None) -> Histogram:
        """Get or create the :class:`Histogram` family ``name``."""
        return self._register(Histogram, name, help_text, labels,
                              buckets=buckets)

    def families(self) -> "list[_Family]":
        """Every registered family, sorted by name."""
        with self._lock:
            return [self._families[name]
                    for name in sorted(self._families)]

    # -- snapshots -----------------------------------------------------

    def snapshot(self) -> dict:
        """The registry as a schema-versioned, JSON-clean dict.

        The cross-process wire format: campaign workers persist one
        snapshot per shard into the artifact store, and
        :func:`merge_snapshots` adds any number of them exactly.
        """
        instruments = {}
        for family in self.families():
            entry: "dict[str, Any]" = {
                "type": family.kind,
                "help": family.help,
                "label_names": list(family.label_names),
                "overflowed": family.overflowed,
            }
            if isinstance(family, Histogram):
                entry["buckets"] = list(family.buckets)
                entry["series"] = [
                    {"labels": labels,
                     "bucket_counts": list(series.bucket_counts),
                     "sum": series.sum, "count": series.count,
                     "exemplar": series.exemplar}
                    for labels, series in family.items()]
            else:
                entry["series"] = [
                    {"labels": labels, "value": series.value}
                    for labels, series in family.items()]
            instruments[family.name] = entry
        return {"metrics_schema_version": METRICS_SCHEMA_VERSION,
                "instruments": instruments}

    def merge_snapshot(self, snapshot: Mapping) -> None:
        """Fold one snapshot into this registry's live instruments.

        Counters and histogram buckets add, gauges keep the maximum —
        the same semantics as :func:`merge_snapshots`.  Used by the
        campaign runner to roll per-shard registries up into the
        process registry.
        """
        require_snapshot(snapshot)
        for name, entry in snapshot["instruments"].items():
            kind = entry["type"]
            label_names = tuple(entry["label_names"])
            if kind == "counter":
                family = self.counter(name, entry.get("help", ""),
                                      label_names)
                for row in entry["series"]:
                    family.labels(**row["labels"]).inc(row["value"])
            elif kind == "gauge":
                family = self.gauge(name, entry.get("help", ""),
                                    label_names)
                for row in entry["series"]:
                    series = family.labels(**row["labels"])
                    series.set(max(series.value, row["value"]))
            elif kind == "histogram":
                family = self.histogram(name, entry.get("help", ""),
                                        label_names,
                                        buckets=entry["buckets"])
                for row in entry["series"]:
                    series = family.labels(**row["labels"])
                    with self._lock:
                        for i, n in enumerate(row["bucket_counts"]):
                            series.bucket_counts[i] += int(n)
                        series.sum += row["sum"]
                        series.count += int(row["count"])
                        if row.get("exemplar") is not None:
                            series.exemplar = dict(row["exemplar"])
            else:
                raise ValueError(
                    f"snapshot instrument {name!r} has unknown type "
                    f"{kind!r}")

    # -- exposition ----------------------------------------------------

    def render_prometheus(self) -> str:
        """This registry in Prometheus text exposition format 0.0.4."""
        return render_prometheus(self.snapshot())


class NullMetricsRegistry(MetricsRegistry):
    """The disabled registry: every instrument is one shared no-op.

    ``counter``/``gauge``/``histogram`` validate nothing and return
    the same slotted series object whose methods are empty — code that
    does not branch on :attr:`enabled` still pays no allocation.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, help_text: str = "",
                labels: Iterable[str] = ()) -> Any:
        """The shared no-op instrument."""
        return _NULL_SERIES

    def gauge(self, name: str, help_text: str = "",
              labels: Iterable[str] = ()) -> Any:
        """The shared no-op instrument."""
        return _NULL_SERIES

    def histogram(self, name: str, help_text: str = "",
                  labels: Iterable[str] = (),
                  buckets: "Sequence[float] | None" = None) -> Any:
        """The shared no-op instrument."""
        return _NULL_SERIES


#: The process-wide disabled registry (the default active registry).
NULL_METRICS = NullMetricsRegistry()

_ACTIVE_METRICS: "MetricsRegistry | None" = None


def metrics_registry_from_env(
        environ: Mapping[str, str] | None = None) -> MetricsRegistry:
    """The registry the environment asks for.

    ``REPRO_METRICS`` truthy yields a fresh enabled
    :class:`MetricsRegistry`; anything else yields
    :data:`NULL_METRICS`.
    """
    if metrics_env_enabled(environ):
        return MetricsRegistry()
    return NULL_METRICS


def get_metrics_registry() -> MetricsRegistry:
    """The process-local active registry.

    Lazily initialized from the environment on first call;
    :data:`NULL_METRICS` unless metrics were enabled.  Hot paths call
    this once per operation and branch on
    :attr:`MetricsRegistry.enabled`.
    """
    global _ACTIVE_METRICS
    if _ACTIVE_METRICS is None:
        _ACTIVE_METRICS = metrics_registry_from_env()
    return _ACTIVE_METRICS


def set_metrics_registry(
        registry: "MetricsRegistry | None") -> "MetricsRegistry | None":
    """Install ``registry`` as the process-local active registry.

    Args:
        registry: the new active registry, or None to fall back to
            lazy re-initialization from the environment on the next
            :func:`get_metrics_registry` call.

    Returns:
        The previously active registry (None if never initialized) —
        hand it back to ``set_metrics_registry`` to restore.
    """
    global _ACTIVE_METRICS
    previous = _ACTIVE_METRICS
    _ACTIVE_METRICS = registry
    return previous


# -- snapshot algebra --------------------------------------------------


def require_snapshot(snapshot: Mapping) -> Mapping:
    """Validate a snapshot envelope (returns it for chaining).

    Raises:
        ValueError: missing/mismatched ``metrics_schema_version`` or
            missing ``instruments`` mapping.
    """
    version = snapshot.get("metrics_schema_version")
    if version != METRICS_SCHEMA_VERSION:
        raise ValueError(
            f"snapshot has metrics schema version {version!r} (this "
            f"build reads version {METRICS_SCHEMA_VERSION})")
    if not isinstance(snapshot.get("instruments"), Mapping):
        raise ValueError("snapshot has no 'instruments' mapping")
    return snapshot


def merge_snapshots(snapshots: Iterable[Mapping]) -> dict:
    """Merge any number of registry snapshots into one.

    Counter values, histogram bucket counts/sums/counts and overflow
    tallies add exactly; gauges keep the maximum across sources (the
    peak — summing levels sampled at different instants would invent
    a number no process ever saw); histogram exemplars keep the last
    non-None one.  Families must agree on type, label names and
    buckets across snapshots.

    Returns:
        A snapshot dict of the same schema (empty instruments when
        ``snapshots`` is empty).
    """
    registry = MetricsRegistry(cardinality_cap=1 << 30)
    for snapshot in snapshots:
        registry.merge_snapshot(snapshot)
    return registry.snapshot()


def histogram_quantile(bounds: Sequence[float],
                       bucket_counts: Sequence[int],
                       q: float) -> float:
    """Quantile estimate from per-bucket counts (``q`` in [0, 1]).

    Linear interpolation inside the owning bucket, the standard
    Prometheus ``histogram_quantile`` estimator; observations in the
    ``+Inf`` overflow bucket clamp to the largest finite bound.

    Args:
        bounds: finite upper bounds, strictly increasing.
        bucket_counts: non-cumulative counts, one per bound plus the
            overflow bucket (``len(bounds) + 1``).
        q: quantile in [0, 1].

    Raises:
        ValueError: on a count/bound length mismatch, ``q`` outside
            [0, 1], or zero total observations.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    if len(bucket_counts) != len(bounds) + 1:
        raise ValueError(
            f"expected {len(bounds) + 1} bucket counts, "
            f"got {len(bucket_counts)}")
    total = sum(bucket_counts)
    if total <= 0:
        raise ValueError("histogram_quantile of an empty histogram")
    target = q * total
    cumulative = 0.0
    for index, count in enumerate(bucket_counts):
        cumulative += count
        if cumulative >= target and count > 0:
            upper = (bounds[index] if index < len(bounds)
                     else bounds[-1])
            if index >= len(bounds):
                return upper  # overflow bucket: clamp
            lower = bounds[index - 1] if index > 0 else 0.0
            fraction = (target - (cumulative - count)) / count
            return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
    return bounds[-1]


def snapshot_histogram_rows(snapshot: Mapping) -> list[dict]:
    """Flat per-series quantile rows for every histogram in a snapshot.

    Returns:
        One ``{"name", "labels", "count", "sum", "p50", "p95", "p99",
        "exemplar"}`` row per histogram series with observations,
        sorted by name then labels — the table ``campaign report``
        and ``telemetry summary`` render.
    """
    require_snapshot(snapshot)
    rows = []
    for name in sorted(snapshot["instruments"]):
        entry = snapshot["instruments"][name]
        if entry["type"] != "histogram":
            continue
        bounds = entry["buckets"]
        for series in entry["series"]:
            if not series["count"]:
                continue
            rows.append({
                "name": name,
                "labels": dict(series["labels"]),
                "count": int(series["count"]),
                "sum": float(series["sum"]),
                "p50": histogram_quantile(bounds,
                                          series["bucket_counts"], 0.50),
                "p95": histogram_quantile(bounds,
                                          series["bucket_counts"], 0.95),
                "p99": histogram_quantile(bounds,
                                          series["bucket_counts"], 0.99),
                "exemplar": series.get("exemplar"),
            })
    return rows


def render_snapshot(snapshot: Mapping) -> str:
    """A snapshot as the aligned human table ``telemetry summary`` prints."""
    require_snapshot(snapshot)
    lines = ["metrics summary "
             f"(schema v{snapshot['metrics_schema_version']})"]
    histogram_rows = snapshot_histogram_rows(snapshot)
    if histogram_rows:
        lines.append(f"  {'histogram':<44} {'count':>7} {'p50':>10} "
                     f"{'p95':>10} {'p99':>10}")
        for row in histogram_rows:
            label = row["name"] + _render_labels(row["labels"])
            lines.append(
                f"  {label:<44} {row['count']:>7d} "
                f"{row['p50'] * 1e3:>8.2f}ms {row['p95'] * 1e3:>8.2f}ms "
                f"{row['p99'] * 1e3:>8.2f}ms")
    scalar_lines = []
    for name in sorted(snapshot["instruments"]):
        entry = snapshot["instruments"][name]
        if entry["type"] == "histogram":
            continue
        for series in entry["series"]:
            label = name + _render_labels(series["labels"])
            scalar_lines.append(
                f"  {entry['type']} {label} = "
                f"{format_metric_value(series['value'])}")
    lines.extend(scalar_lines)
    if len(lines) == 1:
        lines.append("  (no instruments recorded)")
    return "\n".join(lines)


# -- Prometheus exposition ---------------------------------------------


def render_prometheus(snapshot: Mapping) -> str:
    """A snapshot in Prometheus text exposition format 0.0.4.

    ``# HELP`` / ``# TYPE`` headers per family, one sample line per
    series (histograms expand into cumulative ``_bucket`` lines with
    ``le`` labels plus ``_sum`` / ``_count``), everything sorted so
    the output is byte-deterministic — the property the golden-format
    test pins.  Serve this with content type
    :data:`PROMETHEUS_CONTENT_TYPE`.
    """
    require_snapshot(snapshot)
    lines: list[str] = []
    for name in sorted(snapshot["instruments"]):
        entry = snapshot["instruments"][name]
        if entry.get("help"):
            lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {entry['type']}")
        if entry["type"] == "histogram":
            bounds = entry["buckets"]
            for series in entry["series"]:
                labels = series["labels"]
                cumulative = 0
                for bound, count in zip(
                        list(bounds) + [math.inf],
                        series["bucket_counts"]):
                    cumulative += count
                    le = format_metric_value(bound)
                    lines.append(
                        f"{name}_bucket"
                        f"{_render_labels(labels, ('le', le))} "
                        f"{cumulative}")
                lines.append(f"{name}_sum{_render_labels(labels)} "
                             f"{format_metric_value(series['sum'])}")
                lines.append(f"{name}_count{_render_labels(labels)} "
                             f"{series['count']}")
        else:
            for series in entry["series"]:
                lines.append(
                    f"{name}{_render_labels(series['labels'])} "
                    f"{format_metric_value(series['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<timestamp>-?\d+))?$")

_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

_EXPOSITION_TYPES = frozenset(
    {"counter", "gauge", "histogram", "summary", "untyped"})


def _parse_exposition_value(text: str, where: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"{where}: malformed sample value {text!r}") \
            from None


def parse_prometheus(text: str) -> list[dict]:
    """A strict line-format checker for text exposition format 0.0.4.

    Parses ``# HELP`` / ``# TYPE`` headers and sample lines, raising
    ``ValueError`` naming the offending line for anything malformed:
    bad metric or label syntax, unknown ``# TYPE``, values that are
    not valid floats, non-cumulative histogram ``_bucket`` series or a
    ``_count`` that disagrees with the ``+Inf`` bucket.  The checker
    behind the exposition golden tests and the CI scrape drill.

    Returns:
        One ``{"name", "labels", "value"}`` dict per sample line.
    """
    samples: list[dict] = []
    types: dict[str, str] = {}
    # (family, labels-minus-le) -> [(le, cumulative_value), ...]
    buckets: dict[tuple, list] = {}
    counts: dict[tuple, float] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        where = f"line {number}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                    raise ValueError(
                        f"{where}: malformed {parts[1]} comment: "
                        f"{line!r}")
                if parts[1] == "TYPE":
                    kind = parts[3].strip() if len(parts) > 3 else ""
                    if kind not in _EXPOSITION_TYPES:
                        raise ValueError(
                            f"{where}: unknown TYPE {kind!r} for "
                            f"{parts[2]}")
                    types[parts[2]] = kind
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"{where}: malformed sample line {line!r}")
        labels: dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(raw):
                labels[pair.group(1)] = pair.group(2)
                consumed = pair.end()
                if consumed < len(raw) and raw[consumed] == ",":
                    consumed += 1
            if consumed != len(raw):
                raise ValueError(
                    f"{where}: malformed label block {{{raw}}}")
        value = _parse_exposition_value(match.group("value"), where)
        name = match.group("name")
        samples.append({"name": name, "labels": labels, "value": value})
        for suffix in ("_bucket", "_sum", "_count"):
            family = name[: -len(suffix)]
            if name.endswith(suffix) \
                    and types.get(family) == "histogram":
                key_labels = tuple(sorted(
                    (k, v) for k, v in labels.items() if k != "le"))
                if suffix == "_bucket":
                    if "le" not in labels:
                        raise ValueError(
                            f"{where}: histogram bucket without an "
                            f"'le' label: {line!r}")
                    le = _parse_exposition_value(labels["le"],
                                                 where)
                    buckets.setdefault((family, key_labels),
                                       []).append((le, value))
                elif suffix == "_count":
                    counts[(family, key_labels)] = value
                break
    for (family, key_labels), series in buckets.items():
        bounds = [le for le, __ in series]
        values = [v for __, v in series]
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(
                f"histogram {family}: 'le' bounds not strictly "
                f"increasing: {bounds}")
        if bounds[-1] != math.inf:
            raise ValueError(
                f"histogram {family}: missing the '+Inf' bucket")
        if any(v2 < v1 for v1, v2 in zip(values, values[1:])):
            raise ValueError(
                f"histogram {family}: bucket values not cumulative: "
                f"{values}")
        count = counts.get((family, key_labels))
        if count is not None and count != values[-1]:
            raise ValueError(
                f"histogram {family}: _count {count} disagrees with "
                f"the +Inf bucket {values[-1]}")
    return samples


# -- runtime collectors ------------------------------------------------


def rss_bytes() -> float:
    """The process's current resident set size in bytes.

    Reads ``/proc/self/statm`` where available (Linux), falling back
    to the peak RSS from ``resource.getrusage`` elsewhere; 0.0 when
    neither source exists.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            pages = int(handle.read().split()[1])
        return float(pages * os.sysconf("SC_PAGE_SIZE"))
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return float(peak_kb) * 1024.0
    except (ImportError, OSError):
        return 0.0


def gc_collection_counts() -> tuple[int, ...]:
    """Cumulative garbage collections per generation (0, 1, 2)."""
    return tuple(stat["collections"] for stat in gc.get_stats())
