"""Explicit unit conversion helpers.

The paper mixes several unit systems: concentrations in mM and uM,
sensitivities in uA mM^-1 cm^-2, electrode areas in mm^2, currents in uA/nA.
Internally the whole library works in strict SI (mol/m^3 for concentration is
avoided — we use mol/L a.k.a. molar — amperes, square metres, volts, seconds).

Rather than a heavyweight unit package, we provide small, explicit, well
tested converters.  Each function name encodes the conversion direction, so a
reader never has to guess ("molar_from_millimolar" reads as "molar <- mM").
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Concentration.  Internal unit: mol/L (molar, M).
# ---------------------------------------------------------------------------


def molar_from_millimolar(value_mm: float) -> float:
    """Convert a concentration in mM to mol/L."""
    return value_mm * 1e-3


def molar_from_micromolar(value_um: float) -> float:
    """Convert a concentration in uM to mol/L."""
    return value_um * 1e-6


def millimolar_from_molar(value_m: float) -> float:
    """Convert a concentration in mol/L to mM."""
    return value_m * 1e3


def micromolar_from_molar(value_m: float) -> float:
    """Convert a concentration in mol/L to uM."""
    return value_m * 1e6


def micromolar_from_millimolar(value_mm: float) -> float:
    """Convert a concentration in mM to uM."""
    return value_mm * 1e3


def millimolar_from_micromolar(value_um: float) -> float:
    """Convert a concentration in uM to mM."""
    return value_um * 1e-3


def mol_per_cubic_metre_from_molar(value_m: float) -> float:
    """Convert mol/L to mol/m^3 (used by the diffusion solver)."""
    return value_m * 1e3


def molar_from_mol_per_cubic_metre(value: float) -> float:
    """Convert mol/m^3 to mol/L."""
    return value * 1e-3


# ---------------------------------------------------------------------------
# Current.  Internal unit: ampere (A).
# ---------------------------------------------------------------------------


def ampere_from_microampere(value_ua: float) -> float:
    """Convert uA to A."""
    return value_ua * 1e-6


def ampere_from_nanoampere(value_na: float) -> float:
    """Convert nA to A."""
    return value_na * 1e-9


def microampere_from_ampere(value_a: float) -> float:
    """Convert A to uA."""
    return value_a * 1e6


def nanoampere_from_ampere(value_a: float) -> float:
    """Convert A to nA."""
    return value_a * 1e9


def picoampere_from_ampere(value_a: float) -> float:
    """Convert A to pA."""
    return value_a * 1e12


# ---------------------------------------------------------------------------
# Area.  Internal unit: square metre (m^2).
# ---------------------------------------------------------------------------


def square_metre_from_square_millimetre(value_mm2: float) -> float:
    """Convert mm^2 to m^2."""
    return value_mm2 * 1e-6


def square_metre_from_square_centimetre(value_cm2: float) -> float:
    """Convert cm^2 to m^2."""
    return value_cm2 * 1e-4


def square_centimetre_from_square_metre(value_m2: float) -> float:
    """Convert m^2 to cm^2."""
    return value_m2 * 1e4


def square_millimetre_from_square_metre(value_m2: float) -> float:
    """Convert m^2 to mm^2."""
    return value_m2 * 1e6


def square_centimetre_from_square_millimetre(value_mm2: float) -> float:
    """Convert mm^2 to cm^2 (the paper quotes 13 mm^2 = 0.13 cm^2)."""
    return value_mm2 * 1e-2


# ---------------------------------------------------------------------------
# Length.  Internal unit: metre (m).
# ---------------------------------------------------------------------------


def metre_from_micrometre(value_um: float) -> float:
    """Convert um to m."""
    return value_um * 1e-6


def metre_from_nanometre(value_nm: float) -> float:
    """Convert nm to m."""
    return value_nm * 1e-9


def micrometre_from_metre(value_m: float) -> float:
    """Convert m to um."""
    return value_m * 1e6


def nanometre_from_metre(value_m: float) -> float:
    """Convert m to nm."""
    return value_m * 1e9


# ---------------------------------------------------------------------------
# Potential.  Internal unit: volt (V).
# ---------------------------------------------------------------------------


def volt_from_millivolt(value_mv: float) -> float:
    """Convert mV to V (the paper's working potential is +650 mV)."""
    return value_mv * 1e-3


def millivolt_from_volt(value_v: float) -> float:
    """Convert V to mV."""
    return value_v * 1e3


# ---------------------------------------------------------------------------
# Sensitivity.  Paper unit: uA mM^-1 cm^-2.  Internal: A M^-1 m^-2.
# ---------------------------------------------------------------------------

#: Multiplicative factor from uA mM^-1 cm^-2 to A M^-1 m^-2:
#: 1e-6 A / (1e-3 M) / (1e-4 m^2) = 1e-6 * 1e3 * 1e4 = 1e1.
_SENSITIVITY_SI_PER_PAPER = 1e-6 / 1e-3 / 1e-4


def sensitivity_si_from_paper(value: float) -> float:
    """Convert uA mM^-1 cm^-2 (paper unit) to A M^-1 m^-2 (SI-ish)."""
    return value * _SENSITIVITY_SI_PER_PAPER


def sensitivity_paper_from_si(value: float) -> float:
    """Convert A M^-1 m^-2 back to the paper's uA mM^-1 cm^-2."""
    return value / _SENSITIVITY_SI_PER_PAPER


def slope_ampere_per_molar(sensitivity_paper: float, area_m2: float) -> float:
    """Return the raw calibration slope [A/M] of an electrode.

    ``sensitivity_paper`` is in uA mM^-1 cm^-2 and ``area_m2`` the geometric
    electrode area.  This is the slope a potentiostat actually measures before
    normalizing by area.
    """
    if area_m2 <= 0:
        raise ValueError(f"area_m2 must be positive, got {area_m2}")
    return sensitivity_si_from_paper(sensitivity_paper) * area_m2


def sensitivity_paper_from_slope(slope_a_per_molar: float,
                                 area_m2: float) -> float:
    """Normalize a raw calibration slope [A/M] by area into paper units."""
    if area_m2 <= 0:
        raise ValueError(f"area_m2 must be positive, got {area_m2}")
    return sensitivity_paper_from_si(slope_a_per_molar / area_m2)


# ---------------------------------------------------------------------------
# Time and frequency (trivial but explicit for symmetry).
# ---------------------------------------------------------------------------


def second_from_millisecond(value_ms: float) -> float:
    """Convert ms to s."""
    return value_ms * 1e-3


def hertz_from_kilohertz(value_khz: float) -> float:
    """Convert kHz to Hz."""
    return value_khz * 1e3
