"""Incremental execution sessions: one run, advanced reading by reading.

A :class:`StreamSession` is the online counterpart of the batch
executor (:func:`repro.engine.core.execute`): the same compiled plan,
the same kernel set, the same carry state — but the caller owns the
clock.  Each :meth:`StreamSession.advance` call pushes the run forward
by a block of samples (a single reading, a minute, a day) and returns
the incremental per-sample outputs the kernel set publishes through its
``stream_update`` hook; :meth:`StreamSession.result` assembles the
ordinary workload result once the stream is exhausted.

Because the engines are chunk-size-invariant by contract — per-channel
generator streams consumed strictly sequentially, recalibration fired
at absolute sample indices, filter beliefs carried exactly — streaming
a scenario in arbitrary block sizes is gated bit-identical (<= 1e-9) to
one batch run of the same plan (``tests/serve/test_stream_session.py``).

Suspend/resume rides the same contract: :meth:`StreamSession.export_state`
serializes the carry state at the current cursor as a schema-versioned
snapshot (:mod:`repro.engine.core.snapshot`), and
:meth:`StreamSession.restore` rebuilds a session that finishes the run
as if it had never stopped — property-tested across chunk boundaries in
``tests/serve/test_snapshot_property.py``.

Quickstart::

    from repro.engine.monitor import MonitorPlan, glucose_cohort
    from repro.serve import StreamSession

    plan = MonitorPlan(channels=glucose_cohort(4), duration_h=24.0,
                       seed=42)
    session = StreamSession("monitor", plan)
    while not session.done:
        update = session.advance(12)   # one hour of 5-min readings
        latest = update.values["estimated_concentration_molar"][:, -1]
    result = session.result()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.engine.core import kernels_for


@dataclass(frozen=True)
class StreamUpdate:
    """Incremental outputs of one :meth:`StreamSession.advance` call.

    Attributes:
        start / stop: the absolute sample range ``[start, stop)`` this
            update covers.
        time_h: sample times [h] of the block, ``(stop - start,)``.
        values: per-field blocks, each ``(n_channels, stop - start)`` —
            the workload's streaming fields (the monitor publishes
            truth, estimate and measured current; estimation adds the
            filtered concentration and its posterior std).
    """

    start: int
    stop: int
    time_h: np.ndarray = field(repr=False)
    values: "dict[str, np.ndarray]" = field(repr=False)

    @property
    def n_samples(self) -> int:
        """Samples covered by this update."""
        return self.stop - self.start


class StreamSession:
    """One workload run advanced incrementally under caller control.

    Args:
        workload: registered workload name; its kernel set must declare
            ``snapshot_version`` (the monitor and estimation sets do).
        plan: the workload's declarative plan.
        snapshot: resume point produced by :meth:`export_state`;
            ``None`` starts from sample zero.

    Raises:
        ValueError: for a workload without streaming support, a plan of
            the wrong type, or a snapshot that does not match the plan.
    """

    def __init__(self, workload: str, plan,
                 snapshot: "dict | None" = None) -> None:
        kernels = kernels_for(workload)
        if kernels.snapshot_version is None:
            raise ValueError(
                f"workload {workload!r} does not support streaming "
                f"(its kernel set declares no snapshot_version)")
        if not isinstance(plan, kernels.plan_type):
            raise ValueError(
                f"{workload} plans must be {kernels.plan_type.__name__},"
                f" got {type(plan).__name__}")
        self._kernels = kernels
        self._plan = plan
        self._compiled = kernels.compile(plan)
        if snapshot is None:
            self._state = kernels.init_state(plan)
            self._cursor = 0
        else:
            self._state, self._cursor = kernels.restore_state(
                plan, snapshot)
        self._result: Any = None
        # Segments whose begin hook already ran (resume lands mid-
        # segment: the hook belongs to the original [0, cursor) pass).
        self._begun = {segment.index
                       for segment in self._compiled.segments
                       if segment.start < self._cursor}

    # -- introspection ---------------------------------------------------

    @property
    def workload(self) -> str:
        """Registered workload name this session runs."""
        return self._kernels.name

    @property
    def plan(self):
        """The declarative plan this session advances."""
        return self._plan

    @property
    def cursor(self) -> int:
        """Completed samples — the next ``advance`` starts here."""
        return self._cursor

    @property
    def n_samples(self) -> int:
        """Total samples per channel in the plan."""
        return self._compiled.n_samples

    @property
    def n_channels(self) -> int:
        """Channels advancing through the stream."""
        return self._compiled.n_channels

    @property
    def done(self) -> bool:
        """Whether every sample has been consumed."""
        return self._cursor >= self._compiled.n_samples

    @property
    def remaining(self) -> int:
        """Samples left before the stream is exhausted."""
        return self._compiled.n_samples - self._cursor

    # -- streaming -------------------------------------------------------

    def advance(self, samples: "int | None" = None) -> StreamUpdate:
        """Advance the run by up to ``samples`` readings per channel.

        Args:
            samples: block size; ``None`` runs to the end of the
                stream.  Any positive size is legal — chunk-size
                invariance is the engines' contract — and a block is
                internally split at segment boundaries so the kernel
                hooks fire exactly as in the batch executor.

        Returns:
            The concatenated :class:`StreamUpdate` for the advanced
            range.

        Raises:
            ValueError: for a non-positive block size, or when the
                stream is already exhausted.
        """
        if self.done:
            raise ValueError("stream exhausted: all "
                             f"{self._compiled.n_samples} samples done")
        if samples is None:
            samples = self.remaining
        if samples < 1:
            raise ValueError("advance needs at least one sample")
        target = min(self._cursor + samples, self._compiled.n_samples)
        start = self._cursor
        times = []
        blocks: "dict[str, list[np.ndarray]]" = {}
        while self._cursor < target:
            segment = self._segment_at(self._cursor)
            if segment.index not in self._begun:
                self._kernels.begin_segment(self._plan, self._state,
                                            segment)
                self._begun.add(segment.index)
            stop = min(target, segment.stop)
            self._kernels.run_chunk(self._plan, self._state, segment,
                                    self._cursor, stop)
            update = dict(self._kernels.stream_update(
                self._plan, self._state, self._cursor, stop))
            times.append(np.asarray(update.pop("time_h")))
            for name, block in update.items():
                blocks.setdefault(name, []).append(block)
            if stop == segment.stop:
                self._kernels.end_segment(self._plan, self._state,
                                          segment)
            self._cursor = stop
        return StreamUpdate(
            start=start,
            stop=self._cursor,
            time_h=np.concatenate(times),
            values={name: np.concatenate(parts, axis=1)
                    for name, parts in blocks.items()},
        )

    def result(self):
        """The workload's ordinary result, once the stream is done.

        Identical (<= 1e-9, gated) to ``run_workload`` on the same
        plan; cached — repeated calls return the same object.

        Raises:
            ValueError: while samples remain unconsumed.
        """
        if not self.done:
            raise ValueError(
                f"stream not finished: {self.remaining} of "
                f"{self._compiled.n_samples} samples remain")
        if self._result is None:
            self._result = self._kernels.finalize(self._plan,
                                                  self._state)
        return self._result

    # -- suspend / resume ------------------------------------------------

    def export_state(self) -> dict:
        """Snapshot the session at its current cursor.

        The returned dict is JSON-serializable (and
        :func:`repro.engine.core.save_snapshot` writes it as ``.json``
        or ``.npz``); :meth:`restore` rebuilds an equivalent session
        from it.
        """
        return self._kernels.export_state(self._plan, self._state,
                                          self._cursor)

    @classmethod
    def restore(cls, plan, snapshot: dict) -> "StreamSession":
        """Rebuild a session from a plan and an exported snapshot.

        The workload is read from the snapshot envelope; finishing the
        restored session matches an uninterrupted run bit-identically.
        """
        if not isinstance(snapshot, dict) or "workload" not in snapshot:
            raise ValueError("snapshot must be an export_state() dict")
        return cls(snapshot["workload"], plan, snapshot=snapshot)

    @classmethod
    def from_scenario(cls, scenario) -> "StreamSession":
        """Open a stream for a declarative scenario.

        Resolves the scenario's spec through its registered workload
        adapter (:func:`repro.scenarios.workload_by_name`) exactly as
        the batch runner does, then streams the resulting plan.

        Raises:
            ValueError: when the scenario's workload has no streaming
                support.
        """
        from repro.scenarios import workload_by_name

        workload = workload_by_name(scenario.workload)
        plan = workload.build_plan(scenario.spec, scenario.seed)
        return cls(scenario.workload, plan)

    def _segment_at(self, cursor: int):
        """The execution-plan segment containing sample ``cursor``."""
        for segment in self._compiled.segments:
            if segment.start <= cursor < segment.stop:
                return segment
        raise ValueError(f"no segment covers sample {cursor}")
