"""The ``python -m repro serve`` command: boot the async front door.

Thin argparse glue between the scenario CLI and
:class:`repro.serve.server.ReproServer`; mirrors the ``run`` command's
telemetry flags so a serving process records ``serve.*`` spans and
counters next to the engine's own (``--telemetry``, ``--trace-out``,
``--perfetto-out``) — the CI smoke job uploads the JSONL trace as an
artifact.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import threading
from pathlib import Path


def _install_shutdown_handlers() -> None:
    """Map SIGINT/SIGTERM to a clean ``KeyboardInterrupt`` shutdown.

    A process launched in the background from a non-interactive shell
    (CI smoke jobs, supervisors) inherits SIGINT as ignored, in which
    case ``asyncio.run`` never installs its graceful handler and the
    server can only be SIGKILLed — losing the telemetry flush.  Restore
    the default SIGINT disposition and treat SIGTERM the same way so
    ``kill`` and ``kill -INT`` both unwind through the server's stop
    path.
    """

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGINT, signal.default_int_handler)
        signal.signal(signal.SIGTERM, _terminate)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the serving process until interrupted."""
    from repro.serve.server import ReproServer, _run_server
    from repro.telemetry import telemetry_env_enabled

    telemetry_on = (args.telemetry or args.trace_out is not None
                    or args.perfetto_out is not None
                    or telemetry_env_enabled())
    recorder = previous = None
    if telemetry_on:
        from repro.telemetry import (
            InMemoryRecorder,
            JsonlSink,
            set_recorder,
        )

        sinks = ([JsonlSink(args.trace_out)]
                 if args.trace_out is not None else [])
        recorder = InMemoryRecorder(sinks=sinks)
        previous = set_recorder(recorder)
    server = ReproServer(host=args.host, port=args.port,
                         queue_size=args.queue_size,
                         workers=args.workers,
                         per_workload=args.per_workload)
    _install_shutdown_handlers()
    try:
        asyncio.run(_run_server(server))
    except KeyboardInterrupt:
        pass
    finally:
        if recorder is not None:
            from repro.telemetry import set_recorder

            set_recorder(previous)
            recorder.close()
            print(recorder.render_summary())
            if args.trace_out is not None:
                print(f"trace -> {args.trace_out}")
            if args.perfetto_out is not None:
                from repro.telemetry import write_perfetto

                path = write_perfetto(args.perfetto_out,
                                      recorder.spans,
                                      counters=recorder.counters)
                print(f"perfetto trace -> {path}")
    return 0


def add_serve_command(sub: "argparse._SubParsersAction") -> None:
    """Attach the ``serve`` subcommand to the ``python -m repro`` CLI."""
    serve_p = sub.add_parser(
        "serve",
        help="serve scenarios and live streams over HTTP")
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8750,
                         help="bind port; 0 picks a free one "
                              "(default: 8750)")
    serve_p.add_argument("--queue-size", type=int, default=16,
                         help="job-queue bound; submissions beyond it "
                              "get 503 (default: 16)")
    serve_p.add_argument("--workers", type=int, default=2,
                         help="concurrent job workers (default: 2)")
    serve_p.add_argument("--per-workload", type=int, default=2,
                         help="max concurrent jobs per workload "
                              "(default: 2)")
    serve_p.add_argument("--telemetry", action="store_true",
                         help="record serve.* and engine spans; print "
                              "the summary on shutdown")
    serve_p.add_argument("--trace-out", type=Path, default=None,
                         help="stream telemetry events to this JSONL "
                              "file (implies --telemetry)")
    serve_p.add_argument("--perfetto-out", type=Path, default=None,
                         help="write a Perfetto flame graph on "
                              "shutdown (implies --telemetry)")
    serve_p.set_defaults(func=_cmd_serve)
