"""Online serving: incremental engine state plus an async front door.

The batch engines answer "what happened over a whole wear period"; this
subsystem answers the *online* question — what does the cohort look
like right now, one reading at a time.  Two layers:

* **Incremental execution** (:mod:`repro.serve.session`) — a
  :class:`StreamSession` advances any snapshot-capable kernel set
  (monitor, estimation) block by block under caller control, yielding
  incremental filtered estimates that are gated bit-identical
  (<= 1e-9) to the batch engine on the same plan.  Sessions suspend to
  schema-versioned snapshots (:mod:`repro.engine.core.snapshot`) and
  resume with bounded memory.
* **Front door** (:mod:`repro.serve.server`) — a stdlib-only asyncio
  HTTP server (``python -m repro serve``): submit scenarios to a
  bounded work queue, poll status, fetch results, and push readings to
  live streams; health and throughput counters flow through
  :mod:`repro.telemetry`.  :mod:`repro.serve.client` is the matching
  stdlib client.

Guide: ``docs/serving.md``.  Gates: streaming-vs-batch identity in
``tests/serve/``, >= 1000 readings/s/channel steady-state throughput
and cursor-independent snapshot size in ``benchmarks/bench_serve.py``.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.server import MAX_BODY_BYTES, ReproServer, ServerThread
from repro.serve.session import StreamSession, StreamUpdate

__all__ = [
    "MAX_BODY_BYTES",
    "ReproServer",
    "ServeClient",
    "ServeError",
    "ServerThread",
    "StreamSession",
    "StreamUpdate",
]
