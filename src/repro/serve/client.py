"""A small stdlib client for the serve front door.

Wraps the HTTP endpoints of :mod:`repro.serve.server` behind plain
method calls (``http.client`` only — usable from tests, CI smoke jobs
and examples without any dependency).  Every method returns the parsed
JSON payload; non-2xx responses raise :class:`ServeError` carrying the
status code and the server's error payload.

Quickstart::

    from repro.serve import ServeClient, ServerThread

    with ServerThread() as thread:
        client = ServeClient(thread.host, thread.port)
        job = client.submit(scenario.to_dict())
        client.wait_for_job(job["job_id"])
        result = client.result(job["job_id"])
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any


class ServeError(RuntimeError):
    """A non-2xx response from the serve front door.

    Attributes:
        status: HTTP status code of the response.
        payload: the parsed JSON error payload (``{"error": ...}``).
    """

    def __init__(self, status: int, payload: dict) -> None:
        message = (payload.get("error", "")
                   if isinstance(payload, dict) else str(payload))
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


class ServeClient:
    """Typed access to one running serve front door.

    Args:
        host / port: where the server listens.
        timeout_s: per-request socket timeout.
    """

    def __init__(self, host: str, port: int,
                 timeout_s: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    def _request(self, method: str, path: str,
                 body: "dict | None" = None) -> dict:
        """One request/response cycle; raises :class:`ServeError`."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s)
        try:
            payload = (json.dumps(body).encode()
                       if body is not None else None)
            headers = ({"Content-Type": "application/json"}
                       if payload is not None else {})
            connection.request(method, path, body=payload,
                               headers=headers)
            response = connection.getresponse()
            data = json.loads(response.read() or b"{}")
            if response.status >= 400:
                raise ServeError(response.status, data)
            return data
        finally:
            connection.close()

    # -- service ---------------------------------------------------------

    def health(self) -> dict:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def workloads(self) -> "list[dict]":
        """``GET /workloads`` — the registered workload rows."""
        return self._request("GET", "/workloads")["workloads"]

    def metrics(self) -> dict:
        """``GET /metrics`` — counters, queue depth, live gauges."""
        return self._request("GET", "/metrics")

    def metrics_prometheus(self) -> str:
        """``GET /metrics?format=prometheus`` — raw text exposition.

        Returns the exposition body (format 0.0.4) as a string; feed
        it to :func:`repro.telemetry.parse_prometheus` to validate.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s)
        try:
            connection.request("GET", "/metrics?format=prometheus")
            response = connection.getresponse()
            body = response.read()
            if response.status >= 400:
                raise ServeError(response.status,
                                 json.loads(body or b"{}"))
            return body.decode("utf-8")
        finally:
            connection.close()

    def wait_until_healthy(self, timeout_s: float = 30.0) -> dict:
        """Poll ``/healthz`` until the server answers (boot helper)."""
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                return self.health()
            except (OSError, ServeError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.1)

    # -- jobs ------------------------------------------------------------

    def submit(self, scenario: dict) -> dict:
        """``POST /scenarios`` — enqueue a scenario envelope."""
        return self._request("POST", "/scenarios", scenario)

    def status(self, job_id: str) -> dict:
        """``GET /scenarios/{id}`` — one job's lifecycle status."""
        return self._request("GET", f"/scenarios/{job_id}")

    def result(self, job_id: str, traces: bool = False) -> dict:
        """``GET /scenarios/{id}/result`` — the replayable artifact."""
        suffix = "?traces=1" if traces else ""
        return self._request("GET", f"/scenarios/{job_id}/result{suffix}")

    def wait_for_job(self, job_id: str,
                     timeout_s: float = 300.0,
                     poll_s: float = 0.1) -> dict:
        """Poll a job until it is done (raises on failure/timeout)."""
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.status(job_id)
            if status["status"] == "done":
                return status
            if status["status"] == "failed":
                raise ServeError(500, {"error": status["error"]})
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['status']} after "
                    f"{timeout_s} s")
            time.sleep(poll_s)

    # -- streams ---------------------------------------------------------

    def create_stream(self, scenario: dict) -> dict:
        """``POST /streams`` — open an incremental session."""
        return self._request("POST", "/streams", scenario)

    def stream_status(self, stream_id: str) -> dict:
        """``GET /streams/{id}`` — cursor and completion state."""
        return self._request("GET", f"/streams/{stream_id}")

    def push_readings(self, stream_id: str,
                      count: "int | None" = None) -> dict:
        """``POST /streams/{id}/readings`` — advance by ``count``.

        ``None`` runs the stream to completion in one call; the
        response carries the incremental per-sample outputs of the
        advanced block.
        """
        body: "dict[str, Any]" = {}
        if count is not None:
            body["count"] = count
        return self._request("POST", f"/streams/{stream_id}/readings",
                             body)

    def stream_result(self, stream_id: str,
                      traces: bool = False) -> dict:
        """``GET /streams/{id}/result`` — batch-identical artifact."""
        suffix = "?traces=1" if traces else ""
        return self._request("GET",
                             f"/streams/{stream_id}/result{suffix}")

    def stream_snapshot(self, stream_id: str) -> dict:
        """``GET /streams/{id}/snapshot`` — the resume point."""
        return self._request("GET", f"/streams/{stream_id}/snapshot")

    def delete_stream(self, stream_id: str) -> dict:
        """``DELETE /streams/{id}`` — drop a stream's state."""
        return self._request("DELETE", f"/streams/{stream_id}")
