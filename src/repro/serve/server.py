"""The async front door: scenarios and live streams over HTTP.

A deliberately small server built on nothing but the standard library
(``asyncio.start_server`` plus a hand-rolled HTTP/1.1 request reader —
no web framework, matching the repo's no-new-dependencies rule).  It
exposes the two serving modes of :mod:`repro.serve`:

* **Jobs** — submit a scenario envelope (``POST /scenarios``), poll its
  status (``GET /scenarios/{id}``), fetch the replayable result
  artifact (``GET /scenarios/{id}/result``).  Jobs drain through a
  bounded work queue with a per-workload concurrency limit; a full
  queue answers 503 instead of buffering without bound.
* **Streams** — open an incremental session for a scenario
  (``POST /streams``), push readings in blocks
  (``POST /streams/{id}/readings``), read back the filtered estimates
  as they are produced, snapshot (``GET /streams/{id}/snapshot``) and
  finally fetch the batch-identical result
  (``GET /streams/{id}/result``).

Observability is first-class.  The server meters itself through
:mod:`repro.telemetry.metrics` instruments — per-endpoint request
latency histograms, error counters by status class, per-workload
in-flight gauges, queue depth, stream/readings throughput, plus
periodic runtime collectors (RSS, GC counts, event-loop lag) — and
exposes them two ways on ``GET /metrics``: the legacy JSON payload
(counters derived from the same registry series) and Prometheus text
exposition format 0.0.4 on ``GET /metrics?format=prometheus``.  Every
request is assigned a ``trace_id`` at the front door
(:func:`repro.telemetry.trace_context`, echoed back as an
``X-Trace-Id`` header): the request's spans carry it into the JSONL
trace, its latency observation stamps it as the histogram exemplar,
and a job inherits its submitting request's id — so a slow bucket in
the histogram leads straight to one request's Perfetto timeline.
Recorder mirroring is unchanged: every counter also lands on the
active :mod:`repro.telemetry` recorder as ``serve.*``.

Endpoint reference: ``docs/serving.md``.  Run it with
``python -m repro serve``; tests drive an in-process
:class:`ServerThread`.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.telemetry import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    get_metrics_registry,
    get_recorder,
    set_metrics_registry,
    trace_context,
)

_LOG = logging.getLogger("repro.serve.server")

#: Largest request body the server will read [bytes]; larger requests
#: are answered 413 before the body is consumed.
MAX_BODY_BYTES = 8 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK", 201: "Created", 202: "Accepted", 400: "Bad Request",
    404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """Routing-level failure carrying an HTTP status and message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class _Text:
    """A non-JSON response body carrying its own content type."""

    text: str
    content_type: str = "text/plain; charset=utf-8"


@dataclass
class _Job:
    """One submitted scenario run moving through the work queue."""

    job_id: str
    scenario: Any
    status: str = "queued"          # queued -> running -> done | failed
    result: Any = None
    error: "str | None" = None
    trace_id: "str | None" = None   # inherited from the submit request

    def describe(self) -> dict:
        """Status payload for ``GET /scenarios/{id}``."""
        return {
            "job_id": self.job_id,
            "workload": self.scenario.workload,
            "name": self.scenario.name,
            "status": self.status,
            "error": self.error,
        }


@dataclass
class _Stream:
    """One open incremental session plus its serialization lock."""

    stream_id: str
    scenario: Any
    session: Any
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)

    def describe(self) -> dict:
        """Status payload for ``GET /streams/{id}``."""
        return {
            "stream_id": self.stream_id,
            "workload": self.session.workload,
            "name": self.scenario.name,
            "cursor": self.session.cursor,
            "n_samples": self.session.n_samples,
            "n_channels": self.session.n_channels,
            "done": self.session.done,
        }


def _jsonify(value):
    """Recursively convert numpy containers into JSON-clean values."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, dict):
        return {key: _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    return value


class ReproServer:
    """The serving process: routes, work queue, streams, metrics.

    Args:
        host / port: bind address (port 0 picks a free port; the bound
            port is readable as :attr:`port` after :meth:`start`).
        queue_size: bound of the job queue — submissions beyond it are
            answered 503 (backpressure, not unbounded buffering).
        workers: concurrent job-executing tasks.
        per_workload: max jobs of any single workload running at once
            (a cohort-heavy estimation job cannot starve quick
            calibration runs).
        max_body_bytes: request-body size cap (413 beyond it).
        registry: the :class:`~repro.telemetry.MetricsRegistry` to
            meter into.  None (the default) adopts the process-active
            registry when it is enabled (``REPRO_METRICS=1``) and
            otherwise builds a private enabled one — the front door
            always meters itself — installing it process-wide for the
            server's lifetime so engine-core histograms from job runs
            land in the same scrape (restored on :meth:`stop`).
        collect_interval_s: period of the runtime collector task (RSS,
            GC counts, event-loop lag, queue depth).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 queue_size: int = 16, workers: int = 2,
                 per_workload: int = 2,
                 max_body_bytes: int = MAX_BODY_BYTES,
                 registry: "MetricsRegistry | None" = None,
                 collect_interval_s: float = 5.0) -> None:
        if queue_size < 1 or workers < 1 or per_workload < 1:
            raise ValueError(
                "queue_size, workers and per_workload must be >= 1")
        if collect_interval_s <= 0.0:
            raise ValueError("collect_interval_s must be > 0")
        self.host = host
        self.port = port
        self.queue_size = queue_size
        self.workers = workers
        self.per_workload = per_workload
        self.max_body_bytes = max_body_bytes
        self.collect_interval_s = collect_interval_s
        self.registry = registry
        self._installed_registry = False
        self._previous_registry: "MetricsRegistry | None" = None
        self._m: "dict[str, Any] | None" = None
        self._jobs: "dict[str, _Job]" = {}
        self._streams: "dict[str, _Stream]" = {}
        self._counter = 0
        self._queue: "asyncio.Queue[_Job] | None" = None
        self._semaphores: "dict[str, asyncio.Semaphore]" = {}
        self._tasks: "list[asyncio.Task]" = []
        self._server: "asyncio.base_events.Server | None" = None
        self._pool: "ThreadPoolExecutor | None" = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the worker + collector tasks."""
        if self.registry is None:
            active = get_metrics_registry()
            self.registry = (active if active.enabled
                             else MetricsRegistry())
        if get_metrics_registry() is not self.registry:
            self._previous_registry = set_metrics_registry(self.registry)
            self._installed_registry = True
        self._build_instruments()
        self._queue = asyncio.Queue(maxsize=self.queue_size)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers + 1,
            thread_name_prefix="repro-serve")
        self._tasks = [asyncio.create_task(self._worker(i))
                       for i in range(self.workers)]
        self._tasks.append(asyncio.create_task(self._collector()))
        self._collect_runtime()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        _LOG.info("serving on %s:%d (queue=%d workers=%d)", self.host,
                  self.port, self.queue_size, self.workers)

    async def stop(self) -> None:
        """Close the listener, cancel workers, release the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks = []
        if self._pool is not None:
            self._pool.shutdown(wait=False)
        if self._installed_registry:
            set_metrics_registry(self._previous_registry)
            self._installed_registry = False

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # -- bookkeeping -----------------------------------------------------

    def _build_instruments(self) -> None:
        """Register the server's instrument families on the registry."""
        registry = self.registry
        self._m = {
            "requests": registry.counter(
                "repro_serve_requests_total",
                "Requests served, by method, endpoint and status class.",
                ("method", "endpoint", "code_class")),
            "request_seconds": registry.histogram(
                "repro_serve_request_seconds",
                "Request latency, by method and endpoint.",
                ("method", "endpoint")),
            "jobs": registry.counter(
                "repro_serve_jobs_total",
                "Job lifecycle events, by workload and outcome.",
                ("workload", "outcome")),
            "jobs_inflight": registry.gauge(
                "repro_serve_jobs_inflight",
                "Jobs currently executing, by workload.",
                ("workload",)),
            "queue_depth": registry.gauge(
                "repro_serve_queue_depth",
                "Jobs waiting in the bounded work queue."),
            "streams_opened": registry.counter(
                "repro_serve_streams_opened_total",
                "Streams opened, by workload.", ("workload",)),
            "streams_closed": registry.counter(
                "repro_serve_streams_closed_total",
                "Streams explicitly closed."),
            "streams_open": registry.gauge(
                "repro_serve_streams_open",
                "Streams currently open."),
            "readings": registry.counter(
                "repro_serve_readings_total",
                "Readings (cells x samples) pushed into live streams, "
                "by workload.", ("workload",)),
            "rss": registry.gauge(
                "repro_process_resident_memory_bytes",
                "Resident set size of the serving process."),
            "gc": registry.gauge(
                "repro_python_gc_collections",
                "Cumulative garbage collections, by generation.",
                ("generation",)),
            "loop_lag": registry.gauge(
                "repro_serve_event_loop_lag_seconds",
                "Observed event-loop scheduling lag over the last "
                "collector period."),
        }

    @staticmethod
    def _mirror(key: str, value: float = 1) -> None:
        """Mirror one counter to the active telemetry recorder."""
        get_recorder().count(f"serve.{key}", value)

    @staticmethod
    def _endpoint_pattern(path: str) -> str:
        """Normalize a path to its route pattern (ids become ``*``)."""
        parts = [part for part in path.split("/") if part]
        return "/" + "/".join(parts[:1] + [
            "*" if index % 2 == 0 else part
            for index, part in enumerate(parts[1:])])

    def _account_request(self, method: str, path: str, status: int,
                         elapsed_s: float) -> None:
        """Record one finished request on every metrics surface."""
        endpoint = self._endpoint_pattern(path)
        self._mirror(f"requests.{method} {endpoint}")
        self._m["requests"].labels(
            method=method, endpoint=endpoint,
            code_class=f"{status // 100}xx").inc()
        self._m["request_seconds"].labels(
            method=method, endpoint=endpoint).observe(elapsed_s)

    def _next_id(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}-{self._counter:04d}"

    def metrics(self) -> dict:
        """The ``GET /metrics`` JSON payload: counters plus live gauges.

        The flat ``counters`` dict is *derived* from the registry's
        instrument series (summed over status class where the legacy
        key did not distinguish), so the JSON and Prometheus views of
        the same server always agree.
        """
        counters: "dict[str, int]" = {}
        if self._m is not None:
            for labels, series in self._m["requests"].items():
                key = (f"requests.{labels['method']} "
                       f"{labels['endpoint']}")
                counters[key] = counters.get(key, 0) + int(series.value)
            for labels, series in self._m["jobs"].items():
                key = ("jobs.rejected"
                       if labels["outcome"] == "rejected"
                       else f"jobs.{labels['outcome']}."
                            f"{labels['workload']}")
                counters[key] = counters.get(key, 0) + int(series.value)
            for labels, series in self._m["streams_opened"].items():
                counters[f"streams.opened.{labels['workload']}"] = \
                    int(series.value)
            closed = self._m["streams_closed"].value
            if closed:
                counters["streams.closed"] = int(closed)
            readings = sum(series.value for __, series
                           in self._m["readings"].items())
            if readings:
                counters["readings.pushed"] = int(readings)
        return {
            "counters": dict(sorted(counters.items())),
            "queue_depth": (self._queue.qsize()
                            if self._queue is not None else 0),
            "jobs": {status: sum(1 for job in self._jobs.values()
                                 if job.status == status)
                     for status in ("queued", "running", "done",
                                    "failed")},
            "open_streams": len(self._streams),
        }

    # -- runtime collectors ----------------------------------------------

    def _collect_runtime(self) -> None:
        """Refresh the process-level gauges (RSS, GC, queue depth)."""
        from repro.telemetry import gc_collection_counts, rss_bytes

        self._m["rss"].set(rss_bytes())
        for generation, collections in enumerate(gc_collection_counts()):
            self._m["gc"].labels(generation=str(generation)) \
                .set(collections)
        if self._queue is not None:
            self._m["queue_depth"].set(self._queue.qsize())
        self._m["streams_open"].set(len(self._streams))

    async def _collector(self) -> None:
        """Periodically refresh runtime gauges and event-loop lag."""
        loop = asyncio.get_running_loop()
        while True:
            before = loop.time()
            await asyncio.sleep(self.collect_interval_s)
            lag = max(0.0, loop.time() - before - self.collect_interval_s)
            self._m["loop_lag"].set(lag)
            self._collect_runtime()

    # -- job execution ---------------------------------------------------

    async def _worker(self, index: int) -> None:
        """Drain the job queue under the per-workload concurrency cap."""
        from repro.scenarios import run_scenario

        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            semaphore = self._semaphores.setdefault(
                job.scenario.workload,
                asyncio.Semaphore(self.per_workload))
            workload = job.scenario.workload
            async with semaphore:
                job.status = "running"
                recorder = get_recorder()
                inflight = self._m["jobs_inflight"].labels(
                    workload=workload)
                inflight.inc()
                try:
                    # The job runs under its *submitting* request's
                    # trace id, so its engine spans and histogram
                    # exemplars correlate with the front-door request.
                    # run_in_executor does not propagate contextvars;
                    # copy_context().run carries the id into the pool.
                    with trace_context(job.trace_id), \
                            recorder.span("serve.job",
                                          workload=workload,
                                          job_id=job.job_id):
                        context = contextvars.copy_context()
                        try:
                            job.result = await loop.run_in_executor(
                                self._pool, context.run, run_scenario,
                                job.scenario)
                            job.status = "done"
                            self._mirror(f"jobs.done.{workload}")
                            self._m["jobs"].labels(
                                workload=workload, outcome="done").inc()
                        except Exception as error:
                            job.status = "failed"
                            job.error = (f"{type(error).__name__}: "
                                         f"{error}")
                            self._mirror(f"jobs.failed.{workload}")
                            self._m["jobs"].labels(
                                workload=workload,
                                outcome="failed").inc()
                            _LOG.warning("job %s failed: %s",
                                         job.job_id, job.error)
                finally:
                    inflight.dec()
                    self._m["queue_depth"].set(self._queue.qsize())
            self._queue.task_done()

    # -- HTTP plumbing ---------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        """Read one request, route it under a fresh trace id, respond."""
        try:
            try:
                request = await self._read_request(reader)
            except _HttpError as error:
                # parse-stage failures (oversized body, bad request
                # line) still deserve a proper status response
                await self._write_response(writer, error.status,
                                           {"error": error.message})
                return
            if request is None:
                return
            method, path, query, body = request
            with trace_context() as trace_id:
                started = time.perf_counter()
                recorder = get_recorder()
                with recorder.span("serve.request", method=method,
                                   path=path):
                    try:
                        status, payload = await self._route(
                            method, path, query, body)
                    except _HttpError as error:
                        status = error.status
                        payload = {"error": error.message}
                    except Exception as error:  # pragma: no cover - guard
                        status = 500
                        payload = {
                            "error": f"{type(error).__name__}: {error}"}
                        _LOG.exception("unhandled error on %s %s",
                                       method, path)
                self._account_request(method, path, status,
                                      time.perf_counter() - started)
                await self._write_response(
                    writer, status, payload,
                    extra_headers={"X-Trace-Id": trace_id})
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one HTTP/1.1 request; None for an empty connection."""
        line = await reader.readline()
        if not line.strip():
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            raise _HttpError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: "dict[str, str]" = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length > self.max_body_bytes:
            raise _HttpError(
                413, f"body of {length} bytes exceeds the "
                     f"{self.max_body_bytes}-byte cap")
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        query = {key: values[-1]
                 for key, values in parse_qs(split.query).items()}
        return method, split.path, query, body

    async def _write_response(self, writer: asyncio.StreamWriter,
                              status: int, payload,
                              extra_headers: "dict | None" = None
                              ) -> None:
        if isinstance(payload, _Text):
            body = payload.text.encode("utf-8")
            content_type = payload.content_type
        else:
            body = json.dumps(_jsonify(payload)).encode()
            content_type = "application/json"
        text = _STATUS_TEXT.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {text}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n")
        for name, value in (extra_headers or {}).items():
            head += f"{name}: {value}\r\n"
        head += "Connection: close\r\n\r\n"
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    @staticmethod
    def _json_body(body: bytes) -> dict:
        if not body:
            return {}
        try:
            data = json.loads(body)
        except json.JSONDecodeError as error:
            raise _HttpError(400, f"invalid JSON body: {error}")
        if not isinstance(data, dict):
            raise _HttpError(400, "JSON body must be an object")
        return data

    def _scenario_from(self, body: bytes):
        from repro.scenarios import Scenario

        try:
            return Scenario.from_dict(self._json_body(body))
        except (KeyError, ValueError) as error:
            raise _HttpError(400, f"invalid scenario: {error}")

    # -- routing ---------------------------------------------------------

    async def _route(self, method: str, path: str, query: dict,
                     body: bytes):
        """Dispatch one request; returns ``(status, payload)``."""
        parts = [part for part in path.split("/") if part]
        if parts == ["healthz"]:
            return self._get_only(method) or (200, {
                "status": "ok", "queue_depth": self._queue.qsize()})
        if parts == ["workloads"]:
            from repro.scenarios.cli import workload_rows

            return self._get_only(method) or (
                200, {"workloads": workload_rows()})
        if parts == ["metrics"]:
            self._get_only(method)
            exposition = query.get("format")
            if exposition == "prometheus":
                self._collect_runtime()
                return 200, _Text(self.registry.render_prometheus(),
                                  PROMETHEUS_CONTENT_TYPE)
            if exposition not in (None, "json"):
                raise _HttpError(
                    400, f"unknown format {exposition!r} "
                         "(use 'json' or 'prometheus')")
            return 200, self.metrics()
        if parts == ["scenarios"]:
            if method != "POST":
                raise _HttpError(405, "use POST /scenarios")
            return self._submit_job(self._scenario_from(body))
        if len(parts) >= 2 and parts[0] == "scenarios":
            return self._route_job(method, parts[1], parts[2:], query)
        if parts == ["streams"]:
            if method != "POST":
                raise _HttpError(405, "use POST /streams")
            return self._open_stream(self._scenario_from(body))
        if len(parts) >= 2 and parts[0] == "streams":
            return await self._route_stream(method, parts[1],
                                            parts[2:], query, body)
        raise _HttpError(404, f"no route for {path!r}")

    @staticmethod
    def _get_only(method: str):
        if method != "GET":
            raise _HttpError(405, "read-only endpoint: use GET")
        return None

    # -- job routes ------------------------------------------------------

    def _submit_job(self, scenario):
        from repro.telemetry import current_trace_id

        job = _Job(job_id=self._next_id("job"), scenario=scenario,
                   trace_id=current_trace_id())
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self._mirror("jobs.rejected")
            self._m["jobs"].labels(workload=scenario.workload,
                                   outcome="rejected").inc()
            raise _HttpError(
                503, f"work queue full ({self.queue_size} jobs); "
                     f"retry later")
        self._jobs[job.job_id] = job
        self._mirror(f"jobs.submitted.{scenario.workload}")
        self._m["jobs"].labels(workload=scenario.workload,
                               outcome="submitted").inc()
        self._m["queue_depth"].set(self._queue.qsize())
        return 202, job.describe()

    def _route_job(self, method: str, job_id: str, rest: "list[str]",
                   query: dict):
        job = self._jobs.get(job_id)
        if job is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        self._get_only(method)
        if not rest:
            return 200, job.describe()
        if rest == ["result"]:
            if job.status != "done":
                raise _HttpError(
                    409, f"job {job_id} is {job.status}"
                         + (f": {job.error}" if job.error else ""))
            from repro.scenarios import ScenarioRun

            run = ScenarioRun(scenario=job.scenario, result=job.result)
            traces = query.get("traces") in ("1", "true")
            return 200, run.to_dict(include_traces=traces)
        raise _HttpError(404, f"no route for job {job_id}/{rest[0]}")

    # -- stream routes ---------------------------------------------------

    def _open_stream(self, scenario):
        from repro.serve.session import StreamSession

        try:
            session = StreamSession.from_scenario(scenario)
        except (KeyError, ValueError) as error:
            raise _HttpError(400, str(error))
        stream = _Stream(stream_id=self._next_id("stream"),
                         scenario=scenario, session=session)
        self._streams[stream.stream_id] = stream
        self._mirror(f"streams.opened.{scenario.workload}")
        self._m["streams_opened"].labels(
            workload=scenario.workload).inc()
        self._m["streams_open"].set(len(self._streams))
        return 201, stream.describe()

    async def _route_stream(self, method: str, stream_id: str,
                            rest: "list[str]", query: dict,
                            body: bytes):
        stream = self._streams.get(stream_id)
        if stream is None:
            raise _HttpError(404, f"unknown stream {stream_id!r}")
        if not rest:
            if method == "DELETE":
                del self._streams[stream_id]
                self._mirror("streams.closed")
                self._m["streams_closed"].inc()
                self._m["streams_open"].set(len(self._streams))
                return 200, {"stream_id": stream_id,
                             "status": "closed"}
            self._get_only(method)
            return 200, stream.describe()
        if rest == ["readings"]:
            if method != "POST":
                raise _HttpError(405, "use POST .../readings")
            return await self._push_readings(stream, body)
        self._get_only(method)
        if rest == ["result"]:
            if not stream.session.done:
                raise _HttpError(
                    409, f"stream {stream_id} has "
                         f"{stream.session.remaining} samples left")
            from repro.scenarios import ScenarioRun

            run = ScenarioRun(scenario=stream.scenario,
                              result=stream.session.result())
            traces = query.get("traces") in ("1", "true")
            return 200, run.to_dict(include_traces=traces)
        if rest == ["snapshot"]:
            async with stream.lock:
                return 200, stream.session.export_state()
        raise _HttpError(404,
                         f"no route for stream {stream_id}/{rest[0]}")

    async def _push_readings(self, stream: _Stream, body: bytes):
        data = self._json_body(body)
        count = data.get("count")
        if count is not None and (not isinstance(count, int)
                                  or isinstance(count, bool)
                                  or count < 1):
            raise _HttpError(400, "count must be a positive integer")
        loop = asyncio.get_running_loop()
        async with stream.lock:
            if stream.session.done:
                raise _HttpError(
                    409, f"stream {stream.stream_id} is exhausted")
            recorder = get_recorder()
            with recorder.span("serve.advance",
                               stream_id=stream.stream_id,
                               workload=stream.session.workload):
                # carry the request's trace id into the pool thread
                context = contextvars.copy_context()
                update = await loop.run_in_executor(
                    self._pool, context.run, stream.session.advance,
                    count)
            pushed = update.n_samples * stream.session.n_channels
            self._mirror("readings.pushed", pushed)
            self._m["readings"].labels(
                workload=stream.session.workload).inc(pushed)
            return 200, {
                "stream_id": stream.stream_id,
                "start": update.start,
                "stop": update.stop,
                "cursor": stream.session.cursor,
                "done": stream.session.done,
                "time_h": update.time_h,
                "values": update.values,
            }


async def _run_server(server: ReproServer) -> None:
    """Start and serve until interrupted (the CLI entry)."""
    await server.start()
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()


class ServerThread:
    """A :class:`ReproServer` on a background thread (tests, examples).

    Owns a private event loop; :meth:`start` returns once the listener
    is bound (so :attr:`port` is real), :meth:`stop` tears everything
    down.  Usable as a context manager.
    """

    def __init__(self, **kwargs: Any) -> None:
        self.server = ReproServer(**kwargs)
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._thread: "threading.Thread | None" = None
        self._started = threading.Event()

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        return self.server.port

    @property
    def host(self) -> str:
        """The bind host."""
        return self.server.host

    def start(self) -> "ServerThread":
        """Boot the loop thread and wait for the listener to bind."""
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._main,
                                        name="repro-serve",
                                        daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise RuntimeError("server failed to start within 30 s")
        return self

    def _main(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def boot() -> None:
            await self.server.start()
            self._started.set()

        self._loop.run_until_complete(boot())
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.server.stop())
            self._loop.close()

    def stop(self) -> None:
        """Stop the loop and join the thread."""
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
