"""Dispersion media for casting CNT films.

Carbon nanotubes aggregate in water; the choice of dispersant decides how
much of the nominal CNT area actually becomes electroactive and how easily
product molecules reach the electrode.  The paper's own sensors use Nafion
0.5 % (metabolites, following Wang et al. [54]) and chloroform (CYP drug
sensors); the literature baselines in Table 2 use mineral-oil paste,
sol-gel, chitosan and polyurethane/polypyrrole — each captured here with
the utilization/transport parameters that feed the film model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DispersionMedium:
    """How a casting medium conditions a CNT film.

    Attributes:
        name: medium identity.
        utilization: fraction of the nominal CNT sidewall area that ends up
            electroactive (well-dispersed Nafion films approach 0.5; clumpy
            mineral-oil pastes sit far lower).
        product_transport: relative permeability of the film to the detected
            product (H2O2) — a dense polymer slows collection.
        enzyme_affinity: relative capacity for enzyme immobilization per
            unit of electroactive area.
        notes: one-line provenance.
    """

    name: str
    utilization: float
    product_transport: float
    enzyme_affinity: float
    notes: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.utilization <= 1.0:
            raise ValueError(f"{self.name}: utilization must be in (0, 1]")
        if not 0.0 < self.product_transport <= 1.0:
            raise ValueError(f"{self.name}: product transport must be in (0, 1]")
        if self.enzyme_affinity <= 0:
            raise ValueError(f"{self.name}: enzyme affinity must be > 0")


NAFION = DispersionMedium(
    name="nafion",
    utilization=0.50,
    product_transport=0.85,
    enzyme_affinity=1.0,
    notes="Wang et al. [54]: Nafion solubilizes CNTs into uniform films",
)

CHLOROFORM = DispersionMedium(
    name="chloroform",
    utilization=0.40,
    product_transport=0.95,
    enzyme_affinity=1.1,
    notes="volatile solvent, leaves a binder-free CNT network (CYP sensors)",
)

MINERAL_OIL = DispersionMedium(
    name="mineral oil",
    utilization=0.06,
    product_transport=0.45,
    enzyme_affinity=0.5,
    notes="CNT paste electrodes (Rubianes & Rivas [41]) — low utilization",
)

SOL_GEL = DispersionMedium(
    name="sol-gel",
    utilization=0.25,
    product_transport=0.60,
    enzyme_affinity=0.9,
    notes="silica matrix entrapment (Huang et al. [19])",
)

CHITOSAN = DispersionMedium(
    name="chitosan",
    utilization=0.35,
    product_transport=0.75,
    enzyme_affinity=1.3,
    notes="biopolymer film (Zhang et al. [59])",
)

POLYURETHANE = DispersionMedium(
    name="polyurethane/polypyrrole",
    utilization=0.45,
    product_transport=0.70,
    enzyme_affinity=1.6,
    notes="electrophoretically packed PU/MWCNT + PP entrapment (Ammam [1])",
)

#: Placeholder for an unmodified electrode (no film cast).
BARE = DispersionMedium(
    name="bare",
    utilization=1.0,
    product_transport=1.0,
    enzyme_affinity=0.2,
    notes="no nanomaterial film; enzymes adsorb directly on the electrode",
)

_ALL = (NAFION, CHLOROFORM, MINERAL_OIL, SOL_GEL, CHITOSAN, POLYURETHANE, BARE)
_BY_NAME = {medium.name: medium for medium in _ALL}


def medium_by_name(name: str) -> DispersionMedium:
    """Look up a dispersion medium by name; raises ``KeyError`` if unknown."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown medium {name!r}; available: {sorted(_BY_NAME)}") from None
