"""Metallic nanoparticles (paper section 2.4).

Gold (and Ag/Pt) nanoparticles are the other mainstream electrode
nanostructuring route: easy surface functionalization, good voltammetric
sensitivity.  The model provides the same area/rate interface as the CNT
film so classification examples can compare the two quantitatively.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Density of gold [kg/m^3].
_GOLD_DENSITY = 19300.0


@dataclass(frozen=True)
class GoldNanoparticle:
    """A spherical gold nanoparticle.

    Attributes:
        diameter_m: particle diameter [m] (typically 5-50 nm).
        catalytic_factor: relative electrocatalytic activity of the curved
            nanoparticle surface vs. flat gold.
    """

    diameter_m: float
    catalytic_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.diameter_m <= 0:
            raise ValueError(f"diameter must be > 0, got {self.diameter_m}")
        if self.catalytic_factor <= 0:
            raise ValueError("catalytic factor must be > 0")

    @property
    def surface_area_m2(self) -> float:
        """Surface area of one particle [m^2]."""
        return math.pi * self.diameter_m ** 2

    @property
    def mass_kg(self) -> float:
        """Mass of one particle [kg]."""
        return _GOLD_DENSITY * math.pi * self.diameter_m ** 3 / 6.0

    @property
    def specific_surface_area_m2_kg(self) -> float:
        """Surface area per unit mass [m^2/kg]; grows as 1/diameter."""
        return self.surface_area_m2 / self.mass_kg


@dataclass(frozen=True)
class NanoparticleFilm:
    """A sub-monolayer of nanoparticles on an electrode.

    Attributes:
        particle: the nanoparticle variety.
        surface_coverage: fraction of the geometric area covered by
            particles (0..1, jamming limit ~0.55 for random adsorption).
    """

    particle: GoldNanoparticle
    surface_coverage: float = 0.3

    def __post_init__(self) -> None:
        if not 0.0 < self.surface_coverage <= 0.55:
            raise ValueError(
                "coverage must be in (0, 0.55] (random-adsorption jamming limit), "
                f"got {self.surface_coverage}")

    def area_enhancement(self) -> float:
        """Electroactive/geometric area ratio.

        Each adsorbed sphere adds its full surface (pi d^2) over the disk it
        blocks (pi d^2/4): a 4x multiplier weighted by coverage.
        """
        return 1.0 + 3.0 * self.surface_coverage

    def rate_enhancement(self) -> float:
        """k0 multiplier from the particles' catalytic surface."""
        return 1.0 + (self.particle.catalytic_factor - 1.0) * self.surface_coverage

    def particles_per_m2(self) -> float:
        """Number of particles per geometric area [1/m^2]."""
        footprint = math.pi * self.particle.diameter_m ** 2 / 4.0
        return self.surface_coverage / footprint
