"""Composite nanostructured film: the electrode surface modification.

Casting a CNT dispersion onto an electrode produces a porous film whose
effect on sensing is summarized by four multipliers consumed by the sensor
model:

* **area enhancement** — electroactive area / geometric area, from the CNT
  mass loading, the per-tube specific surface and the dispersion
  utilization;
* **rate enhancement** — heterogeneous rate constant (k0) multiplier from
  the CNT's fast electron transfer (edge-plane-like sites, tip emission);
* **capacitance enhancement** — the double layer grows with the real area;
* **enzyme capacity** — how much active enzyme the film can host.

These are exactly the knobs the CNT-ablation bench sweeps to reproduce the
paper's argument that nanostructuring the electrode lifts sensitivity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.chem.species import RedoxCouple
from repro.nano.cnt import CarbonNanotube, MWCNT_DROPSENS
from repro.nano.dispersion import BARE, DispersionMedium


@dataclass(frozen=True)
class NanostructuredFilm:
    """A cast film of nanotubes (or nothing) on an electrode.

    Attributes:
        nanotube: the CNT variety in the film, or ``None`` for a bare or
            polymer-only film.
        medium: the dispersion/casting medium.
        loading_kg_m2: CNT mass per geometric electrode area [kg/m^2].
            Typical drop-cast loadings are 10-100 ug/cm^2 = 1e-4..1e-3 kg/m^2.
        intrinsic_rate_enhancement: k0 multiplier *per unit of area
            enhancement saturation* attributable to CNT surface chemistry.
    """

    nanotube: CarbonNanotube | None = field(default=MWCNT_DROPSENS)
    medium: DispersionMedium = field(default=BARE)
    loading_kg_m2: float = 0.0
    intrinsic_rate_enhancement: float = 8.0

    def __post_init__(self) -> None:
        if self.loading_kg_m2 < 0:
            raise ValueError(f"loading must be >= 0, got {self.loading_kg_m2}")
        if self.intrinsic_rate_enhancement < 1.0:
            raise ValueError("intrinsic rate enhancement must be >= 1")
        if self.loading_kg_m2 > 0 and self.nanotube is None:
            raise ValueError("a non-zero loading requires a nanotube type")

    @classmethod
    def bare(cls) -> "NanostructuredFilm":
        """Return an unmodified (no-film) electrode surface."""
        return cls(nanotube=None, medium=BARE, loading_kg_m2=0.0,
                   intrinsic_rate_enhancement=1.0)

    @classmethod
    def mwcnt_nafion(cls, loading_kg_m2: float = 3e-4) -> "NanostructuredFilm":
        """The paper's metabolite-sensor film: MWCNT drop-cast in Nafion 0.5 %."""
        from repro.nano.dispersion import NAFION
        return cls(nanotube=MWCNT_DROPSENS, medium=NAFION,
                   loading_kg_m2=loading_kg_m2)

    @classmethod
    def mwcnt_chloroform(cls, loading_kg_m2: float = 4e-4) -> "NanostructuredFilm":
        """The paper's CYP-sensor film: MWCNT dispersed in chloroform on SPE."""
        from repro.nano.dispersion import CHLOROFORM
        return cls(nanotube=MWCNT_DROPSENS, medium=CHLOROFORM,
                   loading_kg_m2=loading_kg_m2)

    @property
    def has_nanotubes(self) -> bool:
        """True when the film contains a non-zero CNT loading."""
        return self.nanotube is not None and self.loading_kg_m2 > 0

    def area_enhancement(self) -> float:
        """Electroactive-to-geometric area ratio (>= 1).

        ``1 + loading * specific_area * utilization`` — a 30 ug/cm^2 Nafion
        film of 10 nm MWCNT lands near 10x, consistent with reported
        electroactive-area measurements.
        """
        if not self.has_nanotubes:
            return 1.0
        nominal = self.loading_kg_m2 * self.nanotube.specific_surface_area_m2_kg
        return 1.0 + nominal * self.medium.utilization

    def rate_enhancement(self) -> float:
        """Heterogeneous rate constant (k0) multiplier (>= 1).

        Saturating in loading: the first layers of tubes contribute the
        fast edge-plane-like sites; extra material mostly thickens the film.
        """
        if not self.has_nanotubes:
            return 1.0
        saturation = 1.0 - math.exp(-self.area_enhancement() / 5.0)
        return 1.0 + (self.intrinsic_rate_enhancement - 1.0) * saturation

    def capacitance_enhancement(self) -> float:
        """Double-layer capacitance multiplier (tracks the real area)."""
        return self.area_enhancement()

    def collection_efficiency(self) -> float:
        """Fraction of enzyme product collected by the electrode (0..1].

        The porous film intercepts most of the product generated inside it;
        the medium's transport term accounts for product escaping through a
        dense binder.
        """
        if not self.has_nanotubes:
            return 0.35 * self.medium.product_transport
        depth_capture = 1.0 - math.exp(-self.area_enhancement() / 3.0)
        return min(1.0, (0.35 + 0.65 * depth_capture) * self.medium.product_transport)

    def enzyme_capacity_mol_m2(self,
                               footprint_m2_per_mol: float = 3.6e7) -> float:
        """Maximum enzyme coverage the film can host [mol per geometric m^2].

        A close-packed monolayer of a ~60 kDa enzyme occupies roughly
        ``footprint_m2_per_mol`` (60 nm^2/molecule); the film multiplies the
        available surface by its area enhancement and the medium's affinity.
        """
        if footprint_m2_per_mol <= 0:
            raise ValueError("footprint must be > 0")
        monolayer = 1.0 / footprint_m2_per_mol
        return monolayer * self.area_enhancement() * self.medium.enzyme_affinity

    def modify_couple(self, couple: RedoxCouple) -> RedoxCouple:
        """Return ``couple`` with k0 boosted by the film's rate enhancement."""
        return couple.with_rate_enhancement(self.rate_enhancement())

    def film_thickness_m(self, porosity: float = 0.9) -> float:
        """Estimate the film thickness [m] from loading and porosity.

        ``t = loading / (rho_carbon (1 - porosity))`` — drop-cast CNT films
        are extremely porous (>= 85 % void).
        """
        if not 0.0 < porosity < 1.0:
            raise ValueError(f"porosity must be in (0, 1), got {porosity}")
        if not self.has_nanotubes:
            return 0.0
        solid_density = 2100.0  # kg/m^3, graphitic carbon
        return self.loading_kg_m2 / (solid_density * (1.0 - porosity))
