"""Semiconductor nanowire FET biosensor model (paper sections 2.3-2.4).

Nanowire field-effect transistors transduce surface charge — a bound target
shifts the channel conductance.  The paper classifies them as the main
*conductometric* alternative to the amperometric platform it develops; the
model here lets the classification examples compare the two transduction
mechanisms on the same analyte quantitatively.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SiliconNanowireFET:
    """A p-type silicon nanowire FET functionalized with receptors.

    Attributes:
        diameter_m: nanowire diameter [m].
        length_m: channel length [m].
        carrier_density_m3: hole density of the doped wire [1/m^3].
        mobility_m2_vs: carrier mobility [m^2/(V s)].
        receptor_density_m2: immobilized receptor sites per area [1/m^2].
        charges_per_binding: elementary charges delivered to the surface by
            one bound target (sign ignored; magnitude of the gating effect).
    """

    diameter_m: float = 20e-9
    length_m: float = 2e-6
    carrier_density_m3: float = 1e24
    mobility_m2_vs: float = 0.045
    receptor_density_m2: float = 1e15
    charges_per_binding: float = 5.0

    def __post_init__(self) -> None:
        if self.diameter_m <= 0 or self.length_m <= 0:
            raise ValueError("diameter and length must be > 0")
        if self.carrier_density_m3 <= 0 or self.mobility_m2_vs <= 0:
            raise ValueError("carrier density and mobility must be > 0")
        if self.receptor_density_m2 <= 0 or self.charges_per_binding <= 0:
            raise ValueError("receptor density and charge must be > 0")

    @property
    def cross_section_m2(self) -> float:
        """Channel cross-sectional area [m^2]."""
        return math.pi * self.diameter_m ** 2 / 4.0

    def baseline_conductance_s(self) -> float:
        """Unperturbed channel conductance [S]: G = q n mu A / L."""
        from repro.constants import ELEMENTARY_CHARGE
        return (ELEMENTARY_CHARGE * self.carrier_density_m3
                * self.mobility_m2_vs * self.cross_section_m2 / self.length_m)

    def fractional_response(self, occupancy: float) -> float:
        """Relative conductance change for receptor ``occupancy`` in [0, 1].

        Bound charge gates carriers out of (or into) the thin wire; the
        response scales with the surface-to-volume ratio — the reason
        nanowires, not microwires, make good sensors.
        """
        if not 0.0 <= occupancy <= 1.0:
            raise ValueError(f"occupancy must be in [0, 1], got {occupancy}")
        bound_charges_m2 = (self.receptor_density_m2 * occupancy
                            * self.charges_per_binding)
        carriers_per_area = self.carrier_density_m3 * self.diameter_m / 4.0
        return min(1.0, bound_charges_m2 / carriers_per_area)

    def binding_isotherm(self,
                         concentration_molar: np.ndarray | float,
                         kd_molar: float) -> np.ndarray | float:
        """Langmuir receptor occupancy at ``concentration_molar``.

        ``theta = C / (Kd + C)`` — same saturating form as Michaelis-Menten,
        so nanowire sensors share the linear-range/Km trade-off of the
        enzymatic platform.
        """
        if kd_molar <= 0:
            raise ValueError(f"Kd must be > 0, got {kd_molar}")
        conc = np.asarray(concentration_molar, dtype=float)
        if np.any(conc < 0):
            raise ValueError("concentrations must be >= 0")
        value = conc / (kd_molar + conc)
        if np.isscalar(concentration_molar):
            return float(value)
        return value

    def conductance_vs_concentration(self,
                                     concentration_molar: np.ndarray,
                                     kd_molar: float) -> np.ndarray:
        """Return channel conductance [S] across a concentration series."""
        occupancy = self.binding_isotherm(concentration_molar, kd_molar)
        baseline = self.baseline_conductance_s()
        responses = np.array([self.fractional_response(float(t))
                              for t in np.atleast_1d(occupancy)])
        return baseline * (1.0 - responses)
