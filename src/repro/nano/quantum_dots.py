"""Quantum dots as optical labels (paper section 2.4).

Quantum confinement makes the emission wavelength of a semiconductor
nanocrystal a function of its size — the property that makes QDs tunable
fluorescent labels for sensing elements.  A Brus-equation model suffices
for the classification examples that contrast optical labelling with the
label-free electrochemical platform the paper develops.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Planck constant [J s].
_PLANCK = 6.62607015e-34

#: Speed of light [m/s].
_LIGHT_SPEED = 2.99792458e8

#: Electron rest mass [kg].
_ELECTRON_MASS = 9.1093837015e-31

#: Joules per electronvolt.
_EV = 1.602176634e-19


@dataclass(frozen=True)
class QuantumDot:
    """A spherical semiconductor quantum dot.

    Attributes:
        name: material name (e.g. ``"CdSe"``).
        radius_m: dot radius [m]; must be below ~10 nm for confinement.
        bulk_gap_ev: bulk band gap [eV].
        effective_mass_electron: electron effective mass (units of m_e).
        effective_mass_hole: hole effective mass (units of m_e).
    """

    name: str
    radius_m: float
    bulk_gap_ev: float
    effective_mass_electron: float = 0.13
    effective_mass_hole: float = 0.45

    def __post_init__(self) -> None:
        if not 0.0 < self.radius_m <= 10e-9:
            raise ValueError(
                f"radius must be in (0, 10 nm] for quantum confinement, "
                f"got {self.radius_m}")
        if self.bulk_gap_ev <= 0:
            raise ValueError("bulk gap must be > 0")
        if self.effective_mass_electron <= 0 or self.effective_mass_hole <= 0:
            raise ValueError("effective masses must be > 0")

    def confinement_energy_ev(self) -> float:
        """Return the Brus confinement term [eV].

        ``dE = (h^2 / 8 R^2) (1/m_e* + 1/m_h*)`` — grows as the dot
        shrinks, blue-shifting the emission.
        """
        reduced = (1.0 / (self.effective_mass_electron * _ELECTRON_MASS)
                   + 1.0 / (self.effective_mass_hole * _ELECTRON_MASS))
        energy_j = _PLANCK ** 2 / (8.0 * self.radius_m ** 2) * reduced
        return energy_j / _EV

    def emission_energy_ev(self) -> float:
        """Total emission energy [eV]: bulk gap plus confinement."""
        return self.bulk_gap_ev + self.confinement_energy_ev()

    def emission_wavelength_m(self) -> float:
        """Peak emission wavelength [m]."""
        energy_j = self.emission_energy_ev() * _EV
        return _PLANCK * _LIGHT_SPEED / energy_j


def cdse_dot(radius_m: float) -> QuantumDot:
    """Convenience constructor for a CdSe dot of the given radius."""
    return QuantumDot(name="CdSe", radius_m=radius_m, bulk_gap_ev=1.74,
                      effective_mass_electron=0.13, effective_mass_hole=0.45)
