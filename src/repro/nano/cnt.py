"""Carbon nanotube geometry and transport model.

The paper (section 2.4, refs [26], [28], [29]) attributes the CNT advantage
to ballistic multichannel conduction (mean free path two orders of magnitude
beyond macroscale conductors), strong field emission from tips/walls, and
the sidewall's affinity for protein adsorption.  This module captures the
per-tube quantities that the film model aggregates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import ELEMENTARY_CHARGE

#: Planck constant [J s].
_PLANCK = 6.62607015e-34

#: Density of graphitic carbon walls [kg/m^3].
_GRAPHITE_DENSITY = 2100.0

#: Interlayer spacing of MWCNT walls [m] (graphite c-spacing).
_WALL_SPACING = 0.34e-9


def conductance_quantum() -> float:
    """Return the conductance quantum G0 = 2 e^2 / h [S].

    Each conducting channel of a ballistic nanotube contributes one G0
    (about 77.5 uS); multiwall tubes conduct through several walls
    simultaneously (Li et al. [26] measured multichannel ballistic
    transport in MWCNTs).
    """
    return 2.0 * ELEMENTARY_CHARGE ** 2 / _PLANCK


@dataclass(frozen=True)
class CarbonNanotube:
    """A multi-walled carbon nanotube.

    Attributes:
        outer_diameter_m: outer diameter [m] (paper: 10 nm).
        length_m: tube length [m] (paper: 1-2 um).
        n_walls: number of concentric walls.
        mean_free_path_m: ballistic mean free path [m]; ~25 um reported for
            MWCNT — two orders of magnitude beyond copper (~40 nm).
        conducting_channels_per_wall: transport channels contributed per
            participating wall.
    """

    outer_diameter_m: float
    length_m: float
    n_walls: int = 10
    mean_free_path_m: float = 25e-6
    conducting_channels_per_wall: float = 2.0

    def __post_init__(self) -> None:
        if self.outer_diameter_m <= 0 or self.length_m <= 0:
            raise ValueError("diameter and length must be > 0")
        if self.n_walls < 1:
            raise ValueError(f"n_walls must be >= 1, got {self.n_walls}")
        if self.mean_free_path_m <= 0:
            raise ValueError("mean free path must be > 0")
        max_walls = int(self.outer_diameter_m / (2.0 * _WALL_SPACING))
        if self.n_walls > max_walls:
            raise ValueError(
                f"{self.n_walls} walls cannot fit in a "
                f"{self.outer_diameter_m * 1e9:.1f} nm tube (max {max_walls})")

    @property
    def is_ballistic(self) -> bool:
        """True when the tube is shorter than its mean free path."""
        return self.length_m < self.mean_free_path_m

    @property
    def sidewall_area_m2(self) -> float:
        """Outer sidewall area [m^2] — the protein-adsorption surface."""
        return math.pi * self.outer_diameter_m * self.length_m

    @property
    def mass_kg(self) -> float:
        """Tube mass [kg], summing the cylindrical wall shells."""
        total_area = 0.0
        for wall in range(self.n_walls):
            diameter = self.outer_diameter_m - 2.0 * wall * _WALL_SPACING
            if diameter <= 0:
                break
            total_area += math.pi * diameter * self.length_m
        # Each wall is a graphene sheet: area density = rho * spacing.
        return total_area * _GRAPHITE_DENSITY * _WALL_SPACING

    @property
    def specific_surface_area_m2_kg(self) -> float:
        """Outer surface area per unit mass [m^2/kg].

        ~40-60 m^2/g for 10 nm MWCNT — the number that converts a film's
        mass loading into electroactive area.
        """
        return self.sidewall_area_m2 / self.mass_kg

    def ballistic_conductance_s(self) -> float:
        """Ohmic-ballistic conductance [S] of the tube.

        ``G = N_ch G0 / (1 + L/l_mfp)`` — reduces to pure ballistic
        ``N_ch G0`` for short tubes and to diffusive scaling for long ones.
        """
        channels = self.conducting_channels_per_wall * self.n_walls
        return (channels * conductance_quantum()
                / (1.0 + self.length_m / self.mean_free_path_m))

    def resistance_ohm(self) -> float:
        """Tube resistance [ohm] (inverse of the ballistic conductance)."""
        return 1.0 / self.ballistic_conductance_s()


#: The MWCNT used throughout the paper: DropSens, 10 nm diameter, 1-2 um long.
MWCNT_DROPSENS = CarbonNanotube(
    outer_diameter_m=10e-9,
    length_m=1.5e-6,
    n_walls=10,
)
