"""Nanomaterial substrate (paper section 2.4).

Carbon nanotubes are the paper's central enabling technology: their
ballistic conduction, fast heterogeneous electron transfer and enormous
surface area are what lift the developed sensors above flat-electrode
baselines.  This package models MWCNT films (and, for the classification
scope, nanoparticles, nanowires and quantum dots) in terms of the three
quantities the sensor model consumes: area enhancement, rate (k0)
enhancement and enzyme-loading capacity.
"""

from repro.nano.cnt import CarbonNanotube, MWCNT_DROPSENS, conductance_quantum
from repro.nano.dispersion import (
    DispersionMedium,
    NAFION,
    CHLOROFORM,
    MINERAL_OIL,
    SOL_GEL,
    CHITOSAN,
    POLYURETHANE,
    BARE,
    medium_by_name,
)
from repro.nano.film import NanostructuredFilm
from repro.nano.nanoparticles import GoldNanoparticle, NanoparticleFilm
from repro.nano.nanowires import SiliconNanowireFET
from repro.nano.quantum_dots import QuantumDot

__all__ = [
    "CarbonNanotube",
    "MWCNT_DROPSENS",
    "conductance_quantum",
    "DispersionMedium",
    "NAFION",
    "CHLOROFORM",
    "MINERAL_OIL",
    "SOL_GEL",
    "CHITOSAN",
    "POLYURETHANE",
    "BARE",
    "medium_by_name",
    "NanostructuredFilm",
    "GoldNanoparticle",
    "NanoparticleFilm",
    "SiliconNanowireFET",
    "QuantumDot",
]
