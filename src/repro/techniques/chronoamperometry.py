"""Chronoamperometry: the oxidase metabolite readout (paper section 3.1).

"The working electrode potential is set at +650 mV and the current
variation is recorded, since it is proportional to the target
concentration."  The simulator composes, per substrate addition:

* the enzymatic steady-state current (from the immobilized layer),
* a first-order relaxation with the film's response time,
* the double-layer charging spike of the initial potential step,
* a slowly decaying background (electrode conditioning).

Successive-addition records are the raw material of every oxidase
calibration in Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.chem.doublelayer import DoubleLayer
from repro.techniques.base import Measurement, Waveform
from repro.techniques.waveform import constant_potential


@dataclass(frozen=True)
class Chronoamperometry:
    """Constant-potential amperometric protocol.

    Attributes:
        potential_v: applied working potential [V]; the paper uses +0.65 V
            for H2O2 oxidation.
        sampling_rate_hz: analog simulation rate [Hz] (the acquisition chain
            decimates to its ADC rate downstream).
        background_current_a: stationary background (interferent oxidation,
            residual O2) [A].
        conditioning_tau_s: decay constant of the initial background
            transient [s].
    """

    potential_v: float = 0.65
    sampling_rate_hz: float = 20.0
    background_current_a: float = 0.0
    conditioning_tau_s: float = 5.0

    def __post_init__(self) -> None:
        if self.sampling_rate_hz <= 0:
            raise ValueError("sampling rate must be > 0")
        if self.conditioning_tau_s <= 0:
            raise ValueError("conditioning tau must be > 0")

    def waveform(self, duration_s: float) -> Waveform:
        """The (trivial) constant-potential waveform."""
        return constant_potential(self.potential_v, duration_s,
                                  self.sampling_rate_hz)

    def simulate_step(self,
                      steady_state_current: Callable[[float], float],
                      concentration_molar: float,
                      duration_s: float,
                      response_time_s: float,
                      initial_current_a: float = 0.0,
                      double_layer: DoubleLayer | None = None,
                      area_m2: float | None = None,
                      include_conditioning: bool = False) -> Measurement:
        """Simulate one concentration step.

        Args:
            steady_state_current: C [mol/L] -> plateau current [A].
            concentration_molar: substrate level during this step.
            duration_s: step duration.
            response_time_s: first-order sensor response time constant.
            initial_current_a: current level when the step starts (the
                plateau of the previous step in an additions sequence).
            double_layer / area_m2: include the charging spike of the
                initial potential application (both or neither).
            include_conditioning: add the decaying conditioning background.
        """
        if duration_s <= 0:
            raise ValueError("duration must be > 0")
        if response_time_s <= 0:
            raise ValueError("response time must be > 0")
        if (double_layer is None) != (area_m2 is None):
            raise ValueError("pass double_layer and area_m2 together")
        wave = self.waveform(duration_s)
        plateau = steady_state_current(concentration_molar)
        relaxation = np.exp(-wave.time_s / response_time_s)
        current = plateau + (initial_current_a - plateau) * relaxation
        if include_conditioning and self.background_current_a != 0.0:
            current = current + self.background_current_a * (
                1.0 + np.exp(-wave.time_s / self.conditioning_tau_s))
        elif self.background_current_a != 0.0:
            current = current + self.background_current_a
        if double_layer is not None:
            current = current + double_layer.step_transient(
                wave.time_s, self.potential_v, area_m2)
        return Measurement(
            time_s=wave.time_s,
            potential_v=wave.potential_v,
            current_a=current,
            technique="chronoamperometry",
            sampling_rate_hz=self.sampling_rate_hz,
            metadata={
                "concentration_molar": concentration_molar,
                "plateau_a": plateau,
            },
        )

    def simulate_step_batch(self,
                            plateaus_a: np.ndarray,
                            duration_s: float,
                            response_time_s: float,
                            initial_currents_a: np.ndarray | float = 0.0,
                            ) -> tuple[np.ndarray, np.ndarray]:
        """Simulate many concentration steps at once, vectorized.

        The workhorse of the batch engine: every cell of a calibration
        campaign shares the same time grid and relaxation kernel, so the
        whole panel reduces to one outer product instead of one
        :meth:`simulate_step` call per cell.

        Args:
            plateaus_a: steady-state plateau current per cell [A], shape
                ``(n_cells,)`` — the raw ``steady_state_current(c)``
                output, exactly what :meth:`simulate_step` computes from
                its callable.  Do NOT pre-add this protocol's
                ``background_current_a``; it is applied here, as in
                :meth:`simulate_step`.
            duration_s: shared step duration [s].
            response_time_s: shared first-order response time [s].
            initial_currents_a: starting current per cell (scalar or
                ``(n_cells,)``).

        Returns:
            ``(time_s, current_a)`` with shapes ``(n_samples,)`` and
            ``(n_cells, n_samples)``.  Matches the scalar
            :meth:`simulate_step` row-by-row (no double-layer spike, no
            conditioning — the single-point protocol's configuration).
        """
        if duration_s <= 0:
            raise ValueError("duration must be > 0")
        if response_time_s <= 0:
            raise ValueError("response time must be > 0")
        plateaus = np.atleast_1d(np.asarray(plateaus_a, dtype=float))
        if plateaus.ndim != 1:
            raise ValueError("plateaus must be a 1-D array of cells")
        initial = np.broadcast_to(
            np.asarray(initial_currents_a, dtype=float), plateaus.shape)
        wave = self.waveform(duration_s)
        relaxation = np.exp(-wave.time_s / response_time_s)
        current = (plateaus[:, None]
                   + (initial - plateaus)[:, None] * relaxation[None, :])
        if self.background_current_a != 0.0:
            current = current + self.background_current_a
        return wave.time_s, current

    def simulate_additions(self,
                           steady_state_current: Callable[[float], float],
                           concentrations_molar: list[float],
                           step_duration_s: float,
                           response_time_s: float,
                           double_layer: DoubleLayer | None = None,
                           area_m2: float | None = None) -> Measurement:
        """Simulate a successive-additions staircase record.

        Each entry of ``concentrations_molar`` holds for
        ``step_duration_s``; the first step carries the charging spike and
        conditioning background.  This regenerates the classic staircase
        figure of amperometric biosensor papers (figure-equivalent bench).
        """
        if not concentrations_molar:
            raise ValueError("need at least one concentration step")
        segments: list[Measurement] = []
        level = 0.0
        for index, concentration in enumerate(concentrations_molar):
            step = self.simulate_step(
                steady_state_current,
                concentration,
                step_duration_s,
                response_time_s,
                initial_current_a=level,
                double_layer=double_layer if index == 0 else None,
                area_m2=area_m2 if index == 0 else None,
                include_conditioning=index == 0,
            )
            segments.append(step)
            level = float(step.current_a[-1])
        current = np.concatenate([s.current_a for s in segments])
        time = np.arange(current.size) / self.sampling_rate_hz
        return Measurement(
            time_s=time,
            potential_v=np.full(current.size, self.potential_v),
            current_a=current,
            technique="chronoamperometry (successive additions)",
            sampling_rate_hz=self.sampling_rate_hz,
            metadata={
                "concentrations_molar": list(concentrations_molar),
                "step_duration_s": step_duration_s,
            },
        )
