"""Shared technique data structures."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Waveform:
    """A sampled excitation waveform.

    Attributes:
        time_s: sample timestamps [s], uniformly spaced from zero.
        potential_v: applied potential at each sample [V].
        sampling_rate_hz: sample rate [Hz].
    """

    time_s: np.ndarray
    potential_v: np.ndarray
    sampling_rate_hz: float

    def __post_init__(self) -> None:
        if self.time_s.shape != self.potential_v.shape:
            raise ValueError("time and potential must share one shape")
        if self.time_s.ndim != 1 or self.time_s.size < 2:
            raise ValueError("waveform needs at least two samples")
        if self.sampling_rate_hz <= 0:
            raise ValueError("sampling rate must be > 0")

    @property
    def duration_s(self) -> float:
        """Waveform duration [s]."""
        return float(self.time_s[-1])

    @property
    def n_samples(self) -> int:
        """Number of samples."""
        return int(self.time_s.size)

    def scan_rate_v_s(self) -> np.ndarray:
        """Instantaneous dE/dt [V/s] (finite differences, same length)."""
        return np.gradient(self.potential_v, self.time_s)


@dataclass(frozen=True)
class Measurement:
    """A simulated electrochemical record (pre-acquisition, noiseless).

    Attributes:
        time_s: timestamps [s].
        potential_v: applied potential [V].
        current_a: true faradaic + capacitive current [A].
        technique: generating technique name.
        sampling_rate_hz: sample rate [Hz].
        metadata: free-form context (concentrations, parameters...).
    """

    time_s: np.ndarray
    potential_v: np.ndarray
    current_a: np.ndarray
    technique: str
    sampling_rate_hz: float
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not (self.time_s.shape == self.potential_v.shape
                == self.current_a.shape):
            raise ValueError("measurement arrays must share one shape")
        if self.sampling_rate_hz <= 0:
            raise ValueError("sampling rate must be > 0")
