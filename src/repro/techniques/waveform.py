"""Excitation waveform builders."""

from __future__ import annotations

import numpy as np

from repro.techniques.base import Waveform


def constant_potential(potential_v: float,
                       duration_s: float,
                       sampling_rate_hz: float) -> Waveform:
    """Constant-potential waveform (chronoamperometry)."""
    _check(duration_s, sampling_rate_hz)
    n = max(2, int(round(duration_s * sampling_rate_hz)))
    time = np.arange(n) / sampling_rate_hz
    return Waveform(time_s=time,
                    potential_v=np.full(n, float(potential_v)),
                    sampling_rate_hz=sampling_rate_hz)


def linear_sweep_wave(e_start_v: float,
                      e_end_v: float,
                      scan_rate_v_s: float,
                      sampling_rate_hz: float) -> Waveform:
    """Single linear sweep from ``e_start_v`` to ``e_end_v``."""
    if scan_rate_v_s <= 0:
        raise ValueError(f"scan rate must be > 0, got {scan_rate_v_s}")
    if e_start_v == e_end_v:
        raise ValueError("sweep needs distinct start and end potentials")
    duration = abs(e_end_v - e_start_v) / scan_rate_v_s
    _check(duration, sampling_rate_hz)
    n = max(2, int(round(duration * sampling_rate_hz)))
    time = np.arange(n) / sampling_rate_hz
    potential = np.linspace(e_start_v, e_end_v, n)
    return Waveform(time_s=time, potential_v=potential,
                    sampling_rate_hz=sampling_rate_hz)


def cyclic_wave(e_start_v: float,
                e_vertex_v: float,
                scan_rate_v_s: float,
                sampling_rate_hz: float,
                n_cycles: int = 1) -> Waveform:
    """Triangular cyclic-voltammetry waveform.

    Each cycle sweeps ``e_start -> e_vertex -> e_start``; the hysteresis
    plot of the paper's CYP sensors is one such cycle.
    """
    if scan_rate_v_s <= 0:
        raise ValueError(f"scan rate must be > 0, got {scan_rate_v_s}")
    if n_cycles < 1:
        raise ValueError(f"n_cycles must be >= 1, got {n_cycles}")
    if e_start_v == e_vertex_v:
        raise ValueError("cycle needs distinct start and vertex potentials")
    half_duration = abs(e_vertex_v - e_start_v) / scan_rate_v_s
    _check(half_duration, sampling_rate_hz)
    n_half = max(2, int(round(half_duration * sampling_rate_hz)))
    forward = np.linspace(e_start_v, e_vertex_v, n_half, endpoint=False)
    backward = np.linspace(e_vertex_v, e_start_v, n_half, endpoint=False)
    one_cycle = np.concatenate([forward, backward])
    potential = np.tile(one_cycle, n_cycles)
    time = np.arange(potential.size) / sampling_rate_hz
    return Waveform(time_s=time, potential_v=potential,
                    sampling_rate_hz=sampling_rate_hz)


def staircase_wave(levels_v: list[float],
                   step_duration_s: float,
                   sampling_rate_hz: float) -> Waveform:
    """Piecewise-constant staircase through ``levels_v``."""
    if not levels_v:
        raise ValueError("need at least one level")
    _check(step_duration_s, sampling_rate_hz)
    n_step = max(2, int(round(step_duration_s * sampling_rate_hz)))
    potential = np.concatenate(
        [np.full(n_step, float(level)) for level in levels_v])
    time = np.arange(potential.size) / sampling_rate_hz
    return Waveform(time_s=time, potential_v=potential,
                    sampling_rate_hz=sampling_rate_hz)


def _check(duration_s: float, sampling_rate_hz: float) -> None:
    if duration_s <= 0:
        raise ValueError(f"duration must be > 0, got {duration_s}")
    if sampling_rate_hz <= 0:
        raise ValueError(f"sampling rate must be > 0, got {sampling_rate_hz}")
