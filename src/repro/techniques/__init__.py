"""Electrochemical measurement techniques (paper sections 2.3 and 3.1).

Two techniques carry the paper's own results — chronoamperometry at +650 mV
for the oxidase metabolite sensors and cyclic voltammetry for the CYP drug
sensors — with linear-sweep and differential-pulse voltammetry provided for
the literature baselines and classification scope.
"""

from repro.techniques.base import Measurement, Waveform
from repro.techniques.waveform import (
    constant_potential,
    linear_sweep_wave,
    cyclic_wave,
    staircase_wave,
)
from repro.techniques.chronoamperometry import Chronoamperometry
from repro.techniques.cyclic_voltammetry import CyclicVoltammetry
from repro.techniques.linear_sweep import LinearSweepVoltammetry
from repro.techniques.differential_pulse import (
    DifferentialPulseVoltammetry,
    dpv_solution_peak_current,
)

__all__ = [
    "Measurement",
    "Waveform",
    "constant_potential",
    "linear_sweep_wave",
    "cyclic_wave",
    "staircase_wave",
    "Chronoamperometry",
    "CyclicVoltammetry",
    "LinearSweepVoltammetry",
    "DifferentialPulseVoltammetry",
    "dpv_solution_peak_current",
]
