"""Differential-pulse voltammetry (DPV).

DPV superimposes small potential pulses on a staircase ramp and records the
current *difference* between pulse end and pulse start, cancelling most of
the capacitive background.  The literature cyclophosphamide sensor the
paper compares against (Palaska et al. [32]) is a DNA-modified electrode
read out by DPV; the model here provides the analytic solution-phase DPV
peak plus a surface-confined variant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import FARADAY, STANDARD_TEMPERATURE, thermal_voltage
from repro.chem.species import RedoxCouple
from repro.techniques.base import Measurement


def dpv_solution_peak_current(couple: RedoxCouple,
                              concentration_molar: float,
                              area_m2: float,
                              pulse_amplitude_v: float,
                              pulse_width_s: float,
                              temperature_k: float = STANDARD_TEMPERATURE,
                              ) -> float:
    """Analytic DPV peak height [A] for a reversible solution couple.

    ``di_peak = n F A C sqrt(D/(pi t_p)) (1-s)/(1+s)`` with
    ``s = exp(-n F dE / (2 R T))`` — the classic Parry-Osteryoung result.
    Peak height is linear in concentration, the property the DPV-based
    literature sensors exploit.
    """
    if concentration_molar < 0:
        raise ValueError("concentration must be >= 0")
    if area_m2 <= 0:
        raise ValueError("area must be > 0")
    if pulse_amplitude_v <= 0:
        raise ValueError("pulse amplitude must be > 0")
    if pulse_width_s <= 0:
        raise ValueError("pulse width must be > 0")
    sigma = math.exp(-couple.n_electrons * pulse_amplitude_v
                     / (2.0 * thermal_voltage(temperature_k)))
    conc_si = concentration_molar * 1e3
    return (couple.n_electrons * FARADAY * area_m2 * conc_si
            * math.sqrt(couple.diffusion_ox / (math.pi * pulse_width_s))
            * (1.0 - sigma) / (1.0 + sigma))


@dataclass(frozen=True)
class DifferentialPulseVoltammetry:
    """Differential-pulse protocol.

    Attributes:
        e_start_v / e_end_v: scan window [V].
        step_v: staircase increment [V].
        pulse_amplitude_v: pulse height [V].
        pulse_width_s: pulse duration [s].
    """

    e_start_v: float
    e_end_v: float
    step_v: float = 0.005
    pulse_amplitude_v: float = 0.05
    pulse_width_s: float = 0.05

    def __post_init__(self) -> None:
        if self.e_start_v == self.e_end_v:
            raise ValueError("scan window must be non-degenerate")
        if self.step_v <= 0:
            raise ValueError("step must be > 0")
        if self.pulse_amplitude_v <= 0:
            raise ValueError("pulse amplitude must be > 0")
        if self.pulse_width_s <= 0:
            raise ValueError("pulse width must be > 0")

    def potential_axis(self) -> np.ndarray:
        """Staircase base potentials of the scan [V]."""
        span = self.e_end_v - self.e_start_v
        n = max(2, int(round(abs(span) / self.step_v)) + 1)
        return np.linspace(self.e_start_v, self.e_end_v, n)

    def simulate_surface_couple(self,
                                couple: RedoxCouple,
                                coverage_mol_m2: float,
                                area_m2: float,
                                temperature_k: float = STANDARD_TEMPERATURE,
                                ) -> Measurement:
        """DPV of an adsorbed couple: differential Nernstian occupancy.

        Each pulse moves ``n F A Gamma [theta(E+dE) - theta(E)]`` of charge
        within the pulse width; the differential current is peak-shaped and
        proportional to coverage.
        """
        if coverage_mol_m2 <= 0:
            raise ValueError("coverage must be > 0")
        if area_m2 <= 0:
            raise ValueError("area must be > 0")
        potentials = self.potential_axis()
        nf = couple.n_electrons / thermal_voltage(temperature_k)

        def occupancy(potential: np.ndarray) -> np.ndarray:
            xi = np.clip(nf * (potential - couple.formal_potential), -60.0, 60.0)
            return np.exp(xi) / (1.0 + np.exp(xi))

        direction = math.copysign(1.0, self.e_end_v - self.e_start_v)
        delta_theta = (occupancy(potentials + direction * self.pulse_amplitude_v)
                       - occupancy(potentials))
        charge = couple.n_electrons * FARADAY * area_m2 * coverage_mol_m2
        differential_current = charge * delta_theta / self.pulse_width_s
        period = 4.0 * self.pulse_width_s
        time = np.arange(potentials.size) * period
        return Measurement(
            time_s=time,
            potential_v=potentials,
            current_a=differential_current,
            technique="differential pulse voltammetry (surface couple)",
            sampling_rate_hz=1.0 / period,
            metadata={"couple": couple.name,
                      "coverage_mol_m2": coverage_mol_m2},
        )

    def simulate_solution_couple(self,
                                 couple: RedoxCouple,
                                 concentration_molar: float,
                                 area_m2: float,
                                 temperature_k: float = STANDARD_TEMPERATURE,
                                 ) -> Measurement:
        """DPV of a diffusing couple: analytic peak-shaped response.

        The response follows the derivative-of-sigmoid shape centred at the
        half-wave potential with the Parry-Osteryoung peak height.
        """
        if concentration_molar < 0:
            raise ValueError("concentration must be >= 0")
        potentials = self.potential_axis()
        peak = dpv_solution_peak_current(
            couple, concentration_molar, area_m2,
            self.pulse_amplitude_v, self.pulse_width_s, temperature_k)
        nf = couple.n_electrons / thermal_voltage(temperature_k)
        xi = np.clip(nf * (potentials - couple.formal_potential), -60.0, 60.0)
        bell = 4.0 * np.exp(xi) / (1.0 + np.exp(xi)) ** 2
        period = 4.0 * self.pulse_width_s
        time = np.arange(potentials.size) * period
        return Measurement(
            time_s=time,
            potential_v=potentials,
            current_a=peak * bell,
            technique="differential pulse voltammetry (solution couple)",
            sampling_rate_hz=1.0 / period,
            metadata={"couple": couple.name,
                      "concentration_molar": concentration_molar},
        )
