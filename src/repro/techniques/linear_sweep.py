"""Linear-sweep voltammetry (single direction).

The forward half of a cyclic voltammogram; used for technique-comparison
examples and as the building block of the differential-pulse protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.diffusion import ElectrodeDiffusionSystem
from repro.chem.doublelayer import DoubleLayer
from repro.chem.species import RedoxCouple
from repro.techniques.base import Measurement, Waveform
from repro.techniques.waveform import linear_sweep_wave


@dataclass(frozen=True)
class LinearSweepVoltammetry:
    """Single linear potential sweep.

    Attributes:
        e_start_v: start potential [V].
        e_end_v: end potential [V].
        scan_rate_v_s: sweep rate [V/s].
        sampling_rate_hz: analog simulation rate [Hz].
    """

    e_start_v: float
    e_end_v: float
    scan_rate_v_s: float = 0.05
    sampling_rate_hz: float = 200.0

    def __post_init__(self) -> None:
        if self.scan_rate_v_s <= 0:
            raise ValueError("scan rate must be > 0")
        if self.sampling_rate_hz <= 0:
            raise ValueError("sampling rate must be > 0")
        if self.e_start_v == self.e_end_v:
            raise ValueError("start and end potentials must differ")

    def waveform(self) -> Waveform:
        """The linear excitation waveform."""
        return linear_sweep_wave(self.e_start_v, self.e_end_v,
                                 self.scan_rate_v_s, self.sampling_rate_hz)

    def simulate_solution_couple(self,
                                 couple: RedoxCouple,
                                 bulk_ox_molar: float,
                                 bulk_red_molar: float,
                                 area_m2: float,
                                 double_layer: DoubleLayer | None = None,
                                 ) -> Measurement:
        """Simulate a diffusing couple under the sweep (finite differences)."""
        wave = self.waveform()
        system = ElectrodeDiffusionSystem(
            couple=couple,
            area_m2=area_m2,
            bulk_ox_molar=bulk_ox_molar,
            bulk_red_molar=bulk_red_molar,
            duration_s=wave.duration_s + 1.0 / self.sampling_rate_hz,
            n_time_steps=wave.n_samples,
        )
        current = system.run(wave.potential_v)
        if double_layer is not None:
            sweep_sign = np.sign(self.e_end_v - self.e_start_v)
            current = current + sweep_sign * double_layer.sweep_transient(
                wave.time_s, self.scan_rate_v_s, area_m2)
        return Measurement(
            time_s=wave.time_s,
            potential_v=wave.potential_v,
            current_a=current,
            technique="linear sweep voltammetry",
            sampling_rate_hz=self.sampling_rate_hz,
            metadata={"couple": couple.name},
        )
