"""Cyclic voltammetry: the CYP drug readout (paper section 3.1).

"A linear-sweep potential is applied forward and backward within a certain
potential window, while continuously monitoring the current.  The
hysteresis plot gives qualitative and quantitative information about the
detected target.  In particular, the peak height is proportional to drug
concentration."

Three simulation modes are provided:

* **solution couple** — full finite-difference diffusion with Butler-Volmer
  kinetics (:class:`repro.chem.diffusion.ElectrodeDiffusionSystem`);
  validated against Randles-Sevcik and used for the ferricyanide
  characterization figure;
* **surface-confined couple** — the adsorbed CYP heme redox wave (analytic
  Nernstian bell);
* **catalytic CYP wave** — the drug-sensing signal: substrate turnover by
  the reduced heme adds a sigmoidal catalytic reduction current whose
  plateau follows Michaelis-Menten in the drug concentration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import FARADAY, STANDARD_TEMPERATURE, thermal_voltage
from repro.chem.diffusion import ElectrodeDiffusionSystem
from repro.chem.doublelayer import DoubleLayer
from repro.chem.species import RedoxCouple
from repro.enzymes.immobilization import ImmobilizedLayer
from repro.techniques.base import Measurement, Waveform
from repro.techniques.waveform import cyclic_wave


@dataclass(frozen=True)
class CyclicVoltammetry:
    """Triangular-wave voltammetric protocol.

    Attributes:
        e_start_v: start (and return) potential [V].
        e_vertex_v: vertex potential [V].
        scan_rate_v_s: sweep rate [V/s].
        n_cycles: number of triangular cycles.
        sampling_rate_hz: analog simulation rate [Hz].
    """

    e_start_v: float
    e_vertex_v: float
    scan_rate_v_s: float = 0.05
    n_cycles: int = 1
    sampling_rate_hz: float = 200.0

    def __post_init__(self) -> None:
        if self.scan_rate_v_s <= 0:
            raise ValueError("scan rate must be > 0")
        if self.n_cycles < 1:
            raise ValueError("need >= 1 cycle")
        if self.sampling_rate_hz <= 0:
            raise ValueError("sampling rate must be > 0")
        if self.e_start_v == self.e_vertex_v:
            raise ValueError("start and vertex potentials must differ")

    def waveform(self) -> Waveform:
        """The triangular excitation waveform."""
        return cyclic_wave(self.e_start_v, self.e_vertex_v,
                           self.scan_rate_v_s, self.sampling_rate_hz,
                           self.n_cycles)

    # ------------------------------------------------------------------
    # Solution-phase couple (finite-difference engine).
    # ------------------------------------------------------------------

    def simulate_solution_couple(self,
                                 couple: RedoxCouple,
                                 bulk_ox_molar: float,
                                 bulk_red_molar: float,
                                 area_m2: float,
                                 double_layer: DoubleLayer | None = None,
                                 ) -> Measurement:
        """Simulate a diffusing redox couple through the full cycle.

        The reversible peak current of the result matches the
        Randles-Sevcik law within a few percent (validated in tests and the
        solver bench).
        """
        wave = self.waveform()
        system = ElectrodeDiffusionSystem(
            couple=couple,
            area_m2=area_m2,
            bulk_ox_molar=bulk_ox_molar,
            bulk_red_molar=bulk_red_molar,
            duration_s=wave.duration_s + 1.0 / self.sampling_rate_hz,
            n_time_steps=wave.n_samples,
        )
        current = system.run(wave.potential_v)
        if double_layer is not None:
            current = current + self._capacitive_background(
                wave, double_layer, area_m2)
        return Measurement(
            time_s=wave.time_s,
            potential_v=wave.potential_v,
            current_a=current,
            technique="cyclic voltammetry (solution couple)",
            sampling_rate_hz=self.sampling_rate_hz,
            metadata={
                "couple": couple.name,
                "bulk_ox_molar": bulk_ox_molar,
                "bulk_red_molar": bulk_red_molar,
            },
        )

    # ------------------------------------------------------------------
    # Surface-confined couple (adsorbed protein film).
    # ------------------------------------------------------------------

    def simulate_surface_couple(self,
                                couple: RedoxCouple,
                                coverage_mol_m2: float,
                                area_m2: float,
                                double_layer: DoubleLayer | None = None,
                                temperature_k: float = STANDARD_TEMPERATURE,
                                ) -> Measurement:
        """Simulate the Nernstian wave of an adsorbed redox couple.

        For a surface-confined couple at equilibrium the current is
        ``i = n F A Gamma (d theta_ox/dE) (dE/dt)`` — a symmetric bell
        centred on the formal potential, with height proportional to both
        coverage and scan rate (the classic surface-wave diagnostics).
        """
        if coverage_mol_m2 <= 0:
            raise ValueError("coverage must be > 0")
        if area_m2 <= 0:
            raise ValueError("area must be > 0")
        wave = self.waveform()
        current = self._surface_wave_current(
            wave, couple, coverage_mol_m2, area_m2, temperature_k)
        if double_layer is not None:
            current = current + self._capacitive_background(
                wave, double_layer, area_m2)
        return Measurement(
            time_s=wave.time_s,
            potential_v=wave.potential_v,
            current_a=current,
            technique="cyclic voltammetry (surface couple)",
            sampling_rate_hz=self.sampling_rate_hz,
            metadata={
                "couple": couple.name,
                "coverage_mol_m2": coverage_mol_m2,
            },
        )

    # ------------------------------------------------------------------
    # Catalytic CYP drug wave.
    # ------------------------------------------------------------------

    def simulate_catalytic_cyp(self,
                               layer: ImmobilizedLayer,
                               couple: RedoxCouple,
                               substrate_molar: float,
                               area_m2: float,
                               double_layer: DoubleLayer | None = None,
                               interference_bell_a: float = 0.0,
                               peak_weight: float = 0.65,
                               temperature_k: float = STANDARD_TEMPERATURE,
                               ) -> Measurement:
        """Simulate the drug-sensing voltammogram of a CYP electrode.

        The current is the sum of

        * the heme surface wave (present with or without drug),
        * the catalytic reduction wave: once the heme is reduced
          (potential below E0'), immobilized CYP turns over the drug at the
          Michaelis-Menten rate.  Substrate depletion in the film makes the
          measured wave *peak-shaped* rather than a pure sigmoid — the
          reason the paper can quantify via "peak height" at all.  The wave
          is modelled as ``peak_weight`` of a bell centred on E0' (the
          kinetically-controlled, depletion-limited component) plus the
          remainder as the persistent sigmoidal plateau:
          ``i_cat = -i_max(C) [w bell(E) + (1-w) f_red(E)]`` with
          ``i_max = n F A eta Gamma kcat_eff C/(Km+C)``,
        * the capacitive background, and
        * an optional bell-shaped interference term (dissolved-O2 reduction
          at the heme potential) used by the noise model.
        """
        if substrate_molar < 0:
            raise ValueError("substrate concentration must be >= 0")
        if area_m2 <= 0:
            raise ValueError("area must be > 0")
        if not 0.0 <= peak_weight <= 1.0:
            raise ValueError(f"peak weight must be in [0, 1], got {peak_weight}")
        wave = self.waveform()
        surface = self._surface_wave_current(
            wave, couple, layer.coverage_mol_m2, area_m2, temperature_k)

        f_red = self._reduced_fraction(wave.potential_v, couple, temperature_k)
        bell = self._bell(wave.potential_v, couple, temperature_k)
        catalytic_plateau = (layer.enzyme.n_electrons * FARADAY * area_m2
                             * layer.collection_efficiency
                             * layer.areal_rate(substrate_molar))
        catalytic = -catalytic_plateau * (
            peak_weight * bell + (1.0 - peak_weight) * f_red)

        current = surface + catalytic
        if interference_bell_a != 0.0:
            current = current + interference_bell_a * self._bell(
                wave.potential_v, couple, temperature_k)
        if double_layer is not None:
            current = current + self._capacitive_background(
                wave, double_layer, area_m2)
        return Measurement(
            time_s=wave.time_s,
            potential_v=wave.potential_v,
            current_a=current,
            technique="cyclic voltammetry (catalytic CYP)",
            sampling_rate_hz=self.sampling_rate_hz,
            metadata={
                "substrate_molar": substrate_molar,
                "catalytic_plateau_a": catalytic_plateau,
                "enzyme": layer.enzyme.name,
            },
        )

    # ------------------------------------------------------------------
    # Shared helpers.
    # ------------------------------------------------------------------

    def _surface_wave_current(self,
                              wave: Waveform,
                              couple: RedoxCouple,
                              coverage_mol_m2: float,
                              area_m2: float,
                              temperature_k: float) -> np.ndarray:
        nf = couple.n_electrons / thermal_voltage(temperature_k)
        xi = nf * (wave.potential_v - couple.formal_potential)
        xi = np.clip(xi, -60.0, 60.0)
        occupancy_derivative = nf * np.exp(xi) / (1.0 + np.exp(xi)) ** 2
        scan_rate = wave.scan_rate_v_s()
        return (couple.n_electrons * FARADAY * area_m2 * coverage_mol_m2
                * occupancy_derivative * scan_rate)

    @staticmethod
    def _reduced_fraction(potential_v: np.ndarray,
                          couple: RedoxCouple,
                          temperature_k: float) -> np.ndarray:
        nf = couple.n_electrons / thermal_voltage(temperature_k)
        xi = np.clip(nf * (potential_v - couple.formal_potential), -60.0, 60.0)
        return 1.0 / (1.0 + np.exp(xi))

    @staticmethod
    def _bell(potential_v: np.ndarray,
              couple: RedoxCouple,
              temperature_k: float) -> np.ndarray:
        nf = couple.n_electrons / thermal_voltage(temperature_k)
        xi = np.clip(nf * (potential_v - couple.formal_potential), -60.0, 60.0)
        bell = np.exp(xi) / (1.0 + np.exp(xi)) ** 2
        return 4.0 * bell  # normalized to unit height at the formal potential

    def _capacitive_background(self,
                               wave: Waveform,
                               double_layer: DoubleLayer,
                               area_m2: float) -> np.ndarray:
        """RC-smoothed charging current following the sweep direction."""
        from scipy.signal import lfilter

        ideal = double_layer.capacitance(area_m2) * wave.scan_rate_v_s()
        tau = double_layer.time_constant(area_m2)
        if tau == 0.0:
            return ideal
        alpha = 1.0 - np.exp(-1.0 / (self.sampling_rate_hz * tau))
        b = [alpha]
        a = [1.0, -(1.0 - alpha)]
        zi = [(1.0 - alpha) * ideal[0]]
        smoothed, __ = lfilter(b, a, ideal, zi=zi)
        return smoothed
