"""Physiological / therapeutic concentration ranges and trajectories.

Whether a sensor's linear range *covers the clinically relevant window* is
the acceptance criterion behind several Table 2 narratives: the N-doped CNT
lactate sensor [16] beats the paper's sensitivity but its 0.014-0.325 mM
range "cannot fit with physiological lactate concentration" (section 3.2.2).

For the continuous-monitoring workload (the paper's chronic-patient
pitch), a static window is not enough: the streaming monitor
(:mod:`repro.engine.monitor`) needs the concentration a patient actually
*traverses* over days of wear.  :class:`ConcentrationTrajectory` models
that as a circadian oscillation around a baseline plus periodic
meal/dose excursions with first-order clearance — deterministic in time,
so a cohort evaluates as one vectorized pass; the random physiological
component rides on top as a seedable Ornstein-Uhlenbeck process managed
by the monitor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PhysiologicalRange:
    """Clinically relevant concentration window for an analyte.

    Attributes:
        analyte: analyte name.
        low_molar / high_molar: window bounds [mol/L].
        context: fluid / scenario the window refers to.
    """

    analyte: str
    low_molar: float
    high_molar: float
    context: str

    def __post_init__(self) -> None:
        if not 0.0 <= self.low_molar < self.high_molar:
            raise ValueError(
                f"{self.analyte}: need 0 <= low < high, got "
                f"({self.low_molar}, {self.high_molar})")

    def contains(self, concentration_molar: float) -> bool:
        """True when ``concentration_molar`` is inside the window."""
        return self.low_molar <= concentration_molar <= self.high_molar

    @property
    def span_molar(self) -> float:
        """Window width [mol/L]."""
        return self.high_molar - self.low_molar


@dataclass(frozen=True)
class ConcentrationTrajectory:
    """Concentration course of one monitored patient channel.

    The deterministic part — evaluable at arbitrary wear times, which is
    what makes chunked streaming reproducible — is a baseline with a
    circadian oscillation plus periodic excursions (meals for metabolites,
    doses for drugs) that clear first-order:

    ``C(t) = baseline + A_c sin(2 pi (t - phase)/period)
           + A_e exp(-dt/tau) / (1 - exp(-interval/tau))``

    where ``dt`` is the time since the latest excursion (steady-state sum
    over all past events).  The stochastic physiological component is
    described by the OU parameters ``noise_sigma_molar``/``noise_tau_h``;
    the streaming monitor draws it per channel via
    :func:`repro.signal.drift.ou_process_batch`.

    Attributes:
        baseline_molar: resting concentration [mol/L].
        circadian_amplitude_molar: amplitude of the 24 h oscillation
            [mol/L] (0 disables it).
        circadian_period_h: oscillation period [h].
        circadian_phase_h: time of the oscillation's zero upcrossing [h].
        excursion_amplitude_molar: peak height of each meal/dose
            excursion [mol/L] (0 disables them).
        excursion_interval_h: excursion cadence [h] (e.g. 6 h meals,
            12 h doses).
        excursion_tau_h: first-order clearance time of an excursion [h].
        noise_sigma_molar: stationary std of the random physiological
            component [mol/L] (consumed by the monitor).
        noise_tau_h: correlation time of that component [h].
        floor_molar: physical lower clamp [mol/L] applied after noise.
    """

    baseline_molar: float
    circadian_amplitude_molar: float = 0.0
    circadian_period_h: float = 24.0
    circadian_phase_h: float = 0.0
    excursion_amplitude_molar: float = 0.0
    excursion_interval_h: float = 6.0
    excursion_tau_h: float = 1.5
    noise_sigma_molar: float = 0.0
    noise_tau_h: float = 1.0
    floor_molar: float = 0.0

    def __post_init__(self) -> None:
        if self.baseline_molar < 0 or (
                self.baseline_molar == 0.0
                and self.excursion_amplitude_molar == 0.0):
            # A zero baseline is legal only when excursions carry the
            # signal (PK-driven drug courses decay to ~zero troughs).
            raise ValueError("baseline must be > 0 (or excursions present)")
        if self.circadian_amplitude_molar < 0:
            raise ValueError("circadian amplitude must be >= 0")
        if self.circadian_period_h <= 0:
            raise ValueError("circadian period must be > 0")
        if self.excursion_amplitude_molar < 0:
            raise ValueError("excursion amplitude must be >= 0")
        if self.excursion_interval_h <= 0 or self.excursion_tau_h <= 0:
            raise ValueError("excursion interval and tau must be > 0")
        if self.noise_sigma_molar < 0:
            raise ValueError("noise sigma must be >= 0")
        if self.noise_tau_h <= 0:
            raise ValueError("noise tau must be > 0")
        if self.floor_molar < 0:
            raise ValueError("floor must be >= 0")

    def mean_molar(self, hours: np.ndarray | float) -> np.ndarray | float:
        """Deterministic concentration [mol/L] at the given wear times.

        Pure function of absolute wear time — never of how the caller
        chunks the time axis — which is the property the streaming
        monitor's chunk-invariance contract rests on.

        Args:
            hours: wear times [h], scalar or any array shape.

        Returns:
            Concentrations [mol/L], shaped like the input.
        """
        t = np.asarray(hours, dtype=float)
        if np.any(t < 0):
            raise ValueError("wear time must be >= 0")
        value = np.full_like(t, self.baseline_molar, dtype=float)
        if self.circadian_amplitude_molar > 0:
            value = value + self.circadian_amplitude_molar * np.sin(
                2.0 * np.pi * (t - self.circadian_phase_h)
                / self.circadian_period_h)
        if self.excursion_amplitude_molar > 0:
            since_last = np.mod(t, self.excursion_interval_h)
            # Steady-state geometric sum over all previous excursions.
            normalization = 1.0 - np.exp(
                -self.excursion_interval_h / self.excursion_tau_h)
            value = value + (self.excursion_amplitude_molar
                             * np.exp(-since_last / self.excursion_tau_h)
                             / normalization)
        value = np.maximum(value, self.floor_molar)
        if np.isscalar(hours):
            return float(value)
        return value

    @classmethod
    def from_pk(cls, model: "OneCompartmentPK",  # noqa: F821 (lazy import)
                dose_mol: float,
                interval_h: float,
                relative_noise: float = 0.0,
                noise_tau_h: float = 1.0,
                baseline_molar: float = 0.0) -> "ConcentrationTrajectory":
        """Map a steady-state repeat-dose regimen onto the trajectory.

        The excursion term of this class *is* the steady-state
        superposition of a mono-exponentially cleared repeated input —
        so a one-compartment IV bolus regimen maps onto it **exactly**:
        amplitude ``F D / V``, clearance time ``1/ke``, cadence the
        dosing interval.  For oral dosing the same mapping is the
        standard peak envelope (absorption smooths the rising edge but
        leaves the cleared tail, which dominates trough behavior,
        unchanged).  This is the bridge that lets existing monitor
        workloads (:mod:`repro.engine.monitor`) consume PK-driven drug
        courses without adopting the full therapy engine.

        Args:
            model: the patient's one-compartment model
                (:class:`repro.pk.models.OneCompartmentPK`).
            dose_mol: maintenance dose [mol].
            interval_h: dosing interval [h], > 0.
            relative_noise: OU noise sigma as a fraction of the
                excursion amplitude.
            noise_tau_h: correlation time of that noise [h].
            baseline_molar: endogenous background level [mol/L]
                (0 for xenobiotic drugs).

        Returns:
            The equivalent :class:`ConcentrationTrajectory`.
        """
        if dose_mol <= 0:
            raise ValueError("dose must be > 0")
        if interval_h <= 0:
            raise ValueError("dose interval must be > 0")
        if relative_noise < 0:
            raise ValueError("relative noise must be >= 0")
        amplitude = (model.bioavailability * dose_mol / model.volume_l)
        return cls(
            baseline_molar=baseline_molar,
            excursion_amplitude_molar=amplitude,
            excursion_interval_h=interval_h,
            excursion_tau_h=1.0 / model.elimination_rate_per_h,
            noise_sigma_molar=relative_noise * amplitude,
            noise_tau_h=noise_tau_h,
            floor_molar=0.0,
        )

    @classmethod
    def for_analyte(cls, analyte: str,
                    relative_noise: float = 0.03) -> "ConcentrationTrajectory":
        """Build a representative trajectory inside an analyte's window.

        The baseline sits at the window midpoint; the circadian swing and
        meal/dose excursions each span a fraction of the window, so the
        whole course stays clinically plausible (and inside the linear
        range of a sensor that covers the window).

        Args:
            analyte: key into the physiological-range catalog.
            relative_noise: OU noise sigma as a fraction of the window
                span.

        Returns:
            A :class:`ConcentrationTrajectory` for one patient channel.
        """
        window = physiological_range(analyte)
        mid = 0.5 * (window.low_molar + window.high_molar)
        span = window.span_molar
        return cls(
            baseline_molar=mid,
            circadian_amplitude_molar=0.15 * span,
            excursion_amplitude_molar=0.20 * span,
            excursion_interval_h=6.0,
            excursion_tau_h=1.5,
            noise_sigma_molar=relative_noise * span,
            noise_tau_h=1.0,
            floor_molar=max(window.low_molar * 0.25, 0.0),
        )


_RANGES: dict[str, PhysiologicalRange] = {
    "glucose": PhysiologicalRange(
        "glucose", 3.0e-3, 10.0e-3, "blood, normal-to-hyperglycemic"),
    "lactate": PhysiologicalRange(
        "lactate", 0.5e-3, 2.0e-3, "resting blood (up to ~25 mM in exercise)"),
    "glutamate": PhysiologicalRange(
        "glutamate", 1.0e-6, 100e-6, "extracellular brain tissue / culture"),
    "arachidonic acid": PhysiologicalRange(
        "arachidonic acid", 1.0e-6, 20e-6, "free plasma fraction"),
    "cyclophosphamide": PhysiologicalRange(
        "cyclophosphamide", 10e-6, 60e-6, "plasma during therapy"),
    "ifosfamide": PhysiologicalRange(
        "ifosfamide", 20e-6, 120e-6, "plasma during therapy"),
    "ftorafur": PhysiologicalRange(
        "ftorafur", 1.0e-6, 8e-6, "plasma during therapy"),
    "cell-culture lactate": PhysiologicalRange(
        "cell-culture lactate", 0.1e-3, 1.0e-3,
        "neural cell culture medium (the paper's monitoring use case)"),
}


def physiological_range(analyte: str) -> PhysiologicalRange:
    """Return the clinical window for ``analyte`` (KeyError when unknown)."""
    try:
        return _RANGES[analyte]
    except KeyError:
        raise KeyError(
            f"no physiological range for {analyte!r}; "
            f"available: {sorted(_RANGES)}") from None


def covers_physiological_range(analyte: str,
                               linear_low_molar: float,
                               linear_high_molar: float) -> bool:
    """True when a sensor's linear range covers the full clinical window.

    This is the check behind the section 3.2.2 narrative: a sensor may beat
    another on sensitivity yet fail here.
    """
    if linear_low_molar < 0 or linear_high_molar <= linear_low_molar:
        raise ValueError("need 0 <= low < high")
    window = physiological_range(analyte)
    return (linear_low_molar <= window.low_molar
            and linear_high_molar >= window.high_molar)
