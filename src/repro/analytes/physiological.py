"""Physiological / therapeutic concentration ranges.

Whether a sensor's linear range *covers the clinically relevant window* is
the acceptance criterion behind several Table 2 narratives: the N-doped CNT
lactate sensor [16] beats the paper's sensitivity but its 0.014-0.325 mM
range "cannot fit with physiological lactate concentration" (section 3.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PhysiologicalRange:
    """Clinically relevant concentration window for an analyte.

    Attributes:
        analyte: analyte name.
        low_molar / high_molar: window bounds [mol/L].
        context: fluid / scenario the window refers to.
    """

    analyte: str
    low_molar: float
    high_molar: float
    context: str

    def __post_init__(self) -> None:
        if not 0.0 <= self.low_molar < self.high_molar:
            raise ValueError(
                f"{self.analyte}: need 0 <= low < high, got "
                f"({self.low_molar}, {self.high_molar})")

    def contains(self, concentration_molar: float) -> bool:
        """True when ``concentration_molar`` is inside the window."""
        return self.low_molar <= concentration_molar <= self.high_molar

    @property
    def span_molar(self) -> float:
        """Window width [mol/L]."""
        return self.high_molar - self.low_molar


_RANGES: dict[str, PhysiologicalRange] = {
    "glucose": PhysiologicalRange(
        "glucose", 3.0e-3, 10.0e-3, "blood, normal-to-hyperglycemic"),
    "lactate": PhysiologicalRange(
        "lactate", 0.5e-3, 2.0e-3, "resting blood (up to ~25 mM in exercise)"),
    "glutamate": PhysiologicalRange(
        "glutamate", 1.0e-6, 100e-6, "extracellular brain tissue / culture"),
    "arachidonic acid": PhysiologicalRange(
        "arachidonic acid", 1.0e-6, 20e-6, "free plasma fraction"),
    "cyclophosphamide": PhysiologicalRange(
        "cyclophosphamide", 10e-6, 60e-6, "plasma during therapy"),
    "ifosfamide": PhysiologicalRange(
        "ifosfamide", 20e-6, 120e-6, "plasma during therapy"),
    "ftorafur": PhysiologicalRange(
        "ftorafur", 1.0e-6, 8e-6, "plasma during therapy"),
    "cell-culture lactate": PhysiologicalRange(
        "cell-culture lactate", 0.1e-3, 1.0e-3,
        "neural cell culture medium (the paper's monitoring use case)"),
}


def physiological_range(analyte: str) -> PhysiologicalRange:
    """Return the clinical window for ``analyte`` (KeyError when unknown)."""
    try:
        return _RANGES[analyte]
    except KeyError:
        raise KeyError(
            f"no physiological range for {analyte!r}; "
            f"available: {sorted(_RANGES)}") from None


def covers_physiological_range(analyte: str,
                               linear_low_molar: float,
                               linear_high_molar: float) -> bool:
    """True when a sensor's linear range covers the full clinical window.

    This is the check behind the section 3.2.2 narrative: a sensor may beat
    another on sensitivity yet fail here.
    """
    if linear_low_molar < 0 or linear_high_molar <= linear_low_molar:
        raise ValueError("need 0 <= low < high")
    window = physiological_range(analyte)
    return (linear_low_molar <= window.low_molar
            and linear_high_molar >= window.high_molar)
