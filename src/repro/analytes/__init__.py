"""Analyte catalog: the targets of the paper's platform and classification."""

from repro.analytes.catalog import (
    Analyte,
    AnalyteClass,
    GLUCOSE,
    LACTATE,
    GLUTAMATE,
    ARACHIDONIC_ACID,
    CYCLOPHOSPHAMIDE,
    IFOSFAMIDE,
    FTORAFUR,
    ALL_ANALYTES,
    analyte_by_name,
)
from repro.analytes.physiological import (
    PhysiologicalRange,
    ConcentrationTrajectory,
    physiological_range,
    covers_physiological_range,
)

__all__ = [
    "Analyte",
    "AnalyteClass",
    "GLUCOSE",
    "LACTATE",
    "GLUTAMATE",
    "ARACHIDONIC_ACID",
    "CYCLOPHOSPHAMIDE",
    "IFOSFAMIDE",
    "FTORAFUR",
    "ALL_ANALYTES",
    "analyte_by_name",
    "PhysiologicalRange",
    "ConcentrationTrajectory",
    "physiological_range",
    "covers_physiological_range",
]
