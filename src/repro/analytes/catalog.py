"""The analytes detected by the paper's biosensor platform.

Section 2.1 classifies targets into DNA, metabolites, biomarkers and drugs;
the platform of section 3 covers three endogenous metabolites (glucose,
lactate, glutamate), one fatty acid (arachidonic acid) and three anticancer
drugs (cyclophosphamide, ifosfamide, Ftorafur).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AnalyteClass(enum.Enum):
    """Target classes of the paper's classification (section 2.1)."""

    METABOLITE = "metabolite"
    FATTY_ACID = "fatty_acid"
    DRUG = "drug"
    BIOMARKER = "biomarker"
    NUCLEIC_ACID = "nucleic_acid"


@dataclass(frozen=True)
class Analyte:
    """A measurable target molecule.

    Attributes:
        name: common name.
        analyte_class: classification bucket.
        molecular_weight_g_mol: molar mass [g/mol].
        diffusion_m2_s: aqueous diffusion coefficient [m^2/s].
        clinical_role: one-line clinical relevance (from the paper).
    """

    name: str
    analyte_class: AnalyteClass
    molecular_weight_g_mol: float
    diffusion_m2_s: float
    clinical_role: str

    def __post_init__(self) -> None:
        if self.molecular_weight_g_mol <= 0:
            raise ValueError(f"{self.name}: molecular weight must be > 0")
        if self.diffusion_m2_s <= 0:
            raise ValueError(f"{self.name}: diffusion coefficient must be > 0")


GLUCOSE = Analyte(
    name="glucose",
    analyte_class=AnalyteClass.METABOLITE,
    molecular_weight_g_mol=180.16,
    diffusion_m2_s=6.7e-10,
    clinical_role="diabetes self-management; most studied metabolite",
)

LACTATE = Analyte(
    name="lactate",
    analyte_class=AnalyteClass.METABOLITE,
    molecular_weight_g_mol=90.08,
    diffusion_m2_s=1.0e-9,
    clinical_role="sports medicine, intensive care, cell-culture monitoring",
)

GLUTAMATE = Analyte(
    name="glutamate",
    analyte_class=AnalyteClass.METABOLITE,
    molecular_weight_g_mol=147.13,
    diffusion_m2_s=7.6e-10,
    clinical_role="neurotransmitter; neurochemical monitoring",
)

ARACHIDONIC_ACID = Analyte(
    name="arachidonic acid",
    analyte_class=AnalyteClass.FATTY_ACID,
    molecular_weight_g_mol=304.47,
    diffusion_m2_s=4.0e-10,
    clinical_role="fatty acid abundant in liver, brain and muscle",
)

CYCLOPHOSPHAMIDE = Analyte(
    name="cyclophosphamide",
    analyte_class=AnalyteClass.DRUG,
    molecular_weight_g_mol=261.08,
    diffusion_m2_s=5.0e-10,
    clinical_role="alkylating anticancer agent and immunosuppressant",
)

IFOSFAMIDE = Analyte(
    name="ifosfamide",
    analyte_class=AnalyteClass.DRUG,
    molecular_weight_g_mol=261.08,
    diffusion_m2_s=5.0e-10,
    clinical_role="alkylating anticancer agent (CP isomer)",
)

FTORAFUR = Analyte(
    name="ftorafur",
    analyte_class=AnalyteClass.DRUG,
    molecular_weight_g_mol=200.17,
    diffusion_m2_s=6.0e-10,
    clinical_role="chemotherapeutic 5-FU prodrug (tegafur)",
)

ALL_ANALYTES: tuple[Analyte, ...] = (
    GLUCOSE,
    LACTATE,
    GLUTAMATE,
    ARACHIDONIC_ACID,
    CYCLOPHOSPHAMIDE,
    IFOSFAMIDE,
    FTORAFUR,
)

_BY_NAME = {analyte.name: analyte for analyte in ALL_ANALYTES}


def analyte_by_name(name: str) -> Analyte:
    """Look up an analyte by name; raises ``KeyError`` listing the options."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown analyte {name!r}; available: {sorted(_BY_NAME)}") from None
