"""The built-in workloads: the three engines behind one surface.

Each class here is a thin, stateless adapter that resolves a plain-JSON
spec mapping into the corresponding engine plan — catalog ids become
sensors (:func:`repro.core.registry.spec_by_id`), drug names become
:class:`~repro.pk.drugs.DrugSpec` entries, controller kinds become
:mod:`repro.therapy` controllers — and forwards ``run``/``run_scalar``
to the *existing* engine entry points.  The engines stay the
implementation; nothing re-implements physics here.

Spec validation is strict: unknown keys raise ``ValueError`` naming the
allowed set, so a typo in a scenario file fails loudly instead of being
silently ignored.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping

from repro.core.calibration import (
    CalibrationProtocol,
    CalibrationResult,
    default_protocol_for_range,
)
from repro.engine.calibrate import calibration_plan, calibration_result_from_batch
from repro.engine import core as engine_core
from repro.engine.estimation import (
    EstimationPlan,
    EstimationResult,
    run_estimation,
)
from repro.engine.monitor import (
    MonitorPlan,
    MonitorResult,
    RecalibrationPolicy,
    cohort,
    run_monitor,
)
from repro.engine.plan import BatchPlan, BatchResult
from repro.engine.runner import run_batch
from repro.engine.therapy import TherapyPlan, TherapyResult, run_therapy
from repro.pk.drugs import DrugSpec, drug_by_name
from repro.pk.models import Route
from repro.scenarios.protocols import Workload, register_workload
from repro.therapy.controllers import (
    BayesianTroughController,
    DosingController,
    FixedRegimenController,
    ProportionalTroughController,
)


def _check_keys(spec: Mapping[str, Any], allowed: Iterable[str],
                required: Iterable[str], context: str) -> None:
    """Reject unknown keys and missing required keys of a spec mapping."""
    allowed = set(allowed)
    unknown = set(spec) - allowed
    if unknown:
        raise ValueError(
            f"{context} spec has unknown keys {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}")
    missing = set(required) - set(spec)
    if missing:
        raise ValueError(f"{context} spec is missing {sorted(missing)}")


def _recalibration_from(cfg: Mapping[str, Any]) -> RecalibrationPolicy:
    """Build a :class:`RecalibrationPolicy` from its spec mapping."""
    _check_keys(cfg, {"reference_interval_h", "tolerance", "enabled"},
                (), "recalibration")
    return RecalibrationPolicy(**cfg)


def _describe(workload: Workload, field_docs: str) -> str:
    """Assemble the shared ``describe()`` layout of a workload."""
    doc = (type(workload).__doc__ or "").strip().splitlines()[0]
    example = json.dumps(workload.example_spec(), indent=2)
    return (f"{workload.name}: {doc}\n"
            f"plan type: {workload.plan_type.__name__}\n\n"
            f"spec fields:\n{field_docs}\n"
            f"example spec:\n{example}")


def calibration_results_from_batch(
        result: BatchResult) -> list[CalibrationResult]:
    """Per-sensor Table-2 metrics of an engine-built calibration campaign.

    Re-derives each sensor's :class:`CalibrationProtocol` from the plan
    itself — the leading 0.0 group is the blanks, the rest the standard
    staircase — so a campaign produced by the calibration workload (or
    by :func:`repro.engine.calibration_plan`) yields the usual
    :class:`CalibrationResult` rows without carrying protocol objects
    through serialization.
    """
    results = []
    for i in range(len(result.plan.sensors)):
        grid = result.plan.concentrations_molar[i]
        reps = result.plan.replicates_for(i)
        if grid[0] != 0.0 or len(grid) < 4:
            raise ValueError(
                f"sensor {i}: not a calibration campaign (needs a "
                "leading blank group and >= 3 standards)")
        protocol = CalibrationProtocol(
            concentrations_molar=grid[1:],
            n_blanks=reps[0],
            n_replicates=reps[1])
        results.append(calibration_result_from_batch(result, i, protocol))
    return results


class CalibrationWorkload:
    """Batched calibration campaigns (:func:`repro.engine.run_batch`).

    Spec fields (``sensors`` required):

    * ``sensors`` — list of registry sensor ids (e.g.
      ``"glucose/this-work"``), one channel per entry;
    * ``upper_molar`` — staircase upper bound [mol/L]: one number shared
      by the panel, one entry per sensor, or omitted for each spec's
      published linear-range upper bound;
    * ``n_blanks`` / ``n_replicates`` — replicate counts (default 5 / 3);
    * ``add_noise`` — include instrument + repeatability noise
      (default true);
    * ``step_duration_s`` — chronoamperometric step length (default 16).
    """

    name = "calibration"
    plan_type = BatchPlan

    _ALLOWED = frozenset({"sensors", "upper_molar", "n_blanks",
                          "n_replicates", "add_noise", "step_duration_s"})

    def build_plan(self, spec: Mapping[str, Any],
                   seed: int | None) -> BatchPlan:
        """Resolve catalog ids and staircase bounds into a ``BatchPlan``."""
        # Imported here: the registry composes sensors out of half the
        # library, and only plan building needs it.
        from repro.core.platform import default_calibration_upper
        from repro.core.registry import build_sensor, spec_by_id

        _check_keys(spec, self._ALLOWED, {"sensors"}, self.name)
        ids = spec["sensors"]
        if isinstance(ids, str) or not ids:
            raise ValueError("sensors must be a non-empty list of "
                             "registry sensor ids")
        sensor_specs = [spec_by_id(sensor_id) for sensor_id in ids]
        upper = spec.get("upper_molar")
        if upper is None:
            uppers = [default_calibration_upper(s) for s in sensor_specs]
        elif isinstance(upper, (int, float)):
            uppers = [float(upper)] * len(sensor_specs)
        else:
            if len(upper) != len(sensor_specs):
                raise ValueError(
                    f"{len(sensor_specs)} sensors but {len(upper)} "
                    "upper_molar entries")
            uppers = [float(u) for u in upper]
        protocols = [
            default_protocol_for_range(
                u,
                n_blanks=int(spec.get("n_blanks", 5)),
                n_replicates=int(spec.get("n_replicates", 3)))
            for u in uppers]
        return calibration_plan(
            [build_sensor(s) for s in sensor_specs], protocols,
            seed=seed,
            add_noise=bool(spec.get("add_noise", True)),
            step_duration_s=float(spec.get("step_duration_s", 16.0)))

    def run(self, plan: BatchPlan) -> BatchResult:
        """Evaluate the campaign on the vectorized engine path."""
        return run_batch(plan)

    def run_scalar(self, plan: BatchPlan) -> BatchResult:
        """Evaluate the campaign cell-by-cell (equivalence reference)."""
        return engine_core.run_scalar("calibration", plan)

    def summarize(self, result: BatchResult) -> str:
        """Table-2 metrics per sensor (falls back to raw signal stats)."""
        try:
            rows = calibration_results_from_batch(result)
        except ValueError:
            return result.summary()
        return "\n".join(row.summary() for row in rows)

    def example_spec(self) -> dict:
        """A one-sensor glucose calibration."""
        return {"sensors": ["glucose/this-work"],
                "n_blanks": 5, "n_replicates": 3}

    def describe(self) -> str:
        """Spec documentation plus a runnable example."""
        return _describe(self, (
            "  sensors          list of registry sensor ids (required)\n"
            "  upper_molar      staircase upper bound(s) [mol/L] "
            "(default: published range)\n"
            "  n_blanks         blank replicates (default 5)\n"
            "  n_replicates     replicates per standard (default 3)\n"
            "  add_noise        include noise (default true)\n"
            "  step_duration_s  CA step length [s] (default 16)"))


class MonitorWorkload:
    """Streaming wear-time monitoring (:func:`repro.engine.run_monitor`).

    Spec fields (``cohort`` and ``duration_h`` required):

    * ``cohort`` — mapping with ``sensor`` (registry id), ``analyte``
      (physiological-range catalog key) and ``n_patients``, plus
      optional ``wander_sigma_a``, ``enzyme_half_life_s`` and
      ``temperature_k`` (see :func:`repro.engine.cohort`);
    * ``duration_h`` — wear horizon [h];
    * ``sample_period_s`` / ``chunk_samples`` / ``add_noise`` /
      ``spec_tolerance`` / ``keep_traces`` — forwarded to
      :class:`~repro.engine.MonitorPlan`;
    * ``recalibration`` — mapping with ``reference_interval_h``,
      ``tolerance``, ``enabled``.
    """

    name = "monitor"
    plan_type = MonitorPlan

    _ALLOWED = frozenset({"cohort", "duration_h", "sample_period_s",
                          "chunk_samples", "add_noise", "recalibration",
                          "spec_tolerance", "keep_traces"})
    _COHORT_ALLOWED = frozenset({"sensor", "analyte", "n_patients",
                                 "wander_sigma_a", "enzyme_half_life_s",
                                 "temperature_k"})
    _PASSTHROUGH = ("sample_period_s", "chunk_samples", "add_noise",
                    "spec_tolerance", "keep_traces")

    def build_plan(self, spec: Mapping[str, Any],
                   seed: int | None) -> MonitorPlan:
        """Resolve the cohort description into a ``MonitorPlan``."""
        from repro.core.registry import build_sensor, spec_by_id

        _check_keys(spec, self._ALLOWED, {"cohort", "duration_h"},
                    self.name)
        cfg = dict(spec["cohort"])
        _check_keys(cfg, self._COHORT_ALLOWED,
                    {"sensor", "analyte", "n_patients"}, "monitor cohort")
        sensor = build_sensor(spec_by_id(cfg.pop("sensor")))
        channels = cohort(sensor, cfg.pop("analyte"),
                          int(cfg.pop("n_patients")), **cfg)
        kwargs: dict[str, Any] = {
            key: spec[key] for key in self._PASSTHROUGH if key in spec}
        if "recalibration" in spec:
            kwargs["recalibration"] = _recalibration_from(
                spec["recalibration"])
        return MonitorPlan(channels=channels,
                           duration_h=float(spec["duration_h"]),
                           seed=seed, **kwargs)

    def run(self, plan: MonitorPlan) -> MonitorResult:
        """Stream the cohort on the chunked vectorized path."""
        return run_monitor(plan)

    def run_scalar(self, plan: MonitorPlan) -> MonitorResult:
        """Stream the cohort day-by-day (equivalence reference)."""
        return engine_core.run_scalar("monitor", plan)

    def summarize(self, result: MonitorResult) -> str:
        """Cohort MARD / time-in-spec summary."""
        return result.summary()

    def example_spec(self) -> dict:
        """A two-day, four-patient glucose wear simulation."""
        return {
            "cohort": {"sensor": "glucose/this-work", "analyte": "glucose",
                       "n_patients": 4, "wander_sigma_a": 2e-9},
            "duration_h": 48.0,
            "sample_period_s": 300.0,
            "keep_traces": False,
        }

    def describe(self) -> str:
        """Spec documentation plus a runnable example."""
        return _describe(self, (
            "  cohort           {sensor, analyte, n_patients, "
            "wander_sigma_a?, enzyme_half_life_s?, temperature_k?} "
            "(required)\n"
            "  duration_h       wear horizon [h] (required)\n"
            "  sample_period_s  reading cadence [s] (default 300)\n"
            "  chunk_samples    vectorization block size (default 4096)\n"
            "  add_noise        include noise (default true)\n"
            "  recalibration    {reference_interval_h, tolerance, enabled}\n"
            "  spec_tolerance   in-spec relative error bound (default 0.2)\n"
            "  keep_traces      store full traces (default true)"))


class EstimationWorkload:
    """Cohort concentration reconstruction (:func:`repro.engine.run_estimation`).

    Spec fields: everything the ``monitor`` workload accepts (the wear
    simulation whose currents are inverted; ``keep_traces`` is forced on
    — the filter consumes the per-sample readings), plus:

    * ``smooth`` — also run the RTS smoothing pass (default true);
    * ``interval_level`` — nominal credible level of the reported bands
      (default 0.95).
    """

    name = "estimation"
    plan_type = EstimationPlan

    _OWN = frozenset({"smooth", "interval_level"})

    def build_plan(self, spec: Mapping[str, Any],
                   seed: int | None) -> EstimationPlan:
        """Resolve the wear spec through the monitor adapter, then wrap."""
        _check_keys(spec, MonitorWorkload._ALLOWED | self._OWN,
                    {"cohort", "duration_h"}, self.name)
        monitor_spec = {key: value for key, value in spec.items()
                       if key not in self._OWN}
        # The filter needs every reading: a keep_traces=False monitor
        # spec would fail in EstimationPlan anyway, so default it on.
        monitor_spec.setdefault("keep_traces", True)
        kwargs: dict[str, Any] = {
            key: spec[key] for key in self._OWN if key in spec}
        return EstimationPlan(
            monitor=MONITOR.build_plan(monitor_spec, seed), **kwargs)

    def run(self, plan: EstimationPlan) -> EstimationResult:
        """Reconstruct the cohort on the vectorized filter path."""
        return run_estimation(plan)

    def run_scalar(self, plan: EstimationPlan) -> EstimationResult:
        """Reconstruct channel by channel (equivalence reference)."""
        return engine_core.run_scalar("estimation", plan)

    def summarize(self, result: EstimationResult) -> str:
        """Reconstruction accuracy + interval-coverage summary."""
        return result.summary()

    def example_spec(self) -> dict:
        """A one-day, four-patient glucose reconstruction."""
        return {
            "cohort": {"sensor": "glucose/this-work", "analyte": "glucose",
                       "n_patients": 4, "wander_sigma_a": 2e-9},
            "duration_h": 24.0,
            "sample_period_s": 600.0,
            "smooth": True,
        }

    def describe(self) -> str:
        """Spec documentation plus a runnable example."""
        return _describe(self, (
            "  cohort           {sensor, analyte, n_patients, ...} "
            "(required; as in the monitor workload)\n"
            "  duration_h       wear horizon [h] (required)\n"
            "  sample_period_s  reading cadence [s] (default 300)\n"
            "  recalibration    {reference_interval_h, tolerance, enabled}\n"
            "  smooth           also run the RTS smoother (default true)\n"
            "  interval_level   credible level of the bands (default 0.95)\n"
            "  (plus chunk_samples, add_noise, spec_tolerance as in the\n"
            "   monitor workload; keep_traces is forced on)"))


def _controller_from(drug: DrugSpec,
                     cfg: Mapping[str, Any]) -> DosingController:
    """Build a dosing controller from its spec mapping.

    ``kind`` selects the :mod:`repro.therapy` controller; doses may be
    given in moles or (``*_mg``) in the drug's prescribed mass, and the
    target trough / Bayesian prior default to the drug catalog entry.
    """
    if "kind" not in cfg:
        raise ValueError("controller spec needs a 'kind' "
                         "(fixed | proportional | bayesian)")
    kind = cfg["kind"]
    params = {key: value for key, value in cfg.items() if key != "kind"}
    if kind == "fixed":
        # No target key here: a fixed regimen ignores feedback by
        # design, so accepting a target would silently discard it.
        _check_keys(params, {"dose_mol", "dose_mg"}, (), "fixed controller")
        if ("dose_mol" in params) == ("dose_mg" in params):
            raise ValueError("fixed controller needs exactly one of "
                             "dose_mol / dose_mg")
        dose = (params["dose_mol"] if "dose_mol" in params
                else drug.dose_mol_from_mg(params["dose_mg"]))
        return FixedRegimenController(dose_mol=float(dose))
    target = params.pop("target_trough_molar",
                        drug.window.target_trough_molar)
    if kind == "proportional":
        _check_keys(params,
                    {"initial_dose_mol", "initial_dose_mg", "max_adjust",
                     "dose_min_mol", "dose_max_mol",
                     "trough_floor_fraction"},
                    (), "proportional controller")
        if ("initial_dose_mol" in params) == ("initial_dose_mg" in params):
            raise ValueError("proportional controller needs exactly one "
                             "of initial_dose_mol / initial_dose_mg")
        initial = (params.pop("initial_dose_mol")
                   if "initial_dose_mol" in params
                   else drug.dose_mol_from_mg(
                       params.pop("initial_dose_mg")))
        return ProportionalTroughController(
            initial_dose_mol=float(initial),
            target_trough_molar=float(target), **params)
    if kind == "bayesian":
        _check_keys(params,
                    {"clearance_cv", "observation_sigma_molar",
                     "initial_dose_mol", "initial_dose_mg",
                     "dose_min_mol", "dose_max_mol",
                     "n_grid", "grid_span_sd"},
                    (), "bayesian controller")
        if "initial_dose_mol" in params and "initial_dose_mg" in params:
            raise ValueError("bayesian controller takes at most one of "
                             "initial_dose_mol / initial_dose_mg")
        if "initial_dose_mg" in params:
            params["initial_dose_mol"] = drug.dose_mol_from_mg(
                params.pop("initial_dose_mg"))
        return BayesianTroughController(
            prior=drug.typical_model(),
            target_trough_molar=float(target), **params)
    raise ValueError(f"unknown controller kind {kind!r} "
                     "(fixed | proportional | bayesian)")


class TherapyWorkload:
    """Closed-loop therapy courses (:func:`repro.engine.run_therapy`).

    Spec fields (``drug``, ``n_patients``, ``cohort_seed``,
    ``controller`` and ``n_doses`` required):

    * ``drug`` — drug catalog name (``"cyclosporine"`` /
      ``"cyclophosphamide"``); wires in the registry sensor, the
      therapeutic window and the population PK prior;
    * ``n_patients`` / ``cohort_seed`` — the treated virtual cohort is
      ``drug.population.sample(n_patients, seed=cohort_seed)``: the
      *population* seed is part of the artifact, separate from the
      scenario seed that drives measurement noise;
    * ``controller`` — mapping with ``kind`` (``fixed`` /
      ``proportional`` / ``bayesian``) plus kind-specific parameters
      (doses in ``*_mol`` or prescribed-mass ``*_mg``); target trough
      and Bayesian prior default to the drug catalog entry;
    * ``n_doses`` / ``dose_interval_h`` / ``route`` /
      ``infusion_duration_h`` / ``sample_period_s`` / ``chunk_samples``
      / ``add_noise`` / ``keep_traces`` /
      ``process_noise_sigma_molar`` / ``process_noise_tau_h`` /
      ``wander_sigma_a`` / ``wander_tau_h`` / ``filter_troughs`` /
      ``filter_process_sigma_molar`` — forwarded to
      :class:`~repro.engine.TherapyPlan` (``filter_troughs`` hands the
      controller Kalman-filtered trough estimates with variances);
    * ``recalibration`` — mapping with ``reference_interval_h``,
      ``tolerance``, ``enabled``.
    """

    name = "therapy"
    plan_type = TherapyPlan

    _ALLOWED = frozenset({
        "drug", "n_patients", "cohort_seed", "controller", "n_doses",
        "dose_interval_h", "route", "infusion_duration_h",
        "sample_period_s", "chunk_samples", "add_noise", "keep_traces",
        "recalibration", "process_noise_sigma_molar",
        "process_noise_tau_h", "wander_sigma_a", "wander_tau_h",
        "filter_troughs", "filter_process_sigma_molar"})
    _PASSTHROUGH = ("dose_interval_h", "infusion_duration_h",
                    "sample_period_s", "chunk_samples", "add_noise",
                    "keep_traces", "process_noise_sigma_molar",
                    "process_noise_tau_h", "wander_sigma_a",
                    "wander_tau_h", "filter_troughs",
                    "filter_process_sigma_molar")

    def build_plan(self, spec: Mapping[str, Any],
                   seed: int | None) -> TherapyPlan:
        """Resolve drug catalog + controller spec into a ``TherapyPlan``."""
        _check_keys(spec, self._ALLOWED,
                    {"drug", "n_patients", "cohort_seed", "controller",
                     "n_doses"}, self.name)
        drug = drug_by_name(spec["drug"])
        treated = drug.population.sample(int(spec["n_patients"]),
                                         seed=int(spec["cohort_seed"]))
        kwargs: dict[str, Any] = {
            key: spec[key] for key in self._PASSTHROUGH if key in spec}
        if "route" in spec:
            kwargs["route"] = Route(spec["route"])
        if "recalibration" in spec:
            kwargs["recalibration"] = _recalibration_from(
                spec["recalibration"])
        return TherapyPlan.for_drug(
            drug, cohort=treated,
            controller=_controller_from(drug, spec["controller"]),
            n_doses=int(spec["n_doses"]), seed=seed, **kwargs)

    def run(self, plan: TherapyPlan) -> TherapyResult:
        """Close the loop on the chunked vectorized path."""
        return run_therapy(plan)

    def run_scalar(self, plan: TherapyPlan) -> TherapyResult:
        """Close the loop per patient (equivalence reference)."""
        return engine_core.run_scalar("therapy", plan)

    def summarize(self, result: TherapyResult) -> str:
        """Window metrics plus the phenotype breakdown."""
        return result.summary()

    def example_spec(self) -> dict:
        """A short Bayesian-dosed cyclosporine course."""
        return {
            "drug": "cyclosporine",
            "n_patients": 8,
            "cohort_seed": 7,
            "controller": {"kind": "bayesian"},
            "n_doses": 4,
            "dose_interval_h": 12.0,
            "keep_traces": False,
        }

    def describe(self) -> str:
        """Spec documentation plus a runnable example."""
        return _describe(self, (
            "  drug             drug catalog name (required)\n"
            "  n_patients       treated cohort size (required)\n"
            "  cohort_seed      population sampling seed (required)\n"
            "  controller       {kind: fixed|proportional|bayesian, ...} "
            "(required)\n"
            "  n_doses          administrations in the course (required)\n"
            "  dose_interval_h  time between doses [h] (default 12)\n"
            "  route            oral | iv_bolus | infusion (default oral)\n"
            "  sample_period_s  reading cadence [s] (default 900)\n"
            "  recalibration    {reference_interval_h, tolerance, enabled}\n"
            "  keep_traces      store full traces (default true)\n"
            "  (plus chunk_samples, add_noise, infusion_duration_h,\n"
            "   process_noise_*, wander_* as in TherapyPlan)"))


#: The built-in workload instances, registered at import time.
CALIBRATION = register_workload(CalibrationWorkload())
MONITOR = register_workload(MonitorWorkload())
THERAPY = register_workload(TherapyWorkload())
ESTIMATION = register_workload(EstimationWorkload())
