"""Unified scenario API: one declarative front door for every workload.

The engine grew three workload classes — batched calibration campaigns
(:func:`repro.engine.run_batch`), streaming wear-time monitoring
(:func:`repro.engine.run_monitor`) and closed-loop therapy
(:func:`repro.engine.run_therapy`) — each with its own plan/run/result
triple.  This package puts one declarative, serializable surface in
front of all of them:

* a :class:`Workload` protocol plus the global :data:`WORKLOADS`
  registry (the three engines register themselves at import);
* the :class:`Scenario` spec — plain JSON with catalog references and
  explicit seeds, so any configured campaign, wear simulation or
  therapy course is a *replayable artifact*
  (``Scenario.from_dict(s.to_dict())`` reproduces results bit for bit);
* :func:`run_scenario` / :func:`run_scenarios` dispatchers (the batch
  form fans a scenario list across workloads with per-scenario spawned
  ``SeedSequence`` streams);
* the ``python -m repro`` command line (:mod:`repro.scenarios.cli`):
  ``run scenario.json [--out results.json]``, ``list``, ``describe``.

Results come back through :class:`ResultProtocol` — ``summary()`` /
``summary_row()`` / ``to_dict()`` — implemented by every engine result
type, so one export path serves all workloads.

Quickstart::

    from repro.scenarios import Scenario, run_scenario

    scenario = Scenario(
        workload="monitor", name="glucose-week", seed=42,
        spec={"cohort": {"sensor": "glucose/this-work",
                         "analyte": "glucose", "n_patients": 8},
              "duration_h": 168.0})
    result = run_scenario(scenario)
    print(result.summary())
    scenario.save("glucose-week.json")   # replay: python -m repro run
"""

from repro.scenarios.protocols import (
    ResultProtocol,
    WORKLOADS,
    Workload,
    available_workloads,
    register_workload,
    workload_by_name,
)
from repro.scenarios.spec import SCHEMA_VERSION, Scenario
from repro.scenarios.workloads import (
    CalibrationWorkload,
    EstimationWorkload,
    MonitorWorkload,
    TherapyWorkload,
    calibration_results_from_batch,
)
from repro.scenarios.runner import (
    ScenarioRun,
    run_scenario,
    run_scenarios,
    spawn_scenario_seeds,
)

__all__ = [
    "CalibrationWorkload",
    "EstimationWorkload",
    "MonitorWorkload",
    "ResultProtocol",
    "SCHEMA_VERSION",
    "Scenario",
    "ScenarioRun",
    "TherapyWorkload",
    "WORKLOADS",
    "Workload",
    "available_workloads",
    "calibration_results_from_batch",
    "register_workload",
    "run_scenario",
    "run_scenarios",
    "spawn_scenario_seeds",
    "workload_by_name",
]
