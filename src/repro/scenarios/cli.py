"""The scenario command line: ``python -m repro {run,list,describe}``.

One executable front door for every registered workload::

    python -m repro list                       # what can run
    python -m repro list --json                # machine-readable rows
    python -m repro describe therapy           # spec fields + example
    python -m repro serve --port 8750          # the async front door
    python -m repro run scenario.json          # execute a scenario file
    python -m repro run scenario.json --out results.json
    python -m repro run scenario.json --seed 11 --scalar
    python -m repro run scenario.json --telemetry \\
        --perfetto-out trace.json              # spans + flame graph
    python -m repro campaign run fleet.json --store fleet.sqlite \\
        --workers 4                            # sharded campaigns
    python -m repro campaign {status,resume,export,report} fleet.sqlite
    python -m repro telemetry summary fleet.sqlite  # fleet-wide metrics

``run`` prints the workload's summary and, with ``--out``, writes the
replayable artifact — the seed-resolved scenario envelope plus the full
result export — as JSON.  ``--telemetry`` (or ``REPRO_TELEMETRY=1``)
records executor spans and counters, printing the per-span summary
after the run; ``--trace-out`` streams the events to a JSONL file and
``--perfetto-out`` writes a flame-graph trace the Perfetto UI opens
directly.  The global ``--log-level`` / ``-v`` flags configure the
single ``repro`` stdlib logger (worker progress, resume decisions).
Checked-in starter scenarios live under ``examples/scenarios/`` and
are smoke-run in CI.
"""

from __future__ import annotations

import argparse
import json
import logging
from pathlib import Path


def configure_logging(level_name: str | None = None,
                      verbosity: int = 0) -> int:
    """Wire the single ``repro`` root logger to the console.

    Every module in the package logs under ``repro.*`` (e.g.
    ``repro.campaigns.runner``), so one handler here covers them all
    and embedding applications that configure logging themselves are
    never fought over — the handler is only attached once, and only by
    the CLI.

    Args:
        level_name: explicit level (``--log-level``), wins over
            ``verbosity``.
        verbosity: ``-v`` count — 0 keeps WARNING, 1 means INFO,
            2+ means DEBUG.

    Returns:
        The numeric level that was applied.
    """
    if level_name is not None:
        level = getattr(logging, level_name.upper())
    elif verbosity >= 2:
        level = logging.DEBUG
    elif verbosity == 1:
        level = logging.INFO
    else:
        level = logging.WARNING
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(name)s %(levelname)s: %(message)s"))
        logger.addHandler(handler)
        logger.propagate = False
    return level


def _cmd_run(args: argparse.Namespace) -> int:
    """Execute one scenario file, print its summary, export optionally."""
    from repro.scenarios.runner import (
        ScenarioRun,
        run_scenario,
        spawn_scenario_seeds,
    )
    from repro.scenarios.spec import Scenario
    from repro.telemetry import telemetry_env_enabled

    scenario = Scenario.load(args.scenario)
    if args.seed is not None:
        scenario = scenario.with_seed(args.seed)
    elif scenario.seed is None:
        # An unseeded file still yields a replayable --out artifact:
        # materialize an entropy-derived seed before running.
        scenario = scenario.with_seed(spawn_scenario_seeds(None, 1)[0])
    telemetry_on = (args.telemetry or args.trace_out is not None
                    or args.perfetto_out is not None
                    or telemetry_env_enabled())
    recorder = previous = None
    if telemetry_on:
        from repro.telemetry import (
            InMemoryRecorder,
            JsonlSink,
            set_recorder,
        )

        sinks = ([JsonlSink(args.trace_out)]
                 if args.trace_out is not None else [])
        recorder = InMemoryRecorder(sinks=sinks)
        previous = set_recorder(recorder)
    try:
        result = run_scenario(scenario, scalar=args.scalar)
    finally:
        if recorder is not None:
            from repro.telemetry import set_recorder

            set_recorder(previous)
            recorder.close()
    run = ScenarioRun(scenario=scenario, result=result)
    print(run.summary())
    if recorder is not None:
        print(recorder.render_summary())
        if args.trace_out is not None:
            print(f"trace -> {args.trace_out}")
        if args.perfetto_out is not None:
            from repro.telemetry import write_perfetto

            path = write_perfetto(args.perfetto_out, recorder.spans,
                                  counters=recorder.counters)
            print(f"perfetto trace -> {path}")
    if args.out is not None:
        payload = run.to_dict(include_traces=args.traces)
        args.out.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"results -> {args.out}")
    return 0


def workload_rows() -> list[dict]:
    """One machine-readable row per registered workload.

    The shared payload behind ``python -m repro list --json`` and the
    server's ``GET /workloads``: name, plan type, first doc line, and
    whether the workload's kernel set supports incremental streaming
    (``repro.serve``).
    """
    from repro.engine.core import kernels_for
    from repro.scenarios.protocols import available_workloads, workload_by_name

    rows = []
    for name in available_workloads():
        workload = workload_by_name(name)
        doc = (type(workload).__doc__ or "").strip().splitlines()[0]
        try:
            streaming = kernels_for(name).snapshot_version is not None
        except KeyError:
            streaming = False
        rows.append({
            "name": name,
            "plan_type": workload.plan_type.__name__,
            "doc": doc,
            "streaming": streaming,
        })
    return rows


def _cmd_list(args: argparse.Namespace) -> int:
    """Print one line (or one JSON row) per registered workload."""
    rows = workload_rows()
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    for row in rows:
        print(f"{row['name']:<12} {row['plan_type']:<12} {row['doc']}")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    """Print one workload's spec documentation and example."""
    from repro.scenarios.protocols import workload_by_name

    try:
        workload = workload_by_name(args.workload)
    except KeyError as error:
        if args.json:
            print(json.dumps({"error": error.args[0]}))
        else:
            print(error.args[0])
        return 2
    if args.json:
        row = next(r for r in workload_rows()
                   if r["name"] == workload.name)
        print(json.dumps({**row,
                          "describe": workload.describe(),
                          "example_spec": workload.example_spec()},
                         indent=2, sort_keys=True))
        return 0
    print(workload.describe())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser (exposed for docs/tests)."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run declarative biosensor scenarios (calibration "
                    "campaigns, wear-time monitoring, closed-loop "
                    "therapy, concentration reconstruction) from JSON "
                    "files.")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}",
                        help="print the repro package version and exit")
    parser.add_argument("--log-level", default=None,
                        choices=["debug", "info", "warning", "error"],
                        help="level for the 'repro' stdlib logger "
                             "(default: warning)")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="increase log verbosity (-v info, "
                             "-vv debug); --log-level wins if given")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser(
        "run", help="execute a scenario JSON file")
    run_p.add_argument("scenario", type=Path,
                       help="path to a scenario .json file")
    run_p.add_argument("--out", type=Path, default=None,
                       help="write the replayable scenario+result "
                            "artifact as JSON")
    run_p.add_argument("--seed", type=int, default=None,
                       help="override the scenario seed")
    run_p.add_argument("--scalar", action="store_true",
                       help="use the scalar equivalence-reference "
                            "engine path (slow)")
    run_p.add_argument("--traces", action="store_true",
                       help="include full per-sample traces in --out")
    run_p.add_argument("--telemetry", action="store_true",
                       help="record executor spans/counters and print "
                            "the telemetry summary after the run")
    run_p.add_argument("--trace-out", type=Path, default=None,
                       help="stream telemetry events to this JSONL "
                            "file (implies --telemetry)")
    run_p.add_argument("--perfetto-out", type=Path, default=None,
                       help="write a Chrome/Perfetto trace_event JSON "
                            "flame graph (implies --telemetry)")
    run_p.set_defaults(func=_cmd_run)

    list_p = sub.add_parser("list", help="list registered workloads")
    list_p.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON rows")
    list_p.set_defaults(func=_cmd_list)

    describe_p = sub.add_parser(
        "describe", help="show a workload's spec fields and example")
    describe_p.add_argument("workload", help="registered workload name")
    describe_p.add_argument("--json", action="store_true",
                            help="emit the workload row, docs and "
                                 "example spec as JSON")
    describe_p.set_defaults(func=_cmd_describe)

    from repro.campaigns.cli import add_campaign_commands
    from repro.serve.cli import add_serve_command
    from repro.telemetry.cli import add_telemetry_commands

    add_campaign_commands(sub)
    add_serve_command(sub)
    add_telemetry_commands(sub)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(args.log_level, args.verbose)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
