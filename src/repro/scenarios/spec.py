"""The declarative, serializable scenario spec.

A :class:`Scenario` is the repo's replayable experiment artifact: which
workload to run, an explicit seed, and a plain-JSON ``spec`` mapping the
workload resolves into an engine plan (sensors, drugs and analytes
referenced by catalog id, never by object).  Because the spec is data —
no live objects, no entropy — ``Scenario.from_dict(s.to_dict())`` builds
the *same* plan and therefore reproduces the same result bit for bit
(gated per workload in ``tests/scenarios/test_roundtrip.py``).

The on-disk form is schema-versioned JSON::

    {
      "schema_version": 1,
      "workload": "monitor",
      "name": "glucose-week",
      "seed": 42,
      "spec": {"cohort": {...}, "duration_h": 168.0}
    }

``python -m repro run scenario.json`` executes such a file;
:meth:`Scenario.save` / :meth:`Scenario.load` round-trip it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping

#: Version stamp written into every serialized scenario.  Bump when the
#: envelope (not a workload spec) changes shape; ``from_dict`` rejects
#: versions it does not understand instead of misreading them.
SCHEMA_VERSION = 1

#: Keys a serialized scenario envelope may carry.
_ENVELOPE_KEYS = frozenset(
    {"schema_version", "workload", "name", "description", "seed", "spec"})


def _json_clean(spec: Mapping[str, Any]) -> dict:
    """Deep-copy a spec mapping through JSON, proving serializability.

    The round trip both isolates the scenario from later mutation of
    the caller's dict and fails *at construction time* for anything
    JSON cannot carry (arrays, sensors, generators) — the whole point
    of the artifact is that it can be written to disk.
    """
    if not isinstance(spec, Mapping):
        raise ValueError(
            f"spec must be a mapping, got {type(spec).__name__}")
    try:
        # allow_nan=False: NaN/Infinity are not JSON — an artifact that
        # only Python can parse back is not an artifact.
        return json.loads(json.dumps(dict(spec), allow_nan=False))
    except (TypeError, ValueError) as error:
        raise ValueError(
            f"spec is not JSON-serializable: {error}") from None


@dataclass(frozen=True)
class Scenario:
    """One declarative, replayable engine run.

    Attributes:
        workload: registered workload name (``"calibration"``,
            ``"monitor"``, ``"therapy"``, or anything later registered
            via :func:`repro.scenarios.register_workload`).
        name: human identifier of the scenario (shown in summaries and
            exports).
        spec: plain-JSON workload parameters; validated and resolved by
            the workload's ``build_plan``.  Catalog references (sensor
            ids, drug names, analyte keys) stand in for live objects.
        seed: root seed of the run's generator streams.  ``None`` marks
            the scenario as unseeded — :func:`repro.scenarios.run_scenarios`
            resolves it from its spawned per-scenario streams, and
            direct runs are legal but irreproducible.
        description: free-text note carried through serialization.
    """

    workload: str
    name: str
    spec: Mapping[str, Any] = field(default_factory=dict)
    seed: int | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.workload or not isinstance(self.workload, str):
            raise ValueError("workload must be a non-empty string")
        if not self.name or not isinstance(self.name, str):
            raise ValueError("name must be a non-empty string")
        if self.seed is not None:
            if isinstance(self.seed, bool) or not isinstance(self.seed, int):
                raise ValueError(
                    f"seed must be an int or None, got {self.seed!r}")
            if self.seed < 0:
                raise ValueError("seed must be >= 0")
        object.__setattr__(self, "spec", _json_clean(self.spec))

    def with_seed(self, seed: int) -> "Scenario":
        """This scenario with an explicit seed (all else unchanged)."""
        return replace(self, seed=seed)

    def to_dict(self) -> dict:
        """Serialize to a plain, schema-versioned dict."""
        return {
            "schema_version": SCHEMA_VERSION,
            "workload": self.workload,
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "spec": _json_clean(self.spec),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output.

        Strict by design: unknown envelope keys, a missing or
        unsupported ``schema_version``, or missing required fields all
        raise ``ValueError`` — a typo in a hand-written scenario file
        should fail loudly, not run something else.
        """
        if not isinstance(data, Mapping):
            raise ValueError(
                f"scenario must be a mapping, got {type(data).__name__}")
        unknown = set(data) - _ENVELOPE_KEYS
        if unknown:
            raise ValueError(
                f"unknown scenario keys {sorted(unknown)}; "
                f"allowed: {sorted(_ENVELOPE_KEYS)}")
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported scenario schema_version {version!r} "
                f"(this build reads version {SCHEMA_VERSION})")
        missing = {"workload", "name", "spec"} - set(data)
        if missing:
            raise ValueError(f"scenario is missing {sorted(missing)}")
        return cls(
            workload=data["workload"],
            name=data["name"],
            spec=data["spec"],
            seed=data.get("seed"),
            description=data.get("description", ""),
        )

    def to_json(self, indent: int = 2) -> str:
        """Serialize to a JSON string (sorted keys, trailing newline)."""
        return json.dumps(self.to_dict(), indent=indent,
                          sort_keys=True, allow_nan=False) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Rebuild a scenario from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def save(self, path: "str | Path") -> Path:
        """Write the scenario as a JSON file and return the path."""
        target = Path(path)
        target.write_text(self.to_json())
        return target

    @classmethod
    def load(cls, path: "str | Path") -> "Scenario":
        """Read a scenario JSON file written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())
