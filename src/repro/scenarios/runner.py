"""Scenario dispatch: run one scenario, or fan a list across workloads.

:func:`run_scenario` is the single-call front door — resolve the
workload, build the plan, execute.  :func:`run_scenarios` is the batch
form: it spawns one independent ``SeedSequence`` stream per scenario
from a root seed (the same collision-resistant derivation the engines
use per cell/channel/patient), assigns the derived seed to every
scenario that does not carry an explicit one, and returns the
materialized, fully replayable :class:`ScenarioRun` records — each of
which can be serialized and re-run bit-identically on its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.scenarios.protocols import ResultProtocol, workload_by_name
from repro.scenarios.spec import Scenario


def spawn_scenario_seeds(root_seed: int | None, n: int) -> list[int]:
    """Derive ``n`` independent integer seeds from one root seed.

    ``np.random.SeedSequence.spawn`` keeps the derived streams mutually
    independent and collision-resistant (the contract
    :func:`repro.rng.spawn_generators` rests on); each child is folded
    to a plain ``int`` so the resolved scenario stays JSON-serializable.
    A ``None`` root draws an entropy root — independent but not
    replayable, exactly like the engines' own ``seed=None`` paths.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    root = np.random.SeedSequence(root_seed)
    return [int(child.generate_state(1, np.uint32)[0])
            for child in root.spawn(n)]


@dataclass(frozen=True)
class ScenarioRun:
    """One executed scenario: the seed-resolved spec plus its result.

    Attributes:
        scenario: the scenario actually run — seeds resolved, so saving
            ``scenario.to_json()`` reproduces ``result`` bit for bit.
        result: the workload's engine result
            (:class:`~repro.scenarios.ResultProtocol`).
    """

    scenario: Scenario
    result: ResultProtocol

    def summary(self) -> str:
        """The scenario name plus its workload-rendered outcome."""
        workload = workload_by_name(self.scenario.workload)
        return (f"[{self.scenario.workload}] {self.scenario.name}\n"
                f"{workload.summarize(self.result)}")

    def to_dict(self, include_traces: bool = False) -> dict:
        """Replayable artifact: the scenario envelope + result export."""
        return {"scenario": self.scenario.to_dict(),
                "result": self.result.to_dict(
                    include_traces=include_traces)}


def run_scenario(scenario: Scenario,
                 scalar: bool = False) -> ResultProtocol:
    """Execute one scenario through its registered workload.

    Args:
        scenario: the declarative run description.
        scalar: use the workload's scalar equivalence-reference path
            instead of the vectorized engine (slow; for verification).

    Returns:
        The workload's engine result (a
        :class:`~repro.scenarios.ResultProtocol`).
    """
    workload = workload_by_name(scenario.workload)
    plan = workload.build_plan(scenario.spec, scenario.seed)
    return workload.run_scalar(plan) if scalar else workload.run(plan)


def run_scenarios(scenarios: Iterable[Scenario],
                  root_seed: int | None = None,
                  scalar: bool = False) -> tuple[ScenarioRun, ...]:
    """Fan a list of scenarios across their workloads, seeds spawned.

    Every scenario *without* an explicit seed receives one derived from
    ``root_seed`` via :func:`spawn_scenario_seeds` — position-stable, so
    appending scenarios to a campaign never changes the seeds of the
    scenarios already in it.  Explicit seeds are kept untouched.

    Args:
        scenarios: the campaign, any mix of workloads.
        root_seed: root of the per-scenario seed streams (``None``
            draws entropy — independent but irreproducible).
        scalar: run every scenario on its scalar reference path.

    Returns:
        One :class:`ScenarioRun` per scenario, in input order, each
        holding the seed-resolved scenario it actually executed.
    """
    campaign = tuple(scenarios)
    derived = spawn_scenario_seeds(root_seed, len(campaign))
    runs = []
    for scenario, child_seed in zip(campaign, derived):
        resolved = (scenario if scenario.seed is not None
                    else scenario.with_seed(child_seed))
        runs.append(ScenarioRun(
            scenario=resolved,
            result=run_scenario(resolved, scalar=scalar)))
    return tuple(runs)
