"""Workload protocol and registry: the contract behind the front door.

A *workload* is one engine entry point packaged behind a uniform
surface: a name, the plan type it builds, a vectorized ``run`` path, a
scalar equivalence reference ``run_scalar``, and a ``summarize`` that
renders its result for humans.  The three engine workloads (calibration
campaigns, streaming wear monitoring, closed-loop therapy) register
themselves in the global :data:`WORKLOADS` registry at import time, so
a :class:`~repro.scenarios.Scenario` names its workload by string and
anything that iterates :func:`available_workloads` — the CLI, the batch
dispatcher, the round-trip tests — picks new workloads up for free.

Results flow back through :class:`ResultProtocol`, the shared export
contract every engine result type (:class:`~repro.engine.BatchResult`,
:class:`~repro.engine.MonitorResult`,
:class:`~repro.engine.TherapyResult`) implements: a human ``summary()``,
a flat JSON-able ``summary_row()`` for tabular sweeps, and a full
``to_dict()`` artifact export.
"""

from __future__ import annotations

from typing import Any, Mapping, Protocol, runtime_checkable


@runtime_checkable
class ResultProtocol(Protocol):
    """Common export surface every engine result implements.

    Structural (duck-typed) protocol: the engine result dataclasses are
    not subclasses, they just provide these three methods — which is
    what lets one CLI / one export path serve all workloads.
    """

    def summary(self) -> str:
        """Multi-line human-readable outcome summary."""
        ...

    def summary_row(self) -> dict:
        """Flat scalar metrics as one JSON-serializable row."""
        ...

    def to_dict(self, include_traces: bool = False) -> dict:
        """Full JSON-serializable export (traces optional)."""
        ...


@runtime_checkable
class Workload(Protocol):
    """One registered engine workload behind the scenario front door.

    Implementations carry two attributes — ``name`` (the registry key a
    :class:`~repro.scenarios.Scenario` references) and ``plan_type``
    (the engine plan dataclass ``build_plan`` produces) — plus the five
    methods below.  They hold no per-run state: a workload is a pure
    adapter from declarative spec mappings to engine calls.
    """

    name: str
    plan_type: type

    def build_plan(self, spec: Mapping[str, Any], seed: int | None) -> Any:
        """Resolve a declarative spec mapping into an engine plan."""
        ...

    def run(self, plan: Any) -> ResultProtocol:
        """Execute a plan on the vectorized engine path."""
        ...

    def run_scalar(self, plan: Any) -> ResultProtocol:
        """Execute a plan on the scalar equivalence-reference path."""
        ...

    def summarize(self, result: ResultProtocol) -> str:
        """Render a result of this workload for humans."""
        ...

    def describe(self) -> str:
        """Spec documentation plus a runnable example (CLI help text)."""
        ...

    def example_spec(self) -> dict:
        """A small, runnable example spec mapping."""
        ...


#: Global workload registry, keyed by workload name.  The built-in
#: engine workloads register here when :mod:`repro.scenarios.workloads`
#: imports; downstream code may register additional workloads through
#: :func:`register_workload`.
WORKLOADS: dict[str, Workload] = {}


def register_workload(workload: Workload,
                      replace: bool = False) -> Workload:
    """Register a workload under its ``name`` and return it.

    Args:
        workload: the implementation to expose.
        replace: allow overwriting an existing registration (off by
            default so two workloads cannot silently shadow each other).

    Returns:
        The registered workload (so calls can be chained/assigned).
    """
    name = workload.name
    if not replace and name in WORKLOADS:
        raise ValueError(f"workload {name!r} is already registered; "
                         f"pass replace=True to overwrite")
    WORKLOADS[name] = workload
    return workload


def workload_by_name(name: str) -> Workload:
    """Resolve a registered workload (KeyError listing the registry)."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; registered: "
            f"{sorted(WORKLOADS)}") from None


def available_workloads() -> tuple[str, ...]:
    """The registered workload names, sorted."""
    return tuple(sorted(WORKLOADS))
