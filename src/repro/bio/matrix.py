"""Sample matrices: buffer, serum, cell-culture medium.

A matrix bundles the interferent cocktail, a fouling-driven sensitivity
drift and the dissolved-oxygen level (co-substrate of the oxidases).  The
examples run the same sensor against different matrices to show why
real-fluid operation is harder than buffer calibration — the gap the
paper's Nafion films and integrated readout aim to close.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.bio.interference import (
    ASCORBATE,
    PARACETAMOL,
    URATE,
    Interferent,
    total_interference_current,
)


@dataclass(frozen=True)
class SampleMatrix:
    """A measurement matrix.

    Attributes:
        name: matrix identity.
        interferents: electroactive components present.
        fouling_rate_per_hour: fractional sensitivity loss per hour from
            protein adsorption on the electrode.
        oxygen_molar: dissolved O2 [mol/L] (air-saturated water: ~0.25 mM).
        baseline_drift_a_per_hour_per_m2: slow additive baseline drift
            normalized by electrode area.
    """

    name: str
    interferents: tuple[Interferent, ...] = field(default_factory=tuple)
    fouling_rate_per_hour: float = 0.0
    oxygen_molar: float = 0.25e-3
    baseline_drift_a_per_hour_per_m2: float = 0.0

    def __post_init__(self) -> None:
        if self.fouling_rate_per_hour < 0:
            raise ValueError("fouling rate must be >= 0")
        if self.oxygen_molar < 0:
            raise ValueError("oxygen level must be >= 0")

    def interference_current_a(self,
                               area_m2: float,
                               potential_v: float,
                               nafion_film: bool = False) -> float:
        """Total interferent current [A] for this matrix."""
        return total_interference_current(
            list(self.interferents), area_m2, potential_v, nafion_film)

    def sensitivity_retention(self, elapsed_hours: float) -> float:
        """Multiplicative sensitivity factor after ``elapsed_hours`` of fouling.

        Exponential decay: ``exp(-rate * t)``.
        """
        if elapsed_hours < 0:
            raise ValueError("elapsed time must be >= 0")
        return math.exp(-self.fouling_rate_per_hour * elapsed_hours)

    def baseline_drift_a(self, area_m2: float, elapsed_hours: float) -> float:
        """Accumulated additive baseline shift [A] after ``elapsed_hours``."""
        if area_m2 <= 0:
            raise ValueError("area must be > 0")
        if elapsed_hours < 0:
            raise ValueError("elapsed time must be >= 0")
        return self.baseline_drift_a_per_hour_per_m2 * area_m2 * elapsed_hours


#: Clean phosphate buffer: the calibration matrix.
BUFFER = SampleMatrix(name="phosphate buffer")

#: Human serum: full interferent cocktail, significant fouling.
SERUM = SampleMatrix(
    name="human serum",
    interferents=(ASCORBATE, URATE, PARACETAMOL),
    fouling_rate_per_hour=0.01,
    oxygen_molar=0.13e-3,
    baseline_drift_a_per_hour_per_m2=2e-4,
)

#: Neural cell-culture medium: the paper's monitoring scenario [4], [5].
CELL_CULTURE_MEDIUM = SampleMatrix(
    name="cell-culture medium",
    interferents=(ASCORBATE,),
    fouling_rate_per_hour=0.003,
    oxygen_molar=0.20e-3,
    baseline_drift_a_per_hour_per_m2=5e-5,
)
