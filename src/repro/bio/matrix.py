"""Sample matrices: buffer, serum, cell-culture medium.

A matrix bundles the interferent cocktail, a fouling-driven sensitivity
drift and the dissolved-oxygen level (co-substrate of the oxidases).  The
examples run the same sensor against different matrices to show why
real-fluid operation is harder than buffer calibration — the gap the
paper's Nafion films and integrated readout aim to close.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bio.interference import (
    ASCORBATE,
    PARACETAMOL,
    URATE,
    Interferent,
    total_interference_current,
)


@dataclass(frozen=True)
class SampleMatrix:
    """A measurement matrix.

    Attributes:
        name: matrix identity.
        interferents: electroactive components present.
        fouling_rate_per_hour: fractional sensitivity loss per hour from
            protein adsorption on the electrode.
        oxygen_molar: dissolved O2 [mol/L] (air-saturated water: ~0.25 mM).
        baseline_drift_a_per_hour_per_m2: slow additive baseline drift
            normalized by electrode area.
    """

    name: str
    interferents: tuple[Interferent, ...] = field(default_factory=tuple)
    fouling_rate_per_hour: float = 0.0
    oxygen_molar: float = 0.25e-3
    baseline_drift_a_per_hour_per_m2: float = 0.0

    def __post_init__(self) -> None:
        if self.fouling_rate_per_hour < 0:
            raise ValueError("fouling rate must be >= 0")
        if self.oxygen_molar < 0:
            raise ValueError("oxygen level must be >= 0")

    def interference_current_a(self,
                               area_m2: float,
                               potential_v: float,
                               nafion_film: bool = False) -> float:
        """Total interferent current [A] for this matrix."""
        return total_interference_current(
            list(self.interferents), area_m2, potential_v, nafion_film)

    def sensitivity_retention_batch(self,
                                    elapsed_hours: "np.ndarray",
                                    ) -> "np.ndarray":
        """Fouling retention over an array of elapsed times, vectorized.

        Batch-shaped kernel following the engine convention: exponential
        decay ``exp(-rate * t)`` evaluated shape-preservingly (e.g. on a
        ``(n_channels, n_samples)`` wear-time block).
        :meth:`repro.core.longterm.DriftBudget.sensitivity_retention_batch`
        composes the same fouling rate with enzyme decay into the fused
        exponent the streaming monitor consumes.

        Args:
            elapsed_hours: elapsed times [h], any shape.

        Returns:
            Multiplicative sensitivity factors, same shape.
        """
        times = np.asarray(elapsed_hours, dtype=float)
        if np.any(times < 0):
            raise ValueError("elapsed time must be >= 0")
        return np.exp(-self.fouling_rate_per_hour * times)

    def sensitivity_retention(self, elapsed_hours: float) -> float:
        """Multiplicative sensitivity factor after ``elapsed_hours`` of fouling.

        Thin scalar wrapper over :meth:`sensitivity_retention_batch`.
        """
        return float(
            self.sensitivity_retention_batch(np.asarray(elapsed_hours)))

    def baseline_drift_batch_a(self,
                               area_m2: float,
                               elapsed_hours: "np.ndarray") -> "np.ndarray":
        """Accumulated additive baseline shift [A] over a time block.

        Batch-shaped kernel (shape-preserving in ``elapsed_hours``); the
        streaming monitor gathers the same
        ``baseline_drift_a_per_hour_per_m2 * area`` coefficient per
        channel when fusing it into its chunk evaluation.
        """
        if area_m2 <= 0:
            raise ValueError("area must be > 0")
        times = np.asarray(elapsed_hours, dtype=float)
        if np.any(times < 0):
            raise ValueError("elapsed time must be >= 0")
        return self.baseline_drift_a_per_hour_per_m2 * area_m2 * times

    def baseline_drift_a(self, area_m2: float, elapsed_hours: float) -> float:
        """Accumulated additive baseline shift [A] after ``elapsed_hours``.

        Thin scalar wrapper over :meth:`baseline_drift_batch_a`.
        """
        return float(
            self.baseline_drift_batch_a(area_m2, np.asarray(elapsed_hours)))


#: Clean phosphate buffer: the calibration matrix.
BUFFER = SampleMatrix(name="phosphate buffer")

#: Human serum: full interferent cocktail, significant fouling.
SERUM = SampleMatrix(
    name="human serum",
    interferents=(ASCORBATE, URATE, PARACETAMOL),
    fouling_rate_per_hour=0.01,
    oxygen_molar=0.13e-3,
    baseline_drift_a_per_hour_per_m2=2e-4,
)

#: Neural cell-culture medium: the paper's monitoring scenario [4], [5].
CELL_CULTURE_MEDIUM = SampleMatrix(
    name="cell-culture medium",
    interferents=(ASCORBATE,),
    fouling_rate_per_hour=0.003,
    oxygen_molar=0.20e-3,
    baseline_drift_a_per_hour_per_m2=5e-5,
)
