"""Biological sample substrate: matrices and interferents.

The paper motivates measurement in "human fluids" and cell-culture media.
Real matrices add electroactive interferents (ascorbate, urate,
paracetamol) and fouling-driven drift; this package provides the synthetic
sample models the examples and failure-injection tests run against.
"""

from repro.bio.matrix import SampleMatrix, BUFFER, SERUM, CELL_CULTURE_MEDIUM
from repro.bio.interference import (
    Interferent,
    ASCORBATE,
    URATE,
    PARACETAMOL,
    total_interference_current,
)

__all__ = [
    "SampleMatrix",
    "BUFFER",
    "SERUM",
    "CELL_CULTURE_MEDIUM",
    "Interferent",
    "ASCORBATE",
    "URATE",
    "PARACETAMOL",
    "total_interference_current",
]
