"""Electroactive interferents.

At the +650 mV working potential of the oxidase sensors, common small
molecules oxidize directly at the electrode and add a spurious anodic
current.  Nafion (a cation-exchange polymer) partially excludes the anionic
interferents — one more reason the paper's films are cast in Nafion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import FARADAY


@dataclass(frozen=True)
class Interferent:
    """An electroactive matrix component.

    Attributes:
        name: compound name.
        typical_molar: typical physiological concentration [mol/L].
        onset_potential_v: potential above which it oxidizes [V].
        rate_m_s: effective heterogeneous oxidation rate at +0.65 V [m/s].
        nafion_rejection: fraction blocked by a Nafion film (anions are
            repelled by the sulfonate groups; 0 = passes freely).
    """

    name: str
    typical_molar: float
    onset_potential_v: float
    rate_m_s: float
    nafion_rejection: float

    def __post_init__(self) -> None:
        if self.typical_molar < 0:
            raise ValueError(f"{self.name}: concentration must be >= 0")
        if self.rate_m_s < 0:
            raise ValueError(f"{self.name}: rate must be >= 0")
        if not 0.0 <= self.nafion_rejection <= 1.0:
            raise ValueError(f"{self.name}: rejection must be in [0, 1]")

    def current_a(self,
                  area_m2: float,
                  potential_v: float,
                  concentration_molar: float | None = None,
                  nafion_film: bool = False,
                  n_electrons: int = 2) -> float:
        """Interference current [A] at ``potential_v`` on ``area_m2``.

        Zero below the onset potential; above it, a mass-transfer-like
        current ``n F A k C`` scaled by Nafion rejection when a film is
        present.
        """
        if area_m2 <= 0:
            raise ValueError("area must be > 0")
        concentration = (self.typical_molar if concentration_molar is None
                         else concentration_molar)
        if concentration < 0:
            raise ValueError("concentration must be >= 0")
        if potential_v < self.onset_potential_v:
            return 0.0
        transmission = (1.0 - self.nafion_rejection) if nafion_film else 1.0
        conc_si = concentration * 1e3
        return n_electrons * FARADAY * area_m2 * self.rate_m_s * conc_si * transmission


ASCORBATE = Interferent(
    name="ascorbate",
    typical_molar=50e-6,
    onset_potential_v=0.20,
    rate_m_s=2.0e-6,
    nafion_rejection=0.9,
)

URATE = Interferent(
    name="urate",
    typical_molar=300e-6,
    onset_potential_v=0.35,
    rate_m_s=8.0e-7,
    nafion_rejection=0.85,
)

PARACETAMOL = Interferent(
    name="paracetamol",
    typical_molar=100e-6,
    onset_potential_v=0.45,
    rate_m_s=1.0e-6,
    nafion_rejection=0.2,  # neutral molecule: Nafion barely helps
)


def total_interference_current(interferents: list[Interferent],
                               area_m2: float,
                               potential_v: float,
                               nafion_film: bool = False) -> float:
    """Sum of the interference currents [A] of ``interferents``."""
    return sum(i.current_a(area_m2, potential_v, nafion_film=nafion_film)
               for i in interferents)
