"""Enzyme-kinetics substrate: the biological recognition layer.

The paper's sensors use two enzyme families (section 3.1): oxidases
(glucose / lactate / glutamate oxidase) read out chronoamperometrically via
their H2O2 product, and cytochrome P450 isoforms (drug sensing) read out by
cyclic voltammetry through direct electron transfer.  This package models
their solution kinetics, the immobilized-layer behaviour on CNT films, and
the non-idealities (inhibition, denaturation) exercised by the extended
tests and examples.
"""

from repro.enzymes.michaelis_menten import (
    michaelis_menten_rate,
    linear_slope,
    fractional_deviation_from_linearity,
    linear_range_upper,
    km_for_linear_range,
    apparent_km_mass_transport,
    hill_rate,
)
from repro.enzymes.kinetics import ping_pong_rate, BatchReactor
from repro.enzymes.catalog import (
    Enzyme,
    EnzymeFamily,
    GLUCOSE_OXIDASE,
    LACTATE_OXIDASE,
    GLUTAMATE_OXIDASE,
    CYP1A2,
    CYP2B6,
    CYP3A4,
    CYP_CUSTOM_FATTY_ACID,
    enzyme_by_name,
    ALL_ENZYMES,
)
from repro.enzymes.immobilization import ImmobilizedLayer, coverage_from_sensitivity
from repro.enzymes.inhibition import (
    InhibitionType,
    Inhibitor,
    apparent_parameters,
)
from repro.enzymes.stability import EnzymeStability
from repro.enzymes.oxygen import (
    OxygenDependence,
    AIR_SATURATED_O2_MOLAR,
    TISSUE_O2_MOLAR,
)

__all__ = [
    "michaelis_menten_rate",
    "linear_slope",
    "fractional_deviation_from_linearity",
    "linear_range_upper",
    "km_for_linear_range",
    "apparent_km_mass_transport",
    "hill_rate",
    "ping_pong_rate",
    "BatchReactor",
    "Enzyme",
    "EnzymeFamily",
    "GLUCOSE_OXIDASE",
    "LACTATE_OXIDASE",
    "GLUTAMATE_OXIDASE",
    "CYP1A2",
    "CYP2B6",
    "CYP3A4",
    "CYP_CUSTOM_FATTY_ACID",
    "enzyme_by_name",
    "ALL_ENZYMES",
    "ImmobilizedLayer",
    "coverage_from_sensitivity",
    "InhibitionType",
    "Inhibitor",
    "apparent_parameters",
    "EnzymeStability",
    "OxygenDependence",
    "AIR_SATURATED_O2_MOLAR",
    "TISSUE_O2_MOLAR",
]
