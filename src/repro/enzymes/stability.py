"""Enzyme stability: operational decay and temperature dependence.

Implanted / point-of-care sensors (the paper's target applications) must
hold their calibration over days.  Activity loss follows first-order
denaturation to a good approximation; its rate accelerates with temperature
following an Arrhenius law.  The drift model in :mod:`repro.bio` composes
this with electrode fouling to produce realistic long-term baselines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import GAS_CONSTANT, STANDARD_TEMPERATURE


@dataclass(frozen=True)
class EnzymeStability:
    """First-order operational-stability model of an immobilized enzyme.

    Attributes:
        half_life_s: activity half-life at the reference temperature [s].
            CNT immobilization typically *stabilizes* enzymes; half-lives of
            one to several weeks are representative for GOD on MWCNT.
        reference_temperature_k: temperature the half-life was measured at.
        activation_energy_j_mol: Arrhenius activation energy of the
            denaturation process [J/mol] (~80 kJ/mol typical for proteins).
    """

    half_life_s: float
    reference_temperature_k: float = STANDARD_TEMPERATURE
    activation_energy_j_mol: float = 8.0e4

    def __post_init__(self) -> None:
        if self.half_life_s <= 0:
            raise ValueError(f"half-life must be > 0, got {self.half_life_s}")
        if self.reference_temperature_k <= 0:
            raise ValueError("reference temperature must be > 0")
        if self.activation_energy_j_mol < 0:
            raise ValueError("activation energy must be >= 0")

    @property
    def decay_rate_per_s(self) -> float:
        """First-order denaturation rate constant [1/s] at the reference T."""
        return math.log(2.0) / self.half_life_s

    def rates_at(self, temperatures_k: np.ndarray) -> np.ndarray:
        """Arrhenius-scaled decay rates [1/s] at an array of temperatures.

        Batch kernel consumed by the streaming monitor: one operating
        temperature per channel of a cohort, shape-preserving.

        Args:
            temperatures_k: absolute temperatures [K], any shape.

        Returns:
            Decay rate constants [1/s], same shape as the input.
        """
        temps = np.asarray(temperatures_k, dtype=float)
        if np.any(temps <= 0):
            raise ValueError("temperature must be > 0")
        exponent = (-self.activation_energy_j_mol / GAS_CONSTANT
                    * (1.0 / temps - 1.0 / self.reference_temperature_k))
        return self.decay_rate_per_s * np.exp(exponent)

    def rate_at(self, temperature_k: float) -> float:
        """Arrhenius-scaled decay rate [1/s] at ``temperature_k``.

        Thin scalar wrapper over :meth:`rates_at`.
        """
        if temperature_k <= 0:
            raise ValueError(f"temperature must be > 0, got {temperature_k}")
        return float(self.rates_at(np.asarray(temperature_k)))

    def remaining_activity(self,
                           elapsed_s: np.ndarray | float,
                           temperature_k: float | None = None
                           ) -> np.ndarray | float:
        """Return the remaining activity fraction after ``elapsed_s`` seconds."""
        times = np.asarray(elapsed_s, dtype=float)
        if np.any(times < 0):
            raise ValueError("elapsed time must be >= 0")
        rate = (self.decay_rate_per_s if temperature_k is None
                else self.rate_at(temperature_k))
        value = np.exp(-rate * times)
        if np.isscalar(elapsed_s):
            return float(value)
        return value

    def remaining_activity_batch(self,
                                 elapsed_s: np.ndarray,
                                 temperatures_k: np.ndarray | float | None = None,
                                 ) -> np.ndarray:
        """Remaining activity for a batch of channels, vectorized.

        Batch kernel for the streaming monitor: per-channel elapsed
        times (rows) decay at per-channel Arrhenius rates.

        Args:
            elapsed_s: elapsed times [s], shape ``(n_channels, n_samples)``
                (or any shape broadcastable against the rates).
            temperatures_k: per-channel operating temperatures [K],
                shape ``(n_channels,)`` (broadcast column-wise), a scalar
                applied to every channel, or ``None`` for the reference
                temperature.

        Returns:
            Activity fractions, shaped like ``elapsed_s``.
        """
        times = np.asarray(elapsed_s, dtype=float)
        if np.any(times < 0):
            raise ValueError("elapsed time must be >= 0")
        if temperatures_k is None:
            rates = np.asarray(self.decay_rate_per_s)
        else:
            rates = self.rates_at(np.asarray(temperatures_k, dtype=float))
        if rates.ndim == 1 and times.ndim == 2:
            rates = rates[:, None]
        return np.exp(-rates * times)

    def lifetime_to_fraction(self, fraction: float,
                             temperature_k: float | None = None) -> float:
        """Return the time [s] until activity falls to ``fraction``.

        E.g. ``lifetime_to_fraction(0.9)`` is the window within which the
        sensor calibration stays within 10 % of nominal.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        rate = (self.decay_rate_per_s if temperature_k is None
                else self.rate_at(temperature_k))
        return -math.log(fraction) / rate
