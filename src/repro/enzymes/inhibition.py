"""Reversible enzyme inhibition models.

Personalized-therapy scenarios involve drug *mixtures*: a second drug that
binds the same CYP isoform acts as an inhibitor and distorts the calibration
of the first (the multi-panel detection challenge the paper cites from
Carrara et al. [9]).  These helpers compute the apparent kinetic parameters
under the three classic reversible inhibition modes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class InhibitionType(enum.Enum):
    """Classic reversible inhibition modes."""

    COMPETITIVE = "competitive"
    UNCOMPETITIVE = "uncompetitive"
    NONCOMPETITIVE = "noncompetitive"


@dataclass(frozen=True)
class Inhibitor:
    """A reversible inhibitor of a biosensing enzyme.

    Attributes:
        name: inhibitor identity (e.g. a co-administered drug).
        ki_molar: inhibition constant [mol/L].
        mode: which apparent parameter(s) the inhibitor distorts.
    """

    name: str
    ki_molar: float
    mode: InhibitionType

    def __post_init__(self) -> None:
        if self.ki_molar <= 0:
            raise ValueError(f"{self.name}: Ki must be > 0, got {self.ki_molar}")

    def saturation_factor(self, concentration_molar: float) -> float:
        """Return ``1 + [I]/Ki`` for ``concentration_molar`` of inhibitor."""
        if concentration_molar < 0:
            raise ValueError("inhibitor concentration must be >= 0")
        return 1.0 + concentration_molar / self.ki_molar


def apparent_parameters(vmax: float,
                        km_molar: float,
                        inhibitor: Inhibitor,
                        inhibitor_molar: float) -> tuple[float, float]:
    """Return (Vmax_app, Km_app) in the presence of an inhibitor.

    * competitive:    Km' = Km (1 + I/Ki),            Vmax' = Vmax
    * uncompetitive:  Km' = Km / (1 + I/Ki),          Vmax' = Vmax / (1 + I/Ki)
    * noncompetitive: Km' = Km,                        Vmax' = Vmax / (1 + I/Ki)

    In every mode the low-concentration sensitivity Vmax'/Km' is reduced or
    unchanged, never increased — asserted by the property tests.
    """
    if vmax < 0:
        raise ValueError(f"Vmax must be >= 0, got {vmax}")
    if km_molar <= 0:
        raise ValueError(f"Km must be > 0, got {km_molar}")
    factor = inhibitor.saturation_factor(inhibitor_molar)
    if inhibitor.mode is InhibitionType.COMPETITIVE:
        return vmax, km_molar * factor
    if inhibitor.mode is InhibitionType.UNCOMPETITIVE:
        return vmax / factor, km_molar / factor
    if inhibitor.mode is InhibitionType.NONCOMPETITIVE:
        return vmax / factor, km_molar
    raise ValueError(f"unhandled inhibition mode {inhibitor.mode}")


def degree_of_inhibition(vmax: float,
                         km_molar: float,
                         substrate_molar: float,
                         inhibitor: Inhibitor,
                         inhibitor_molar: float) -> float:
    """Return the fractional rate loss (0..1) at a given substrate level.

    ``1 - v_inhibited/v_free`` — 0 means no effect, 1 full suppression.
    """
    if substrate_molar < 0:
        raise ValueError("substrate concentration must be >= 0")
    if substrate_molar == 0.0:
        return 0.0
    free_rate = vmax * substrate_molar / (km_molar + substrate_molar)
    if free_rate == 0.0:
        return 0.0
    vmax_app, km_app = apparent_parameters(
        vmax, km_molar, inhibitor, inhibitor_molar)
    inhibited_rate = vmax_app * substrate_molar / (km_app + substrate_molar)
    return 1.0 - inhibited_rate / free_rate
