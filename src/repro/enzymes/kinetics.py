"""Time-domain enzyme kinetics: ping-pong mechanism and batch reactors.

Oxidases follow a ping-pong bi-bi mechanism with molecular oxygen as the
second substrate; under oxygen-rich conditions this collapses to the
Michaelis-Menten form used elsewhere, but the full expression lets the
examples explore oxygen-limited regimes (relevant to implanted sensors).
:class:`BatchReactor` integrates substrate consumption in a closed volume —
the cell-culture monitoring scenario of the paper's motivating applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.integrate import solve_ivp

from repro.enzymes.catalog import Enzyme


def ping_pong_rate(substrate_molar: float,
                   oxygen_molar: float,
                   kcat_per_s: float,
                   enzyme_molar: float,
                   km_substrate_molar: float,
                   km_oxygen_molar: float) -> float:
    """Return the ping-pong bi-bi rate [mol/(L s)].

    ``v = kcat E / (1 + Km_S/S + Km_O2/O2)``

    As ``oxygen_molar -> inf`` this tends to the Michaelis-Menten rate with
    the substrate alone, which the tests assert.
    """
    if min(kcat_per_s, enzyme_molar) < 0:
        raise ValueError("kcat and enzyme concentration must be >= 0")
    if km_substrate_molar <= 0 or km_oxygen_molar <= 0:
        raise ValueError("Michaelis constants must be > 0")
    if substrate_molar < 0 or oxygen_molar < 0:
        raise ValueError("concentrations must be >= 0")
    if substrate_molar == 0.0 or oxygen_molar == 0.0:
        return 0.0
    denominator = (1.0 + km_substrate_molar / substrate_molar
                   + km_oxygen_molar / oxygen_molar)
    return kcat_per_s * enzyme_molar / denominator


@dataclass
class BatchReactor:
    """Closed, well-stirred volume in which an enzyme consumes its substrate.

    Models the cell-culture-well scenario: metabolite produced/consumed by
    cells, monitored over hours by the biosensor platform.

    Attributes:
        enzyme: catalytic parameters (kcat, Km).
        enzyme_molar: enzyme concentration in the volume [mol/L].
        production_molar_per_s: zeroth-order substrate source (e.g. cellular
            lactate release); may be zero.
    """

    enzyme: Enzyme
    enzyme_molar: float
    production_molar_per_s: float = 0.0
    _last_solution: object = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.enzyme_molar < 0:
            raise ValueError("enzyme concentration must be >= 0")

    def rate(self, substrate_molar: float) -> float:
        """Net d[S]/dt [mol/(L s)] at ``substrate_molar``."""
        if substrate_molar <= 0:
            consumption = 0.0
        else:
            vmax = self.enzyme.kcat_per_s * self.enzyme_molar
            consumption = (vmax * substrate_molar
                           / (self.enzyme.km_molar + substrate_molar))
        return self.production_molar_per_s - consumption

    def simulate(self,
                 initial_molar: float,
                 duration_s: float,
                 n_points: int = 200) -> tuple[np.ndarray, np.ndarray]:
        """Integrate the substrate concentration over ``duration_s`` seconds.

        Returns ``(times_s, concentrations_molar)``; concentrations are
        clipped at zero (the enzyme cannot drive them negative).
        """
        if initial_molar < 0:
            raise ValueError("initial concentration must be >= 0")
        if duration_s <= 0 or n_points < 2:
            raise ValueError("need positive duration and >= 2 points")
        times = np.linspace(0.0, duration_s, n_points)
        solution = solve_ivp(
            lambda _t, y: [self.rate(max(y[0], 0.0))],
            (0.0, duration_s),
            [initial_molar],
            t_eval=times,
            method="LSODA",
            rtol=1e-8,
            atol=1e-12,
        )
        if not solution.success:
            raise RuntimeError(f"batch reactor integration failed: {solution.message}")
        self._last_solution = solution
        return times, np.clip(solution.y[0], 0.0, None)

    def steady_state_molar(self) -> float:
        """Return the steady-state substrate level when production > 0.

        Setting production = consumption and solving the Michaelis-Menten
        balance gives ``S* = Km p / (Vmax - p)``; if production meets or
        exceeds Vmax the substrate grows without bound and ``inf`` is
        returned.
        """
        vmax = self.enzyme.kcat_per_s * self.enzyme_molar
        production = self.production_molar_per_s
        if production <= 0:
            return 0.0
        if production >= vmax:
            return float("inf")
        return self.enzyme.km_molar * production / (vmax - production)
