"""Oxygen limitation of oxidase biosensors.

Oxidases consume dissolved O2 as their second substrate (ping-pong
mechanism); in venous blood or implanted tissue the O2 level can fall an
order of magnitude below the glucose level — the classic "oxygen deficit"
of implantable glucose sensors.  This model quantifies the sensitivity
loss and the linear-range distortion, supporting the paper's implanted-
monitoring perspective (sections 1 and 2.5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.enzymes.catalog import Enzyme
from repro.enzymes.kinetics import ping_pong_rate

#: Air-saturated aqueous O2 at 25 C [mol/L].
AIR_SATURATED_O2_MOLAR = 0.25e-3

#: Typical subcutaneous-tissue O2 [mol/L] (5 % of air saturation).
TISSUE_O2_MOLAR = 0.02e-3


@dataclass(frozen=True)
class OxygenDependence:
    """Ping-pong oxygen response of an immobilized oxidase.

    Attributes:
        enzyme: the oxidase (uses its kcat and substrate Km).
        km_oxygen_molar: Michaelis constant for O2 [mol/L]
            (GOD: ~0.2 mM — right at air saturation, hence the problem).
        oxygen_permeability: relative O2 supply through the film (membrane
            engineering raises it; 1 = naked film).
    """

    enzyme: Enzyme
    km_oxygen_molar: float = 0.2e-3
    oxygen_permeability: float = 1.0

    def __post_init__(self) -> None:
        if self.km_oxygen_molar <= 0:
            raise ValueError("O2 Km must be > 0")
        if self.oxygen_permeability <= 0:
            raise ValueError("permeability must be > 0")

    def _effective_o2(self, oxygen_molar: float) -> float:
        if oxygen_molar < 0:
            raise ValueError("oxygen level must be >= 0")
        return oxygen_molar * self.oxygen_permeability

    def rate_factor(self,
                    substrate_molar: float,
                    oxygen_molar: float) -> float:
        """Rate relative to oxygen-saturated operation (0..1].

        Ratio of the ping-pong rate at the given O2 to the rate with
        unlimited O2, at the same substrate level.
        """
        if substrate_molar <= 0:
            return 1.0
        effective = self._effective_o2(oxygen_molar)
        if effective == 0.0:
            return 0.0
        limited = ping_pong_rate(
            substrate_molar, effective, self.enzyme.kcat_per_s, 1.0,
            self.enzyme.km_molar, self.km_oxygen_molar)
        unlimited = ping_pong_rate(
            substrate_molar, 1e3, self.enzyme.kcat_per_s, 1.0,
            self.enzyme.km_molar, self.km_oxygen_molar)
        return limited / unlimited

    def midrange_retention(self, oxygen_molar: float) -> float:
        """Signal retention at mid-scale substrate (S = Km).

        A subtlety of ping-pong kinetics: at substrate << Km the O2 term
        is negligible, so the *initial slope* barely suffers; the deficit
        bites at working concentrations, where low O2 caps the rate
        (equivalently, it divides both Vmax and the apparent Km by
        ``1 + Km_O2/[O2]``).  Mid-scale retention is the honest headline
        number for an implanted sensor.
        """
        return self.rate_factor(self.enzyme.km_molar, oxygen_molar)

    def apparent_linear_upper(self,
                              oxygen_molar: float,
                              tolerance: float = 0.1,
                              n_grid: int = 400) -> float:
        """Linear-range upper bound [mol/L] under oxygen limitation.

        Numerically locates where the O2-limited response deviates from
        its initial slope by ``tolerance``; low O2 *shrinks* the usable
        range because the O2 term saturates before the substrate does.
        """
        if not 0.0 < tolerance < 1.0:
            raise ValueError("tolerance must be in (0, 1)")
        effective = self._effective_o2(oxygen_molar)
        if effective == 0.0:
            return 0.0
        substrate = np.logspace(
            np.log10(self.enzyme.km_molar * 1e-4),
            np.log10(self.enzyme.km_molar * 10.0),
            n_grid)
        rates = np.array([
            ping_pong_rate(float(s), effective, self.enzyme.kcat_per_s, 1.0,
                           self.enzyme.km_molar, self.km_oxygen_molar)
            for s in substrate])
        initial_slope = rates[0] / substrate[0]
        deviation = 1.0 - rates / (initial_slope * substrate)
        beyond = np.flatnonzero(deviation > tolerance)
        if beyond.size == 0:
            return float(substrate[-1])
        return float(substrate[beyond[0]])

    def oxygen_deficit_ratio(self,
                             substrate_molar: float,
                             oxygen_molar: float) -> float:
        """Substrate-to-effective-O2 ratio — the classic deficit metric.

        Ratios above ~1 flag the regime where the sensor reads O2 supply
        instead of the analyte.
        """
        if substrate_molar < 0:
            raise ValueError("substrate level must be >= 0")
        effective = self._effective_o2(oxygen_molar)
        if effective == 0.0:
            return float("inf")
        return substrate_molar / effective
