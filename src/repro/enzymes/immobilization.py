"""Immobilized enzyme layer on a (nano-structured) electrode.

Casting an enzyme onto a CNT film changes its effective kinetics: part of
the activity is lost, the Michaelis constant shifts (conformation and
diffusion effects), and only a fraction of the generated product reaches the
electrode (collection efficiency).  The immobilized layer is the central
object linking enzyme kinetics to electrode current:

``i(C) = n F A_geo Gamma kcat_eff eta C / (Km_app + C)``

The inversion helper :func:`coverage_from_sensitivity` recovers the enzyme
surface coverage implied by a reported sensitivity, which is how the sensor
registry turns Table 2 rows into physical parameters (values land in the
pmol/cm^2 monolayer regime — asserted by tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import FARADAY
from repro.enzymes.catalog import Enzyme


@dataclass(frozen=True)
class ImmobilizedLayer:
    """An enzyme layer bound to an electrode surface.

    Attributes:
        enzyme: the free-enzyme kinetic identity.
        coverage_mol_m2: active-enzyme surface coverage Gamma [mol/m^2].
        activity_retention: fraction of kcat retained after immobilization.
        km_app_molar: apparent Michaelis constant of the immobilized enzyme
            [mol/L]; usually differs from the free-solution Km.
        collection_efficiency: fraction of product molecules (or catalytic
            electron turnovers) captured by the electrode.
    """

    enzyme: Enzyme
    coverage_mol_m2: float
    activity_retention: float = 1.0
    km_app_molar: float | None = None
    collection_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.coverage_mol_m2 <= 0:
            raise ValueError(
                f"coverage must be > 0, got {self.coverage_mol_m2}")
        if not 0.0 < self.activity_retention <= 1.0:
            raise ValueError(
                f"activity retention must be in (0, 1], got {self.activity_retention}")
        if self.km_app_molar is not None and self.km_app_molar <= 0:
            raise ValueError(f"apparent Km must be > 0, got {self.km_app_molar}")
        if not 0.0 < self.collection_efficiency <= 1.0:
            raise ValueError(
                "collection efficiency must be in (0, 1], "
                f"got {self.collection_efficiency}")

    @property
    def effective_kcat(self) -> float:
        """Turnover number after immobilization losses [1/s]."""
        return self.enzyme.kcat_per_s * self.activity_retention

    @property
    def apparent_km(self) -> float:
        """Apparent Michaelis constant [mol/L] (falls back to the free Km)."""
        if self.km_app_molar is not None:
            return self.km_app_molar
        return self.enzyme.km_molar

    @property
    def max_areal_rate(self) -> float:
        """Maximum catalytic flux [mol/(m^2 s)] at substrate saturation."""
        return self.coverage_mol_m2 * self.effective_kcat

    def areal_rate(self, concentration_molar: np.ndarray | float
                   ) -> np.ndarray | float:
        """Catalytic flux [mol/(m^2 s)] at ``concentration_molar``."""
        conc = np.asarray(concentration_molar, dtype=float)
        if np.any(conc < 0):
            raise ValueError("concentrations must be >= 0")
        value = self.max_areal_rate * conc / (self.apparent_km + conc)
        if np.isscalar(concentration_molar):
            return float(value)
        return value

    def steady_state_current(self,
                             concentration_molar: np.ndarray | float,
                             area_m2: float) -> np.ndarray | float:
        """Faradaic steady-state current [A] on an electrode of ``area_m2``.

        ``i = n F A eta J(C)`` with J the catalytic areal rate.
        """
        if area_m2 <= 0:
            raise ValueError(f"area must be > 0, got {area_m2}")
        rate = self.areal_rate(concentration_molar)
        return (self.enzyme.n_electrons * FARADAY * area_m2
                * self.collection_efficiency * rate)

    def sensitivity_si(self) -> float:
        """Linear-regime sensitivity [A M^-1 m^-2].

        Slope of the current density vs. concentration at C << Km:
        ``S = n F Gamma kcat_eff eta / Km_app`` with Km in mol/L, so the
        result is per molar (the convention of
        :func:`repro.units.sensitivity_si_from_paper`).
        """
        return (self.enzyme.n_electrons * FARADAY * self.max_areal_rate
                * self.collection_efficiency / self.apparent_km)

    def response_time_s(self, film_thickness_m: float,
                        diffusion_m2_s: float = 6.7e-10) -> float:
        """Diffusional response time of the enzyme film [s].

        ``tau ~ L^2/(2D)`` — thin films respond in well under a second,
        supporting the paper's miniaturization argument (section 1).
        """
        if film_thickness_m <= 0:
            raise ValueError("film thickness must be > 0")
        if diffusion_m2_s <= 0:
            raise ValueError("diffusion coefficient must be > 0")
        return film_thickness_m ** 2 / (2.0 * diffusion_m2_s)


def coverage_from_sensitivity(enzyme: Enzyme,
                              sensitivity_si: float,
                              km_app_molar: float,
                              activity_retention: float = 1.0,
                              collection_efficiency: float = 1.0) -> float:
    """Return the enzyme coverage Gamma [mol/m^2] implied by a sensitivity.

    Inverts the linear-regime expression of
    :meth:`ImmobilizedLayer.sensitivity_si`:

    ``Gamma = S Km_app / (n F kcat_eff eta)``

    Args:
        enzyme: the probe enzyme.
        sensitivity_si: target sensitivity [A M^-1 m^-2]
            (see :func:`repro.units.sensitivity_si_from_paper`).
        km_app_molar: apparent Michaelis constant [mol/L].
        activity_retention: kcat retention of the immobilized enzyme.
        collection_efficiency: product-collection efficiency.
    """
    if sensitivity_si <= 0:
        raise ValueError(f"sensitivity must be > 0, got {sensitivity_si}")
    if km_app_molar <= 0:
        raise ValueError(f"apparent Km must be > 0, got {km_app_molar}")
    if not 0.0 < activity_retention <= 1.0:
        raise ValueError("activity retention must be in (0, 1]")
    if not 0.0 < collection_efficiency <= 1.0:
        raise ValueError("collection efficiency must be in (0, 1]")
    kcat_eff = enzyme.kcat_per_s * activity_retention
    return (sensitivity_si * km_app_molar
            / (enzyme.n_electrons * FARADAY * kcat_eff * collection_efficiency))
