"""Michaelis-Menten kinetics and linear-range analysis.

The calibration-curve shape of every enzyme biosensor in the paper is
governed by Michaelis-Menten saturation: the response is linear while the
substrate concentration is well below the apparent Km, then bends over.
The linear range reported in Table 2 is therefore a direct window onto the
apparent Km of each immobilized enzyme — the inversion used by the sensor
registry (see DESIGN.md section 2).
"""

from __future__ import annotations

import numpy as np


def michaelis_menten_rate(concentration_molar: np.ndarray | float,
                          vmax: float,
                          km_molar: float) -> np.ndarray | float:
    """Return the reaction rate ``v = Vmax C / (Km + C)``.

    ``vmax`` may be expressed in any rate unit (mol/s, mol/(m^2 s), A);
    the returned value carries the same unit.  ``concentration_molar`` may
    be a scalar or array and must be non-negative.
    """
    _validate(vmax, km_molar)
    conc = np.asarray(concentration_molar, dtype=float)
    if np.any(conc < 0):
        raise ValueError("concentrations must be >= 0")
    value = vmax * conc / (km_molar + conc)
    if np.isscalar(concentration_molar):
        return float(value)
    return value


def linear_slope(vmax: float, km_molar: float) -> float:
    """Return the initial slope ``Vmax/Km`` of the Michaelis-Menten curve.

    This is the sensitivity of an enzyme sensor operated in its linear
    region (per unit of whatever ``vmax`` is expressed in).
    """
    _validate(vmax, km_molar)
    return vmax / km_molar


def fractional_deviation_from_linearity(concentration_molar: float,
                                        km_molar: float) -> float:
    """Return the relative shortfall of the MM rate vs. the linear extrapolation.

    ``1 - v(C)/(slope*C) = C/(Km + C)`` — a monotonically increasing
    function of concentration, 0 at C = 0 and 0.5 at C = Km.
    """
    if km_molar <= 0:
        raise ValueError(f"Km must be > 0, got {km_molar}")
    if concentration_molar < 0:
        raise ValueError("concentration must be >= 0")
    return concentration_molar / (km_molar + concentration_molar)


def linear_range_upper(km_molar: float, tolerance: float = 0.1) -> float:
    """Return the highest concentration with deviation <= ``tolerance``.

    Solving ``C/(Km + C) = tolerance`` gives ``C = Km tol/(1 - tol)``.
    With the default 10 % criterion the linear range ends at ``Km/9``.
    """
    if km_molar <= 0:
        raise ValueError(f"Km must be > 0, got {km_molar}")
    if not 0.0 < tolerance < 1.0:
        raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
    return km_molar * tolerance / (1.0 - tolerance)


def km_for_linear_range(upper_molar: float, tolerance: float = 0.1) -> float:
    """Invert :func:`linear_range_upper`: the Km implied by a linear range.

    This is how the registry converts Table 2 linear ranges into apparent
    Michaelis constants: ``Km = U (1 - tol)/tol`` (9x the upper limit at the
    default 10 % criterion).
    """
    if upper_molar <= 0:
        raise ValueError(f"upper limit must be > 0, got {upper_molar}")
    if not 0.0 < tolerance < 1.0:
        raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
    return upper_molar * (1.0 - tolerance) / tolerance


def apparent_km_mass_transport(km_molar: float,
                               max_flux_mol_m2_s: float,
                               mass_transfer_m_s: float) -> float:
    """Return the apparent Km including external mass-transport resistance.

    When the enzymatic flux J depletes substrate at the film surface, the
    local concentration is ``C_s = C_bulk - J/k_m``; to first order this
    stretches the Michaelis constant:

    ``Km_app = Km + J_max / k_m``

    Mass-transport limitation therefore *widens* the linear range at the
    cost of sensitivity — the trade-off the paper highlights for its
    glutamate sensor (wide 0-2 mM range, low sensitivity, section 3.2.3).
    """
    if km_molar <= 0:
        raise ValueError(f"Km must be > 0, got {km_molar}")
    if max_flux_mol_m2_s < 0:
        raise ValueError("max flux must be >= 0")
    if mass_transfer_m_s <= 0:
        raise ValueError("mass-transfer coefficient must be > 0")
    # Flux/velocity ratio has units mol/m^3; convert to mol/L.
    return km_molar + (max_flux_mol_m2_s / mass_transfer_m_s) * 1e-3


def hill_rate(concentration_molar: np.ndarray | float,
              vmax: float,
              k_half_molar: float,
              hill_coefficient: float) -> np.ndarray | float:
    """Return the Hill-equation rate for cooperative binding.

    ``v = Vmax C^h / (K^h + C^h)``.  With h = 1 this reduces exactly to
    Michaelis-Menten; some CYP isoforms show mild cooperativity (h ~ 1.3)
    which the extended drug-sensor models can enable.
    """
    _validate(vmax, k_half_molar)
    if hill_coefficient <= 0:
        raise ValueError(f"Hill coefficient must be > 0, got {hill_coefficient}")
    conc = np.asarray(concentration_molar, dtype=float)
    if np.any(conc < 0):
        raise ValueError("concentrations must be >= 0")
    powered = conc ** hill_coefficient
    value = vmax * powered / (k_half_molar ** hill_coefficient + powered)
    if np.isscalar(concentration_molar):
        return float(value)
    return value


def _validate(vmax: float, km_molar: float) -> None:
    if vmax < 0:
        raise ValueError(f"Vmax must be >= 0, got {vmax}")
    if km_molar <= 0:
        raise ValueError(f"Km must be > 0, got {km_molar}")
