"""Catalog of the enzymes used by the paper's biosensor platform.

Table 1 of the paper pairs each target with its probe enzyme:

====================  =======================  =====================
Target                Probe                    Technique
====================  =======================  =====================
glucose               glucose oxidase (GOD)    chronoamperometry
lactate               lactate oxidase (LOD)    chronoamperometry
glutamate             glutamate oxidase (GlOD) chronoamperometry
arachidonic acid      custom CYP (102A1-like)  cyclic voltammetry
Ftorafur              CYP1A2                   cyclic voltammetry
cyclophosphamide      CYP2B6                   cyclic voltammetry
ifosfamide            CYP3A4                   cyclic voltammetry
====================  =======================  =====================

Turnover numbers and Michaelis constants are order-of-magnitude literature
values for the free enzymes; immobilization corrections are applied by
:mod:`repro.enzymes.immobilization`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class EnzymeFamily(enum.Enum):
    """Enzyme families used in the platform (paper section 3.1)."""

    OXIDASE = "oxidase"
    CYTOCHROME_P450 = "cytochrome_p450"


@dataclass(frozen=True)
class Enzyme:
    """Kinetic identity of a biosensing enzyme.

    Attributes:
        name: common name (e.g. ``"glucose oxidase"``).
        abbreviation: short form used in the paper (GOD, LOD, GlOD, CYP...).
        ec_number: Enzyme Commission classification.
        family: oxidase or cytochrome P450.
        substrate: the analyte this enzyme recognizes.
        kcat_per_s: turnover number [1/s] of the free enzyme.
        km_molar: Michaelis constant [mol/L] of the free enzyme.
        n_electrons: electrons transferred per catalytic event at the
            electrode (2 for H2O2 oxidation, 1 for CYP heme turnover).
        detected_species: species that actually exchanges electrons with the
            electrode (H2O2 for oxidases, the heme centre for CYPs).
    """

    name: str
    abbreviation: str
    ec_number: str
    family: EnzymeFamily
    substrate: str
    kcat_per_s: float
    km_molar: float
    n_electrons: int
    detected_species: str

    def __post_init__(self) -> None:
        if self.kcat_per_s <= 0:
            raise ValueError(f"{self.name}: kcat must be > 0")
        if self.km_molar <= 0:
            raise ValueError(f"{self.name}: Km must be > 0")
        if self.n_electrons < 1:
            raise ValueError(f"{self.name}: n_electrons must be >= 1")

    @property
    def specificity_constant(self) -> float:
        """Return kcat/Km [L/(mol s)], the catalytic efficiency."""
        return self.kcat_per_s / self.km_molar


GLUCOSE_OXIDASE = Enzyme(
    name="glucose oxidase",
    abbreviation="GOD",
    ec_number="1.1.3.4",
    family=EnzymeFamily.OXIDASE,
    substrate="glucose",
    kcat_per_s=700.0,
    km_molar=33e-3,
    n_electrons=2,
    detected_species="hydrogen_peroxide",
)

LACTATE_OXIDASE = Enzyme(
    name="lactate oxidase",
    abbreviation="LOD",
    ec_number="1.1.3.2",
    family=EnzymeFamily.OXIDASE,
    substrate="lactate",
    kcat_per_s=120.0,
    km_molar=0.7e-3,
    n_electrons=2,
    detected_species="hydrogen_peroxide",
)

GLUTAMATE_OXIDASE = Enzyme(
    name="glutamate oxidase",
    abbreviation="GlOD",
    ec_number="1.4.3.11",
    family=EnzymeFamily.OXIDASE,
    substrate="glutamate",
    kcat_per_s=60.0,
    km_molar=0.2e-3,
    n_electrons=2,
    detected_species="hydrogen_peroxide",
)

CYP1A2 = Enzyme(
    name="cytochrome P450 1A2",
    abbreviation="CYP1A2",
    ec_number="1.14.14.1",
    family=EnzymeFamily.CYTOCHROME_P450,
    substrate="ftorafur",
    kcat_per_s=4.0,
    km_molar=50e-6,
    n_electrons=1,
    detected_species="cyp_heme",
)

CYP2B6 = Enzyme(
    name="cytochrome P450 2B6",
    abbreviation="CYP2B6",
    ec_number="1.14.14.1",
    family=EnzymeFamily.CYTOCHROME_P450,
    substrate="cyclophosphamide",
    kcat_per_s=3.0,
    km_molar=600e-6,
    n_electrons=1,
    detected_species="cyp_heme",
)

CYP3A4 = Enzyme(
    name="cytochrome P450 3A4",
    abbreviation="CYP3A4",
    ec_number="1.14.14.1",
    family=EnzymeFamily.CYTOCHROME_P450,
    substrate="ifosfamide",
    kcat_per_s=3.5,
    km_molar=800e-6,
    n_electrons=1,
    detected_species="cyp_heme",
)

#: Customized fatty-acid CYP isoform (CYP102A1-like, supplied by EMPA in the
#: paper) used for arachidonic acid.
CYP_CUSTOM_FATTY_ACID = Enzyme(
    name="custom fatty-acid cytochrome P450",
    abbreviation="custom-CYP",
    ec_number="1.14.14.1",
    family=EnzymeFamily.CYTOCHROME_P450,
    substrate="arachidonic acid",
    kcat_per_s=15.0,
    km_molar=150e-6,
    n_electrons=1,
    detected_species="cyp_heme",
)

ALL_ENZYMES: tuple[Enzyme, ...] = (
    GLUCOSE_OXIDASE,
    LACTATE_OXIDASE,
    GLUTAMATE_OXIDASE,
    CYP1A2,
    CYP2B6,
    CYP3A4,
    CYP_CUSTOM_FATTY_ACID,
)

_BY_NAME = {enzyme.name: enzyme for enzyme in ALL_ENZYMES}
_BY_ABBREVIATION = {enzyme.abbreviation: enzyme for enzyme in ALL_ENZYMES}


def enzyme_by_name(name: str) -> Enzyme:
    """Look up an enzyme by full name or paper abbreviation.

    Raises ``KeyError`` with the available names when not found.
    """
    if name in _BY_NAME:
        return _BY_NAME[name]
    if name in _BY_ABBREVIATION:
        return _BY_ABBREVIATION[name]
    available = sorted(_BY_NAME) + sorted(_BY_ABBREVIATION)
    raise KeyError(f"unknown enzyme {name!r}; available: {available}")
