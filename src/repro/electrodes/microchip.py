"""Microfabricated multi-electrode chip (paper ref [3]).

The metabolite sensors run on a microfabricated platform: five Au working
electrodes of 0.25 mm^2 each, a shared Au counter and a Pt pseudo-reference.
Five independent working electrodes are what make the *multi-target*
platform possible — each can carry a different enzyme while sharing the
counter/reference pair and the readout chain (the modularity argument of the
paper's abstract).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.electrodes.cell import PT_PSEUDO, ReferenceElectrode, ThreeElectrodeCell
from repro.electrodes.geometry import ElectrodeGeometry
from repro.electrodes.materials import GOLD
from repro.units import square_metre_from_square_millimetre

#: Working-electrode area quoted in the paper: 0.25 mm^2.
MICROCHIP_WORKING_AREA_M2 = square_metre_from_square_millimetre(0.25)

#: Number of independent working electrodes on the chip.
MICROCHIP_CHANNELS = 5


@dataclass(frozen=True)
class MicrofabricatedChip:
    """Five-channel Au microelectrode chip with shared counter and reference.

    Attributes:
        working_area_m2: area of each working electrode.
        n_channels: number of independent working electrodes.
        counter_area_m2: shared Au counter-electrode area.
        reference: shared Pt pseudo-reference.
        solution_resistance_ohm: uncompensated resistance per channel.
    """

    working_area_m2: float = MICROCHIP_WORKING_AREA_M2
    n_channels: int = MICROCHIP_CHANNELS
    counter_area_m2: float = 8.0 * MICROCHIP_WORKING_AREA_M2
    reference: ReferenceElectrode = field(default=PT_PSEUDO)
    solution_resistance_ohm: float = 300.0

    def __post_init__(self) -> None:
        if self.working_area_m2 <= 0:
            raise ValueError("working area must be > 0")
        if self.n_channels < 1:
            raise ValueError(f"need >= 1 channel, got {self.n_channels}")
        if self.counter_area_m2 <= 0:
            raise ValueError("counter area must be > 0")

    def channel_cell(self, channel: int) -> ThreeElectrodeCell:
        """Return the three-electrode cell seen by ``channel`` (0-based).

        Each channel shares the counter and reference; the cell object is
        what the technique simulators consume.
        """
        if not 0 <= channel < self.n_channels:
            raise ValueError(
                f"channel must be in [0, {self.n_channels}), got {channel}")
        geometry = ElectrodeGeometry.from_area(self.working_area_m2)
        return ThreeElectrodeCell(
            name=f"microfabricated chip, channel {channel}",
            working_geometry=geometry,
            working_material=GOLD,
            counter_material=GOLD,
            counter_area_m2=self.counter_area_m2,
            reference=self.reference,
            solution_resistance_ohm=self.solution_resistance_ohm,
        )

    def all_cells(self) -> list[ThreeElectrodeCell]:
        """Return the cells of every channel, in channel order."""
        return [self.channel_cell(i) for i in range(self.n_channels)]

    @property
    def total_sensing_area_m2(self) -> float:
        """Combined working area of all channels [m^2]."""
        return self.working_area_m2 * self.n_channels

    def sample_volume_estimate_l(self, height_m: float = 2e-3) -> float:
        """Estimate the sample volume [L] needed to cover the chip.

        A droplet of ``height_m`` over the active area — the 'requires small
        samples' advantage of miniaturization (paper section 1).  Counter
        and reference areas are included in the footprint.
        """
        if height_m <= 0:
            raise ValueError("height must be > 0")
        footprint = self.total_sensing_area_m2 * 4.0 + self.counter_area_m2
        return footprint * height_m * 1e3

    def reference_area_m2(self) -> float:
        """Area of the Pt pseudo-reference strip [m^2].

        The reference carries no current, so a strip one tenth of the
        counter electrode suffices.
        """
        return 0.1 * self.counter_area_m2
