"""Electrode geometry: area, perimeter and diffusion regime.

Miniaturization is a central argument of the paper (section 1): smaller
electrodes give faster response, need smaller samples, and — once the
radius becomes comparable to the diffusion layer — enjoy enhanced
edge (radial) diffusion.  The geometry object captures the quantities that
drive those effects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ElectrodeGeometry:
    """Planar electrode geometry.

    Attributes:
        shape: ``"disk"`` or ``"rectangle"``.
        area_m2: geometric area [m^2].
        perimeter_m: boundary length [m] (drives edge-diffusion effects).
    """

    shape: str
    area_m2: float
    perimeter_m: float

    def __post_init__(self) -> None:
        if self.shape not in ("disk", "rectangle"):
            raise ValueError(f"unknown shape {self.shape!r}")
        if self.area_m2 <= 0:
            raise ValueError(f"area must be > 0, got {self.area_m2}")
        if self.perimeter_m <= 0:
            raise ValueError(f"perimeter must be > 0, got {self.perimeter_m}")

    @classmethod
    def disk(cls, diameter_m: float) -> "ElectrodeGeometry":
        """Build a disk electrode of the given diameter."""
        if diameter_m <= 0:
            raise ValueError(f"diameter must be > 0, got {diameter_m}")
        radius = diameter_m / 2.0
        return cls("disk", math.pi * radius ** 2, math.pi * diameter_m)

    @classmethod
    def rectangle(cls, width_m: float, height_m: float) -> "ElectrodeGeometry":
        """Build a rectangular electrode."""
        if width_m <= 0 or height_m <= 0:
            raise ValueError("width and height must be > 0")
        return cls("rectangle", width_m * height_m,
                   2.0 * (width_m + height_m))

    @classmethod
    def from_area(cls, area_m2: float) -> "ElectrodeGeometry":
        """Build a disk with the requested area (papers often quote area only)."""
        if area_m2 <= 0:
            raise ValueError(f"area must be > 0, got {area_m2}")
        diameter = 2.0 * math.sqrt(area_m2 / math.pi)
        return cls.disk(diameter)

    @property
    def characteristic_length_m(self) -> float:
        """Equivalent disk radius [m] — the length scale of radial diffusion."""
        return math.sqrt(self.area_m2 / math.pi)

    def is_microelectrode(self, threshold_m: float = 25e-6) -> bool:
        """True when the characteristic length is below ``threshold_m``.

        Microelectrodes (radius below ~25 um) reach a radial steady state
        instead of showing Cottrell decay.
        """
        return self.characteristic_length_m < threshold_m

    def steady_state_time_s(self, diffusion_m2_s: float = 7e-10) -> float:
        """Time [s] for the diffusion layer to span the electrode.

        ``t ~ r^2 / D`` — after this, edge diffusion dominates.  Smaller
        electrodes settle faster: the quantitative form of the paper's
        miniaturization claim, exercised by the area-ablation bench.
        """
        if diffusion_m2_s <= 0:
            raise ValueError("diffusion coefficient must be > 0")
        return self.characteristic_length_m ** 2 / diffusion_m2_s
