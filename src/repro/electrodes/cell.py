"""Three-electrode electrochemical cell.

A potentiostatic measurement needs a working electrode (where the chemistry
of interest happens), a counter electrode (closing the current loop) and a
reference electrode (fixing the potential scale).  The cell object bundles
them with the solution resistance and temperature, and computes the
composite double layer seen by the instrument.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import STANDARD_TEMPERATURE
from repro.chem.doublelayer import DoubleLayer
from repro.electrodes.geometry import ElectrodeGeometry
from repro.electrodes.materials import ElectrodeMaterial


@dataclass(frozen=True)
class ReferenceElectrode:
    """Reference electrode with its potential vs. the standard H2 electrode.

    Attributes:
        name: e.g. ``"Ag pseudo-reference"`` or ``"Pt pseudo-reference"``.
        potential_vs_she: equilibrium potential [V vs. SHE].
        stability_mv: slow potential wander amplitude [mV] — pseudo-
            references (bare Ag or Pt, as in both of the paper's platforms)
            drift far more than true Ag/AgCl references.
    """

    name: str
    potential_vs_she: float
    stability_mv: float = 1.0

    def __post_init__(self) -> None:
        if self.stability_mv < 0:
            raise ValueError("stability must be >= 0")


#: True silver/silver-chloride reference (3 M KCl).
AG_AGCL = ReferenceElectrode("Ag/AgCl (3M KCl)", 0.210, stability_mv=0.5)

#: Bare-silver pseudo-reference of the DropSens screen-printed electrodes.
AG_PSEUDO = ReferenceElectrode("Ag pseudo-reference", 0.20, stability_mv=10.0)

#: Platinum pseudo-reference of the microfabricated chip (ref [3]).
PT_PSEUDO = ReferenceElectrode("Pt pseudo-reference", 0.55, stability_mv=15.0)


@dataclass(frozen=True)
class ThreeElectrodeCell:
    """Complete three-electrode cell.

    Attributes:
        name: human-readable cell identity.
        working_geometry: geometry of the working electrode.
        working_material: material of the working electrode.
        counter_material: material of the counter electrode.
        counter_area_m2: counter-electrode area (should exceed the working
            area so the counter never limits the current).
        reference: the reference electrode.
        solution_resistance_ohm: uncompensated resistance between reference
            and working electrode [ohm].
        temperature_k: cell temperature [K].
    """

    name: str
    working_geometry: ElectrodeGeometry
    working_material: ElectrodeMaterial
    counter_material: ElectrodeMaterial
    counter_area_m2: float
    reference: ReferenceElectrode = field(default=AG_AGCL)
    solution_resistance_ohm: float = 100.0
    temperature_k: float = STANDARD_TEMPERATURE

    def __post_init__(self) -> None:
        if self.counter_area_m2 <= 0:
            raise ValueError("counter area must be > 0")
        if self.solution_resistance_ohm < 0:
            raise ValueError("solution resistance must be >= 0")
        if self.temperature_k <= 0:
            raise ValueError("temperature must be > 0")

    @property
    def working_area_m2(self) -> float:
        """Geometric working-electrode area [m^2]."""
        return self.working_geometry.area_m2

    @property
    def counter_ratio(self) -> float:
        """Counter/working area ratio; should be >= 1 for clean kinetics."""
        return self.counter_area_m2 / self.working_area_m2

    def is_well_designed(self) -> bool:
        """True when the counter electrode does not limit the measurement."""
        return self.counter_ratio >= 1.0

    def bare_double_layer(self) -> DoubleLayer:
        """Double layer of the *unmodified* working electrode.

        Specific capacitance is scaled by the material roughness; film
        modification (CNT) multiplies it further via
        :meth:`repro.nano.film.NanostructuredFilm.capacitance_enhancement`.
        """
        specific = (self.working_material.specific_capacitance_f_m2
                    * self.working_material.roughness)
        return DoubleLayer(capacitance_per_area=specific,
                           series_resistance=self.solution_resistance_ohm)
