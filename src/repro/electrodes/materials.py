"""Electrode materials and their electrocatalytic properties.

The comparison narratives of the paper depend on material effects: carbon
electrodes outperform metallic ones for H2O2 oxidation (section 3.2.2,
discussing Goran et al. [16] vs. the authors' Au microelectrodes), and the
material sets the baseline double-layer capacitance before any CNT
enhancement.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ElectrodeMaterial:
    """Electrochemical identity of an electrode material.

    Attributes:
        name: material name.
        specific_capacitance_f_m2: double-layer capacitance per real area
            [F/m^2] (0.2 F/m^2 = 20 uF/cm^2 is the textbook flat-metal value).
        h2o2_activity: relative electrocatalytic activity for H2O2 oxidation
            (1.0 = plain gold).  Carbon surfaces rate higher, which is why
            ref [16]'s glassy-carbon lactate sensor beats the Au-chip one.
        roughness: microscopic-to-geometric area ratio of a bare electrode.
    """

    name: str
    specific_capacitance_f_m2: float
    h2o2_activity: float
    roughness: float = 1.0

    def __post_init__(self) -> None:
        if self.specific_capacitance_f_m2 <= 0:
            raise ValueError(f"{self.name}: capacitance must be > 0")
        if self.h2o2_activity <= 0:
            raise ValueError(f"{self.name}: H2O2 activity must be > 0")
        if self.roughness < 1.0:
            raise ValueError(f"{self.name}: roughness must be >= 1")


GOLD = ElectrodeMaterial(
    name="gold",
    specific_capacitance_f_m2=0.20,
    h2o2_activity=1.0,
    roughness=1.2,
)

PLATINUM = ElectrodeMaterial(
    name="platinum",
    specific_capacitance_f_m2=0.24,
    h2o2_activity=1.6,
    roughness=1.3,
)

GRAPHITE = ElectrodeMaterial(
    name="graphite",
    specific_capacitance_f_m2=0.35,
    h2o2_activity=1.8,
    roughness=2.5,
)

GLASSY_CARBON = ElectrodeMaterial(
    name="glassy carbon",
    specific_capacitance_f_m2=0.28,
    h2o2_activity=2.0,
    roughness=1.1,
)

CARBON_PASTE = ElectrodeMaterial(
    name="carbon paste",
    specific_capacitance_f_m2=0.40,
    h2o2_activity=1.7,
    roughness=3.0,
)

SILVER = ElectrodeMaterial(
    name="silver",
    specific_capacitance_f_m2=0.22,
    h2o2_activity=0.8,
    roughness=1.2,
)

_ALL = (GOLD, PLATINUM, GRAPHITE, GLASSY_CARBON, CARBON_PASTE, SILVER)
_BY_NAME = {material.name: material for material in _ALL}


def material_by_name(name: str) -> ElectrodeMaterial:
    """Look up a material by name; raises ``KeyError`` listing the options."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown material {name!r}; available: {sorted(_BY_NAME)}") from None
