"""Electrode and electrochemical-cell substrate.

Models the two transducer families used in the paper (section 3.1): carbon
screen-printed electrodes (DropSens-style, 13 mm^2 graphite working
electrode) and the microfabricated chip with five 0.25 mm^2 Au working
electrodes, Au counter and Pt (pseudo-)reference described in ref [3].
"""

from repro.electrodes.geometry import ElectrodeGeometry
from repro.electrodes.materials import (
    ElectrodeMaterial,
    GRAPHITE,
    GOLD,
    PLATINUM,
    GLASSY_CARBON,
    CARBON_PASTE,
    SILVER,
    material_by_name,
)
from repro.electrodes.cell import ReferenceElectrode, ThreeElectrodeCell
from repro.electrodes.spe import screen_printed_electrode, SPE_WORKING_AREA_M2
from repro.electrodes.microchip import (
    MicrofabricatedChip,
    MICROCHIP_WORKING_AREA_M2,
)

__all__ = [
    "ElectrodeGeometry",
    "ElectrodeMaterial",
    "GRAPHITE",
    "GOLD",
    "PLATINUM",
    "GLASSY_CARBON",
    "CARBON_PASTE",
    "SILVER",
    "material_by_name",
    "ReferenceElectrode",
    "ThreeElectrodeCell",
    "screen_printed_electrode",
    "SPE_WORKING_AREA_M2",
    "MicrofabricatedChip",
    "MICROCHIP_WORKING_AREA_M2",
]
