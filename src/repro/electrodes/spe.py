"""Screen-printed electrode (SPE) factory.

The paper's CYP drug sensors use DropSens-style carbon-paste screen-printed
electrodes: a 13 mm^2 graphite working electrode, graphite counter and a
bare-Ag pseudo-reference (section 3.1).  SPEs are the archetypal
*disposable* transducer of section 2.5 — cheap, contamination-free, but a
bottleneck for miniaturization, which motivates the integrated platform.
"""

from __future__ import annotations

from repro.electrodes.cell import AG_PSEUDO, ThreeElectrodeCell
from repro.electrodes.geometry import ElectrodeGeometry
from repro.electrodes.materials import GRAPHITE
from repro.units import square_metre_from_square_millimetre

#: Working-electrode area quoted in the paper: 13 mm^2.
SPE_WORKING_AREA_M2 = square_metre_from_square_millimetre(13.0)


def screen_printed_electrode(
        working_area_m2: float = SPE_WORKING_AREA_M2,
        solution_resistance_ohm: float = 150.0) -> ThreeElectrodeCell:
    """Build a DropSens-style carbon screen-printed three-electrode cell.

    Args:
        working_area_m2: geometric working-electrode area; defaults to the
            paper's 13 mm^2.
        solution_resistance_ohm: uncompensated resistance — screen-printed
            carbon tracks add noticeable series resistance.

    Returns:
        A :class:`ThreeElectrodeCell` with graphite working/counter
        electrodes and an Ag pseudo-reference.
    """
    if working_area_m2 <= 0:
        raise ValueError(f"working area must be > 0, got {working_area_m2}")
    geometry = ElectrodeGeometry.from_area(working_area_m2)
    return ThreeElectrodeCell(
        name="carbon screen-printed electrode",
        working_geometry=geometry,
        working_material=GRAPHITE,
        counter_material=GRAPHITE,
        counter_area_m2=2.0 * working_area_m2,
        reference=AG_PSEUDO,
        solution_resistance_ohm=solution_resistance_ohm,
    )
