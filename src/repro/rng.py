"""Shared, seedable randomness for the whole simulation stack.

Every stochastic routine in the library accepts an explicit
``numpy.random.Generator``; this module governs what happens when the
caller passes ``None``.  Historically each call site silently created a
fresh ``default_rng()`` from OS entropy, which made any run that relied on
the default irreproducible — two identical calibration sweeps disagreed in
every noisy digit.  Now all ``rng=None`` paths resolve to one process-wide
generator that :func:`set_global_seed` pins, so

* ``set_global_seed(7)`` at the top of a script makes the entire run —
  detection, calibration, platform panels — replayable bit-for-bit;
* leaving the seed unset preserves the old behavior (one entropy-seeded
  stream) without the per-call generator churn.

The batch engine goes one step further and never touches the shared
stream: :func:`spawn_generators` derives one independent child generator
per simulation cell from a single root seed (``np.random.SeedSequence``
spawning), so a campaign replays deterministically regardless of how its
cells are grouped, ordered, or sharded.
"""

from __future__ import annotations

import numpy as np

_shared_rng: np.random.Generator | None = None


def set_global_seed(seed: int | None) -> np.random.Generator:
    """Seed (or, with ``None``, re-randomize) the shared generator.

    Returns the new shared generator so scripts can also use it directly.
    """
    global _shared_rng
    _shared_rng = np.random.default_rng(seed)
    return _shared_rng


def get_rng(rng: np.random.Generator | None = None) -> np.random.Generator:
    """Resolve an optional generator argument to a concrete generator.

    An explicit ``rng`` wins; ``None`` falls back to the process-wide
    shared generator (created from OS entropy on first use when no
    :func:`set_global_seed` call preceded it).
    """
    global _shared_rng
    if rng is not None:
        return rng
    if _shared_rng is None:
        _shared_rng = np.random.default_rng()
    return _shared_rng


def generator_from_seed(seed: int | None) -> np.random.Generator:
    """Resolve an optional *seed* argument to a concrete generator.

    The seed-flavored sibling of :func:`get_rng`: an explicit integer
    seed gets its own fresh generator (independent of the shared
    stream), while ``None`` falls back to the shared seedable generator
    instead of silently drawing OS entropy — so a script that seeds once
    via :func:`set_global_seed` stays reproducible even through
    ``seed=None`` call sites.
    """
    if seed is None:
        return get_rng(None)
    return np.random.default_rng(seed)


def spawn_generators(seed: int | np.random.SeedSequence | None,
                     n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from one root seed.

    Uses ``np.random.SeedSequence.spawn``, the collision-resistant way to
    give every cell of a batched simulation its own stream.  A ``None``
    seed still yields mutually independent children (entropy-seeded root),
    just not a replayable set.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(n)]
