"""repro — simulation-based reproduction of *Integrated Biosensors for
Personalized Medicine* (De Micheli, Boero, Baj-Rossi, Taurino, Carrara,
DAC 2012).

The library rebuilds the paper's CNT-based multi-target electrochemical
biosensor platform entirely in simulation: enzyme kinetics, electrode
electrochemistry, nanostructured films, the analog/digital readout chain,
the measurement techniques, and the calibration analysis that produces the
paper's Table 2 metrics (sensitivity, linear range, limit of detection).

Quickstart::

    from repro.core import spec_by_id, build_sensor, run_calibration
    from repro.core import default_protocol_for_range
    from repro.units import molar_from_millimolar

    spec = spec_by_id("glucose/this-work")
    sensor = build_sensor(spec)
    protocol = default_protocol_for_range(
        molar_from_millimolar(spec.paper_range_mm[1]))
    result = run_calibration(sensor, protocol)
    print(result.summary())

Every engine workload — calibration campaigns, wear-time monitoring,
closed-loop therapy — is also runnable from a declarative JSON scenario
file through :mod:`repro.scenarios` and the ``python -m repro`` command
line.

The rendered documentation site (``mkdocs serve``; ``docs/`` +
``mkdocs.yml``) carries the API reference, the continuous-monitoring
guide and the paper-to-module map.
"""

__version__ = "1.0.0"

from repro import (  # noqa: F401  (re-exported subpackages)
    analytes,
    bio,
    campaigns,
    chem,
    classification,
    constants,
    core,
    electrodes,
    enzymes,
    experiments,
    engine,
    inference,
    instrument,
    nano,
    pk,
    rng,
    scenarios,
    signal,
    system,
    techniques,
    telemetry,
    therapy,
    transducers,
    units,
)

__all__ = [
    "analytes",
    "bio",
    "campaigns",
    "chem",
    "classification",
    "constants",
    "core",
    "electrodes",
    "enzymes",
    "engine",
    "experiments",
    "inference",
    "instrument",
    "nano",
    "pk",
    "rng",
    "scenarios",
    "signal",
    "system",
    "techniques",
    "telemetry",
    "therapy",
    "transducers",
    "units",
    "__version__",
]
