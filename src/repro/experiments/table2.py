"""Experiment: regenerate Table 2 (the 18-sensor comparison).

Every row is produced by the *full* pipeline: spec -> physical inversion ->
forward simulation (enzyme flux -> current -> TIA -> ADC -> DSP) ->
calibration extraction.  The result rows carry paper and measured values
side by side plus agreement ratios for the benchmarks and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.calibration import (
    CalibrationResult,
    default_protocol_for_range,
    run_calibration,
)
from repro.core.registry import (
    SensorSpec,
    TABLE2_SPECS,
    build_sensor,
    specs_by_group,
)
from repro.engine import run_campaign
from repro.rng import generator_from_seed
from repro.units import micromolar_from_molar, millimolar_from_molar, molar_from_millimolar


@dataclass(frozen=True)
class Table2Row:
    """Paper-vs-measured record for one Table 2 row.

    Attributes:
        spec: the sensor configuration.
        result: full calibration result from the simulated pipeline.
        sensitivity_ratio: measured / paper sensitivity.
        range_upper_ratio: measured / paper linear-range upper bound.
        lod_ratio: measured / assumed-paper LOD.
    """

    spec: SensorSpec
    result: CalibrationResult
    sensitivity_ratio: float
    range_upper_ratio: float
    lod_ratio: float

    @property
    def measured_sensitivity(self) -> float:
        """Measured sensitivity [uA mM^-1 cm^-2]."""
        return self.result.sensitivity_paper

    @property
    def measured_range_mm(self) -> tuple[float, float]:
        """Measured linear range [mM]."""
        low, high = self.result.linear_range_molar
        return (millimolar_from_molar(low), millimolar_from_molar(high))

    @property
    def measured_lod_um(self) -> float:
        """Measured limit of detection [uM]."""
        return micromolar_from_molar(self.result.lod_molar)


def run_table2(groups: list[str] | None = None,
               seed: int = 7,
               n_blanks: int = 8,
               n_replicates: int = 3,
               use_engine: bool = True) -> dict[str, Table2Row]:
    """Regenerate Table 2 (optionally one group) through the full pipeline.

    Args:
        groups: analyte groups to run (default: all four).
        seed: RNG seed shared across the run (reproducibility).  With the
            engine, the seed roots one ``np.random.SeedSequence`` whose
            children drive every simulation cell, so the whole table
            replays deterministically.
        n_blanks: blank replicates per sensor (more blanks tighten the
            LOD estimate, whose sampling error is ~1/sqrt(2(n-1))).
        n_replicates: replicates per standard.
        use_engine: run all sensors as one batched campaign through
            :mod:`repro.engine` (default); ``False`` replays the
            historical scalar per-point loop, preserved as the reference
            implementation the engine is benchmarked against.

    Returns:
        sensor_id -> :class:`Table2Row`, in table order.
    """
    if groups is None:
        specs: tuple[SensorSpec, ...] = TABLE2_SPECS
    else:
        specs = tuple(spec for group in groups
                      for spec in specs_by_group(group))
    sensors = [build_sensor(spec) for spec in specs]
    protocols = [
        default_protocol_for_range(
            molar_from_millimolar(spec.paper_range_mm[1]),
            n_blanks=n_blanks,
            n_replicates=n_replicates,
        )
        for spec in specs
    ]
    if use_engine:
        results = run_campaign(sensors, protocols, seed=seed)
    else:
        rng = generator_from_seed(seed)
        results = [run_calibration(sensor, protocol, rng)
                   for sensor, protocol in zip(sensors, protocols)]
    rows: dict[str, Table2Row] = {}
    for spec, result in zip(specs, results):
        rows[spec.sensor_id] = Table2Row(
            spec=spec,
            result=result,
            sensitivity_ratio=result.sensitivity_paper / spec.paper_sensitivity,
            range_upper_ratio=(millimolar_from_molar(
                result.linear_range_molar[1]) / spec.paper_range_mm[1]),
            lod_ratio=(micromolar_from_molar(result.lod_molar)
                       / spec.assumed_lod_um),
        )
    return rows


def rows_to_text(rows: dict[str, Table2Row]) -> str:
    """Render rows as a fixed-width paper-vs-measured table."""
    header = (f"{'sensor':<30} {'S paper':>9} {'S meas':>9} "
              f"{'hi paper':>9} {'hi meas':>9} {'LOD paper':>10} {'LOD meas':>9}")
    lines = [header, "-" * len(header)]
    group = None
    for row in rows.values():
        if row.spec.group != group:
            group = row.spec.group
            lines.append(f"[{group}]")
        label = row.spec.label + " " + row.spec.reference
        if row.spec.group == "cyp":
            label = f"{row.spec.analyte_name} ({row.spec.enzyme_name})"
        lines.append(
            f"{label:<30} "
            f"{row.spec.paper_sensitivity:>9.3f} {row.measured_sensitivity:>9.3f} "
            f"{row.spec.paper_range_mm[1]:>9.3f} {row.measured_range_mm[1]:>9.3f} "
            f"{row.spec.assumed_lod_um:>10.2f} {row.measured_lod_um:>9.2f}")
    return "\n".join(lines)
