"""Figure-equivalent experiments.

The available paper text has no numbered figures, but section 3.1 describes
the standard figure set of the genre; each generator below regenerates the
underlying data series (this library is plotting-free by design — the
benches print compact text renderings).
"""

from __future__ import annotations

import numpy as np

from repro.core.detection import measure_point
from repro.core.registry import SensorSpec, build_sensor, spec_by_id
from repro.techniques.base import Measurement
from repro.rng import generator_from_seed
from repro.units import molar_from_millimolar


def chrono_staircase_figure(sensor_id: str = "glucose/this-work",
                            n_additions: int = 8,
                            step_duration_s: float = 20.0,
                            seed: int = 11) -> dict:
    """Figure-equivalent: chronoamperometric successive-additions record.

    Equal substrate additions at fixed intervals produce the classic
    current staircase at +650 mV.  Returns the true record, the digitized
    trace and the addition schedule.
    """
    spec = spec_by_id(sensor_id)
    sensor = build_sensor(spec)
    upper = molar_from_millimolar(spec.paper_range_mm[1])
    additions = [(i + 1) * upper / n_additions for i in range(n_additions)]
    record = sensor.ca_protocol.simulate_additions(
        sensor.steady_state_current,
        additions,
        step_duration_s=step_duration_s,
        response_time_s=sensor.response_time_s,
        double_layer=sensor.double_layer(),
        area_m2=sensor.area_m2,
    )
    rng = generator_from_seed(seed)
    acquired = sensor.chain.acquire(record.current_a,
                                    record.sampling_rate_hz, rng=rng)
    return {
        "sensor": sensor.name,
        "record": record,
        "acquired_time_s": acquired.time_s,
        "acquired_current_a": acquired.current_a,
        "concentrations_molar": additions,
    }


def cv_family_figure(sensor_id: str = "cyp/cyclophosphamide",
                     n_levels: int = 6,
                     seed: int = 13) -> dict:
    """Figure-equivalent: cyclic-voltammogram family vs. drug concentration.

    One hysteresis plot per concentration level, showing the cathodic peak
    growing with the drug level — the qualitative picture of section 3.1.
    Returns the measurements plus extracted peak heights.
    """
    spec = spec_by_id(sensor_id)
    sensor = build_sensor(spec)
    upper = molar_from_millimolar(spec.paper_range_mm[1])
    levels = [i * upper / (n_levels - 1) for i in range(n_levels)]
    couple = sensor.detected_couple()
    voltammograms: list[tuple[float, Measurement]] = []
    for level in levels:
        record = sensor.cv_protocol.simulate_catalytic_cyp(
            layer=sensor.layer,
            couple=couple,
            substrate_molar=level,
            area_m2=sensor.area_m2,
            double_layer=sensor.double_layer(),
        )
        voltammograms.append((level, record))
    rng = generator_from_seed(seed)
    peak_heights = [measure_point(sensor, level, rng) for level in levels]
    return {
        "sensor": sensor.name,
        "levels_molar": levels,
        "voltammograms": voltammograms,
        "peak_heights_a": peak_heights,
    }


def calibration_curve_figure(spec: SensorSpec,
                             n_points: int = 10,
                             n_replicates: int = 3,
                             seed: int = 17) -> dict:
    """Figure-equivalent: calibration curve (signal vs. concentration).

    Spans up to 2x the published range so the Michaelis-Menten bend is
    visible past the linear region; each point averages ``n_replicates``
    measurements (the bench protocol).
    """
    sensor = build_sensor(spec)
    upper = molar_from_millimolar(spec.paper_range_mm[1])
    concentrations = np.linspace(0.0, 2.0 * upper, n_points)
    rng = generator_from_seed(seed)
    signals = np.array([
        np.mean([measure_point(sensor, float(c), rng)
                 for __ in range(n_replicates)])
        for c in concentrations])
    return {
        "sensor": sensor.name,
        "concentrations_molar": concentrations,
        "signals_a": signals,
        "expected_slope_a_per_molar": sensor.expected_slope_a_per_molar(),
    }


def comparison_chart(rows: dict) -> dict[str, list[tuple[str, float, float]]]:
    """Figure-equivalent: grouped sensitivity/LOD comparison chart data.

    Args:
        rows: output of :func:`repro.experiments.table2.run_table2`.

    Returns:
        group -> list of (label+ref, measured sensitivity, measured LOD uM).
    """
    chart: dict[str, list[tuple[str, float, float]]] = {}
    for row in rows.values():
        entry = (f"{row.spec.label} {row.spec.reference}",
                 row.measured_sensitivity,
                 row.measured_lod_um)
        chart.setdefault(row.spec.group, []).append(entry)
    return chart
