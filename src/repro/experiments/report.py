"""Render the paper-vs-measured report (the content of EXPERIMENTS.md)."""

from __future__ import annotations

from repro.experiments.table1 import run_table1
from repro.experiments.table2 import Table2Row, rows_to_text


def build_experiments_report(table2_rows: dict[str, Table2Row],
                             seed_note: str = "seed 7, 8 blanks, "
                                              "3 replicates per standard",
                             ) -> str:
    """Build a markdown paper-vs-measured report for all experiments.

    Args:
        table2_rows: output of :func:`repro.experiments.table2.run_table2`
            covering every group.
        seed_note: provenance of the run.
    """
    table1 = run_table1()
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "All values measured through the full simulated pipeline "
        "(enzyme kinetics -> electrode current -> TIA -> ADC -> DSP -> "
        f"calibration extraction); {seed_note}.",
        "",
        "## Table 1 — features of the developed biosensors",
        "",
        f"Row set matches the paper: **{table1['matches']}**",
        "",
        "```",
        table1["text"],
        "```",
        "",
        "## Table 2 — sensitivity / linear range / LOD (18 sensors)",
        "",
        "```",
        rows_to_text(table2_rows),
        "```",
        "",
        "### Agreement ratios (measured / paper)",
        "",
        "| sensor | sensitivity | range upper | LOD |",
        "|---|---|---|---|",
    ]
    for sensor_id, row in table2_rows.items():
        lines.append(
            f"| {sensor_id} | {row.sensitivity_ratio:.3f} | "
            f"{row.range_upper_ratio:.3f} | {row.lod_ratio:.2f} |")
    lines += [
        "",
        "LOD ratios scatter by design: the LOD is re-estimated from "
        "a finite number of simulated blanks (sampling error of a "
        "standard deviation with n blanks is ~1/sqrt(2(n-1))).",
    ]
    return "\n".join(lines)
