"""Experiment: regenerate Table 1 (features of the developed biosensors)."""

from __future__ import annotations

from repro.core.registry import TABLE1_SPECS
from repro.core.tables import render_table1, table1_rows

#: The paper's Table 1, row for row (target, probe, technique).
PAPER_TABLE1: tuple[tuple[str, str, str], ...] = (
    ("GLUCOSE", "Glucose oxidase", "Chronoamperometry"),
    ("LACTATE", "Lactate oxidase", "Chronoamperometry"),
    ("GLUTAMATE", "Glutamate oxidase", "Chronoamperometry"),
    ("ARACHIDONIC ACID", "custom-CYP", "Cyclic voltammetry"),
    ("FTORAFUR", "CYP1A2", "Cyclic voltammetry"),
    ("CYCLOPHOSPHAMIDE", "CYP2B6", "Cyclic voltammetry"),
    ("IFOSFAMIDE", "CYP3A4", "Cyclic voltammetry"),
)

#: Maps registry enzyme abbreviations to the probe names printed in Table 1.
_PROBE_NAMES = {
    "GOD": "Glucose oxidase",
    "LOD": "Lactate oxidase",
    "GlOD": "Glutamate oxidase",
    "custom-CYP": "custom-CYP",
    "CYP1A2": "CYP1A2",
    "CYP2B6": "CYP2B6",
    "CYP3A4": "CYP3A4",
}


def run_table1() -> dict:
    """Regenerate Table 1 from the registry and compare with the paper.

    Returns a dict with ``rows`` (generated), ``paper_rows``, ``matches``
    (set equality on (target, probe, technique) triples) and ``text`` (the
    rendered table).
    """
    generated = [(target, _PROBE_NAMES[probe], technique)
                 for target, probe, technique in table1_rows(TABLE1_SPECS)]
    matches = set(generated) == set(PAPER_TABLE1)
    return {
        "rows": generated,
        "paper_rows": list(PAPER_TABLE1),
        "matches": matches,
        "text": render_table1(TABLE1_SPECS),
    }
