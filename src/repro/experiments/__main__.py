"""Command-line entry point: regenerate the paper's tables.

Usage::

    python -m repro.experiments                 # everything (Table 1 + 2)
    python -m repro.experiments --group cyp     # one Table 2 group
    python -m repro.experiments --seed 11       # different noise realization
    python -m repro.experiments --report        # full EXPERIMENTS-style report
"""

from __future__ import annotations

import argparse

from repro.experiments.report import build_experiments_report
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import rows_to_text, run_table2


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the DAC-2012 biosensor tables through the "
                    "full simulated pipeline.",
        epilog="For declarative scenario runs (calibration campaigns, "
               "wear-time monitoring, closed-loop therapy) use the "
               "scenario CLI instead: python -m repro run scenario.json")
    parser.add_argument("--group", action="append",
                        choices=["glucose", "lactate", "glutamate", "cyp"],
                        help="Table 2 group(s) to run (default: all)")
    parser.add_argument("--seed", type=int, default=7,
                        help="random seed (default 7)")
    parser.add_argument("--blanks", type=int, default=8,
                        help="blank replicates per sensor (default 8)")
    parser.add_argument("--replicates", type=int, default=3,
                        help="replicates per standard (default 3)")
    parser.add_argument("--report", action="store_true",
                        help="emit the full markdown report instead of "
                             "plain tables")
    args = parser.parse_args(argv)

    rows = run_table2(groups=args.group, seed=args.seed,
                      n_blanks=args.blanks, n_replicates=args.replicates)
    if args.report:
        if args.group is not None:
            parser.error("--report requires the full table (omit --group)")
        print(build_experiments_report(
            rows,
            seed_note=f"seed {args.seed}, {args.blanks} blanks, "
                      f"{args.replicates} replicates per standard"))
        return 0

    table1 = run_table1()
    print(table1["text"])
    print(f"(matches paper: {table1['matches']})")
    print()
    print(rows_to_text(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
