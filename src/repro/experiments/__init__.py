"""Experiment harness: regenerate every table and figure of the paper."""

from repro.experiments.table1 import run_table1
from repro.experiments.table2 import Table2Row, run_table2, rows_to_text
from repro.experiments.figures import (
    chrono_staircase_figure,
    cv_family_figure,
    calibration_curve_figure,
    comparison_chart,
)
from repro.experiments.report import build_experiments_report

__all__ = [
    "run_table1",
    "Table2Row",
    "run_table2",
    "rows_to_text",
    "chrono_staircase_figure",
    "cv_family_figure",
    "calibration_curve_figure",
    "comparison_chart",
    "build_experiments_report",
]
