"""3-D stacked integration with through-silicon vias (paper section 2.5).

Guiducci et al. [17] propose "a 3-D integrated system with vertically
stacked layers and thru-silicon vias among the different layers ... a
disposable biolayer, which is not suitable for fully-implanted devices, but
can represent a step towards the development of permanent systems."  The
model checks geometric feasibility (TSV area budget, footprint match) and
exposes the disposable/permanent split.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.system.blocks import SystemBlock
from repro.system.scaling import scaled_area_mm2


@dataclass(frozen=True)
class StackLayer:
    """One tier of the 3-D stack.

    Attributes:
        name: layer identity (e.g. ``"disposable biolayer"``).
        blocks: blocks living on this tier.
        technology_node_nm: node the tier is manufactured in.
        thickness_um: thinned-die thickness [um].
        disposable: True when the tier is replaced between uses.
        signals_down: signal count this tier must pass to the tier below.
    """

    name: str
    blocks: tuple[SystemBlock, ...]
    technology_node_nm: float
    thickness_um: float = 50.0
    disposable: bool = False
    signals_down: int = 0

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ValueError(f"{self.name}: a layer needs at least one block")
        if self.technology_node_nm <= 0:
            raise ValueError(f"{self.name}: node must be > 0")
        if self.thickness_um <= 0:
            raise ValueError(f"{self.name}: thickness must be > 0")
        if self.signals_down < 0:
            raise ValueError(f"{self.name}: signal count must be >= 0")

    def active_area_mm2(self) -> float:
        """Block area of the tier at its own technology node [mm^2]."""
        return sum(scaled_area_mm2(block, self.technology_node_nm)
                   for block in self.blocks)


@dataclass(frozen=True)
class ThreeDStack:
    """A vertically stacked biosensing system.

    Attributes:
        layers: tiers ordered top (biolayer) to bottom.
        tsv_pitch_um: through-silicon-via pitch [um].
        tsv_diameter_um: via diameter [um].
        footprint_margin: allowed footprint overhead beyond the largest
            tier's active area (routing, seal ring).
    """

    layers: tuple[StackLayer, ...]
    tsv_pitch_um: float = 40.0
    tsv_diameter_um: float = 10.0
    footprint_margin: float = 1.3
    _footprint_mm2: float = field(init=False, default=0.0, repr=False)

    def __post_init__(self) -> None:
        if len(self.layers) < 2:
            raise ValueError("a 3-D stack needs at least two layers")
        if self.tsv_diameter_um >= self.tsv_pitch_um:
            raise ValueError("TSV diameter must be below the pitch")
        if self.footprint_margin < 1.0:
            raise ValueError("footprint margin must be >= 1")
        footprint = self.footprint_margin * max(
            layer.active_area_mm2() for layer in self.layers)
        object.__setattr__(self, "_footprint_mm2", footprint)

    @property
    def footprint_mm2(self) -> float:
        """Common tier footprint [mm^2]."""
        return self._footprint_mm2

    def total_tsvs(self) -> int:
        """Total vertical signals crossing tier boundaries."""
        return sum(layer.signals_down for layer in self.layers)

    def tsv_area_mm2(self) -> float:
        """Keep-out area consumed by all TSVs [mm^2].

        Each via blocks a pitch x pitch keep-out square.
        """
        keepout_um2 = self.tsv_pitch_um ** 2
        return self.total_tsvs() * keepout_um2 * 1e-6

    def is_feasible(self) -> bool:
        """True when every tier fits its blocks plus its TSV keep-out."""
        for layer in self.layers:
            used = layer.active_area_mm2() + self.tsv_area_mm2()
            if used > self.footprint_mm2:
                return False
        return True

    def total_thickness_um(self, bond_um: float = 10.0) -> float:
        """Stack thickness [um] with ``bond_um`` per bonding interface."""
        if bond_um < 0:
            raise ValueError("bond thickness must be >= 0")
        dies = sum(layer.thickness_um for layer in self.layers)
        return dies + bond_um * (len(self.layers) - 1)

    def disposable_layers(self) -> tuple[StackLayer, ...]:
        """Tiers replaced between uses (the biolayer)."""
        return tuple(layer for layer in self.layers if layer.disposable)

    def permanent_layers(self) -> tuple[StackLayer, ...]:
        """Tiers kept across uses (readout, power, processing, radio)."""
        return tuple(layer for layer in self.layers if not layer.disposable)

    def replacement_cost_fraction(self) -> float:
        """Area fraction thrown away per use.

        Low fractions are the economic point of the disposable-biolayer
        architecture: the expensive electronics persist.
        """
        disposable = sum(l.active_area_mm2() for l in self.disposable_layers())
        total = sum(l.active_area_mm2() for l in self.layers)
        return disposable / total

    def volume_mm3(self) -> float:
        """Stack volume [mm^3] (footprint x thickness)."""
        return self.footprint_mm2 * self.total_thickness_um() * 1e-3


def guiducci_stack() -> ThreeDStack:
    """The reference 4-tier stack of Guiducci et al. [17].

    Disposable biolayer on top; readout, processing+power, and radio tiers
    permanent below, each in its natural technology.
    """
    from repro.system.blocks import block_by_name

    sensor = block_by_name("cnt electrode array")
    afe = block_by_name("potentiostat + tia front-end")
    adc = block_by_name("12-bit sar adc")
    control = block_by_name("control mcu + dsp")
    memory = block_by_name("calibration memory")
    radio = block_by_name("ble-class radio")
    power = block_by_name("power management unit")

    layers = (
        StackLayer("disposable biolayer", (sensor,), 350.0,
                   thickness_um=300.0, disposable=True, signals_down=12),
        StackLayer("analog readout tier", (afe, adc), 180.0,
                   thickness_um=50.0, signals_down=20),
        StackLayer("digital + power tier", (control, memory, power), 90.0,
                   thickness_um=50.0, signals_down=8),
        StackLayer("rf tier", (radio,), 130.0, thickness_um=50.0),
    )
    return ThreeDStack(layers=layers)


def tsv_parasitic_capacitance_ff(length_um: float = 50.0,
                                 diameter_um: float = 10.0,
                                 oxide_thickness_um: float = 0.5) -> float:
    """Coaxial-model TSV capacitance [fF].

    ``C = 2 pi eps_ox L / ln((r + t_ox)/r)`` — a few tens of fF for typical
    geometry, negligible against the biosensor signal bandwidths, which is
    why the 3-D route is electrically benign for this application.
    """
    if min(length_um, diameter_um, oxide_thickness_um) <= 0:
        raise ValueError("geometry parameters must be > 0")
    eps_ox = 3.9 * 8.854e-12
    radius = diameter_um / 2.0
    capacitance_f = (2.0 * math.pi * eps_ox * length_um * 1e-6
                     / math.log((radius + oxide_thickness_um) / radius))
    return capacitance_f * 1e15
