"""System-block library for self-contained biosensing systems.

Paper section 1: "Power source, transducer circuitry, control unit,
wireless communication are some of the blocks that can be potentially used
in biosensing systems."  Each block carries its area/power at a reference
technology node plus the interfaces it offers and requires, so the
composition checker can validate a platform instance.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

#: Technology node the library's areas are characterized at [nm].
REFERENCE_NODE_NM = 180.0


class BlockKind(enum.Enum):
    """Functional block categories."""

    SENSOR = "sensor"
    ANALOG_FRONT_END = "analog front-end"
    ADC = "adc"
    DIGITAL_CONTROL = "digital control"
    RF = "rf transceiver"
    POWER = "power management"
    MEMORY = "memory"


@dataclass(frozen=True)
class SystemBlock:
    """One reusable platform block.

    Attributes:
        name: block identity.
        kind: functional category.
        area_mm2: silicon (or sensor) area at the reference node [mm^2].
        power_mw: active power [mW].
        is_analog: True for analog/mixed-signal blocks (affects scaling).
        provides: interface names this block drives.
        requires: interface names this block needs from peers.
        scaling_exponent: how area shrinks with node:
            ``area(node) = area_ref (node/ref)^exponent``; 2.0 for digital
            logic, ~0.6 for analog (matching/passives limited), 0 for the
            biosensor itself (chemistry sets its size).
    """

    name: str
    kind: BlockKind
    area_mm2: float
    power_mw: float
    is_analog: bool
    provides: tuple[str, ...] = field(default_factory=tuple)
    requires: tuple[str, ...] = field(default_factory=tuple)
    scaling_exponent: float = 2.0

    def __post_init__(self) -> None:
        if self.area_mm2 <= 0:
            raise ValueError(f"{self.name}: area must be > 0")
        if self.power_mw < 0:
            raise ValueError(f"{self.name}: power must be >= 0")
        if self.scaling_exponent < 0:
            raise ValueError(f"{self.name}: scaling exponent must be >= 0")


STANDARD_BLOCKS: tuple[SystemBlock, ...] = (
    SystemBlock(
        name="cnt electrode array",
        kind=BlockKind.SENSOR,
        area_mm2=4.0,
        power_mw=0.0,
        is_analog=True,
        provides=("electrode_current",),
        requires=("bias_potential",),
        scaling_exponent=0.0,
    ),
    SystemBlock(
        name="potentiostat + tia front-end",
        kind=BlockKind.ANALOG_FRONT_END,
        area_mm2=1.2,
        power_mw=1.8,
        is_analog=True,
        provides=("bias_potential", "analog_voltage"),
        requires=("electrode_current", "supply"),
        scaling_exponent=0.6,
    ),
    SystemBlock(
        name="12-bit sar adc",
        kind=BlockKind.ADC,
        area_mm2=0.5,
        power_mw=0.4,
        is_analog=True,
        provides=("digital_samples",),
        requires=("analog_voltage", "supply"),
        scaling_exponent=1.0,
    ),
    SystemBlock(
        name="control mcu + dsp",
        kind=BlockKind.DIGITAL_CONTROL,
        area_mm2=2.5,
        power_mw=1.2,
        is_analog=False,
        provides=("data_frames", "config"),
        requires=("digital_samples", "supply"),
        scaling_exponent=2.0,
    ),
    SystemBlock(
        name="ble-class radio",
        kind=BlockKind.RF,
        area_mm2=3.0,
        power_mw=6.0,
        is_analog=True,
        provides=("wireless_link",),
        requires=("data_frames", "supply"),
        scaling_exponent=0.5,
    ),
    SystemBlock(
        name="power management unit",
        kind=BlockKind.POWER,
        area_mm2=1.5,
        power_mw=0.3,
        is_analog=True,
        provides=("supply",),
        requires=(),
        scaling_exponent=0.4,
    ),
    SystemBlock(
        name="calibration memory",
        kind=BlockKind.MEMORY,
        area_mm2=0.6,
        power_mw=0.1,
        is_analog=False,
        provides=("calibration_data",),
        requires=("supply",),
        scaling_exponent=1.8,
    ),
)

_BY_NAME = {block.name: block for block in STANDARD_BLOCKS}


def block_by_name(name: str) -> SystemBlock:
    """Look up a standard block; raises ``KeyError`` listing the options."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown block {name!r}; available: {sorted(_BY_NAME)}") from None
