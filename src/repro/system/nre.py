"""Non-recurring engineering (NRE) cost model.

"A platform-based design style ... reduces the non-recurring engineering
(NRE) costs of biosensing systems, thus enabling the introduction of new
approaches in the medical arena" (paper section 1).  The model compares a
full-custom flow (every product pays its full NRE) against a platform flow
(the shared platform is designed once; each derivative pays only the
per-product delta) and finds the product-count crossover.
"""

from __future__ import annotations

#: Mask-set cost by technology node [USD].
_MASK_COST: dict[float, float] = {
    350.0: 60_000.0,
    180.0: 120_000.0,
    130.0: 250_000.0,
    90.0: 600_000.0,
    65.0: 1_100_000.0,
    40.0: 2_200_000.0,
}

#: Design effort per block kind [engineer-months].
_DESIGN_EFFORT_MONTHS: dict[str, float] = {
    "sensor": 6.0,
    "analog front-end": 12.0,
    "adc": 9.0,
    "digital control": 8.0,
    "rf transceiver": 18.0,
    "power management": 6.0,
    "memory": 3.0,
}

#: Fully loaded engineer cost [USD/month].
_ENGINEER_COST_PER_MONTH = 20_000.0


def mask_set_cost_usd(node_nm: float) -> float:
    """Mask-set cost [USD] at ``node_nm``; KeyError lists known nodes."""
    try:
        return _MASK_COST[node_nm]
    except KeyError:
        raise KeyError(
            f"no mask cost for node {node_nm}; "
            f"available: {sorted(_MASK_COST)}") from None


def design_cost_usd(block_kinds: list[str],
                    reuse_discount: float = 0.0) -> float:
    """Design-effort cost [USD] for a list of block kinds.

    ``reuse_discount`` is the fraction of effort saved by reusing
    pre-verified platform blocks (0 = full custom, 0.8 = assemble mostly
    existing IP).
    """
    if not 0.0 <= reuse_discount < 1.0:
        raise ValueError(f"reuse discount must be in [0, 1), got {reuse_discount}")
    months = 0.0
    for kind in block_kinds:
        try:
            months += _DESIGN_EFFORT_MONTHS[kind]
        except KeyError:
            raise KeyError(
                f"no effort data for block kind {kind!r}; "
                f"available: {sorted(_DESIGN_EFFORT_MONTHS)}") from None
    return months * _ENGINEER_COST_PER_MONTH * (1.0 - reuse_discount)


def nre_cost_usd(block_kinds: list[str],
                 node_nm: float,
                 reuse_discount: float = 0.0) -> float:
    """Total NRE [USD]: design effort plus one mask set."""
    return design_cost_usd(block_kinds, reuse_discount) + mask_set_cost_usd(node_nm)


def amortized_unit_cost_usd(nre_usd: float,
                            volume_units: int,
                            marginal_unit_cost_usd: float) -> float:
    """Per-unit cost [USD] after amortizing NRE over a production volume."""
    if nre_usd < 0 or marginal_unit_cost_usd < 0:
        raise ValueError("costs must be >= 0")
    if volume_units < 1:
        raise ValueError(f"volume must be >= 1, got {volume_units}")
    return marginal_unit_cost_usd + nre_usd / volume_units


def platform_vs_custom_crossover(block_kinds: list[str],
                                 node_nm: float,
                                 platform_reuse_discount: float = 0.7,
                                 platform_setup_overhead: float = 1.5,
                                 ) -> dict[str, float]:
    """Find how many products make the platform flow cheaper overall.

    The platform pays ``platform_setup_overhead`` times one full NRE up
    front (generalizing the blocks costs extra), then each derivative costs
    the discounted NRE.  Full custom pays the full NRE per product.

    Returns the per-product costs and the crossover product count (the
    smallest N where the platform total is at or below the custom total).
    """
    if platform_setup_overhead < 1.0:
        raise ValueError("setup overhead must be >= 1")
    full = nre_cost_usd(block_kinds, node_nm, reuse_discount=0.0)
    derivative = nre_cost_usd(block_kinds, node_nm,
                              reuse_discount=platform_reuse_discount)
    setup = platform_setup_overhead * full

    crossover = None
    for n_products in range(1, 101):
        custom_total = full * n_products
        platform_total = setup + derivative * n_products
        if platform_total <= custom_total:
            crossover = n_products
            break
    if crossover is None:
        raise RuntimeError("no crossover within 100 products — check inputs")
    return {
        "full_custom_nre_usd": full,
        "platform_derivative_nre_usd": derivative,
        "platform_setup_usd": setup,
        "crossover_products": float(crossover),
    }
