"""System-integration substrate (paper sections 1 and 2.5).

The DAC-audience half of the paper: biosensing systems need power,
transducer circuitry, control, and wireless links, but "the integration of
all units may not be a satisfactory solution" because analog, digital and
sensor blocks scale differently.  This package models the block library,
compositional design rules, heterogeneous technology scaling, the 3-D
stacked integration of Guiducci et al. [17], and the NRE-cost argument for
platform-based design.
"""

from repro.system.blocks import (
    BlockKind,
    SystemBlock,
    STANDARD_BLOCKS,
    block_by_name,
)
from repro.system.composition import (
    CompositionError,
    PlatformDesign,
    reference_biosensor_node,
)
from repro.system.scaling import (
    scaled_area_mm2,
    scaled_power_mw,
    best_node_for_block,
    homogeneous_vs_heterogeneous,
)
from repro.system.stack3d import StackLayer, ThreeDStack, guiducci_stack
from repro.system.energy import EnergyBudget
from repro.system.nre import (
    mask_set_cost_usd,
    design_cost_usd,
    nre_cost_usd,
    amortized_unit_cost_usd,
    platform_vs_custom_crossover,
)

__all__ = [
    "BlockKind",
    "SystemBlock",
    "STANDARD_BLOCKS",
    "block_by_name",
    "CompositionError",
    "PlatformDesign",
    "reference_biosensor_node",
    "scaled_area_mm2",
    "scaled_power_mw",
    "best_node_for_block",
    "homogeneous_vs_heterogeneous",
    "StackLayer",
    "ThreeDStack",
    "guiducci_stack",
    "EnergyBudget",
    "mask_set_cost_usd",
    "design_cost_usd",
    "nre_cost_usd",
    "amortized_unit_cost_usd",
    "platform_vs_custom_crossover",
]
