"""Compositional design rules for biosensing platforms.

"A platform-based design style using heterogeneous components and
compositional rules eases the design process and reduces the non-recurring
engineering (NRE) costs of biosensing systems" (paper section 1).  A
:class:`PlatformDesign` validates that a chosen set of blocks forms a
complete, interface-consistent, power-feasible system.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.system.blocks import BlockKind, SystemBlock, STANDARD_BLOCKS

#: Block kinds every self-contained biosensing node must include.
REQUIRED_KINDS: tuple[BlockKind, ...] = (
    BlockKind.SENSOR,
    BlockKind.ANALOG_FRONT_END,
    BlockKind.ADC,
    BlockKind.DIGITAL_CONTROL,
    BlockKind.POWER,
)


class CompositionError(ValueError):
    """Raised when a platform instance violates the compositional rules."""


@dataclass(frozen=True)
class PlatformDesign:
    """A validated composition of system blocks.

    Attributes:
        name: design identity.
        blocks: the composed blocks.
        power_budget_mw: maximum deliverable power [mW] (battery/harvester).
    """

    name: str
    blocks: tuple[SystemBlock, ...]
    power_budget_mw: float = 15.0

    def __post_init__(self) -> None:
        if not self.blocks:
            raise CompositionError("a design needs at least one block")
        if self.power_budget_mw <= 0:
            raise CompositionError("power budget must be > 0")
        self.validate()

    # ------------------------------------------------------------------
    # Rules.
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check completeness, interface closure and power feasibility.

        Raises :class:`CompositionError` with a precise message on the
        first violated rule.
        """
        kinds = {block.kind for block in self.blocks}
        for required in REQUIRED_KINDS:
            if required not in kinds:
                raise CompositionError(
                    f"{self.name}: missing required block kind "
                    f"{required.value!r}")

        provided = {interface
                    for block in self.blocks
                    for interface in block.provides}
        for block in self.blocks:
            for needed in block.requires:
                if needed not in provided:
                    raise CompositionError(
                        f"{self.name}: block {block.name!r} requires "
                        f"{needed!r}, provided by no block")

        if self.total_power_mw() > self.power_budget_mw:
            raise CompositionError(
                f"{self.name}: power {self.total_power_mw():.1f} mW exceeds "
                f"budget {self.power_budget_mw:.1f} mW")

    # ------------------------------------------------------------------
    # Accounting.
    # ------------------------------------------------------------------

    def total_area_mm2(self) -> float:
        """Total block area [mm^2] at the reference node."""
        return sum(block.area_mm2 for block in self.blocks)

    def total_power_mw(self) -> float:
        """Total active power [mW]."""
        return sum(block.power_mw for block in self.blocks)

    def analog_fraction(self) -> float:
        """Fraction of the area in analog/mixed-signal blocks.

        High analog fractions are the quantitative root of the paper's
        heterogeneous-technology argument: analog does not benefit from
        digital scaling.
        """
        analog = sum(b.area_mm2 for b in self.blocks if b.is_analog)
        return analog / self.total_area_mm2()

    def summary(self) -> str:
        """Multi-line accounting summary."""
        lines = [f"Platform design {self.name!r}:"]
        for block in self.blocks:
            lines.append(
                f"  {block.name:<28} {block.kind.value:<16} "
                f"{block.area_mm2:5.2f} mm^2  {block.power_mw:5.2f} mW")
        lines.append(
            f"  total: {self.total_area_mm2():.2f} mm^2, "
            f"{self.total_power_mw():.2f} mW "
            f"(budget {self.power_budget_mw:.1f} mW), "
            f"analog fraction {self.analog_fraction():.0%}")
        return "\n".join(lines)


def reference_biosensor_node(power_budget_mw: float = 15.0,
                             with_radio: bool = True) -> PlatformDesign:
    """The paper's self-contained biosensing node from the standard library.

    Sensor array + potentiostat front-end + ADC + control + power (+ radio
    and calibration memory) — the block list of paper section 1.
    """
    blocks = [b for b in STANDARD_BLOCKS
              if with_radio or b.kind is not BlockKind.RF]
    return PlatformDesign(
        name="i-IronIC-style biosensing node",
        blocks=tuple(blocks),
        power_budget_mw=power_budget_mw,
    )
