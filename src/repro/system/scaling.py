"""Heterogeneous technology-scaling model.

Paper section 1: "Scaling trends for the analog circuit, the digital unit,
and the biosensor itself are different, and so heterogeneous technologies
may be required [17]."  Digital logic shrinks quadratically with the node;
analog shrinks weakly (matching, passives, voltage headroom); the sensor
does not shrink at all (its area is chemistry).  These functions quantify
when a single-node SoC loses to a heterogeneous (multi-die / 3-D) partition.
"""

from __future__ import annotations

from repro.system.blocks import REFERENCE_NODE_NM, SystemBlock

#: Candidate technology nodes [nm].
AVAILABLE_NODES_NM: tuple[float, ...] = (350.0, 180.0, 130.0, 90.0, 65.0, 40.0)

#: Wafer cost per mm^2 by node [USD] — rises steeply toward advanced nodes.
_COST_PER_MM2: dict[float, float] = {
    350.0: 0.05,
    180.0: 0.08,
    130.0: 0.12,
    90.0: 0.20,
    65.0: 0.35,
    40.0: 0.60,
}


def scaled_area_mm2(block: SystemBlock, node_nm: float) -> float:
    """Block area [mm^2] at ``node_nm``.

    ``area = area_ref * (node/ref)^exponent`` — exponent 2 for digital,
    ~0.6 for analog, 0 for the sensor.
    """
    if node_nm <= 0:
        raise ValueError(f"node must be > 0, got {node_nm}")
    return block.area_mm2 * (node_nm / REFERENCE_NODE_NM) ** block.scaling_exponent


def scaled_power_mw(block: SystemBlock, node_nm: float) -> float:
    """Block power [mW] at ``node_nm``.

    Digital power follows a milder (linear) scaling; analog power is
    dominated by noise/bandwidth requirements and barely moves.
    """
    if node_nm <= 0:
        raise ValueError(f"node must be > 0, got {node_nm}")
    exponent = 1.0 if not block.is_analog else 0.2
    return block.power_mw * (node_nm / REFERENCE_NODE_NM) ** exponent


def silicon_cost_usd(area_mm2: float, node_nm: float) -> float:
    """Die cost [USD] of ``area_mm2`` at ``node_nm``."""
    if area_mm2 < 0:
        raise ValueError("area must be >= 0")
    try:
        per_mm2 = _COST_PER_MM2[node_nm]
    except KeyError:
        raise KeyError(
            f"no cost data for node {node_nm}; "
            f"available: {sorted(_COST_PER_MM2)}") from None
    return area_mm2 * per_mm2


def best_node_for_block(block: SystemBlock) -> float:
    """Node [nm] minimizing the silicon cost of one block.

    Digital blocks migrate to advanced nodes (area wins); analog and
    sensor blocks stay on mature nodes (cost/mm^2 wins) — the quantitative
    form of the heterogeneity argument.
    """
    return min(
        AVAILABLE_NODES_NM,
        key=lambda node: silicon_cost_usd(scaled_area_mm2(block, node), node))


def homogeneous_vs_heterogeneous(blocks: tuple[SystemBlock, ...],
                                 ) -> dict[str, float]:
    """Compare single-node SoC cost against per-block best-node partitions.

    Returns a dict with the best homogeneous node and cost, the
    heterogeneous cost (each block on its own optimal node), and the
    saving ratio.  A saving ratio > 1 reproduces the paper's claim that
    heterogeneous integration is the right style for biosensing systems.
    """
    if not blocks:
        raise ValueError("need at least one block")

    def homogeneous_cost(node: float) -> float:
        return sum(silicon_cost_usd(scaled_area_mm2(b, node), node)
                   for b in blocks)

    best_homogeneous_node = min(AVAILABLE_NODES_NM, key=homogeneous_cost)
    homogeneous = homogeneous_cost(best_homogeneous_node)
    heterogeneous = sum(
        silicon_cost_usd(scaled_area_mm2(b, best_node_for_block(b)),
                         best_node_for_block(b))
        for b in blocks)
    return {
        "homogeneous_node_nm": best_homogeneous_node,
        "homogeneous_cost_usd": homogeneous,
        "heterogeneous_cost_usd": heterogeneous,
        "saving_ratio": homogeneous / heterogeneous,
    }
