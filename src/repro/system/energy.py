"""Energy budget of the self-contained biosensing node.

Completes the section 1 block-diagram argument with the quantity a
wearable/implantable design lives or dies by: battery life.  The model
combines per-measurement energy (settle + dwell on each channel through
the shared chain) with radio transmission energy per report and the
standby floor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.system.composition import PlatformDesign

#: Energy density of a small lithium primary cell [J per mAh at 3 V].
_JOULE_PER_MAH = 3.0 * 3.6


@dataclass(frozen=True)
class EnergyBudget:
    """Duty-cycled energy model of a biosensing node.

    Attributes:
        design: the composed platform (supplies active power).
        standby_power_mw: sleep-mode power floor.
        measurement_duration_s: active time per full panel measurement.
        radio_energy_per_report_mj: energy to transmit one report [mJ].
    """

    design: PlatformDesign
    standby_power_mw: float = 0.05
    measurement_duration_s: float = 60.0
    radio_energy_per_report_mj: float = 15.0

    def __post_init__(self) -> None:
        if self.standby_power_mw < 0:
            raise ValueError("standby power must be >= 0")
        if self.measurement_duration_s <= 0:
            raise ValueError("measurement duration must be > 0")
        if self.radio_energy_per_report_mj < 0:
            raise ValueError("radio energy must be >= 0")

    def energy_per_measurement_mj(self) -> float:
        """Energy [mJ] of one full panel measurement plus its report."""
        active_mj = self.design.total_power_mw() * self.measurement_duration_s
        return active_mj + self.radio_energy_per_report_mj

    def average_power_mw(self, measurements_per_hour: float) -> float:
        """Duty-cycled average power [mW]."""
        if measurements_per_hour < 0:
            raise ValueError("measurement rate must be >= 0")
        per_hour_mj = (self.energy_per_measurement_mj()
                       * measurements_per_hour)
        return self.standby_power_mw + per_hour_mj / 3600.0

    def battery_life_days(self,
                          battery_mah: float,
                          measurements_per_hour: float) -> float:
        """Runtime [days] on ``battery_mah`` at the given duty cycle."""
        if battery_mah <= 0:
            raise ValueError("battery capacity must be > 0")
        energy_j = battery_mah * _JOULE_PER_MAH
        power_w = self.average_power_mw(measurements_per_hour) * 1e-3
        return energy_j / power_w / 86400.0

    def max_measurement_rate_per_hour(self,
                                      battery_mah: float,
                                      target_days: float) -> float:
        """Highest panel rate [1/h] that still meets ``target_days``.

        Zero when the standby floor alone exhausts the budget.
        """
        if target_days <= 0:
            raise ValueError("target lifetime must be > 0")
        energy_j = battery_mah * _JOULE_PER_MAH
        power_budget_mw = energy_j / (target_days * 86400.0) * 1e3
        headroom_mw = power_budget_mw - self.standby_power_mw
        if headroom_mw <= 0:
            return 0.0
        return headroom_mw * 3600.0 / self.energy_per_measurement_mj()
