"""Drug catalog: therapeutic windows and population PK priors.

The paper's drug panel (section 2.1) targets CYP450-metabolized
therapeutics whose narrow windows make them monitoring candidates in the
first place.  Each :class:`DrugSpec` bundles what the closed-loop
workload needs: the molar therapeutic window the sensor must police, the
population pharmacokinetics a virtual cohort is drawn from, and the CYP
isoform that links the drug to a sensor spec in
:mod:`repro.core.registry`.

Concentration scale: the simulated CYP sensors resolve low-micromolar
levels (LOD ~1 uM), so the catalog windows sit in the uM decade the
assay can actually read.  For cyclosporine that is one order above the
clinical whole-blood window — the loop *dynamics* (phenotype-dependent
exposure, trough targeting, Bayesian individualization) are what is
reproduced, not the absolute ng/mL scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pk.population import PopulationModel


@dataclass(frozen=True)
class TherapeuticWindow:
    """The concentration band therapy tries to hold a patient inside.

    Attributes:
        low_molar: sub-therapeutic threshold [mol/L].
        high_molar: toxicity threshold [mol/L].
        target_trough_molar: the trough level dosing controllers aim
            for, inside ``(low, high)``.
    """

    low_molar: float
    high_molar: float
    target_trough_molar: float

    def __post_init__(self) -> None:
        if not 0.0 < self.low_molar < self.high_molar:
            raise ValueError("need 0 < low < high")
        if not (self.low_molar <= self.target_trough_molar
                <= self.high_molar):
            raise ValueError("target trough must sit inside the window")

    @property
    def span_molar(self) -> float:
        """Window width [mol/L]."""
        return self.high_molar - self.low_molar

    def contains(self, concentration_molar: float) -> bool:
        """True when a level is inside the window (inclusive)."""
        return self.low_molar <= concentration_molar <= self.high_molar


@dataclass(frozen=True)
class DrugSpec:
    """One monitored therapeutic: window, population PK, sensor link.

    Attributes:
        name: drug name.
        molar_mass_g_per_mol: for mg <-> mol dose conversion.
        cyp_isoform: metabolizing isoform (phenotype strata apply to it).
        window: the therapeutic window to hold.
        population: population PK distribution of the treated cohort.
        sensor_id: the :mod:`repro.core.registry` spec monitoring the
            drug (or its isoform's electrochemical stand-in).
    """

    name: str
    molar_mass_g_per_mol: float
    cyp_isoform: str
    window: TherapeuticWindow
    population: PopulationModel
    sensor_id: str

    def __post_init__(self) -> None:
        if self.molar_mass_g_per_mol <= 0:
            raise ValueError("molar mass must be > 0")

    def typical_model(self) -> "OneCompartmentPK":
        """The population-typical one-compartment model.

        The prior a model-informed controller starts every patient
        from: extensive-metabolizer clearance at the reference weight,
        population volume, absorption and bioavailability.
        """
        from repro.pk.models import OneCompartmentPK

        return OneCompartmentPK(
            clearance_l_per_h=self.population.typical_clearance_l_per_h,
            volume_l=self.population.typical_volume_l,
            ka_per_h=self.population.typical_ka_per_h,
            bioavailability=self.population.bioavailability)

    def dose_mol_from_mg(self, dose_mg: float) -> float:
        """Convert an administered mass [mg] to moles."""
        return dose_mg * 1e-3 / self.molar_mass_g_per_mol

    def mg_from_dose_mol(self, dose_mol: float) -> float:
        """Convert a molar dose back to the prescribed mass [mg]."""
        return dose_mol * self.molar_mass_g_per_mol * 1e3


#: Cyclosporine (CYP3A4): the canonical narrow-window immunosuppressant.
#: PK shaped like the literature one-compartment reduction (t1/2 ~8 h,
#: slow oral absorption, F ~0.4); window scaled to the assay's uM decade.
CYCLOSPORINE = DrugSpec(
    name="cyclosporine",
    molar_mass_g_per_mol=1202.6,
    cyp_isoform="CYP3A4",
    window=TherapeuticWindow(
        low_molar=2.0e-6, high_molar=8.0e-6, target_trough_molar=3.0e-6),
    population=PopulationModel(
        typical_clearance_l_per_h=7.0,
        typical_volume_l=80.0,
        typical_ka_per_h=0.7,
        bioavailability=0.4,
        clearance_cv=0.28,
        volume_cv=0.15,
        ka_cv=0.30,
    ),
    sensor_id="cyp/ifosfamide",  # the registry's CYP3A4 electrode
)

#: Cyclophosphamide (CYP2B6-activated): the paper's own TDM example;
#: window matches the ``repro.analytes`` plasma-during-therapy range.
CYCLOPHOSPHAMIDE = DrugSpec(
    name="cyclophosphamide",
    molar_mass_g_per_mol=261.1,
    cyp_isoform="CYP2B6",
    window=TherapeuticWindow(
        low_molar=10.0e-6, high_molar=60.0e-6, target_trough_molar=20.0e-6),
    population=PopulationModel(
        typical_clearance_l_per_h=4.2,
        typical_volume_l=40.0,
        typical_ka_per_h=1.1,
        bioavailability=0.85,
        clearance_cv=0.25,
        volume_cv=0.15,
        ka_cv=0.30,
    ),
    sensor_id="cyp/cyclophosphamide",
)

_DRUGS = {spec.name: spec for spec in (CYCLOSPORINE, CYCLOPHOSPHAMIDE)}


def drug_by_name(name: str) -> DrugSpec:
    """Return the catalog entry for ``name`` (KeyError when unknown)."""
    try:
        return _DRUGS[name]
    except KeyError:
        raise KeyError(f"no drug spec for {name!r}; "
                       f"available: {sorted(_DRUGS)}") from None
