"""Dose schedules and superposition evaluation.

A linear PK model responds to a regimen as the sum of its per-dose unit
responses — so a :class:`DoseSchedule` evaluates in closed form at any
set of times by superposing :meth:`repro.pk.models.PKParams.unit_response`
kernels, one per event.  The same superposition primitive
(:func:`concentration_from_doses`) is what the closed-loop therapy
engine calls with *per-patient* dose arrays, because an adaptive
controller gives every virtual patient its own dose history.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pk.models import PKParams, Route


def concentration_from_doses(times_h: np.ndarray | float,
                             dose_times_h: np.ndarray,
                             doses_mol: np.ndarray,
                             params: PKParams,
                             route: Route = Route.ORAL,
                             duration_h: float = 0.0) -> np.ndarray:
    """Superpose dose responses over a cohort: the core PK batch kernel.

    Evaluates ``C[p, t] = sum_m doses[p, m] * unit_response(t - t_m)``
    for every patient and time in one vectorized pass per dose event.
    Doses still in the future at an evaluation time contribute exactly
    zero, so the same call works mid-regimen.

    Args:
        times_h: evaluation times [h], ``(n_times,)`` (shared by the
            cohort) or scalar.
        dose_times_h: administration times [h], ``(n_doses,)``.
        doses_mol: administered amounts [mol]: ``(n_patients, n_doses)``
            for per-patient regimens, ``(n_doses,)`` shared by the
            cohort, or scalar shared by every dose and patient.
        params: per-patient model parameters.
        route: administration route shared by the events.
        duration_h: infusion duration [h] (INFUSION route only).

    Returns:
        Concentrations [mol/L], shape ``(n_patients, n_times)``.
    """
    t = np.atleast_1d(np.asarray(times_h, dtype=float))
    dose_times = np.atleast_1d(np.asarray(dose_times_h, dtype=float))
    doses = np.asarray(doses_mol, dtype=float)
    if doses.ndim == 0:
        doses = np.full((params.n_patients, dose_times.size), float(doses))
    elif doses.ndim == 1:
        if doses.size != dose_times.size:
            raise ValueError("doses and dose times must align")
        doses = np.broadcast_to(doses, (params.n_patients, doses.size))
    if doses.shape != (params.n_patients, dose_times.size):
        raise ValueError(
            f"doses shaped {doses.shape}, expected "
            f"({params.n_patients}, {dose_times.size})")
    if np.any(doses < 0):
        raise ValueError("doses must be >= 0")
    total = np.zeros((params.n_patients, t.size))
    for m, t_dose in enumerate(dose_times):
        total = total + doses[:, m:m + 1] * params.unit_response(
            t[None, :] - t_dose, route, duration_h)
    return total


def steady_state_trough_per_mol(params: PKParams,
                                interval_h: float,
                                route: Route = Route.ORAL,
                                duration_h: float = 0.0,
                                n_doses: int = 200) -> np.ndarray:
    """Steady-state trough concentration per mol of maintenance dose.

    The regimen-design primitive: under equal doses every ``interval_h``
    the trough converges to a geometric sum of the unit response, here
    evaluated by superposing ``n_doses`` past administrations (the tail
    beyond 200 intervals is below double precision for any clinically
    sensible half-life/interval ratio).  Dosing controllers use this to
    turn a target trough into an initial dose.

    Args:
        params: per-patient model parameters.
        interval_h: dosing interval [h], > 0.
        route: administration route.
        duration_h: infusion duration [h] (INFUSION route only).
        n_doses: superposition depth of the steady-state evaluation.

    Returns:
        Trough level per mol of dose [1/L], shape ``(n_patients,)``.
    """
    if interval_h <= 0:
        raise ValueError("dose interval must be > 0")
    if n_doses < 1:
        raise ValueError("need at least one dose")
    ages_h = (np.arange(n_doses, dtype=float) + 1.0) * interval_h
    return np.sum(params.unit_response(ages_h[None, :], route, duration_h),
                  axis=1)


@dataclass(frozen=True)
class DoseEvent:
    """One administration event of a regimen.

    Attributes:
        time_h: administration time [h] from the start of therapy.
        dose_mol: administered amount [mol].
        route: administration route.
        duration_h: infusion duration [h] (INFUSION route only, > 0).
    """

    time_h: float
    dose_mol: float
    route: Route = Route.ORAL
    duration_h: float = 0.0

    def __post_init__(self) -> None:
        if self.time_h < 0:
            raise ValueError("dose time must be >= 0")
        if self.dose_mol < 0:
            raise ValueError("dose must be >= 0")
        if self.route is Route.INFUSION and self.duration_h <= 0:
            raise ValueError("infusions need a duration > 0")
        if self.route is not Route.INFUSION and self.duration_h != 0.0:
            raise ValueError("duration applies to infusions only")


@dataclass(frozen=True)
class DoseSchedule:
    """A whole regimen: an ordered tuple of :class:`DoseEvent` entries.

    Attributes:
        events: the administrations, sorted by time at construction.
    """

    events: tuple[DoseEvent, ...]

    def __post_init__(self) -> None:
        if not self.events:
            raise ValueError("schedule needs at least one dose")
        object.__setattr__(self, "events", tuple(
            sorted(self.events, key=lambda e: e.time_h)))

    @classmethod
    def regimen(cls, dose_mol: float, interval_h: float, n_doses: int,
                route: Route = Route.ORAL, start_h: float = 0.0,
                duration_h: float = 0.0) -> "DoseSchedule":
        """Build an equally spaced fixed-dose regimen.

        Args:
            dose_mol: amount per administration [mol].
            interval_h: dosing interval [h], > 0.
            n_doses: number of administrations, >= 1.
            route: administration route.
            start_h: time of the first dose [h].
            duration_h: infusion duration [h] (INFUSION route only).

        Returns:
            The schedule, e.g. ``regimen(2.5e-4, 12.0, 6)`` for three
            days of 12-hourly oral dosing.
        """
        if interval_h <= 0:
            raise ValueError("dose interval must be > 0")
        if n_doses < 1:
            raise ValueError("need at least one dose")
        return cls(events=tuple(
            DoseEvent(time_h=start_h + k * interval_h, dose_mol=dose_mol,
                      route=route, duration_h=duration_h)
            for k in range(n_doses)))

    @property
    def n_doses(self) -> int:
        """Number of administrations in the regimen."""
        return len(self.events)

    @property
    def horizon_h(self) -> float:
        """Time of the last administration [h] (excluding washout)."""
        return self.events[-1].time_h

    def concentration(self, params: PKParams,
                      times_h: np.ndarray | float) -> np.ndarray:
        """Cohort concentrations [mol/L] under this regimen.

        Superposes every event's unit response; events may mix routes.

        Args:
            params: per-patient model parameters.
            times_h: evaluation times [h], ``(n_times,)`` or scalar.

        Returns:
            Concentrations, shape ``(n_patients, n_times)``.
        """
        t = np.atleast_1d(np.asarray(times_h, dtype=float))
        total = np.zeros((params.n_patients, t.size))
        for event in self.events:
            total = total + event.dose_mol * params.unit_response(
                t[None, :] - event.time_h, event.route, event.duration_h)
        return total
