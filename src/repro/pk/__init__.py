"""Pharmacokinetics: dose -> concentration, over virtual populations.

The missing physics of personalized medicine: the sensor panel of the
paper measures a drug level, but *therapy* is about the dose that
produced it.  This package models that forward map in closed form —
one- and two-compartment models with first-order absorption and
CYP-mediated clearance (:mod:`repro.pk.models`), dose schedules
evaluated by superposition (:mod:`repro.pk.dosing`), virtual-patient
populations stratified by CYP phenotype (:mod:`repro.pk.population`)
and a drug catalog with therapeutic windows (:mod:`repro.pk.drugs`) —
all as batch kernels over ``(n_patients, n_times)`` arrays, the shape
the closed-loop therapy engine (:mod:`repro.engine.therapy`) consumes.

Quickstart::

    from repro.pk import CYCLOSPORINE, DoseSchedule
    import numpy as np

    cohort = CYCLOSPORINE.population.sample(n_patients=16, seed=7)
    schedule = DoseSchedule.regimen(
        dose_mol=8e-4, interval_h=12.0, n_doses=6)
    levels = schedule.concentration(
        cohort.params(), np.linspace(0.0, 96.0, 385))
"""

from repro.pk.models import (
    OneCompartmentPK,
    PKParams,
    Route,
    TwoCompartmentPK,
    one_compartment_bolus_batch,
    one_compartment_infusion_batch,
    one_compartment_oral_batch,
    two_compartment_bolus_batch,
    two_compartment_infusion_batch,
    two_compartment_oral_batch,
)
from repro.pk.dosing import (
    DoseEvent,
    DoseSchedule,
    concentration_from_doses,
    steady_state_trough_per_mol,
)
from repro.pk.population import (
    CYPPhenotype,
    DEFAULT_CLEARANCE_MULTIPLIERS,
    DEFAULT_PHENOTYPE_FRACTIONS,
    PatientCohort,
    PopulationModel,
    VirtualPatient,
)
from repro.pk.drugs import (
    CYCLOPHOSPHAMIDE,
    CYCLOSPORINE,
    DrugSpec,
    TherapeuticWindow,
    drug_by_name,
)

__all__ = [
    "OneCompartmentPK",
    "PKParams",
    "Route",
    "TwoCompartmentPK",
    "one_compartment_bolus_batch",
    "one_compartment_infusion_batch",
    "one_compartment_oral_batch",
    "two_compartment_bolus_batch",
    "two_compartment_infusion_batch",
    "two_compartment_oral_batch",
    "DoseEvent",
    "DoseSchedule",
    "concentration_from_doses",
    "steady_state_trough_per_mol",
    "CYPPhenotype",
    "DEFAULT_CLEARANCE_MULTIPLIERS",
    "DEFAULT_PHENOTYPE_FRACTIONS",
    "PatientCohort",
    "PopulationModel",
    "VirtualPatient",
    "CYCLOPHOSPHAMIDE",
    "CYCLOSPORINE",
    "DrugSpec",
    "TherapeuticWindow",
    "drug_by_name",
]
