"""Compartmental pharmacokinetic models in closed form.

The paper's personalized-medicine pitch is a feedback loop: the CYP450
sensor panel tracks a drug in an individual patient so the *dose* can be
adjusted to that patient.  Closing that loop needs a forward model of
what a dose does — this module provides it as one- and two-compartment
models with first-order absorption and CYP-mediated clearance.

Everything is evaluated **in closed form**: a dose administered at time
``t0`` contributes a known exponential (or bi-/tri-exponential) response
at every later time, so a whole regimen is a superposition of per-dose
kernels and a cohort of virtual patients evaluates as one
``(n_patients, n_times)`` NumPy pass — no ODE integrator, no time
stepping, and therefore no step-size error to manage.  This follows the
engine convention of PR 1/PR 2: **batch kernels** over parameter arrays
first, thin scalar dataclasses (:class:`OneCompartmentPK`,
:class:`TwoCompartmentPK`) on top.

Conventions (shared by the whole ``repro.pk`` package):

* times in hours, volumes in litres, clearances in L/h;
* amounts in **mol** and concentrations in **mol/L**, so PK output plugs
  straight into the sensor stack's molar world;
* every unit-response kernel returns the concentration per **mol of
  administered dose** (units 1/L); multiply by the dose to get mol/L;
* ``dt_h < 0`` (dose not yet given) contributes exactly 0.0 — which is
  what makes naive superposition over a growing dose list correct.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

#: Relative spacing below which absorption and elimination rates are
#: treated as equal and the flip-flop limit formula is used (the generic
#: two-exponential formula loses all precision as ``ka -> ke``).
_RATE_DEGENERACY_RTOL = 1e-9


class Route(enum.Enum):
    """Administration route of a dose."""

    IV_BOLUS = "iv_bolus"
    ORAL = "oral"
    INFUSION = "infusion"


def _as_columns(*params: np.ndarray | float) -> tuple[np.ndarray, ...]:
    """Lift per-patient parameter vectors to broadcast against time axes.

    A ``(n_patients,)`` parameter becomes ``(n_patients, 1)`` so it
    broadcasts against ``(n_patients, n_times)`` or ``(n_times,)`` time
    arrays; scalars pass through unchanged.
    """
    out = []
    for p in params:
        a = np.asarray(p, dtype=float)
        out.append(a[:, None] if a.ndim == 1 else a)
    return tuple(out)


def one_compartment_bolus_batch(dt_h: np.ndarray | float,
                                clearance_l_per_h: np.ndarray | float,
                                volume_l: np.ndarray | float) -> np.ndarray:
    """Unit IV-bolus response of a one-compartment model.

    ``c(dt) = exp(-ke dt) / V`` with ``ke = CL/V``; 0 for ``dt < 0``.

    Args:
        dt_h: times since the dose [h], shape ``(n_times,)`` or
            ``(n_patients, n_times)``.
        clearance_l_per_h: per-patient clearance [L/h], scalar or
            ``(n_patients,)``.
        volume_l: per-patient distribution volume [L].

    Returns:
        Concentration per mol of dose [1/L], broadcast of the inputs.
    """
    cl, v = _as_columns(clearance_l_per_h, volume_l)
    dt = np.asarray(dt_h, dtype=float)
    ke = cl / v
    given = dt >= 0.0
    return np.where(given, np.exp(-ke * np.where(given, dt, 0.0)) / v, 0.0)


def one_compartment_oral_batch(dt_h: np.ndarray | float,
                               clearance_l_per_h: np.ndarray | float,
                               volume_l: np.ndarray | float,
                               ka_per_h: np.ndarray | float,
                               bioavailability: np.ndarray | float = 1.0,
                               ) -> np.ndarray:
    """Unit oral-dose response with first-order absorption.

    The Bateman function,

    ``c(dt) = F ka / (V (ka - ke)) (exp(-ke dt) - exp(-ka dt))``,

    evaluated with the flip-flop limit ``c = F ka dt exp(-ka dt) / V``
    where ``ka`` and ``ke`` degenerate (relative spacing below 1e-9), so
    the kernel is well-conditioned for every parameter draw a population
    sampler can produce.  0 for ``dt < 0``.

    Args:
        dt_h: times since the dose [h].
        clearance_l_per_h: per-patient clearance [L/h].
        volume_l: per-patient distribution volume [L].
        ka_per_h: first-order absorption rate [1/h].
        bioavailability: absorbed fraction F in (0, 1].

    Returns:
        Concentration per mol of dose [1/L], broadcast of the inputs.
    """
    cl, v, ka, f = _as_columns(
        clearance_l_per_h, volume_l, ka_per_h, bioavailability)
    dt = np.asarray(dt_h, dtype=float)
    ke = cl / v
    given = dt >= 0.0
    t = np.where(given, dt, 0.0)
    gap = ka - ke
    degenerate = np.abs(gap) <= _RATE_DEGENERACY_RTOL * ka
    # Where degenerate, substitute a safe denominator; the branch result
    # is discarded by the final where().
    safe_gap = np.where(degenerate, 1.0, gap)
    generic = (f * ka / (v * safe_gap)
               * (np.exp(-ke * t) - np.exp(-ka * t)))
    limit = f * ka * t * np.exp(-ka * t) / v
    return np.where(given, np.where(degenerate, limit, generic), 0.0)


def one_compartment_infusion_batch(dt_h: np.ndarray | float,
                                   duration_h: float,
                                   clearance_l_per_h: np.ndarray | float,
                                   volume_l: np.ndarray | float,
                                   ) -> np.ndarray:
    """Unit-dose response of a constant-rate infusion over ``duration_h``.

    During the infusion the level rises as ``(1 - exp(-ke dt)) / (CL T)``
    and decays mono-exponentially after it stops; the expression below
    covers both phases through ``tau = min(dt, T)``:

    ``c(dt) = (1 - exp(-ke tau)) exp(-ke (dt - tau)) / (CL T)``.

    Args:
        dt_h: times since the start of the infusion [h].
        duration_h: infusion duration T [h], > 0.
        clearance_l_per_h: per-patient clearance [L/h].
        volume_l: per-patient distribution volume [L].

    Returns:
        Concentration per mol of total infused dose [1/L].
    """
    if duration_h <= 0:
        raise ValueError("infusion duration must be > 0")
    cl, v = _as_columns(clearance_l_per_h, volume_l)
    dt = np.asarray(dt_h, dtype=float)
    ke = cl / v
    given = dt >= 0.0
    t = np.where(given, dt, 0.0)
    tau = np.minimum(t, duration_h)
    response = ((1.0 - np.exp(-ke * tau)) * np.exp(-ke * (t - tau))
                / (cl * duration_h))
    return np.where(given, response, 0.0)


def _two_compartment_exponents(clearance_l_per_h, volume_central_l,
                               intercompartmental_l_per_h, volume_peripheral_l):
    """Hybrid rate constants and bolus coefficients of the 2-cpt model.

    Returns ``(alpha, beta, coeff_alpha, coeff_beta)`` where the unit
    IV-bolus response is ``(coeff_a exp(-alpha t) + coeff_b exp(-beta t))
    / V1`` and ``alpha > beta > 0``.
    """
    cl, v1, q, v2 = _as_columns(clearance_l_per_h, volume_central_l,
                                intercompartmental_l_per_h,
                                volume_peripheral_l)
    k10 = cl / v1
    k12 = q / v1
    k21 = q / v2
    total = k10 + k12 + k21
    # Discriminant is (k10+k12-k21)^2 + 4 k12 k21 > 0: alpha != beta
    # always, no degenerate branch needed.
    root = np.sqrt(total * total - 4.0 * k10 * k21)
    alpha = 0.5 * (total + root)
    beta = 0.5 * (total - root)
    coeff_alpha = (alpha - k21) / (alpha - beta)
    coeff_beta = (k21 - beta) / (alpha - beta)
    return alpha, beta, coeff_alpha, coeff_beta


def two_compartment_bolus_batch(dt_h: np.ndarray | float,
                                clearance_l_per_h: np.ndarray | float,
                                volume_central_l: np.ndarray | float,
                                intercompartmental_l_per_h: np.ndarray | float,
                                volume_peripheral_l: np.ndarray | float,
                                ) -> np.ndarray:
    """Unit IV-bolus response of a two-compartment model.

    The classic bi-exponential disposition,

    ``c(dt) = (A exp(-alpha dt) + B exp(-beta dt)) / V1``,

    with hybrid constants derived from ``(CL, V1, Q, V2)`` micro-rates.

    Args:
        dt_h: times since the dose [h].
        clearance_l_per_h: elimination clearance from the central
            compartment [L/h].
        volume_central_l: central (sampled) volume V1 [L].
        intercompartmental_l_per_h: distribution clearance Q [L/h].
        volume_peripheral_l: peripheral volume V2 [L].

    Returns:
        Concentration per mol of dose [1/L].
    """
    v1, = _as_columns(volume_central_l)
    alpha, beta, a, b = _two_compartment_exponents(
        clearance_l_per_h, volume_central_l,
        intercompartmental_l_per_h, volume_peripheral_l)
    dt = np.asarray(dt_h, dtype=float)
    given = dt >= 0.0
    t = np.where(given, dt, 0.0)
    response = (a * np.exp(-alpha * t) + b * np.exp(-beta * t)) / v1
    return np.where(given, response, 0.0)


def two_compartment_oral_batch(dt_h: np.ndarray | float,
                               clearance_l_per_h: np.ndarray | float,
                               volume_central_l: np.ndarray | float,
                               intercompartmental_l_per_h: np.ndarray | float,
                               volume_peripheral_l: np.ndarray | float,
                               ka_per_h: np.ndarray | float,
                               bioavailability: np.ndarray | float = 1.0,
                               ) -> np.ndarray:
    """Unit oral-dose response of a two-compartment model.

    Tri-exponential: the bi-exponential disposition convolved with
    first-order absorption,

    ``c(dt) = F ka / V1 * sum_i C_i exp(-lambda_i dt)``

    over ``lambda_i in {alpha, beta, ka}`` with the standard partial-
    fraction coefficients.  ``ka`` colliding with ``alpha`` or ``beta``
    is resolved by nudging ``ka`` one part in 1e9 — far below any
    physiological identifiability and numerically stable.

    Args:
        dt_h: times since the dose [h].
        clearance_l_per_h: elimination clearance [L/h].
        volume_central_l: central volume V1 [L].
        intercompartmental_l_per_h: distribution clearance Q [L/h].
        volume_peripheral_l: peripheral volume V2 [L].
        ka_per_h: first-order absorption rate [1/h].
        bioavailability: absorbed fraction F in (0, 1].

    Returns:
        Concentration per mol of dose [1/L].
    """
    cl, v1, q, v2, ka, f = _as_columns(
        clearance_l_per_h, volume_central_l, intercompartmental_l_per_h,
        volume_peripheral_l, ka_per_h, bioavailability)
    alpha, beta, _, _ = _two_compartment_exponents(cl, v1, q, v2)
    k21 = q / v2
    # De-degenerate ka against both hybrid exponents.
    for lam in (alpha, beta):
        collision = np.abs(ka - lam) <= _RATE_DEGENERACY_RTOL * lam
        ka = np.where(collision, ka * (1.0 + 1e-9), ka)
    dt = np.asarray(dt_h, dtype=float)
    given = dt >= 0.0
    t = np.where(given, dt, 0.0)
    c_alpha = (k21 - alpha) / ((ka - alpha) * (beta - alpha))
    c_beta = (k21 - beta) / ((ka - beta) * (alpha - beta))
    c_ka = (k21 - ka) / ((alpha - ka) * (beta - ka))
    response = (f * ka / v1) * (c_alpha * np.exp(-alpha * t)
                                + c_beta * np.exp(-beta * t)
                                + c_ka * np.exp(-ka * t))
    return np.where(given, response, 0.0)


def two_compartment_infusion_batch(dt_h: np.ndarray | float,
                                   duration_h: float,
                                   clearance_l_per_h: np.ndarray | float,
                                   volume_central_l: np.ndarray | float,
                                   intercompartmental_l_per_h:
                                   np.ndarray | float,
                                   volume_peripheral_l: np.ndarray | float,
                                   ) -> np.ndarray:
    """Unit-dose constant-rate infusion response, two compartments.

    The bolus impulse response integrated over the infusion window:

    ``c(dt) = R/V1 sum_i C_i/lambda_i (1 - exp(-lambda_i tau))
    exp(-lambda_i (dt - tau))`` with ``tau = min(dt, T)`` and
    ``R = 1/T`` per unit dose.

    Args:
        dt_h: times since the start of the infusion [h].
        duration_h: infusion duration T [h], > 0.
        clearance_l_per_h: elimination clearance [L/h].
        volume_central_l: central volume V1 [L].
        intercompartmental_l_per_h: distribution clearance Q [L/h].
        volume_peripheral_l: peripheral volume V2 [L].

    Returns:
        Concentration per mol of total infused dose [1/L].
    """
    if duration_h <= 0:
        raise ValueError("infusion duration must be > 0")
    v1, = _as_columns(volume_central_l)
    alpha, beta, a, b = _two_compartment_exponents(
        clearance_l_per_h, volume_central_l,
        intercompartmental_l_per_h, volume_peripheral_l)
    dt = np.asarray(dt_h, dtype=float)
    given = dt >= 0.0
    t = np.where(given, dt, 0.0)
    tau = np.minimum(t, duration_h)
    rate = 1.0 / duration_h
    response = (rate / v1) * (
        (a / alpha) * (1.0 - np.exp(-alpha * tau))
        * np.exp(-alpha * (t - tau))
        + (b / beta) * (1.0 - np.exp(-beta * tau))
        * np.exp(-beta * (t - tau)))
    return np.where(given, response, 0.0)


@dataclass(frozen=True)
class PKParams:
    """Per-patient PK parameter arrays, the batch-kernel currency.

    One- or two-compartment depending on whether the distribution pair
    ``(intercompartmental_l_per_h, volume_peripheral_l)`` is present.
    Produced by :meth:`repro.pk.population.PatientCohort.params` and
    consumed by the therapy engine and :class:`repro.pk.dosing.DoseSchedule`.

    Attributes:
        clearance_l_per_h: elimination clearance per patient [L/h],
            shape ``(n_patients,)``.
        volume_l: central distribution volume per patient [L].
        ka_per_h: first-order absorption rate per patient [1/h].
        bioavailability: absorbed oral fraction per patient in (0, 1].
        intercompartmental_l_per_h: distribution clearance Q [L/h]
            (``None`` selects the one-compartment kernels).
        volume_peripheral_l: peripheral volume V2 [L] (paired with Q).
    """

    clearance_l_per_h: np.ndarray
    volume_l: np.ndarray
    ka_per_h: np.ndarray
    bioavailability: np.ndarray
    intercompartmental_l_per_h: np.ndarray | None = None
    volume_peripheral_l: np.ndarray | None = None

    def __post_init__(self) -> None:
        for name in ("clearance_l_per_h", "volume_l", "ka_per_h",
                     "bioavailability"):
            object.__setattr__(
                self, name, np.atleast_1d(
                    np.asarray(getattr(self, name), dtype=float)))
        if (self.intercompartmental_l_per_h is None) != (
                self.volume_peripheral_l is None):
            raise ValueError(
                "two-compartment parameters (Q, V2) must be given together")
        if self.intercompartmental_l_per_h is not None:
            object.__setattr__(
                self, "intercompartmental_l_per_h", np.atleast_1d(np.asarray(
                    self.intercompartmental_l_per_h, dtype=float)))
            object.__setattr__(
                self, "volume_peripheral_l", np.atleast_1d(np.asarray(
                    self.volume_peripheral_l, dtype=float)))
        if np.any(self.clearance_l_per_h <= 0) or np.any(self.volume_l <= 0):
            raise ValueError("clearance and volume must be > 0")
        if np.any(self.ka_per_h <= 0):
            raise ValueError("absorption rate must be > 0")
        if np.any((self.bioavailability <= 0)
                  | (self.bioavailability > 1.0)):
            raise ValueError("bioavailability must be in (0, 1]")
        if self.two_compartment and (
                np.any(self.intercompartmental_l_per_h <= 0)
                or np.any(self.volume_peripheral_l <= 0)):
            raise ValueError("Q and V2 must be > 0")

    @property
    def n_patients(self) -> int:
        """Number of patients the parameter arrays describe."""
        return int(self.clearance_l_per_h.shape[0])

    @property
    def two_compartment(self) -> bool:
        """True when the distribution pair (Q, V2) is present."""
        return self.intercompartmental_l_per_h is not None

    @property
    def elimination_rate_per_h(self) -> np.ndarray:
        """Terminal elimination micro-rate ``CL/V`` per patient [1/h]."""
        return self.clearance_l_per_h / self.volume_l

    def unit_response(self, dt_h: np.ndarray | float,
                      route: Route = Route.ORAL,
                      duration_h: float = 0.0) -> np.ndarray:
        """Concentration per mol of dose at times ``dt_h`` after dosing.

        Dispatches to the matching batch kernel (one- vs two-compartment
        by parameter presence, route by ``route``).  ``dt_h`` broadcasts
        against the ``(n_patients,)`` parameter axis, so passing a
        ``(n_times,)`` vector returns ``(n_patients, n_times)``.

        Args:
            dt_h: times since administration [h].
            route: administration route.
            duration_h: infusion duration [h] (INFUSION route only).

        Returns:
            Unit-dose concentrations [1/L].
        """
        if route is Route.INFUSION:
            if self.two_compartment:
                return two_compartment_infusion_batch(
                    dt_h, duration_h, self.clearance_l_per_h,
                    self.volume_l, self.intercompartmental_l_per_h,
                    self.volume_peripheral_l)
            return one_compartment_infusion_batch(
                dt_h, duration_h, self.clearance_l_per_h, self.volume_l)
        if route is Route.ORAL:
            if self.two_compartment:
                return two_compartment_oral_batch(
                    dt_h, self.clearance_l_per_h, self.volume_l,
                    self.intercompartmental_l_per_h,
                    self.volume_peripheral_l, self.ka_per_h,
                    self.bioavailability)
            return one_compartment_oral_batch(
                dt_h, self.clearance_l_per_h, self.volume_l,
                self.ka_per_h, self.bioavailability)
        if self.two_compartment:
            return two_compartment_bolus_batch(
                dt_h, self.clearance_l_per_h, self.volume_l,
                self.intercompartmental_l_per_h, self.volume_peripheral_l)
        return one_compartment_bolus_batch(
            dt_h, self.clearance_l_per_h, self.volume_l)

    def patient(self, index: int) -> "PKParams":
        """Single-patient slice (still array-shaped, length 1)."""
        sel = slice(index, index + 1)
        return PKParams(
            clearance_l_per_h=self.clearance_l_per_h[sel],
            volume_l=self.volume_l[sel],
            ka_per_h=self.ka_per_h[sel],
            bioavailability=self.bioavailability[sel],
            intercompartmental_l_per_h=(
                self.intercompartmental_l_per_h[sel]
                if self.two_compartment else None),
            volume_peripheral_l=(
                self.volume_peripheral_l[sel]
                if self.two_compartment else None),
        )


@dataclass(frozen=True)
class OneCompartmentPK:
    """One patient's one-compartment model (scalar convenience wrapper).

    Thin scalar facade over the batch kernels, mirroring the library
    convention that scalar APIs wrap the array implementations.

    Attributes:
        clearance_l_per_h: elimination clearance [L/h].
        volume_l: distribution volume [L].
        ka_per_h: first-order absorption rate [1/h].
        bioavailability: absorbed oral fraction in (0, 1].
    """

    clearance_l_per_h: float
    volume_l: float
    ka_per_h: float = 1.0
    bioavailability: float = 1.0

    def __post_init__(self) -> None:
        self.params()  # delegate validation

    def params(self) -> PKParams:
        """The equivalent length-1 :class:`PKParams`."""
        return PKParams(
            clearance_l_per_h=np.array([self.clearance_l_per_h]),
            volume_l=np.array([self.volume_l]),
            ka_per_h=np.array([self.ka_per_h]),
            bioavailability=np.array([self.bioavailability]))

    @property
    def elimination_rate_per_h(self) -> float:
        """Elimination micro-rate ``ke = CL/V`` [1/h]."""
        return self.clearance_l_per_h / self.volume_l

    @property
    def half_life_h(self) -> float:
        """Terminal half-life ``ln 2 / ke`` [h]."""
        return float(np.log(2.0) / self.elimination_rate_per_h)

    def concentration(self, dt_h: np.ndarray | float, dose_mol: float,
                      route: Route = Route.ORAL,
                      duration_h: float = 0.0) -> np.ndarray | float:
        """Concentration [mol/L] at ``dt_h`` after one dose.

        Args:
            dt_h: times since administration [h], scalar or array.
            dose_mol: administered dose [mol].
            route: administration route.
            duration_h: infusion duration [h] (INFUSION route only).

        Returns:
            Concentrations shaped like ``dt_h`` (scalar in, scalar out).
        """
        response = dose_mol * self.params().unit_response(
            np.atleast_1d(np.asarray(dt_h, dtype=float)),
            route, duration_h)[0]
        if np.isscalar(dt_h):
            return float(response[0])
        return response


@dataclass(frozen=True)
class TwoCompartmentPK:
    """One patient's two-compartment model (scalar convenience wrapper).

    Attributes:
        clearance_l_per_h: elimination clearance from the central
            compartment [L/h].
        volume_central_l: central (sampled) volume V1 [L].
        intercompartmental_l_per_h: distribution clearance Q [L/h].
        volume_peripheral_l: peripheral volume V2 [L].
        ka_per_h: first-order absorption rate [1/h].
        bioavailability: absorbed oral fraction in (0, 1].
    """

    clearance_l_per_h: float
    volume_central_l: float
    intercompartmental_l_per_h: float
    volume_peripheral_l: float
    ka_per_h: float = 1.0
    bioavailability: float = 1.0

    def __post_init__(self) -> None:
        self.params()  # delegate validation

    def params(self) -> PKParams:
        """The equivalent length-1 :class:`PKParams`."""
        return PKParams(
            clearance_l_per_h=np.array([self.clearance_l_per_h]),
            volume_l=np.array([self.volume_central_l]),
            ka_per_h=np.array([self.ka_per_h]),
            bioavailability=np.array([self.bioavailability]),
            intercompartmental_l_per_h=np.array(
                [self.intercompartmental_l_per_h]),
            volume_peripheral_l=np.array([self.volume_peripheral_l]))

    @property
    def hybrid_rates_per_h(self) -> tuple[float, float]:
        """The (alpha, beta) hybrid disposition rates [1/h]."""
        alpha, beta, _, _ = _two_compartment_exponents(
            np.array([self.clearance_l_per_h]),
            np.array([self.volume_central_l]),
            np.array([self.intercompartmental_l_per_h]),
            np.array([self.volume_peripheral_l]))
        return float(alpha[0, 0]), float(beta[0, 0])

    def concentration(self, dt_h: np.ndarray | float, dose_mol: float,
                      route: Route = Route.ORAL,
                      duration_h: float = 0.0) -> np.ndarray | float:
        """Concentration [mol/L] at ``dt_h`` after one dose.

        Args:
            dt_h: times since administration [h], scalar or array.
            dose_mol: administered dose [mol].
            route: administration route.
            duration_h: infusion duration [h] (INFUSION route only).

        Returns:
            Concentrations shaped like ``dt_h`` (scalar in, scalar out).
        """
        response = dose_mol * self.params().unit_response(
            np.atleast_1d(np.asarray(dt_h, dtype=float)),
            route, duration_h)[0]
        if np.isscalar(dt_h):
            return float(response[0])
        return response
