"""Virtual patient populations: CYP phenotypes and covariates.

Personalized medicine exists because patients differ — most famously in
cytochrome-P450 metabolizer status, where the same dose of a CYP-cleared
drug produces several-fold different exposures between a *poor* and an
*ultrarapid* metabolizer.  This module samples cohorts of
:class:`VirtualPatient` records whose clearance, volume and absorption
vary by CYP phenotype and covariates (allometric body-weight scaling
plus lognormal between-subject variability), producing the
``(n_patients,)`` parameter arrays (:class:`repro.pk.models.PKParams`)
that the closed-loop therapy engine advances in one vectorized pass.

Determinism contract (mirrors :mod:`repro.engine.plan`): sampling spawns
**one child generator per patient** from the root seed
(:func:`repro.rng.spawn_generators`), each consumed in a fixed draw
order — so patient ``i`` of a seeded cohort is identical no matter how
large the cohort is or how it is later sharded.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

import numpy as np

from repro.pk.models import OneCompartmentPK, PKParams
from repro.rng import spawn_generators


class CYPPhenotype(enum.Enum):
    """CYP450 metabolizer status (the pharmacogenetic strata)."""

    POOR = "poor"
    INTERMEDIATE = "intermediate"
    EXTENSIVE = "extensive"
    ULTRARAPID = "ultrarapid"


#: Caucasian-population-like phenotype frequencies (CYP2D6-flavored;
#: override per drug/isoform through ``PopulationModel``).
DEFAULT_PHENOTYPE_FRACTIONS: Mapping[CYPPhenotype, float] = MappingProxyType({
    CYPPhenotype.POOR: 0.07,
    CYPPhenotype.INTERMEDIATE: 0.25,
    CYPPhenotype.EXTENSIVE: 0.60,
    CYPPhenotype.ULTRARAPID: 0.08,
})

#: Clearance multipliers relative to the extensive-metabolizer typical
#: value — the phenotype's whole pharmacokinetic effect in this model.
DEFAULT_CLEARANCE_MULTIPLIERS: Mapping[CYPPhenotype, float] = (
    MappingProxyType({
        CYPPhenotype.POOR: 0.35,
        CYPPhenotype.INTERMEDIATE: 0.70,
        CYPPhenotype.EXTENSIVE: 1.00,
        CYPPhenotype.ULTRARAPID: 1.90,
    }))

#: Fixed draw order per patient stream (phenotype, weight, three etas).
_DRAWS_PER_PATIENT = 5


@dataclass(frozen=True)
class VirtualPatient:
    """One sampled patient: identity, phenotype, covariates, parameters.

    Attributes:
        patient_id: cohort identity (stable under reseeding).
        phenotype: CYP metabolizer status.
        weight_kg: body weight covariate.
        clearance_l_per_h: individual elimination clearance [L/h].
        volume_l: individual central volume [L].
        ka_per_h: individual absorption rate [1/h].
        bioavailability: absorbed oral fraction in (0, 1].
    """

    patient_id: str
    phenotype: CYPPhenotype
    weight_kg: float
    clearance_l_per_h: float
    volume_l: float
    ka_per_h: float
    bioavailability: float

    def one_compartment(self) -> OneCompartmentPK:
        """The patient's scalar one-compartment model."""
        return OneCompartmentPK(
            clearance_l_per_h=self.clearance_l_per_h,
            volume_l=self.volume_l,
            ka_per_h=self.ka_per_h,
            bioavailability=self.bioavailability)


@dataclass(frozen=True)
class PatientCohort:
    """A sampled virtual-patient cohort in batch (array) form.

    Attributes:
        patients: the individual records, one per patient.
    """

    patients: tuple[VirtualPatient, ...]

    def __post_init__(self) -> None:
        if not self.patients:
            raise ValueError("cohort needs at least one patient")

    @property
    def n_patients(self) -> int:
        """Cohort size."""
        return len(self.patients)

    @property
    def phenotypes(self) -> tuple[CYPPhenotype, ...]:
        """Phenotype per patient, in cohort order."""
        return tuple(p.phenotype for p in self.patients)

    @property
    def weights_kg(self) -> np.ndarray:
        """Body weight per patient [kg], shape ``(n_patients,)``."""
        return np.array([p.weight_kg for p in self.patients])

    def params(self) -> PKParams:
        """The cohort's ``(n_patients,)`` parameter arrays."""
        return PKParams(
            clearance_l_per_h=np.array(
                [p.clearance_l_per_h for p in self.patients]),
            volume_l=np.array([p.volume_l for p in self.patients]),
            ka_per_h=np.array([p.ka_per_h for p in self.patients]),
            bioavailability=np.array(
                [p.bioavailability for p in self.patients]))

    def phenotype_mask(self, phenotype: CYPPhenotype) -> np.ndarray:
        """Boolean ``(n_patients,)`` mask selecting one phenotype."""
        return np.array([p is phenotype for p in self.phenotypes])

    def phenotype_fractions_observed(self) -> dict[CYPPhenotype, float]:
        """Observed phenotype fractions of this sample (sums to 1)."""
        n = self.n_patients
        return {phenotype: float(np.sum(self.phenotype_mask(phenotype))) / n
                for phenotype in CYPPhenotype}

    def subset(self, mask: np.ndarray) -> "PatientCohort":
        """The sub-cohort selected by a boolean mask (non-empty)."""
        selected = tuple(p for p, keep in zip(self.patients, mask) if keep)
        return PatientCohort(patients=selected)

    def summary(self) -> str:
        """One-line cohort description (size, phenotype mix, CL span)."""
        fractions = self.phenotype_fractions_observed()
        mix = ", ".join(
            f"{ph.value} {fractions[ph] * 100:.0f} %"
            for ph in CYPPhenotype if fractions[ph] > 0)
        cl = self.params().clearance_l_per_h
        return (f"{self.n_patients} virtual patients ({mix}); clearance "
                f"{float(np.min(cl)):.1f}-{float(np.max(cl)):.1f} L/h")


def _lognormal_sigma(cv: float) -> float:
    """Lognormal shape parameter matching a coefficient of variation."""
    return float(np.sqrt(np.log1p(cv * cv)))


@dataclass(frozen=True)
class PopulationModel:
    """Population PK distribution a virtual cohort is sampled from.

    The typical (extensive-metabolizer, reference-weight) parameters
    plus the variability structure: CYP phenotype strata scaling
    clearance, allometric body-weight scaling (exponent 0.75 on
    clearance, 1.0 on volume), and lognormal between-subject
    variability on clearance, volume and absorption.

    Attributes:
        typical_clearance_l_per_h: extensive-metabolizer clearance at
            the reference weight [L/h].
        typical_volume_l: central volume at the reference weight [L].
        typical_ka_per_h: absorption rate [1/h].
        bioavailability: absorbed oral fraction in (0, 1], shared.
        phenotype_fractions: population frequency per phenotype
            (must sum to 1).
        clearance_multipliers: clearance scale per phenotype.
        clearance_cv / volume_cv / ka_cv: lognormal between-subject
            coefficients of variation.
        weight_mean_kg / weight_sd_kg: body-weight distribution
            (normal, clipped to [40, 140] kg).
        weight_ref_kg: allometric reference weight [kg].
    """

    typical_clearance_l_per_h: float
    typical_volume_l: float
    typical_ka_per_h: float = 1.0
    bioavailability: float = 1.0
    phenotype_fractions: Mapping[CYPPhenotype, float] = field(
        default_factory=lambda: DEFAULT_PHENOTYPE_FRACTIONS)
    clearance_multipliers: Mapping[CYPPhenotype, float] = field(
        default_factory=lambda: DEFAULT_CLEARANCE_MULTIPLIERS)
    clearance_cv: float = 0.25
    volume_cv: float = 0.15
    ka_cv: float = 0.30
    weight_mean_kg: float = 75.0
    weight_sd_kg: float = 12.0
    weight_ref_kg: float = 70.0

    def __post_init__(self) -> None:
        if (self.typical_clearance_l_per_h <= 0
                or self.typical_volume_l <= 0
                or self.typical_ka_per_h <= 0):
            raise ValueError("typical CL, V and ka must be > 0")
        if not 0.0 < self.bioavailability <= 1.0:
            raise ValueError("bioavailability must be in (0, 1]")
        total = sum(self.phenotype_fractions.get(ph, 0.0)
                    for ph in CYPPhenotype)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(
                f"phenotype fractions must sum to 1, got {total}")
        if any(self.phenotype_fractions.get(ph, 0.0) < 0
               for ph in CYPPhenotype):
            raise ValueError("phenotype fractions must be >= 0")
        if any(self.clearance_multipliers.get(ph, 0.0) <= 0
               for ph in CYPPhenotype):
            raise ValueError("clearance multipliers must be > 0")
        if min(self.clearance_cv, self.volume_cv, self.ka_cv) < 0:
            raise ValueError("variability CVs must be >= 0")
        if self.weight_mean_kg <= 0 or self.weight_sd_kg < 0:
            raise ValueError("weight distribution must be positive")
        if self.weight_ref_kg <= 0:
            raise ValueError("reference weight must be > 0")

    def monomorphic(self, phenotype: CYPPhenotype) -> "PopulationModel":
        """This population restricted to a single phenotype.

        The cohort builder for stratified what-if runs — e.g. "how does
        fixed dosing fail a whole ward of poor metabolizers?".
        """
        from dataclasses import replace

        fractions = {ph: 0.0 for ph in CYPPhenotype}
        fractions[phenotype] = 1.0
        return replace(self, phenotype_fractions=MappingProxyType(fractions))

    def _phenotype_from_uniform(self, u: float) -> CYPPhenotype:
        """Map one uniform draw onto the phenotype strata (fixed order)."""
        edge = 0.0
        for phenotype in CYPPhenotype:
            edge += self.phenotype_fractions.get(phenotype, 0.0)
            if u < edge:
                return phenotype
        return CYPPhenotype.ULTRARAPID

    def sample(self, n_patients: int,
               seed: int | None = None) -> PatientCohort:
        """Draw a seeded virtual-patient cohort.

        Each patient owns one spawned generator consumed in a fixed
        order (phenotype stratum, weight, three lognormal etas), so
        cohorts are replayable and extension-stable: growing
        ``n_patients`` never changes the patients already drawn.

        Args:
            n_patients: cohort size, >= 1.
            seed: root seed (``None`` draws an irreproducible cohort).

        Returns:
            The sampled :class:`PatientCohort`.
        """
        if n_patients < 1:
            raise ValueError("need at least one patient")
        rngs = spawn_generators(seed, n_patients)
        sigma_cl = _lognormal_sigma(self.clearance_cv)
        sigma_v = _lognormal_sigma(self.volume_cv)
        sigma_ka = _lognormal_sigma(self.ka_cv)
        patients = []
        for i, rng in enumerate(rngs):
            phenotype = self._phenotype_from_uniform(float(rng.uniform()))
            weight = float(np.clip(
                rng.normal(self.weight_mean_kg, self.weight_sd_kg),
                40.0, 140.0))
            eta_cl = float(np.exp(rng.normal(0.0, sigma_cl)))
            eta_v = float(np.exp(rng.normal(0.0, sigma_v)))
            eta_ka = float(np.exp(rng.normal(0.0, sigma_ka)))
            allometric = weight / self.weight_ref_kg
            patients.append(VirtualPatient(
                patient_id=f"patient-{i:03d}",
                phenotype=phenotype,
                weight_kg=weight,
                clearance_l_per_h=(
                    self.typical_clearance_l_per_h
                    * self.clearance_multipliers[phenotype]
                    * allometric ** 0.75 * eta_cl),
                volume_l=self.typical_volume_l * allometric * eta_v,
                ka_per_h=self.typical_ka_per_h * eta_ka,
                bioavailability=self.bioavailability,
            ))
        return PatientCohort(patients=tuple(patients))
