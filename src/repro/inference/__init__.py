"""Analyte state estimation: currents back to concentrations, with
uncertainty.

Every engine in this library runs *forward* — concentration in, drifting
noisy current out.  The clinical loop needs the inverse: given the
current stream a worn sensor actually produced, what was the patient's
concentration, and how sure are we?  This package is that inverse layer:

* :mod:`repro.inference.observation` — builds the filter's observation
  model *from the monitor's own physics* (calibrated slope +
  :class:`~repro.core.longterm.DriftBudget` decay, baseline drift, OU
  wander, chain noise, ADC quantization floor), so estimator and
  simulator can never disagree about the model;
* :mod:`repro.inference.kalman` — a batch Kalman filter and RTS
  smoother vectorized over ``(n_channels, n_samples)`` cohort blocks,
  with a bit-identical scalar reference (gated <= 1e-9 in
  ``tests/engine/test_core_contract.py`` and >= 5x slower in
  ``benchmarks/bench_core.py``);
* :mod:`repro.inference.fusion` — redundant sensors on one analyte are
  crosstalk-unmixed through the
  :class:`~repro.instrument.multiplexer.ChannelMultiplexer` model and
  stacked precision-weighted;
* :mod:`repro.inference.evaluate` — RMSE / MARD against ground truth,
  empirical credible-interval coverage, and time-to-detection of
  therapeutic-window excursions.

The engine entry point is :func:`repro.engine.run_estimation`
(:mod:`repro.engine.estimation`), registered as the ``estimation``
scenario workload and runnable via ``python -m repro run``.

Quickstart::

    from repro.engine import MonitorPlan, glucose_cohort
    from repro.engine.estimation import EstimationPlan, run_estimation

    plan = EstimationPlan(monitor=MonitorPlan(
        channels=glucose_cohort(n_patients=8),
        duration_h=48.0, seed=42))
    result = run_estimation(plan)
    print(result.summary())   # RMSE, MARD, 95 %-interval coverage
"""

from repro.inference.evaluate import (
    credible_interval,
    detection_delay_h,
    interval_coverage,
    reconstruction_mard,
    reconstruction_rmse,
)
from repro.inference.fusion import (
    FusedObservation,
    fuse_redundant_channels,
    mux_crosstalk_apply,
    mux_crosstalk_unmix,
    precision_weighted_stack,
)
from repro.inference.kalman import (
    KalmanState,
    KalmanTrace,
    SmoothedTrace,
    kalman_filter_batch,
    kalman_filter_scalar,
    kalman_predict,
    kalman_update,
    rts_smoother_batch,
    rts_smoother_scalar,
)
from repro.inference.observation import (
    MonitorObservationModel,
    monitor_observation_model,
    observation_variance_a2,
    quantization_sigma_a,
    rail_censored_mask,
    response_linearization,
    response_slope_a_per_molar,
)

__all__ = [
    "FusedObservation",
    "KalmanState",
    "KalmanTrace",
    "MonitorObservationModel",
    "SmoothedTrace",
    "credible_interval",
    "detection_delay_h",
    "fuse_redundant_channels",
    "interval_coverage",
    "kalman_filter_batch",
    "kalman_filter_scalar",
    "kalman_predict",
    "kalman_update",
    "monitor_observation_model",
    "mux_crosstalk_apply",
    "mux_crosstalk_unmix",
    "observation_variance_a2",
    "precision_weighted_stack",
    "quantization_sigma_a",
    "rail_censored_mask",
    "reconstruction_mard",
    "reconstruction_rmse",
    "response_linearization",
    "response_slope_a_per_molar",
    "rts_smoother_batch",
    "rts_smoother_scalar",
]
