"""Redundant-channel fusion through the multiplexer model.

The paper's platform multiplexes five working electrodes through one
acquisition chain — and nothing stops a designer from pointing two or
three of them at the *same* analyte for redundancy.  This module turns
such a redundant bank into one better pseudo-measurement stream:

1. **crosstalk unmixing** — the
   :class:`~repro.instrument.multiplexer.ChannelMultiplexer` leaks a
   fraction (``off_isolation``) of every idle channel's current into
   the selected one; that mixing matrix is known, symmetric and
   rank-one-perturbed, so it inverts in closed form (Sherman-Morrison)
   and the leakage is removed exactly;
2. **precision-weighted stacking** — each unmixed channel becomes an
   unbiased concentration estimate through its own observation model
   (:mod:`repro.inference.observation`), and the stack combines them
   inverse-variance weighted: the fused variance is
   ``1 / sum(1/var_i)``, i.e. ~``var/m`` for ``m`` equal channels.

The fused stream (value + variance per sample) can feed the Kalman
filter as a single channel, or be used directly as a low-noise readout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.inference.observation import MonitorObservationModel
from repro.instrument.multiplexer import ChannelMultiplexer


def mux_crosstalk_apply(mux: ChannelMultiplexer,
                        currents_a: np.ndarray) -> np.ndarray:
    """Forward crosstalk model over a channel block (the mixing matrix).

    Vectorized counterpart of
    :meth:`~repro.instrument.multiplexer.ChannelMultiplexer.observed_current`
    for a full scan: every selected channel passes fully, every idle
    channel leaks ``off_isolation`` of its current in.

    Args:
        mux: the switch matrix.
        currents_a: true per-electrode currents [A],
            ``(n_channels, n_samples)``.

    Returns:
        Observed currents [A], same shape.
    """
    currents = np.asarray(currents_a, dtype=float)
    if currents.ndim != 2 or currents.shape[0] != mux.n_channels:
        raise ValueError(
            f"currents must be ({mux.n_channels}, n_samples), "
            f"got {currents.shape}")
    iso = mux.off_isolation
    total = np.sum(currents, axis=0, keepdims=True)
    return (1.0 - iso) * currents + iso * total


def mux_crosstalk_unmix(mux: ChannelMultiplexer,
                        observed_a: np.ndarray) -> np.ndarray:
    """Invert the multiplexer's crosstalk mixing exactly.

    The mixing matrix is ``(1 - iso) I + iso J`` (``J`` all-ones), whose
    Sherman-Morrison inverse needs only the per-sample column sum — so
    unmixing a whole scan block is two array passes, no linear solves.

    Args:
        mux: the switch matrix that produced the observations.
        observed_a: observed currents [A], ``(n_channels, n_samples)``.

    Returns:
        The de-crosstalked per-electrode currents [A], same shape
        (exact up to floating point: ``unmix(apply(x)) == x``).
    """
    observed = np.asarray(observed_a, dtype=float)
    if observed.ndim != 2 or observed.shape[0] != mux.n_channels:
        raise ValueError(
            f"observations must be ({mux.n_channels}, n_samples), "
            f"got {observed.shape}")
    iso = mux.off_isolation
    diag = 1.0 - iso
    denominator = diag + mux.n_channels * iso
    total = np.sum(observed, axis=0, keepdims=True)
    return (observed - (iso / denominator) * total) / diag


def precision_weighted_stack(values: np.ndarray,
                             variances: np.ndarray
                             ) -> tuple[np.ndarray, np.ndarray]:
    """Inverse-variance combination of redundant estimates.

    Args:
        values: per-channel estimates, ``(n_channels, n_samples)``.
        variances: their variances, same shape or ``(n_channels,)``
            (broadcast along samples); all > 0.

    Returns:
        ``(fused, fused_variance)`` arrays of shape ``(n_samples,)`` —
        the minimum-variance unbiased combination.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise ValueError("values must be (n_channels, n_samples)")
    variances = np.asarray(variances, dtype=float)
    if variances.ndim == 1:
        variances = variances[:, None]
    variances = np.broadcast_to(variances, values.shape)
    if np.any(variances <= 0):
        raise ValueError("variances must be > 0")
    weights = 1.0 / variances
    total = np.sum(weights, axis=0)
    return np.sum(weights * values, axis=0) / total, 1.0 / total


@dataclass(frozen=True)
class FusedObservation:
    """One pseudo-measurement stream fused from a redundant bank.

    Attributes:
        concentration_molar: fused concentration estimates [mol/L],
            ``(n_samples,)``.
        variance_molar2: their variances [mol^2/L^2], ``(n_samples,)``.
    """

    concentration_molar: np.ndarray
    variance_molar2: np.ndarray


def fuse_redundant_channels(measured_current_a: np.ndarray,
                            model: MonitorObservationModel,
                            mux: ChannelMultiplexer | None = None
                            ) -> FusedObservation:
    """Fuse a redundant sensor bank into one concentration stream.

    Every channel of ``model`` is assumed to watch the *same* analyte
    stream (redundant electrodes on one patient).  Per channel the
    measured current is inverted through its own observation model into
    an unbiased concentration estimate with a known variance — the
    measurement noise plus the wander's stationary variance, both
    referred through the local gain — and the bank is then stacked
    inverse-variance weighted.  Treating the wander as stationary white
    noise is conservative (it is correlated), which keeps the fused
    variance honest rather than optimistic.

    Args:
        measured_current_a: the bank's readings [A],
            ``(n_channels, n_samples)``.
        model: the bank's observation model
            (:func:`~repro.inference.observation.monitor_observation_model`).
        mux: when the bank shares one chain through a multiplexer, its
            crosstalk is unmixed first (requires
            ``mux.n_channels == model.n_channels``).

    Returns:
        The :class:`FusedObservation` stream.
    """
    measured = np.asarray(measured_current_a, dtype=float)
    if measured.shape != model.mean_molar.shape:
        raise ValueError(
            f"measured block {measured.shape} does not match the model "
            f"{model.mean_molar.shape}")
    if mux is not None:
        measured = mux_crosstalk_unmix(mux, measured)
    gain = model.gain_a_per_molar
    if np.any(gain <= 0):
        raise ValueError("observation gains must be > 0 to invert")
    estimates = model.mean_molar + (measured - model.offset_a) / gain
    noise_a2 = (model.measurement_variance_a2
                + model.wander_stationary_variance_a2())[:, None]
    variances = noise_a2 / gain ** 2
    fused, fused_var = precision_weighted_stack(estimates, variances)
    return FusedObservation(concentration_molar=fused,
                            variance_molar2=fused_var)
