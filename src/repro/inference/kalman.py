"""Batch Kalman filter and RTS smoother for sensor-current streams.

The estimation core of :mod:`repro.inference`: a two-state
linear-Gaussian model per channel, vectorized across the cohort.  State
``x_k = [d_k, w_k]`` carries the *signal deviation* (the concentration's
departure from its deterministic trajectory, or the concentration itself
for random-walk dynamics) and the *baseline wander* (the slow additive
current drift of the reference electrode):

.. code-block:: text

    d_k = a_d d_{k-1} + eps_k,   eps_k ~ N(0, q_d)
    w_k = a_w w_{k-1} + eta_k,   eta_k ~ N(0, q_w)
    z_k = offset_k + gain_k d_k + w_k + v_k,   v_k ~ N(0, r_k)

which is exactly the structure the streaming engines *generate*: OU
physiological noise and OU wander (:func:`repro.signal.drift.ou_process_batch`
uses the same ``a = exp(-dt/tau)`` recursion), a time-varying observation
gain (calibrated slope decayed by the :class:`~repro.core.longterm.DriftBudget`),
a known deterministic offset (faradaic response at the trajectory mean
plus baseline drift) and white measurement noise (chain noise floor plus
the ADC quantization floor).  :mod:`repro.inference.observation` builds
these arrays straight from a :class:`~repro.engine.monitor.MonitorPlan`,
so the filter is consistent-by-construction with the simulator.

Execution model mirrors the engines: the recursion is inherently causal,
so the batch path advances all channels one sample at a time as
``(n_channels,)`` array operations — one NumPy pass per sample instead
of one Python iteration per (channel, sample) pair.  The scalar
reference (:func:`kalman_filter_scalar` / :func:`rts_smoother_scalar`)
replays the identical arithmetic with Python floats, channel by channel,
and is gated bit-identical (<= 1e-9) by the execution-core contract
suite (``tests/engine/test_core_contract.py``) with a >= 5x speedup
floor in ``benchmarks/bench_core.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class KalmanState:
    """Gaussian belief over the two-state model, one entry per channel.

    Attributes:
        m1 / m2: posterior means of signal deviation and wander,
            shape ``(n_channels,)``.
        p11 / p12 / p22: the symmetric 2x2 posterior covariance entries,
            shape ``(n_channels,)``.
    """

    m1: np.ndarray
    m2: np.ndarray
    p11: np.ndarray
    p12: np.ndarray
    p22: np.ndarray

    @classmethod
    def zeros(cls, n_channels: int) -> "KalmanState":
        """The exactly-known initial state of the streaming engines.

        Both OU processes start from state 0 with zero uncertainty
        (the simulators initialize ``trajectory_state = wander_state =
        0``), so the filter's prior is a point mass at the origin —
        uncertainty enters only through the process noise.
        """
        if n_channels < 1:
            raise ValueError("need at least one channel")
        return cls(*(np.zeros(n_channels) for _ in range(5)))

    def copy(self) -> "KalmanState":
        """An independent copy (the recursions never mutate inputs)."""
        return KalmanState(self.m1.copy(), self.m2.copy(),
                           self.p11.copy(), self.p12.copy(),
                           self.p22.copy())

    @classmethod
    def from_trace(cls, trace: "KalmanTrace",
                   index: int = -1) -> "KalmanState":
        """The filtered belief at one sample of a trace.

        The chunk-carry constructor: feeding the state at a chunk's
        last sample back into :func:`kalman_filter_batch` as
        ``initial`` continues the recursion bit-identically to one
        uninterrupted pass — the property incremental serving
        (:mod:`repro.serve`) is built on.

        Args:
            trace: a forward-pass :class:`KalmanTrace`.
            index: sample index to extract (default: the last).
        """
        return cls(trace.m1[:, index].copy(), trace.m2[:, index].copy(),
                   trace.p11[:, index].copy(),
                   trace.p12[:, index].copy(),
                   trace.p22[:, index].copy())


def kalman_predict(state: KalmanState,
                   a_signal: "np.ndarray | float",
                   q_signal: "np.ndarray | float",
                   a_wander: "np.ndarray | float",
                   q_wander: "np.ndarray | float") -> KalmanState:
    """One time-update through the diagonal transition ``diag(a_d, a_w)``.

    Args:
        state: posterior after the previous sample.
        a_signal / a_wander: per-channel AR(1) coefficients
            (``exp(-dt/tau)`` for OU dynamics, ``1.0`` for a random
            walk); scalars broadcast.
        q_signal / q_wander: per-step innovation variances; scalars
            broadcast.

    Returns:
        The predicted (prior) state for the next sample.
    """
    return KalmanState(
        m1=a_signal * state.m1,
        m2=a_wander * state.m2,
        p11=a_signal * a_signal * state.p11 + q_signal,
        p12=a_signal * a_wander * state.p12,
        p22=a_wander * a_wander * state.p22 + q_wander,
    )


def kalman_update(state: KalmanState,
                  z: np.ndarray,
                  gain: "np.ndarray | float",
                  offset: "np.ndarray | float",
                  r: "np.ndarray | float") -> KalmanState:
    """One measurement update with observation row ``[gain, 1]``.

    The measurement model is ``z = offset + gain * d + w + v`` with
    ``v ~ N(0, r)``.  Channels whose innovation variance is not positive
    (a fully deterministic, noise-free configuration) keep their
    predicted state instead of dividing by zero.

    Args:
        state: the *predicted* state for this sample
            (:func:`kalman_predict` output).
        z: measured currents [A], ``(n_channels,)``.
        gain: observation gains [A per unit signal]; scalars broadcast.
        offset: known deterministic observation offsets [A].
        r: measurement noise variances [A^2]; scalars broadcast.

    Returns:
        The filtered (posterior) state at this sample.
    """
    z = np.asarray(z, dtype=float)
    u1 = gain * state.p11 + state.p12          # (P H^T) row 1
    u2 = gain * state.p12 + state.p22          # (P H^T) row 2
    s = gain * u1 + u2 + r                     # innovation variance
    s = np.broadcast_to(np.asarray(s, dtype=float), z.shape)
    residual = z - (offset + gain * state.m1 + state.m2)
    k1 = np.zeros_like(z)
    k2 = np.zeros_like(z)
    positive = s > 0
    np.divide(np.broadcast_to(u1, z.shape), s, out=k1, where=positive)
    np.divide(np.broadcast_to(u2, z.shape), s, out=k2, where=positive)
    return KalmanState(
        m1=state.m1 + k1 * residual,
        m2=state.m2 + k2 * residual,
        p11=state.p11 - k1 * u1,
        p12=state.p12 - k1 * u2,
        p22=state.p22 - k2 * u2,
    )


@dataclass
class KalmanTrace:
    """Per-sample filter output: filtered and predicted moments.

    All arrays are ``(n_channels, n_samples)``.  The predicted moments
    (``pm* / pp*``) are what the RTS smoother consumes on its backward
    pass, so the forward pass stores both.

    Attributes:
        m1 / m2: filtered posterior means.
        p11 / p12 / p22: filtered posterior covariances.
        pm1 / pm2: one-step-ahead predicted means.
        pp11 / pp12 / pp22: one-step-ahead predicted covariances.
    """

    m1: np.ndarray
    m2: np.ndarray
    p11: np.ndarray
    p12: np.ndarray
    p22: np.ndarray
    pm1: np.ndarray
    pm2: np.ndarray
    pp11: np.ndarray
    pp12: np.ndarray
    pp22: np.ndarray

    @property
    def n_channels(self) -> int:
        """Cohort size of the trace."""
        return self.m1.shape[0]

    @property
    def n_samples(self) -> int:
        """Samples per channel in the trace."""
        return self.m1.shape[1]


@dataclass
class SmoothedTrace:
    """RTS-smoothed per-sample moments, ``(n_channels, n_samples)``.

    Attributes:
        m1 / m2: smoothed posterior means (signal deviation, wander).
        p11 / p12 / p22: smoothed posterior covariances.
    """

    m1: np.ndarray
    m2: np.ndarray
    p11: np.ndarray
    p12: np.ndarray
    p22: np.ndarray


def _prepare(z, gain, offset, r, a_signal, q_signal, a_wander, q_wander):
    """Validate and broadcast every filter input to its canonical shape."""
    z = np.asarray(z, dtype=float)
    if z.ndim != 2:
        raise ValueError("measurements must be (n_channels, n_samples)")
    n, t = z.shape
    if t < 1:
        raise ValueError("need at least one sample")
    gain = np.broadcast_to(np.asarray(gain, dtype=float), (n, t))
    offset = np.broadcast_to(np.asarray(offset, dtype=float), (n, t))
    r = np.asarray(r, dtype=float)
    if r.ndim <= 1:
        r = np.broadcast_to(r, (n,))[:, None]
    r = np.broadcast_to(r, (n, t))
    if np.any(r < 0):
        raise ValueError("measurement variance must be >= 0")
    params = []
    for name, p in (("a_signal", a_signal), ("q_signal", q_signal),
                    ("a_wander", a_wander), ("q_wander", q_wander)):
        p = np.broadcast_to(np.asarray(p, dtype=float), (n,))
        if name.startswith("q") and np.any(p < 0):
            raise ValueError(f"{name} must be >= 0")
        params.append(p)
    return z, gain, offset, r, *params


def kalman_filter_batch(z: np.ndarray,
                        gain: np.ndarray,
                        offset: np.ndarray,
                        r: "np.ndarray | float",
                        a_signal: "np.ndarray | float",
                        q_signal: "np.ndarray | float",
                        a_wander: "np.ndarray | float",
                        q_wander: "np.ndarray | float",
                        initial: KalmanState | None = None) -> KalmanTrace:
    """Run the filter over a whole cohort block, vectorized by channel.

    Args:
        z: measured currents [A], ``(n_channels, n_samples)``.
        gain / offset: time-varying observation model, broadcastable to
            ``z``'s shape.
        r: measurement noise variance [A^2] — scalar, ``(n_channels,)``
            or ``(n_channels, n_samples)``.
        a_signal / q_signal / a_wander / q_wander: per-channel dynamics
            (scalars broadcast).
        initial: belief entering the first sample; defaults to the
            engines' exactly-known zero state
            (:meth:`KalmanState.zeros`).

    Returns:
        The full :class:`KalmanTrace` (filtered + predicted moments).
    """
    z, gain, offset, r, a_s, q_s, a_w, q_w = _prepare(
        z, gain, offset, r, a_signal, q_signal, a_wander, q_wander)
    n, t = z.shape
    state = initial.copy() if initial is not None else KalmanState.zeros(n)
    trace = KalmanTrace(*(np.empty((n, t)) for _ in range(10)))
    # The hot loop inlines kalman_predict / kalman_update on reused
    # buffers — same arithmetic, no per-sample object churn.  The
    # composite transition factors are formed once (a * a is a single
    # deterministic product, so precomputing it changes nothing).
    m1, m2 = state.m1.copy(), state.m2.copy()
    p11, p12, p22 = state.p11.copy(), state.p12.copy(), state.p22.copy()
    aa_s = a_s * a_s
    aa_w = a_w * a_w
    a_sw = a_s * a_w
    with np.errstate(divide="ignore", invalid="ignore"):
        for k in range(t):
            # Predict.
            m1 *= a_s
            m2 *= a_w
            p11 *= aa_s
            p11 += q_s
            p12 *= a_sw
            p22 *= aa_w
            p22 += q_w
            trace.pm1[:, k] = m1
            trace.pm2[:, k] = m2
            trace.pp11[:, k] = p11
            trace.pp12[:, k] = p12
            trace.pp22[:, k] = p22
            # Update.
            g = gain[:, k]
            u1 = g * p11 + p12
            u2 = g * p12 + p22
            s = g * u1 + u2 + r[:, k]
            positive = s > 0
            k1 = np.where(positive, u1 / s, 0.0)
            k2 = np.where(positive, u2 / s, 0.0)
            residual = z[:, k] - (offset[:, k] + g * m1 + m2)
            m1 += k1 * residual
            m2 += k2 * residual
            p11 -= k1 * u1
            p12 -= k1 * u2
            p22 -= k2 * u2
            trace.m1[:, k] = m1
            trace.m2[:, k] = m2
            trace.p11[:, k] = p11
            trace.p12[:, k] = p12
            trace.p22[:, k] = p22
    return trace


def kalman_filter_scalar(z: np.ndarray,
                         gain: np.ndarray,
                         offset: np.ndarray,
                         r: "np.ndarray | float",
                         a_signal: "np.ndarray | float",
                         q_signal: "np.ndarray | float",
                         a_wander: "np.ndarray | float",
                         q_wander: "np.ndarray | float",
                         initial: KalmanState | None = None) -> KalmanTrace:
    """Per-channel scalar reference: one (channel, sample) at a time.

    The historical shape of an online estimator — a Python loop over
    every channel and sample through plain float arithmetic, applying
    exactly the formulas of :func:`kalman_predict` /
    :func:`kalman_update`.  Agrees with :func:`kalman_filter_batch` to
    floating-point reassociation (<= 1e-9, gated with the >= 5x speedup
    floor in ``benchmarks/bench_core.py``) — which is exactly why
    the vectorized path exists.
    """
    z, gain, offset, r, a_s, q_s, a_w, q_w = _prepare(
        z, gain, offset, r, a_signal, q_signal, a_wander, q_wander)
    n, t = z.shape
    trace = KalmanTrace(*(np.empty((n, t)) for _ in range(10)))
    for i in range(n):
        if initial is None:
            m1 = m2 = p11 = p12 = p22 = 0.0
        else:
            m1 = float(initial.m1[i])
            m2 = float(initial.m2[i])
            p11 = float(initial.p11[i])
            p12 = float(initial.p12[i])
            p22 = float(initial.p22[i])
        ai, qi = float(a_s[i]), float(q_s[i])
        aw, qw = float(a_w[i]), float(q_w[i])
        for k in range(t):
            # Predict.
            m1 = ai * m1
            m2 = aw * m2
            p11 = ai * ai * p11 + qi
            p12 = ai * aw * p12
            p22 = aw * aw * p22 + qw
            trace.pm1[i, k] = m1
            trace.pm2[i, k] = m2
            trace.pp11[i, k] = p11
            trace.pp12[i, k] = p12
            trace.pp22[i, k] = p22
            # Update.
            h = float(gain[i, k])
            u1 = h * p11 + p12
            u2 = h * p12 + p22
            s = h * u1 + u2 + float(r[i, k])
            if s > 0:
                k1 = u1 / s
                k2 = u2 / s
            else:
                k1 = k2 = 0.0
            residual = float(z[i, k]) - (float(offset[i, k]) + h * m1 + m2)
            m1 = m1 + k1 * residual
            m2 = m2 + k2 * residual
            p11 = p11 - k1 * u1
            p12 = p12 - k1 * u2
            p22 = p22 - k2 * u2
            trace.m1[i, k] = m1
            trace.m2[i, k] = m2
            trace.p11[i, k] = p11
            trace.p12[i, k] = p12
            trace.p22[i, k] = p22
    return trace


def _inverse_2x2(p11: np.ndarray, p12: np.ndarray, p22: np.ndarray):
    """Symmetric 2x2 inverses with a diagonal fallback for singular covs.

    A channel whose wander (or signal) process carries no noise keeps a
    rank-deficient predicted covariance; the smoother then falls back to
    inverting the positive diagonal blocks alone (the exact limit of the
    full inverse as the dead block's variance goes to zero).
    """
    det = p11 * p22 - p12 * p12
    ok = det > 0
    with np.errstate(divide="ignore", invalid="ignore"):
        fallback1 = np.where(p11 > 0, 1.0 / p11, 0.0)
        fallback2 = np.where(p22 > 0, 1.0 / p22, 0.0)
        i11 = np.where(ok, p22 / det, fallback1)
        i12 = np.where(ok, -p12 / det, 0.0)
        i22 = np.where(ok, p11 / det, fallback2)
    return i11, i12, i22


def rts_smoother_batch(trace: KalmanTrace,
                       a_signal: "np.ndarray | float",
                       a_wander: "np.ndarray | float") -> SmoothedTrace:
    """Rauch-Tung-Striebel backward pass, vectorized by channel.

    Conditions every sample's belief on the *whole* record (the offline
    reconstruction the monitoring workload wants after a wear period),
    shrinking the posterior variance relative to the causal filter.

    Args:
        trace: forward-pass output of :func:`kalman_filter_batch`.
        a_signal / a_wander: the same transition coefficients the filter
            ran with (scalars broadcast).

    Returns:
        The :class:`SmoothedTrace` of smoothed moments.
    """
    n, t = trace.m1.shape
    a_s = np.broadcast_to(np.asarray(a_signal, dtype=float), (n,))
    a_w = np.broadcast_to(np.asarray(a_wander, dtype=float), (n,))
    out = SmoothedTrace(*(np.empty((n, t)) for _ in range(5)))
    out.m1[:, -1] = trace.m1[:, -1]
    out.m2[:, -1] = trace.m2[:, -1]
    out.p11[:, -1] = trace.p11[:, -1]
    out.p12[:, -1] = trace.p12[:, -1]
    out.p22[:, -1] = trace.p22[:, -1]
    for k in range(t - 2, -1, -1):
        i11, i12, i22 = _inverse_2x2(
            trace.pp11[:, k + 1], trace.pp12[:, k + 1],
            trace.pp22[:, k + 1])
        # G = P_f A^T P_pred^{-1} with A = diag(a_s, a_w).
        f11 = trace.p11[:, k] * a_s
        f12 = trace.p12[:, k] * a_w
        f21 = trace.p12[:, k] * a_s
        f22 = trace.p22[:, k] * a_w
        g11 = f11 * i11 + f12 * i12
        g12 = f11 * i12 + f12 * i22
        g21 = f21 * i11 + f22 * i12
        g22 = f21 * i12 + f22 * i22
        dm1 = out.m1[:, k + 1] - trace.pm1[:, k + 1]
        dm2 = out.m2[:, k + 1] - trace.pm2[:, k + 1]
        out.m1[:, k] = trace.m1[:, k] + g11 * dm1 + g12 * dm2
        out.m2[:, k] = trace.m2[:, k] + g21 * dm1 + g22 * dm2
        d11 = out.p11[:, k + 1] - trace.pp11[:, k + 1]
        d12 = out.p12[:, k + 1] - trace.pp12[:, k + 1]
        d22 = out.p22[:, k + 1] - trace.pp22[:, k + 1]
        out.p11[:, k] = (trace.p11[:, k] + g11 * g11 * d11
                         + 2.0 * g11 * g12 * d12 + g12 * g12 * d22)
        out.p12[:, k] = (trace.p12[:, k] + g11 * g21 * d11
                         + (g11 * g22 + g12 * g21) * d12
                         + g12 * g22 * d22)
        out.p22[:, k] = (trace.p22[:, k] + g21 * g21 * d11
                         + 2.0 * g21 * g22 * d12 + g22 * g22 * d22)
    return out


def rts_smoother_scalar(trace: KalmanTrace,
                        a_signal: "np.ndarray | float",
                        a_wander: "np.ndarray | float") -> SmoothedTrace:
    """Per-channel scalar reference of the RTS backward pass.

    Same float-by-float arithmetic discipline as
    :func:`kalman_filter_scalar`; agrees with :func:`rts_smoother_batch`
    to <= 1e-9 (gated in ``benchmarks/bench_core.py``).
    """
    n, t = trace.m1.shape
    a_s = np.broadcast_to(np.asarray(a_signal, dtype=float), (n,))
    a_w = np.broadcast_to(np.asarray(a_wander, dtype=float), (n,))
    out = SmoothedTrace(*(np.empty((n, t)) for _ in range(5)))
    for i in range(n):
        ai, aw = float(a_s[i]), float(a_w[i])
        m1 = float(trace.m1[i, -1])
        m2 = float(trace.m2[i, -1])
        p11 = float(trace.p11[i, -1])
        p12 = float(trace.p12[i, -1])
        p22 = float(trace.p22[i, -1])
        out.m1[i, -1], out.m2[i, -1] = m1, m2
        out.p11[i, -1], out.p12[i, -1], out.p22[i, -1] = p11, p12, p22
        for k in range(t - 2, -1, -1):
            pp11 = float(trace.pp11[i, k + 1])
            pp12 = float(trace.pp12[i, k + 1])
            pp22 = float(trace.pp22[i, k + 1])
            det = pp11 * pp22 - pp12 * pp12
            if det > 0:
                i11 = pp22 / det
                i12 = -pp12 / det
                i22 = pp11 / det
            else:
                i11 = 1.0 / pp11 if pp11 > 0 else 0.0
                i12 = 0.0
                i22 = 1.0 / pp22 if pp22 > 0 else 0.0
            f11 = float(trace.p11[i, k]) * ai
            f12 = float(trace.p12[i, k]) * aw
            f21 = float(trace.p12[i, k]) * ai
            f22 = float(trace.p22[i, k]) * aw
            g11 = f11 * i11 + f12 * i12
            g12 = f11 * i12 + f12 * i22
            g21 = f21 * i11 + f22 * i12
            g22 = f21 * i12 + f22 * i22
            dm1 = m1 - float(trace.pm1[i, k + 1])
            dm2 = m2 - float(trace.pm2[i, k + 1])
            d11 = p11 - pp11
            d12 = p12 - pp12
            d22 = p22 - pp22
            m1 = float(trace.m1[i, k]) + g11 * dm1 + g12 * dm2
            m2 = float(trace.m2[i, k]) + g21 * dm1 + g22 * dm2
            p11 = (float(trace.p11[i, k]) + g11 * g11 * d11
                   + 2.0 * g11 * g12 * d12 + g12 * g12 * d22)
            p12 = (float(trace.p12[i, k]) + g11 * g21 * d11
                   + (g11 * g22 + g12 * g21) * d12 + g12 * g22 * d22)
            p22 = (float(trace.p22[i, k]) + g21 * g21 * d11
                   + 2.0 * g21 * g22 * d12 + g22 * g22 * d22)
            out.m1[i, k], out.m2[i, k] = m1, m2
            out.p11[i, k], out.p12[i, k], out.p22[i, k] = p11, p12, p22
    return out
