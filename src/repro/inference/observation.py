"""Observation-model builder: the monitor's own physics, inverted.

The filter in :mod:`repro.inference.kalman` is only as trustworthy as
its model of how currents arise — so this module does not invent one.
It *re-reads* the exact quantities the streaming monitor composes on its
forward pass (:mod:`repro.engine.monitor`):

* the day-0 calibrated response and its local slope, decayed by the
  channel's :class:`~repro.core.longterm.DriftBudget` retention;
* the deterministic baseline (stationary background plus the matrix's
  linear fouling drift);
* the OU parameters of the physiological noise and the baseline wander
  (``a = exp(-dt/tau)``, per-step innovation variance
  ``sigma^2 (1 - a^2)`` — the exact recursion of
  :func:`repro.signal.drift.ou_process_batch`);
* the per-reading measurement noise
  (:func:`repro.engine.monitor.reading_noise_sigma_a`) combined with
  the SAR-ADC quantization floor referred back to input.

Because every array here is derived from the same plan the simulator
ran, the filter is *consistent by construction*: its innovation
statistics match the data-generating process, which is what makes the
95 % credible intervals actually cover ~95 % of the truth (gated within
[0.90, 0.99] in ``benchmarks/bench_inference.py``).

The sensor response is generally nonlinear (Michaelis-Menten
saturation), so the observation gain is the response's local slope at
the trajectory mean — a linearization that stays accurate because the
stochastic deviations the filter tracks are small against the mean.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import Sequence

from repro.core.sensor import Biosensor
from repro.engine.monitor import MonitorPlan, reading_noise_sigma_a


def quantization_sigma_a(sensor: Biosensor) -> float:
    """The ADC quantization floor referred to input current [A].

    ``LSB / sqrt(12)`` in volts, divided by the TIA transimpedance —
    the irreducible per-reading noise even a noiseless channel carries
    through :func:`repro.engine.monitor.digitize_rows`.
    """
    chain = sensor.chain
    return float(chain.adc.lsb_v / np.sqrt(12.0) / chain.tia.gain_v_per_a)


def observation_variance_a2(sensor: Biosensor,
                            add_noise: bool = True) -> float:
    """Per-reading measurement-noise variance of a deployed sensor [A^2].

    The chain noise floor + repeatability sigma both streaming engines
    inject (:func:`~repro.engine.monitor.reading_noise_sigma_a`),
    combined with the quantization floor.  With ``add_noise`` off only
    quantization remains — matching a noise-free simulator run.
    """
    quant = quantization_sigma_a(sensor)
    if not add_noise:
        return quant ** 2
    return float(reading_noise_sigma_a(sensor) ** 2 + quant ** 2)


def rail_censored_mask(sensors: "Sequence[Biosensor]",
                       measured_current_a: np.ndarray) -> np.ndarray:
    """Flag readings pinned at a TIA rail (censored, not measured).

    :func:`repro.engine.monitor.digitize_rows` clips the TIA output at
    ``+-rail_v`` before quantization, so a reading within 1.5 LSB of the
    rail-referred current is indistinguishable from *any* larger true
    current — it carries no usable amplitude information.  The filter
    treats such samples as missing (infinite measurement variance):
    skipping a censored reading is unbiased, while inverting it as if it
    were real injects the rail as a fake measurement.

    Args:
        sensors: one deployed sensor per row (the cohort's chains).
        measured_current_a: digitized readings [A],
            ``(n_rows, n_samples)``.

    Returns:
        Boolean mask, same shape — ``True`` where the reading is
        rail-censored.
    """
    measured = np.asarray(measured_current_a, dtype=float)
    if measured.ndim != 2 or measured.shape[0] != len(sensors):
        raise ValueError(
            f"measured block must be ({len(sensors)}, n_samples), "
            f"got {measured.shape}")
    mask = np.empty(measured.shape, dtype=bool)
    for i, sensor in enumerate(sensors):
        chain = sensor.chain
        rail_i = chain.tia.rail_v / chain.tia.gain_v_per_a
        guard = 1.5 * chain.adc.lsb_v / chain.tia.gain_v_per_a
        mask[i] = np.abs(measured[i]) >= rail_i - guard
    return mask


def response_linearization(sensor: Biosensor,
                           concentration_molar: np.ndarray
                           ) -> tuple[np.ndarray, np.ndarray]:
    """Faradaic response and its local slope at the given points.

    The single definition of the linearization every consumer shares
    (the monitor observation model and the therapy trough filter): a
    one-sided finite difference of ``layer.steady_state_current`` with
    a relative step, evaluated at non-negative concentrations only
    (layers reject negative inputs).  Using the layer's *actual*
    response — not its linear-regime sensitivity — keeps the filters
    consistent with whatever saturation the deployed chemistry has.

    Args:
        sensor: the deployed biosensor.
        concentration_molar: linearization points [mol/L], any shape,
            all >= 0.

    Returns:
        ``(response, slope)``: currents [A] and local slopes [A/M],
        both shaped like the input.
    """
    c = np.asarray(concentration_molar, dtype=float)
    if np.any(c < 0):
        raise ValueError("linearization points must be >= 0")
    h = np.maximum(1e-6 * c, 1e-12)
    base = np.asarray(
        sensor.layer.steady_state_current(c, sensor.area_m2), dtype=float)
    bumped = np.asarray(
        sensor.layer.steady_state_current(c + h, sensor.area_m2),
        dtype=float)
    return base, (bumped - base) / h


def response_slope_a_per_molar(sensor: Biosensor,
                               concentration_molar: np.ndarray
                               ) -> np.ndarray:
    """Local slope of the sensor's faradaic response [A/M].

    Thin wrapper over :func:`response_linearization` for callers that
    only need the slope.
    """
    return response_linearization(sensor, concentration_molar)[1]


@dataclass(frozen=True)
class MonitorObservationModel:
    """Everything the filter needs, gathered from one monitor plan.

    All per-sample arrays are ``(n_channels, n_samples)``; per-channel
    arrays are ``(n_channels,)``.

    Attributes:
        time_h: absolute sample times [h], ``(n_samples,)``.
        mean_molar: each channel's deterministic trajectory mean
            [mol/L] — the linearization anchor.
        gain_a_per_molar: time-varying observation gain: local response
            slope at the mean, decayed by the modeled retention.
        offset_a: known deterministic current at the mean [A]: decayed
            faradaic response plus background plus linear baseline
            drift.
        measurement_variance_a2: per-reading noise variance [A^2]
            (chain floor + repeatability + quantization).
        a_signal / q_signal: AR(1) coefficient and per-step innovation
            variance of the physiological OU noise [mol/L units].
        a_wander / q_wander: same for the baseline-wander OU [A units].
        floor_molar: each trajectory's physical lower clamp [mol/L].
    """

    time_h: np.ndarray
    mean_molar: np.ndarray
    gain_a_per_molar: np.ndarray
    offset_a: np.ndarray
    measurement_variance_a2: np.ndarray
    a_signal: np.ndarray
    q_signal: np.ndarray
    a_wander: np.ndarray
    q_wander: np.ndarray
    floor_molar: np.ndarray

    @property
    def n_channels(self) -> int:
        """Cohort size of the model."""
        return self.mean_molar.shape[0]

    @property
    def n_samples(self) -> int:
        """Samples per channel covered by the model."""
        return self.mean_molar.shape[1]

    def wander_stationary_variance_a2(self) -> np.ndarray:
        """Stationary variance of each channel's wander process [A^2].

        ``q_w / (1 - a_w^2)`` — what the per-step innovation integrates
        to at equilibrium; the conservative white-noise stand-in
        :mod:`repro.inference.fusion` uses when stacking channels.
        """
        spread = 1.0 - self.a_wander ** 2
        out = np.zeros_like(self.q_wander)
        np.divide(self.q_wander, spread, out=out, where=spread > 0)
        return out


def monitor_observation_model(plan: MonitorPlan) -> MonitorObservationModel:
    """Build the filter's observation model from a monitor plan.

    Reuses the plan's own physics term by term — trajectory means,
    :class:`~repro.core.longterm.DriftBudget` decay rates, OU noise and
    wander parameters, chain noise, quantization — so a filter driven by
    this model is consistent-by-construction with what
    :func:`repro.engine.monitor.run_monitor` simulated.

    Args:
        plan: the wear simulation whose currents will be inverted.

    Returns:
        The assembled :class:`MonitorObservationModel`.
    """
    n, t = plan.n_channels, plan.n_samples
    time_h = plan.sample_times_h(0, t)
    dt_s = plan.sample_period_s
    mean = np.empty((n, t))
    gain = np.empty((n, t))
    offset = np.empty((n, t))
    r = np.empty(n)
    a_signal = np.empty(n)
    q_signal = np.empty(n)
    a_wander = np.empty(n)
    q_wander = np.empty(n)
    floor = np.empty(n)
    for i, channel in enumerate(plan.channels):
        sensor = channel.sensor
        mean[i] = np.asarray(channel.trajectory.mean_molar(time_h),
                             dtype=float)
        retention = np.exp(-channel.budget.decay_rate_per_hour * time_h)
        response, slope = response_linearization(sensor, mean[i])
        gain[i] = retention * slope
        baseline = (sensor.background_current_a
                    + channel.budget.matrix.baseline_drift_a_per_hour_per_m2
                    * sensor.area_m2 * time_h)
        offset[i] = retention * response + baseline
        r[i] = observation_variance_a2(sensor, add_noise=plan.add_noise)
        a_c = np.exp(-dt_s / (channel.trajectory.noise_tau_h * 3600.0))
        a_w = np.exp(-dt_s / (channel.wander_tau_h * 3600.0))
        a_signal[i] = a_c
        a_wander[i] = a_w
        if plan.add_noise:
            q_signal[i] = (channel.trajectory.noise_sigma_molar ** 2
                           * (1.0 - a_c ** 2))
            q_wander[i] = channel.wander_sigma_a ** 2 * (1.0 - a_w ** 2)
        else:
            q_signal[i] = 0.0
            q_wander[i] = 0.0
        floor[i] = channel.trajectory.floor_molar
    return MonitorObservationModel(
        time_h=time_h,
        mean_molar=mean,
        gain_a_per_molar=gain,
        offset_a=offset,
        measurement_variance_a2=r,
        a_signal=a_signal,
        q_signal=q_signal,
        a_wander=a_wander,
        q_wander=q_wander,
        floor_molar=floor,
    )
