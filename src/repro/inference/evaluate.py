"""Reconstruction scoring: error, calibration, and detection latency.

Three questions decide whether a reconstructed concentration trajectory
is clinically usable, and this module answers each one per channel:

* **accuracy** — RMSE and MARD of the reconstruction against the
  simulator's ground truth;
* **calibration** — does the stated 95 % credible interval actually
  contain the truth ~95 % of the time?  (Empirical coverage is the
  acceptance gate of the whole inference subsystem: a filter whose
  intervals are wrong is worse than no filter, because it is
  *confidently* wrong.)
* **latency** — how long after the true concentration leaves the
  therapeutic window does the reconstruction notice?

All routines take ``(n_channels, n_samples)`` arrays and return one
value per channel, matching the engines' result conventions.
"""

from __future__ import annotations

import numpy as np


def _check_pair(true: np.ndarray, other: np.ndarray):
    """Validate a (truth, estimate-like) array pair into 2-D floats."""
    true = np.atleast_2d(np.asarray(true, dtype=float))
    other = np.atleast_2d(np.asarray(other, dtype=float))
    if true.shape != other.shape:
        raise ValueError(
            f"shape mismatch: {true.shape} vs {other.shape}")
    return true, other


def reconstruction_rmse(true_molar: np.ndarray,
                        estimated_molar: np.ndarray) -> np.ndarray:
    """Root-mean-square reconstruction error per channel [mol/L].

    Args:
        true_molar: ground-truth concentrations,
            ``(n_channels, n_samples)``.
        estimated_molar: reconstructed concentrations, same shape.

    Returns:
        RMSE per channel, ``(n_channels,)``.
    """
    true, est = _check_pair(true_molar, estimated_molar)
    return np.sqrt(np.mean((est - true) ** 2, axis=1))


def reconstruction_mard(true_molar: np.ndarray,
                        estimated_molar: np.ndarray) -> np.ndarray:
    """Mean absolute relative difference per channel (the CGM metric).

    Samples with non-positive truth are excluded, mirroring the
    accounting of :func:`repro.engine.monitor.run_monitor`.

    Args:
        true_molar: ground-truth concentrations,
            ``(n_channels, n_samples)``.
        estimated_molar: reconstructed concentrations, same shape.

    Returns:
        MARD per channel, ``(n_channels,)``.
    """
    true, est = _check_pair(true_molar, estimated_molar)
    valid = true > 0
    rel = np.zeros_like(true)
    np.divide(np.abs(est - true), true, out=rel, where=valid)
    counts = np.maximum(np.sum(valid, axis=1), 1)
    return np.sum(rel, axis=1, where=valid) / counts


def credible_interval(estimated_molar: np.ndarray,
                      std_molar: np.ndarray,
                      z: float) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric Gaussian credible band around a reconstruction.

    The lower bound clips at zero — a concentration cannot be negative,
    and the truth the band is scored against never is.

    Args:
        estimated_molar: reconstruction means,
            ``(n_channels, n_samples)``.
        std_molar: posterior standard deviations, same shape.
        z: the two-sided normal quantile (1.96 for 95 %).

    Returns:
        ``(lower, upper)`` arrays, same shape as the inputs.
    """
    est, std = _check_pair(estimated_molar, std_molar)
    if z <= 0:
        raise ValueError("z quantile must be > 0")
    if np.any(std < 0):
        raise ValueError("standard deviations must be >= 0")
    return np.maximum(est - z * std, 0.0), est + z * std


def interval_coverage(true_molar: np.ndarray,
                      lower_molar: np.ndarray,
                      upper_molar: np.ndarray) -> np.ndarray:
    """Fraction of samples whose truth falls inside the stated band.

    Args:
        true_molar: ground-truth concentrations,
            ``(n_channels, n_samples)``.
        lower_molar / upper_molar: the credible band
            (:func:`credible_interval`), same shape.

    Returns:
        Empirical coverage per channel, ``(n_channels,)`` — compare
        against the nominal level (0.95 for a 95 % band).
    """
    true, lower = _check_pair(true_molar, lower_molar)
    _, upper = _check_pair(true_molar, upper_molar)
    return np.mean((true >= lower) & (true <= upper), axis=1)


def detection_delay_h(true_molar: np.ndarray,
                      estimated_molar: np.ndarray,
                      low_molar: float,
                      high_molar: float,
                      sample_period_s: float) -> np.ndarray:
    """Time-to-detection of therapeutic-window excursions, per channel.

    For each channel: find the first sample at which the *true*
    concentration leaves ``[low, high]``, then the first sample at or
    after it where the *reconstruction* has also left the window.  The
    delay between the two is what a closed-loop alarm would add on top
    of physiology.

    Args:
        true_molar: ground-truth concentrations,
            ``(n_channels, n_samples)``.
        estimated_molar: reconstructed concentrations, same shape.
        low_molar / high_molar: the therapeutic window bounds [mol/L].
        sample_period_s: reading cadence [s].

    Returns:
        Delays [h], ``(n_channels,)``: ``nan`` when the truth never
        leaves the window, ``inf`` when it does but the reconstruction
        never notices.
    """
    true, est = _check_pair(true_molar, estimated_molar)
    if not 0.0 <= low_molar < high_molar:
        raise ValueError("need 0 <= low < high")
    if sample_period_s <= 0:
        raise ValueError("sample period must be > 0")
    true_out = (true < low_molar) | (true > high_molar)
    est_out = (est < low_molar) | (est > high_molar)
    period_h = sample_period_s / 3600.0
    delays = np.full(true.shape[0], np.nan)
    for i in range(true.shape[0]):
        onsets = np.flatnonzero(true_out[i])
        if onsets.size == 0:
            continue
        onset = onsets[0]
        detections = np.flatnonzero(est_out[i, onset:])
        delays[i] = (np.inf if detections.size == 0
                     else detections[0] * period_h)
    return delays
