"""Vectorized single-point measurements over whole cell batches.

The scalar procedures in :mod:`repro.core.detection` measure one
(sensor, concentration) pair per call; these run a sensor's entire slice
of a campaign in a few array passes.  The amperometric path is fully
vectorized — one step-response synthesis, one acquisition-chain pass and
one plateau extraction for all cells — with the deterministic
ground-truth rows served from the engine's kernel cache.  The
voltammetric path still iterates cells (a CV trace's length depends on
the protocol, so rows don't share a grid yet) but keeps the same
per-cell RNG contract.
"""

from __future__ import annotations

import numpy as np

from repro.core.detection import measure_voltammetric_point
from repro.core.sensor import Biosensor
from repro.engine import kernels
from repro.rng import get_rng
from repro.signal.steady_state import extract_steady_state_batch

RngArg = "np.random.Generator | list[np.random.Generator] | None"


def _per_cell_rngs(rngs, n_cells: int) -> list[np.random.Generator]:
    """Normalize an RNG argument to one generator handle per cell.

    A single generator is shared (cells draw from it consecutively); a
    sequence must provide exactly one generator per cell.
    """
    if rngs is None or isinstance(rngs, np.random.Generator):
        shared = get_rng(rngs)
        return [shared] * n_cells
    if len(rngs) != n_cells:
        raise ValueError(
            f"need one generator per cell: {len(rngs)} != {n_cells}")
    return list(rngs)


def measure_amperometric_batch(sensor: Biosensor,
                               concentrations_molar: np.ndarray,
                               rngs: RngArg = None,
                               add_noise: bool = True,
                               step_duration_s: float = 16.0) -> np.ndarray:
    """Measure one chronoamperometric point per cell, vectorized [A].

    Cell ``k`` of the returned array equals what
    :func:`repro.core.detection.measure_amperometric_point` reports for
    ``concentrations_molar[k]`` — exactly, on the noiseless path, and in
    distribution (deterministically, given per-cell generators) on the
    noisy path.

    Args:
        sensor: an amperometric sensor.
        concentrations_molar: concentration per cell, shape ``(n_cells,)``.
        rngs: one generator per cell, one shared generator, or ``None``
            (shared seedable default).
        add_noise: include instrument + repeatability noise.
        step_duration_s: chronoamperometric step length [s].
    """
    concs = np.atleast_1d(np.asarray(concentrations_molar, dtype=float))
    if concs.ndim != 1:
        raise ValueError("concentrations must be a 1-D array of cells")
    if concs.size == 0:
        raise ValueError("need at least one cell")
    if np.any(concs < 0):
        raise ValueError("concentration must be >= 0")

    # Resolved up front so a wrong-length generator list fails on the
    # noiseless path too, not only once noise is switched on.
    cell_rngs = _per_cell_rngs(rngs, concs.size)

    protocol = sensor.ca_protocol
    unique, inverse = np.unique(concs, return_inverse=True)
    plateaus_unique = tuple(float(sensor.steady_state_current(c))
                            for c in unique)
    __, clean_rows = kernels.amperometric_clean_rows(
        sensor.chain, protocol, sensor.response_time_s, step_duration_s,
        plateaus_unique)

    if not add_noise:
        clean_values = kernels.amperometric_clean_plateaus(
            sensor.chain, protocol, sensor.response_time_s, step_duration_s,
            plateaus_unique)
        return clean_values[inverse].copy()

    plateaus = np.array(plateaus_unique)[inverse]
    __, current = protocol.simulate_step_batch(
        plateaus, step_duration_s, sensor.response_time_s)
    trace = sensor.chain.acquire_batch(
        current, protocol.sampling_rate_hz, rngs=cell_rngs,
        add_noise=True, true_current_a=clean_rows[inverse])
    values = extract_steady_state_batch(trace.time_s, trace.current_a)
    if sensor.repeatability_std_a > 0:
        values = values + np.array([
            rng.normal(0.0, sensor.repeatability_std_a)
            for rng in cell_rngs])
    return values


def measure_voltammetric_batch(sensor: Biosensor,
                               concentrations_molar: np.ndarray,
                               rngs: RngArg = None,
                               add_noise: bool = True) -> np.ndarray:
    """Measure one voltammetric peak height per cell [A].

    Iterates cells through the scalar procedure (CV records don't share a
    batched grid yet) while honoring the engine's per-cell RNG contract,
    so voltammetric sensors participate in deterministic campaigns today
    and pick up vectorization transparently later.
    """
    concs = np.atleast_1d(np.asarray(concentrations_molar, dtype=float))
    if concs.ndim != 1:
        raise ValueError("concentrations must be a 1-D array of cells")
    if concs.size == 0:
        raise ValueError("need at least one cell")
    cell_rngs = _per_cell_rngs(rngs, concs.size)
    return np.array([
        measure_voltammetric_point(sensor, float(c), rng=rng,
                                   add_noise=add_noise)
        for c, rng in zip(concs, cell_rngs)])
