"""Campaign execution: evaluate a :class:`BatchPlan` on the core executor.

The calibration workload is a kernel set on the shared execution core
(:mod:`repro.engine.core`): the campaign's flat cell axis is the sample
axis, each sensor's cell span is one segment, and chunks of
``plan.chunk_cells`` cells are dispatched to the appropriate batched
measurement — fully vectorized for amperometric readouts, per-cell (but
still deterministic) for voltammetric ones.  Per-cell spawned generators
make every cell independent of its neighbours, so any chunking yields
bit-identical values.  :func:`run_batch` is the public entry point;
``run_scalar("calibration", plan)`` replays the same plan one cell at a
time through the same generators.
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from types import SimpleNamespace

import numpy as np

from repro.core.sensor import ReadoutMode
from repro.engine.core import (
    Check,
    KernelSet,
    Segment,
    execute,
    register_kernels,
    spans_to_segments,
)
from repro.engine.measure import (
    measure_amperometric_batch,
    measure_voltammetric_batch,
)
from repro.engine.plan import BatchPlan, BatchResult
from repro.rng import spawn_generators


def run_batch(plan: BatchPlan) -> BatchResult:
    """Evaluate every cell of a campaign.

    Returns a :class:`BatchResult` holding one signal value [A] per cell.
    Determinism contract: with a fixed ``plan.seed``, every cell value is
    reproducible and depends only on its position in the plan's canonical
    enumeration — never on which other cells ran alongside it.
    """
    return execute(CALIBRATION_KERNELS, plan)


def run_batch_scalar(plan: BatchPlan) -> BatchResult:
    """Deprecated alias of ``run_scalar("calibration", plan)``.

    The scalar reference now lives on the registered kernel set; use
    :func:`repro.engine.core.run_scalar` instead.
    """
    warnings.warn(
        "run_batch_scalar() is deprecated; use "
        "repro.engine.core.run_scalar('calibration', plan)",
        DeprecationWarning, stacklevel=2)
    return _run_batch_scalar(plan)


def _measure_cells(plan: BatchPlan, sensor, concentrations, cell_rngs):
    """Dispatch one block of cells to the sensor's batched measurement."""
    if sensor.readout is ReadoutMode.AMPEROMETRIC_STEADY_STATE:
        return measure_amperometric_batch(
            sensor, concentrations,
            rngs=cell_rngs if plan.add_noise else None,
            add_noise=plan.add_noise,
            step_duration_s=plan.step_duration_s)
    if sensor.readout is ReadoutMode.VOLTAMMETRIC_PEAK:
        return measure_voltammetric_batch(
            sensor, concentrations,
            rngs=cell_rngs if plan.add_noise else None,
            add_noise=plan.add_noise)
    raise ValueError(f"unhandled readout mode {sensor.readout}")


def _run_batch_scalar(plan: BatchPlan) -> BatchResult:
    """Per-cell scalar reference: one measurement call per cell.

    The historical shape of a campaign — a Python loop over every
    (sensor, concentration, replicate) cell — driven by the *same*
    per-cell generators :func:`run_batch` spawns, so the two paths agree
    bit-for-bit (the engine's reproducibility contract: a cell's value
    depends only on ``(seed, flat position)``, never on how its
    neighbours were grouped).
    """
    rngs = (spawn_generators(plan.seed, plan.n_cells)
            if plan.add_noise else [None] * plan.n_cells)
    values_per_sensor: list[tuple[np.ndarray, ...]] = []
    flat = 0
    for i, sensor in enumerate(plan.sensors):
        groups: list[np.ndarray] = []
        reps = plan.replicates_for(i)
        for j, concentration in enumerate(plan.concentrations_molar[i]):
            cells = np.empty(reps[j])
            for k in range(reps[j]):
                cell_rng = [rngs[flat]] if plan.add_noise else None
                single = np.array([concentration])
                cells[k] = float(_measure_cells(
                    plan, sensor, single, cell_rng)[0])
                flat += 1
            groups.append(cells)
        values_per_sensor.append(tuple(groups))
    return BatchResult(plan=plan, values_a=tuple(values_per_sensor))


class CalibrationKernels(KernelSet):
    """The calibration campaign as a kernel set on the execution core.

    The sample axis is the campaign's flat cell enumeration; each
    sensor's cell span compiles to one segment so a chunk never mixes
    sensors (one readout dispatch per chunk).  Per-cell generators make
    chunking bit-invariant, which the contract declares with ``exact``
    field checks.
    """

    name = "calibration"
    plan_type = BatchPlan
    bench_record = "engine"
    floor_env = "ENGINE_SPEEDUP_FLOOR"

    def compile(self, plan: BatchPlan):
        """One segment per sensor over its half-open flat-cell span."""
        spans = [plan.sensor_cell_span(i)
                 for i in range(len(plan.sensors))]
        return spans_to_segments(self.name, 1, spans, plan.chunk_cells)

    def init_state(self, plan: BatchPlan) -> SimpleNamespace:
        """Spawn the per-cell generators and the flat value buffer."""
        rngs = (spawn_generators(plan.seed, plan.n_cells)
                if plan.add_noise else [None] * plan.n_cells)
        return SimpleNamespace(rngs=rngs,
                               values=np.empty(plan.n_cells),
                               values_per_sensor=[], concs=None)

    def begin_segment(self, plan: BatchPlan, state,
                      segment: Segment) -> None:
        """Expand the segment's sensor grid to one value per cell."""
        i = segment.index
        state.concs = np.repeat(plan.concentrations_molar[i],
                                plan.replicates_for(i))

    def run_chunk(self, plan: BatchPlan, state, segment: Segment,
                  start: int, stop: int) -> None:
        """Measure one block of cells of the segment's sensor."""
        lo = start - segment.start
        hi = stop - segment.start
        state.values[start:stop] = _measure_cells(
            plan, plan.sensors[segment.index], state.concs[lo:hi],
            state.rngs[start:stop])

    def end_segment(self, plan: BatchPlan, state,
                    segment: Segment) -> None:
        """Regroup the sensor's cells by concentration (replicates)."""
        reps = plan.replicates_for(segment.index)
        boundaries = np.cumsum(reps)[:-1]
        seg_values = state.values[segment.start:segment.stop].copy()
        state.values_per_sensor.append(
            tuple(np.split(seg_values, boundaries)))

    def finalize(self, plan: BatchPlan, state) -> BatchResult:
        """Assemble the nested per-sensor replicate groups."""
        return BatchResult(plan=plan,
                           values_a=tuple(state.values_per_sensor))

    def run_scalar(self, plan: BatchPlan) -> BatchResult:
        """Historical cell-by-cell loop over the same generators."""
        return _run_batch_scalar(plan)

    def contract_plan(self) -> BatchPlan:
        """Small mixed panel: amperometric + voltammetric readouts."""
        from repro.core.registry import build_sensor, spec_by_id
        return BatchPlan(
            sensors=(build_sensor(spec_by_id("glucose/this-work")),
                     build_sensor(spec_by_id("cyp/cyclophosphamide"))),
            concentrations_molar=((0.0, 1e-4, 5e-4, 1e-3),
                                  (0.0, 5e-6, 2e-5)),
            replicates=3, seed=1234, chunk_cells=5)

    def with_chunk_samples(self, plan: BatchPlan,
                           chunk_samples: int) -> BatchPlan:
        """The calibration chunk axis is cells, not time samples."""
        return replace(plan, chunk_cells=chunk_samples)

    def contract_fields(self, result: BatchResult) -> dict:
        """Flat cell values; per-cell generators make chunking exact."""
        return {"flat_values": Check(result.flat_values(), exact=True)}


#: The registered calibration kernel set (target of ``run_batch``).
CALIBRATION_KERNELS = register_kernels(CalibrationKernels())
