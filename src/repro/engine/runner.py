"""Campaign execution: evaluate a :class:`BatchPlan` as array operations.

`run_batch` is the engine's entry point.  It spawns one child generator
per cell from the plan seed, walks the sensor panel, and dispatches each
sensor's whole cell slice to the appropriate batched measurement — fully
vectorized for amperometric readouts, per-cell (but still deterministic)
for voltammetric ones.  :func:`run_batch_scalar` replays the same plan
one cell at a time through the same spawned generators — the equivalence
reference that completes the ``run_*``/``run_*_scalar`` pairing every
workload exposes through :mod:`repro.scenarios`.
"""

from __future__ import annotations

import numpy as np

from repro.core.sensor import ReadoutMode
from repro.engine.measure import (
    measure_amperometric_batch,
    measure_voltammetric_batch,
)
from repro.engine.plan import BatchPlan, BatchResult
from repro.rng import spawn_generators


def run_batch(plan: BatchPlan) -> BatchResult:
    """Evaluate every cell of a campaign.

    Returns a :class:`BatchResult` holding one signal value [A] per cell.
    Determinism contract: with a fixed ``plan.seed``, every cell value is
    reproducible and depends only on its position in the plan's canonical
    enumeration — never on which other cells ran alongside it.
    """
    rngs = (spawn_generators(plan.seed, plan.n_cells)
            if plan.add_noise else [None] * plan.n_cells)
    values_per_sensor: list[tuple[np.ndarray, ...]] = []
    for i, sensor in enumerate(plan.sensors):
        grid = plan.concentrations_molar[i]
        reps = plan.replicates_for(i)
        concs_per_cell = np.repeat(grid, reps)
        start, stop = plan.sensor_cell_span(i)
        cell_rngs = rngs[start:stop]
        if sensor.readout is ReadoutMode.AMPEROMETRIC_STEADY_STATE:
            values = measure_amperometric_batch(
                sensor, concs_per_cell,
                rngs=cell_rngs if plan.add_noise else None,
                add_noise=plan.add_noise,
                step_duration_s=plan.step_duration_s)
        elif sensor.readout is ReadoutMode.VOLTAMMETRIC_PEAK:
            values = measure_voltammetric_batch(
                sensor, concs_per_cell,
                rngs=cell_rngs if plan.add_noise else None,
                add_noise=plan.add_noise)
        else:
            raise ValueError(f"unhandled readout mode {sensor.readout}")
        boundaries = np.cumsum(reps)[:-1]
        values_per_sensor.append(tuple(np.split(values, boundaries)))
    return BatchResult(plan=plan, values_a=tuple(values_per_sensor))


def run_batch_scalar(plan: BatchPlan) -> BatchResult:
    """Per-cell scalar reference: one measurement call per cell.

    The historical shape of a campaign — a Python loop over every
    (sensor, concentration, replicate) cell — driven by the *same*
    per-cell generators :func:`run_batch` spawns, so the two paths agree
    bit-for-bit (the engine's reproducibility contract: a cell's value
    depends only on ``(seed, flat position)``, never on how its
    neighbours were grouped).  Exists as the equivalence/benchmark
    baseline of the calibration workload, mirroring
    :func:`repro.engine.monitor.run_monitor_scalar` and
    :func:`repro.engine.therapy.run_therapy_scalar`.
    """
    rngs = (spawn_generators(plan.seed, plan.n_cells)
            if plan.add_noise else [None] * plan.n_cells)
    values_per_sensor: list[tuple[np.ndarray, ...]] = []
    flat = 0
    for i, sensor in enumerate(plan.sensors):
        groups: list[np.ndarray] = []
        reps = plan.replicates_for(i)
        for j, concentration in enumerate(plan.concentrations_molar[i]):
            cells = np.empty(reps[j])
            for k in range(reps[j]):
                cell_rng = [rngs[flat]] if plan.add_noise else None
                single = np.array([concentration])
                if sensor.readout is ReadoutMode.AMPEROMETRIC_STEADY_STATE:
                    cells[k] = float(measure_amperometric_batch(
                        sensor, single, rngs=cell_rng,
                        add_noise=plan.add_noise,
                        step_duration_s=plan.step_duration_s)[0])
                elif sensor.readout is ReadoutMode.VOLTAMMETRIC_PEAK:
                    cells[k] = float(measure_voltammetric_batch(
                        sensor, single, rngs=cell_rng,
                        add_noise=plan.add_noise)[0])
                else:
                    raise ValueError(
                        f"unhandled readout mode {sensor.readout}")
                flat += 1
            groups.append(cells)
        values_per_sensor.append(tuple(groups))
    return BatchResult(plan=plan, values_a=tuple(values_per_sensor))
