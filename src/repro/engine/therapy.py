"""Closed-loop therapy engine: dose -> PK -> sensor -> controller -> dose.

The third workload class of the engine, and the one the paper's title
promises: *personalized medicine*.  A cohort of virtual patients
(:mod:`repro.pk.population`) is dosed on a shared regimen grid; between
administrations their true drug level evolves by closed-form
pharmacokinetic superposition (:mod:`repro.pk`), the deployed CYP sensor
measures it through the full wear physics of the streaming monitor
(drift, baseline wander, chain noise, rail/ADC quantization, optional
online recalibration — :mod:`repro.engine.monitor` machinery), and at
every dose boundary a :mod:`repro.therapy` controller turns the readout
history into the next dose, per patient.

Execution model (mirrors PR 2's monitor): the cohort advances through
the regimen as chunked ``(n_patients, chunk_samples)`` array blocks;
dose boundaries and recalibration references split chunks at absolute
sample indices, so results are chunk-size-invariant.  Determinism
contract: three generator streams per patient (process noise, baseline
wander, measurement noise) spawned from the plan seed and consumed
strictly sequentially — results depend only on ``(seed, patient,
sample index)``, never on chunking.  A scalar per-patient reference
(``run_scalar("therapy", plan)``) replays the same streams one sample
at a time and agrees to <= 1e-9 (gated, with the >= 5x speedup floor,
by the shared execution-core contract suite and
``benchmarks/bench_core.py``).

Quickstart::

    from repro.engine.therapy import TherapyPlan, run_therapy
    from repro.pk import CYCLOSPORINE
    from repro.therapy import BayesianTroughController

    cohort = CYCLOSPORINE.population.sample(n_patients=16, seed=7)
    plan = TherapyPlan.for_drug(
        CYCLOSPORINE, cohort=cohort,
        controller=BayesianTroughController(
            prior=CYCLOSPORINE.typical_model(),
            target_trough_molar=CYCLOSPORINE.window.target_trough_molar),
        n_doses=6, seed=7)
    print(run_therapy(plan).summary())
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from types import SimpleNamespace

import numpy as np

from repro.bio.matrix import SERUM
from repro.core.longterm import DriftBudget, one_point_recalibration
from repro.core.sensor import Biosensor
from repro.engine.core import (
    Check,
    KernelSet,
    PlanBase,
    Segment,
    execute,
    register_kernels,
    require_at_least,
    require_non_negative,
    require_positive,
    uniform_segments,
)
from repro.engine.monitor import (
    RecalibrationPolicy,
    digitize_rows,
    estimate_chunk_with_recalibration,
    reading_noise_sigma_a,
)
from repro.enzymes.stability import EnzymeStability
from repro.inference.kalman import KalmanState, kalman_predict, kalman_update
from repro.inference.observation import (
    observation_variance_a2,
    response_linearization,
)
from repro.pk.dosing import concentration_from_doses
from repro.pk.drugs import DrugSpec, TherapeuticWindow
from repro.pk.models import Route
from repro.pk.population import CYPPhenotype, PatientCohort
from repro.rng import spawn_generators
from repro.signal.drift import ou_process_batch
from repro.therapy.controllers import (
    ControllerObservation,
    DosingController,
    RegimenSpec,
)
from repro.therapy.metrics import trough_abs_rel_error

#: Generator streams spawned per patient (process, wander, measurement) —
#: same layout as the monitor's per-channel streams.
_STREAMS_PER_PATIENT = 3

#: Dose boundaries must land on the sample grid within this relative
#: tolerance for trough readouts to align with administrations.
_GRID_ALIGNMENT_RTOL = 1e-9


def _default_budget() -> DriftBudget:
    """Serum wear at body temperature, two-week enzyme half-life."""
    return DriftBudget(
        stability=EnzymeStability(half_life_s=2 * 7 * 24 * 3600.0),
        matrix=SERUM,
        temperature_k=310.15)


@dataclass(frozen=True)
class TherapyPlan(PlanBase):
    """Declarative description of one closed-loop therapy course.

    Attributes:
        cohort: the treated virtual patients (PK truth).
        sensor: the deployed biosensor design, shared by the cohort.
        controller: the dosing policy closing the loop.
        window: therapeutic window the course is scored against.
        n_doses: administrations in the course, >= 1.
        dose_interval_h: time between administrations [h]; must be an
            integer number of sample periods so troughs land on the
            sample grid.
        route: administration route shared by the course.
        infusion_duration_h: infusion duration [h] (INFUSION only).
        sample_period_s: sensor reading cadence [s].
        chunk_samples: samples advanced per vectorized block; purely a
            memory/throughput knob — results are chunk-size-invariant.
        seed: root seed of the per-patient generator streams.
        add_noise: include every stochastic component (process noise,
            wander, instrument noise); disable for deterministic runs.
        budget: sensor sensitivity-drift model over the course.
        recalibration: online one-point re-fit policy against reference
            lab draws.  Short courses may never reach the reference
            interval — the explicit zero-recalibration path.
        process_noise_sigma_molar: stationary RMS of the intra-patient
            physiological (process) noise riding on the PK truth
            [mol/L].
        process_noise_tau_h: correlation time of that noise [h].
        wander_sigma_a: per-patient baseline-wander RMS [A].
        wander_tau_h: correlation time of the wander [h].
        filter_troughs: run the online trough filter — an extended
            Kalman filter (:mod:`repro.inference.kalman`, local-level
            drug state + the known wander model, relinearized through
            the sensor's actual response) over the measured currents —
            and hand the controller its posterior trough means *and
            variances* instead of the raw linear readouts.
        filter_process_sigma_molar: per-step random-walk sigma of the
            trough filter's drug state [mol/L]; ``None`` derives the
            default from the therapeutic window (5 % of the target
            trough per sample), covering PK slew without tracking the
            measurement noise.
        keep_traces: store full per-sample traces on the result.
    """

    cohort: PatientCohort
    sensor: Biosensor
    controller: DosingController
    window: TherapeuticWindow
    n_doses: int
    dose_interval_h: float = 12.0
    route: Route = Route.ORAL
    infusion_duration_h: float = 0.0
    sample_period_s: float = 900.0
    chunk_samples: int = 4096
    seed: int | None = None
    add_noise: bool = True
    budget: DriftBudget = field(default_factory=_default_budget)
    recalibration: RecalibrationPolicy = field(
        default_factory=lambda: RecalibrationPolicy(
            reference_interval_h=24.0))
    process_noise_sigma_molar: float = 0.0
    process_noise_tau_h: float = 2.0
    wander_sigma_a: float = 0.0
    wander_tau_h: float = 6.0
    filter_troughs: bool = False
    filter_process_sigma_molar: float | None = None
    keep_traces: bool = True

    def validate(self) -> None:
        """Field-level invariants, in the shared ``PlanBase`` wording."""
        require_at_least("n_doses", self.n_doses, 1)
        require_positive("dose_interval_h", self.dose_interval_h)
        require_positive("sample_period_s", self.sample_period_s)
        require_at_least("chunk_samples", self.chunk_samples, 1)
        ratio = self.dose_interval_h * 3600.0 / self.sample_period_s
        if abs(ratio - round(ratio)) > _GRID_ALIGNMENT_RTOL * ratio:
            raise ValueError(
                "dose interval must be an integer number of sample "
                f"periods (got {ratio} samples per interval)")
        if round(ratio) < 1:
            raise ValueError("dose interval shorter than a sample period")
        if self.route is Route.INFUSION:
            if self.infusion_duration_h <= 0:
                raise ValueError("infusions need a duration > 0")
            if self.infusion_duration_h > self.dose_interval_h:
                raise ValueError("infusion longer than the dose interval")
        elif self.infusion_duration_h != 0.0:
            raise ValueError("duration applies to infusions only")
        if (self.recalibration.enabled
                and self.recalibration.reference_interval_h * 3600.0
                < self.sample_period_s):
            raise ValueError(
                "reference interval shorter than the sample period")
        require_non_negative("process_noise_sigma_molar",
                             self.process_noise_sigma_molar)
        require_positive("process_noise_tau_h", self.process_noise_tau_h)
        require_non_negative("wander_sigma_a", self.wander_sigma_a)
        require_positive("wander_tau_h", self.wander_tau_h)
        if (self.filter_process_sigma_molar is not None
                and self.filter_process_sigma_molar <= 0):
            raise ValueError("filter process sigma must be > 0")

    @classmethod
    def for_drug(cls, drug: DrugSpec, cohort: PatientCohort,
                 controller: DosingController, n_doses: int,
                 **overrides) -> "TherapyPlan":
        """Build a plan from a catalog drug: sensor + window wired in.

        The drug's registry sensor is composed and its therapeutic
        window adopted; every other field accepts overrides.

        Args:
            drug: catalog entry (window, population, sensor link).
            cohort: the treated cohort (usually
                ``drug.population.sample(...)``).
            controller: the dosing policy.
            n_doses: administrations in the course.
            **overrides: any other :class:`TherapyPlan` field.

        Returns:
            The composed plan.
        """
        # Imported here: the registry composes sensors out of half the
        # library, and the plan only needs it for this convenience.
        from repro.core.registry import build_sensor, spec_by_id

        if "sensor" not in overrides:
            overrides["sensor"] = build_sensor(spec_by_id(drug.sensor_id))
        overrides.setdefault("window", drug.window)
        return cls(cohort=cohort,
                   controller=controller,
                   n_doses=n_doses,
                   **overrides)

    @property
    def n_patients(self) -> int:
        """Cohort size."""
        return self.cohort.n_patients

    @property
    def samples_per_interval(self) -> int:
        """Sensor readings per dosing interval."""
        return int(round(self.dose_interval_h * 3600.0
                         / self.sample_period_s))

    @property
    def n_samples(self) -> int:
        """Total readings over the whole course."""
        return self.n_doses * self.samples_per_interval

    @property
    def duration_h(self) -> float:
        """Course length [h] (through the last interval's trough)."""
        return self.n_doses * self.dose_interval_h

    @property
    def dose_times_h(self) -> np.ndarray:
        """Administration times [h], shape ``(n_doses,)``."""
        return np.arange(self.n_doses) * self.dose_interval_h

    @property
    def regimen(self) -> RegimenSpec:
        """The dosing grid handed to the controller."""
        return RegimenSpec(
            dose_interval_h=self.dose_interval_h,
            n_doses=self.n_doses,
            route=self.route,
            infusion_duration_h=self.infusion_duration_h)

    @property
    def reference_every_samples(self) -> int:
        """Reference lab-draw cadence in samples (>= 1)."""
        return max(1, int(round(
            self.recalibration.reference_interval_h * 3600.0
            / self.sample_period_s)))

    @property
    def n_reference_draws(self) -> int:
        """Reference draws firing within the course (0 = open loop).

        The explicit zero-recalibration path of short regimens: a
        one-day course with daily lab draws recalibrates once; a
        half-day course never does, and both engine paths handle that
        without special cases at the call site.
        """
        if not self.recalibration.enabled:
            return 0
        return self.n_samples // self.reference_every_samples

    @property
    def trough_filter_step_sigma_molar(self) -> float:
        """Per-step random-walk sigma of the trough filter [mol/L].

        The explicit override when configured, otherwise 5 % of the
        therapeutic window's target trough per sample — large enough to
        track PK absorption/elimination slew between readings, small
        enough that the filter still averages measurement noise down.
        """
        if self.filter_process_sigma_molar is not None:
            return self.filter_process_sigma_molar
        return 0.05 * self.window.target_trough_molar

    def sample_times_h(self, start: int, stop: int) -> np.ndarray:
        """Reading times [h] of samples ``[start, stop)``.

        Sample ``k`` is taken at ``(k + 1) * sample_period_s`` (monitor
        convention): the last sample of every interval lands exactly on
        the next dose boundary — the trough readout — and times depend
        only on the absolute index (chunk-invariance).
        """
        return ((np.arange(start, stop) + 1)
                * (self.sample_period_s / 3600.0))


@dataclass(frozen=True)
class TherapyResult:
    """Evaluated therapy course: doses given, windows held, per patient.

    Attributes:
        plan: the course that produced these numbers.
        doses_mol: administered doses, ``(n_patients, n_doses)``.
        trough_true_molar: true level at each interval end,
            ``(n_patients, n_doses)``.
        trough_estimated_molar: the sensor's trough readouts, same
            shape — what the controller actually saw.
        time_in_range: fraction of readings inside the therapeutic
            window, ``(n_patients,)``.
        fraction_below / fraction_above: sub-therapeutic and toxic
            fractions, ``(n_patients,)``.
        trough_abs_rel_error: mean ``|trough - target| / target`` over
            the *controlled* intervals (the first trough, which no
            controller can influence, is excluded), ``(n_patients,)``.
        overdose_exposure_molar_h: toxic exposure integral above the
            window ceiling, ``(n_patients,)``.
        n_recalibrations: accepted one-point re-fits per patient.
        trough_variance_molar2: the trough filter's posterior variances
            per readout, ``(n_patients, n_doses)`` — what the
            variance-aware controller weighted by; ``None`` unless
            ``plan.filter_troughs``.
        time_h: sample times [h] (``None`` unless ``plan.keep_traces``).
        true_concentration_molar / estimated_concentration_molar:
            ``(n_patients, n_samples)`` traces (``None`` unless
            ``plan.keep_traces``).
        measured_current_a: digitized readings [A] (``None`` unless
            ``plan.keep_traces``).
    """

    plan: TherapyPlan
    doses_mol: np.ndarray
    trough_true_molar: np.ndarray
    trough_estimated_molar: np.ndarray
    time_in_range: np.ndarray
    fraction_below: np.ndarray
    fraction_above: np.ndarray
    trough_abs_rel_error: np.ndarray
    overdose_exposure_molar_h: np.ndarray
    n_recalibrations: np.ndarray
    trough_variance_molar2: np.ndarray | None = field(
        default=None, repr=False)
    time_h: np.ndarray | None = field(default=None, repr=False)
    true_concentration_molar: np.ndarray | None = field(
        default=None, repr=False)
    estimated_concentration_molar: np.ndarray | None = field(
        default=None, repr=False)
    measured_current_a: np.ndarray | None = field(default=None, repr=False)

    def patient_summary(self, index: int) -> str:
        """One-line outcome for one patient."""
        patient = self.plan.cohort.patients[index]
        return (
            f"{patient.patient_id} [{patient.phenotype.value}]: "
            f"in-range {self.time_in_range[index] * 100:.0f} %, "
            f"trough error {self.trough_abs_rel_error[index] * 100:.0f} %, "
            f"last dose {self.doses_mol[index, -1] * 1e6:.0f} umol")

    def phenotype_summary(self) -> str:
        """Outcome stratified by CYP phenotype — the personalization
        story in four lines."""
        lines = []
        for phenotype in CYPPhenotype:
            mask = self.plan.cohort.phenotype_mask(phenotype)
            if not np.any(mask):
                continue
            lines.append(
                f"{phenotype.value:>12}: n={int(np.sum(mask)):3d}  "
                f"in-range {float(np.mean(self.time_in_range[mask])) * 100:5.1f} %  "
                f"trough err {float(np.mean(self.trough_abs_rel_error[mask])) * 100:5.1f} %  "
                f"toxic {float(np.mean(self.fraction_above[mask])) * 100:4.1f} %")
        return "\n".join(lines)

    def summary(self) -> str:
        """Cohort-level outcome plus the phenotype breakdown."""
        plan = self.plan
        head = (
            f"{plan.n_patients} patients x {plan.n_doses} doses "
            f"every {plan.dose_interval_h:.0f} h "
            f"({plan.n_samples} readings over {plan.duration_h:.0f} h): "
            f"in-range {float(np.mean(self.time_in_range)) * 100:.1f} %, "
            f"trough error "
            f"{float(np.mean(self.trough_abs_rel_error)) * 100:.1f} %, "
            f"{int(np.sum(self.n_recalibrations))} recalibrations")
        return "\n".join([head, self.phenotype_summary()])

    def summary_row(self) -> dict:
        """Flat scalar metrics of the therapy course (JSON-serializable).

        The tabular-export half of the shared result contract
        (:class:`repro.scenarios.ResultProtocol`).
        """
        return {
            "workload": "therapy",
            "n_patients": self.plan.n_patients,
            "n_doses": self.plan.n_doses,
            "n_samples": self.plan.n_samples,
            "duration_h": float(self.plan.duration_h),
            "seed": self.plan.seed,
            "cohort_time_in_range": float(np.mean(self.time_in_range)),
            "cohort_fraction_above": float(np.mean(self.fraction_above)),
            "cohort_trough_abs_rel_error": float(
                np.mean(self.trough_abs_rel_error)),
            "total_overdose_exposure_molar_h": float(
                np.sum(self.overdose_exposure_molar_h)),
            "n_recalibrations": int(np.sum(self.n_recalibrations)),
        }

    def to_dict(self, include_traces: bool = False) -> dict:
        """JSON-serializable export of the evaluated therapy course.

        Args:
            include_traces: also include the per-sample true/estimated
                concentration and measured-current traces (only possible
                when the plan kept them; off by default).

        Returns:
            ``summary_row()`` plus one outcome entry per patient with
            the administered doses and trough history.
        """
        patients = [{
            "patient_id": patient.patient_id,
            "phenotype": patient.phenotype.value,
            "time_in_range": float(self.time_in_range[i]),
            "fraction_below": float(self.fraction_below[i]),
            "fraction_above": float(self.fraction_above[i]),
            "trough_abs_rel_error": float(self.trough_abs_rel_error[i]),
            "overdose_exposure_molar_h": float(
                self.overdose_exposure_molar_h[i]),
            "n_recalibrations": int(self.n_recalibrations[i]),
            "doses_mol": self.doses_mol[i].tolist(),
            "trough_true_molar": self.trough_true_molar[i].tolist(),
            "trough_estimated_molar": (
                self.trough_estimated_molar[i].tolist()),
            **({"trough_variance_molar2":
                self.trough_variance_molar2[i].tolist()}
               if self.trough_variance_molar2 is not None else {}),
        } for i, patient in enumerate(self.plan.cohort.patients)]
        data = {**self.summary_row(), "patients": patients}
        if include_traces and self.time_h is not None:
            data["time_h"] = self.time_h.tolist()
            data["true_concentration_molar"] = (
                self.true_concentration_molar.tolist())
            data["estimated_concentration_molar"] = (
                self.estimated_concentration_molar.tolist())
            data["measured_current_a"] = self.measured_current_a.tolist()
        return data


@dataclass
class _CohortParams:
    """Per-patient scalars gathered once so chunks evaluate as arrays."""

    background_a: float
    baseline_drift_a_per_hour: float
    decay_rate_per_hour: float
    measurement_sigma_a: float
    day0_slope: float
    day0_intercept: float


def _gather(plan: TherapyPlan) -> _CohortParams:
    """Collect the sensor-side scalars of a therapy cohort.

    The cohort wears copies of one sensor design, so unlike the
    monitor's per-channel arrays these stay scalars and broadcast.
    """
    sensor = plan.sensor
    return _CohortParams(
        background_a=sensor.background_current_a,
        baseline_drift_a_per_hour=(
            plan.budget.matrix.baseline_drift_a_per_hour_per_m2
            * sensor.area_m2),
        decay_rate_per_hour=plan.budget.decay_rate_per_hour,
        measurement_sigma_a=reading_noise_sigma_a(sensor),
        day0_slope=sensor.expected_slope_a_per_molar(),
        day0_intercept=sensor.background_current_a,
    )


def _observation(plan: TherapyPlan, k: int, doses: np.ndarray,
                 trough_estimates: np.ndarray,
                 trough_variances: np.ndarray | None = None,
                 ) -> ControllerObservation:
    """The controller's view right before dose ``k`` (k >= 1)."""
    interval_h = plan.dose_interval_h
    return ControllerObservation(
        regimen=plan.regimen,
        interval_index=k,
        time_h=k * interval_h,
        dose_times_h=np.arange(k) * interval_h,
        doses_mol=doses[:, :k],
        trough_times_h=(np.arange(k) + 1.0) * interval_h,
        trough_estimates_molar=trough_estimates[:, :k],
        trough_variances_molar2=(None if trough_variances is None
                                 else trough_variances[:, :k]),
    )


def _trough_filter_params(plan: TherapyPlan) -> tuple:
    """Constants of the trough filter, derived once per run.

    Returns ``(q_signal, a_wander, q_wander, r, censor_level_a)``: the
    random-walk innovation variance of the drug state (PK slew
    allowance plus the true process-noise innovation, so the filter's
    dynamics dominate the simulator's), the wander AR(1) model exactly
    as simulated, the per-reading measurement variance including the
    quantization floor, and the rail-censoring threshold (readings at
    or beyond it carry no amplitude information — same rule as
    :func:`repro.inference.observation.rail_censored_mask`, hoisted out
    of the per-sample loop because the cohort shares one chain design).
    """
    dt_s = plan.sample_period_s
    q_signal = plan.trough_filter_step_sigma_molar ** 2
    a_wander = float(np.exp(-dt_s / (plan.wander_tau_h * 3600.0)))
    if plan.add_noise:
        a_process = float(np.exp(
            -dt_s / (plan.process_noise_tau_h * 3600.0)))
        q_signal += (plan.process_noise_sigma_molar ** 2
                     * (1.0 - a_process ** 2))
        q_wander = plan.wander_sigma_a ** 2 * (1.0 - a_wander ** 2)
    else:
        q_wander = 0.0
    r = observation_variance_a2(plan.sensor, add_noise=plan.add_noise)
    chain = plan.sensor.chain
    censor_level_a = ((chain.tia.rail_v - 1.5 * chain.adc.lsb_v)
                      / chain.tia.gain_v_per_a)
    return q_signal, a_wander, q_wander, r, censor_level_a


def _trough_filter_step(plan: TherapyPlan, params: _CohortParams,
                        state: KalmanState, measured: np.ndarray,
                        t_h: float, q_signal: float, a_wander: float,
                        q_wander: float, r: float,
                        censor_level_a: float) -> KalmanState:
    """Advance the trough filter by one reading (vectorized or 1-wide).

    One extended-Kalman step: random-walk predict, relinearize the
    sensor's *actual* (saturating) response at the predicted drug
    level (:func:`repro.inference.observation.response_linearization`
    — the same definition the estimation engine uses), then update
    against the digitized reading — with the same drifted-gain/baseline
    observation terms the simulator applied, and rail-censored readings
    skipped (infinite variance).  Called with the full cohort by
    :func:`run_therapy` and with single-patient slices by
    :func:`run_therapy_scalar`, so both paths share one arithmetic.
    """
    state = kalman_predict(state, 1.0, q_signal, a_wander, q_wander)
    c_lin = np.maximum(state.m1, 0.0)
    response, slope = response_linearization(plan.sensor, c_lin)
    retention = np.exp(-params.decay_rate_per_hour * t_h)
    baseline = (params.background_a
                + params.baseline_drift_a_per_hour * t_h)
    gain = retention * slope
    offset = retention * (response - slope * c_lin) + baseline
    r_k = np.where(np.abs(measured) >= censor_level_a, np.inf, r)
    return kalman_update(state, measured, gain, offset, r_k)


def run_therapy(plan: TherapyPlan) -> TherapyResult:
    """Run a closed-loop therapy course, chunked and vectorized.

    The engine entry point for the therapy workload.  Per dosing
    interval: the controller fixes the cohort's doses, then the interval
    streams through wear-time as ``(n_patients, chunk)`` blocks — PK
    superposition truth, process noise, drifted faradaic response,
    baseline + wander, chain noise, rails and quantization, linear
    estimation, optional one-point recalibration at reference draws.

    Returns:
        A :class:`TherapyResult` with per-patient window metrics (and
        full traces when ``plan.keep_traces``).

    Determinism: with a fixed ``plan.seed`` the result is reproducible
    and independent of ``plan.chunk_samples``; the scalar reference
    agrees to <= 1e-9 (gated by the shared contract suite,
    ``tests/engine/test_core_contract.py``).
    """
    return execute(THERAPY_KERNELS, plan)


def _init_therapy_state(plan: TherapyPlan) -> SimpleNamespace:
    """Carry state threaded through the therapy intervals and chunks:
    generator streams, live calibration, OU and filter states, the dose
    history, and the window accumulators."""
    params = _gather(plan)
    n = plan.n_patients
    n_samples = plan.n_samples
    rngs = spawn_generators(plan.seed, _STREAMS_PER_PATIENT * n)
    keep = plan.keep_traces
    return SimpleNamespace(
        params=params,
        pk=plan.cohort.params(),
        sensors=[plan.sensor] * n,
        process_rngs=rngs[0::_STREAMS_PER_PATIENT],
        wander_rngs=rngs[1::_STREAMS_PER_PATIENT],
        measurement_rngs=rngs[2::_STREAMS_PER_PATIENT],
        slopes=np.full(n, params.day0_slope),
        intercepts=np.full(n, params.day0_intercept),
        process_state=np.zeros(n),
        wander_state=np.zeros(n),
        process_tau_s=plan.process_noise_tau_h * 3600.0,
        wander_tau_s=plan.wander_tau_h * 3600.0,
        ref_every=plan.reference_every_samples,
        policy_active=plan.n_reference_draws > 0,  # zero-recal explicit
        doses=np.zeros((n, plan.n_doses)),
        trough_true=np.zeros((n, plan.n_doses)),
        trough_est=np.zeros((n, plan.n_doses)),
        trough_var=(np.zeros((n, plan.n_doses))
                    if plan.filter_troughs else None),
        filter_state=(KalmanState.zeros(n)
                      if plan.filter_troughs else None),
        filter_params=(_trough_filter_params(plan)
                       if plan.filter_troughs else None),
        dose_times=None,
        in_range_count=np.zeros(n),
        below_count=np.zeros(n),
        above_count=np.zeros(n),
        over_sum=np.zeros(n),
        n_recals=np.zeros(n, dtype=int),
        true_c=np.empty((n, n_samples)) if keep else None,
        est_c=np.empty((n, n_samples)) if keep else None,
        meas_i=np.empty((n, n_samples)) if keep else None,
    )


def _begin_interval(plan: TherapyPlan, state: SimpleNamespace,
                    segment: Segment) -> None:
    """Fix the cohort's doses for interval ``segment.index``: the
    controller turns the trough history into the next administration."""
    k = segment.index
    doses = state.doses
    if k == 0:
        doses[:, 0] = plan.controller.initial_doses(
            plan.n_patients, plan.regimen)
    else:
        doses[:, k] = plan.controller.next_doses(
            _observation(plan, k, doses, state.trough_est,
                         state.trough_var))
    if np.any(~np.isfinite(doses[:, k])) or np.any(doses[:, k] < 0):
        raise ValueError(
            f"controller produced an invalid dose at interval {k}")
    state.dose_times = plan.dose_times_h[:k + 1]


def _therapy_chunk(plan: TherapyPlan, state: SimpleNamespace,
                   segment: Segment, start: int, stop: int) -> None:
    """Advance the cohort by one ``(n_patients, chunk)`` block of
    interval ``segment.index`` (trough readout on the last chunk)."""
    params = state.params
    n = plan.n_patients
    k = segment.index
    chunk = stop - start
    t_h = plan.sample_times_h(start, stop)

    # --- truth: PK superposition + physiological noise -------
    c_pk = concentration_from_doses(
        t_h, state.dose_times, state.doses[:, :k + 1], state.pk,
        plan.route, plan.infusion_duration_h)
    if plan.add_noise:
        c_noise, state.process_state = ou_process_batch(
            chunk, plan.sample_period_s,
            state.process_tau_s, plan.process_noise_sigma_molar,
            state.process_state, rngs=state.process_rngs)
    else:
        c_noise = np.zeros((n, chunk))
    c = np.maximum(c_pk + c_noise, 0.0)

    # --- sensor physics: drifted response + baseline ---------
    faradaic = np.asarray(plan.sensor.layer.steady_state_current(
        c, plan.sensor.area_m2), dtype=float)
    retention = np.exp(-params.decay_rate_per_hour * t_h)[None, :]
    baseline = (params.background_a
                + params.baseline_drift_a_per_hour * t_h)[None, :]
    if plan.add_noise:
        wander, state.wander_state = ou_process_batch(
            chunk, plan.sample_period_s, state.wander_tau_s,
            plan.wander_sigma_a, state.wander_state,
            rngs=state.wander_rngs)
    else:
        wander = np.zeros((n, chunk))
    current = retention * faradaic + baseline + wander

    # --- instrument chain ------------------------------------
    if plan.add_noise:
        shocks = np.stack([
            rng.standard_normal(chunk) for rng in state.measurement_rngs])
        current = current + params.measurement_sigma_a * shocks
    measured = digitize_rows(state.sensors, current)

    # --- estimation + online recalibration, segment-wise -----
    estimates, state.slopes, events = estimate_chunk_with_recalibration(
        measured, c, start, stop, state.slopes, state.intercepts,
        state.ref_every, plan.recalibration.tolerance,
        state.policy_active)
    for _, accepted in events:
        state.n_recals += accepted

    # --- online trough filter (optional) ----------------------
    if plan.filter_troughs:
        q_f, a_wf, q_wf, r_f, censor_f = state.filter_params
        for j in range(chunk):
            state.filter_state = _trough_filter_step(
                plan, params, state.filter_state, measured[:, j],
                float(t_h[j]), q_f, a_wf, q_wf, r_f, censor_f)

    # --- window accounting -----------------------------------
    state.in_range_count += np.sum(
        (c >= plan.window.low_molar)
        & (c <= plan.window.high_molar), axis=1)
    state.below_count += np.sum(c < plan.window.low_molar, axis=1)
    state.above_count += np.sum(c > plan.window.high_molar, axis=1)
    state.over_sum += np.sum(
        np.maximum(c - plan.window.high_molar, 0.0), axis=1)
    if plan.keep_traces:
        state.true_c[:, start:stop] = c
        state.est_c[:, start:stop] = estimates
        state.meas_i[:, start:stop] = measured
    if stop == segment.stop:
        state.trough_true[:, k] = c[:, -1]
        if plan.filter_troughs:
            state.trough_est[:, k] = np.maximum(
                state.filter_state.m1, 0.0)
            state.trough_var[:, k] = np.maximum(
                state.filter_state.p11, 0.0)
        else:
            state.trough_est[:, k] = estimates[:, -1]


def _finalize_therapy(plan: TherapyPlan,
                      state: SimpleNamespace) -> TherapyResult:
    """Assemble the :class:`TherapyResult` from the carry state."""
    n_samples = plan.n_samples
    period_h = plan.sample_period_s / 3600.0
    target = plan.window.target_trough_molar
    skip = 1 if plan.n_doses > 1 else 0
    return TherapyResult(
        plan=plan,
        doses_mol=state.doses,
        trough_true_molar=state.trough_true,
        trough_estimated_molar=state.trough_est,
        time_in_range=state.in_range_count / n_samples,
        fraction_below=state.below_count / n_samples,
        fraction_above=state.above_count / n_samples,
        trough_abs_rel_error=trough_abs_rel_error(
            state.trough_true, target, skip_first=skip),
        overdose_exposure_molar_h=state.over_sum * period_h,
        n_recalibrations=state.n_recals,
        trough_variance_molar2=state.trough_var,
        time_h=plan.sample_times_h(0, n_samples)
        if plan.keep_traces else None,
        true_concentration_molar=state.true_c,
        estimated_concentration_molar=state.est_c,
        measured_current_a=state.meas_i,
    )


def run_therapy_scalar(plan: TherapyPlan) -> TherapyResult:
    """Deprecated alias of ``run_scalar("therapy", plan)``.

    The scalar reference now lives on the registered kernel set; use
    :func:`repro.engine.core.run_scalar` instead.
    """
    warnings.warn(
        "run_therapy_scalar() is deprecated; use "
        "repro.engine.core.run_scalar('therapy', plan)",
        DeprecationWarning, stacklevel=2)
    return _run_therapy_scalar(plan)


def _run_therapy_scalar(plan: TherapyPlan) -> TherapyResult:
    """Per-patient scalar reference: one patient, one sample at a time.

    The historical shape of a therapy simulation — a Python loop over
    every (patient, sample) pair through scalar OU updates, scalar
    digitization and scalar recalibration, with the controller consulted
    per patient on single-patient histories.  Consumes the same
    per-patient generator streams as :func:`run_therapy`, so the two
    paths agree to floating-point reassociation (<= 1e-9, gated by the
    shared contract suite) — which is exactly why the chunked engine
    exists: same physics, >= 5x the throughput.
    """
    params = _gather(plan)
    pk = plan.cohort.params()
    n, spi = plan.n_patients, plan.samples_per_interval
    n_samples = plan.n_samples
    rngs = spawn_generators(plan.seed, _STREAMS_PER_PATIENT * n)
    chain = plan.sensor.chain
    dt_s = plan.sample_period_s
    ref_every = plan.reference_every_samples
    policy = plan.recalibration
    policy_active = plan.n_reference_draws > 0
    process_a = np.exp(-dt_s / (plan.process_noise_tau_h * 3600.0))
    process_scale = (plan.process_noise_sigma_molar
                     * np.sqrt(1.0 - process_a ** 2))
    wander_a = np.exp(-dt_s / (plan.wander_tau_h * 3600.0))
    wander_scale = plan.wander_sigma_a * np.sqrt(1.0 - wander_a ** 2)

    doses = np.zeros((n, plan.n_doses))
    trough_true = np.zeros((n, plan.n_doses))
    trough_est = np.zeros((n, plan.n_doses))
    trough_var = None
    if plan.filter_troughs:
        trough_var = np.zeros((n, plan.n_doses))
        q_f, a_wf, q_wf, r_f, censor_f = _trough_filter_params(plan)
    in_range_count = np.zeros(n)
    below_count = np.zeros(n)
    above_count = np.zeros(n)
    over_sum = np.zeros(n)
    n_recals = np.zeros(n, dtype=int)
    if plan.keep_traces:
        true_c = np.empty((n, n_samples))
        est_c = np.empty((n, n_samples))
        meas_i = np.empty((n, n_samples))

    for i in range(n):
        process_rng = rngs[_STREAMS_PER_PATIENT * i]
        wander_rng = rngs[_STREAMS_PER_PATIENT * i + 1]
        measurement_rng = rngs[_STREAMS_PER_PATIENT * i + 2]
        patient_pk = pk.patient(i)
        slope = params.day0_slope
        intercept = params.day0_intercept
        process_state = 0.0
        wander_state = 0.0
        filter_state = (KalmanState.zeros(1) if plan.filter_troughs
                        else None)

        for k in range(plan.n_doses):
            if k == 0:
                doses[i, k] = float(plan.controller.initial_doses(
                    1, plan.regimen)[0])
            else:
                doses[i, k] = float(plan.controller.next_doses(
                    _observation(plan, k, doses[i:i + 1],
                                 trough_est[i:i + 1],
                                 None if trough_var is None
                                 else trough_var[i:i + 1]))[0])
            if not np.isfinite(doses[i, k]) or doses[i, k] < 0:
                raise ValueError(
                    f"controller produced an invalid dose at interval {k}")
            dose_times = plan.dose_times_h[:k + 1]

            for j in range(k * spi, (k + 1) * spi):
                t_h = (j + 1) * dt_s / 3600.0
                c_pk = float(concentration_from_doses(
                    np.array([t_h]), dose_times, doses[i:i + 1, :k + 1],
                    patient_pk, plan.route,
                    plan.infusion_duration_h)[0, 0])
                if plan.add_noise:
                    process_state = (
                        process_a * process_state
                        + process_scale * process_rng.standard_normal())
                c = max(c_pk + process_state, 0.0)
                faradaic = float(plan.sensor.layer.steady_state_current(
                    c, plan.sensor.area_m2))
                retention = float(np.exp(
                    -params.decay_rate_per_hour * t_h))
                baseline = (params.background_a
                            + params.baseline_drift_a_per_hour * t_h)
                if plan.add_noise:
                    wander_state = (
                        wander_a * wander_state
                        + wander_scale * wander_rng.standard_normal())
                current = retention * faradaic + baseline + wander_state
                if plan.add_noise:
                    current += (params.measurement_sigma_a
                                * measurement_rng.standard_normal())
                volts = float(np.clip(current * chain.tia.gain_v_per_a,
                                      -chain.tia.rail_v, chain.tia.rail_v))
                measured = float(chain.adc.convert(volts)[0]
                                 / chain.tia.gain_v_per_a)
                estimate = max(0.0, (measured - intercept) / slope)
                if plan.filter_troughs:
                    filter_state = _trough_filter_step(
                        plan, params, filter_state,
                        np.array([measured]), t_h,
                        q_f, a_wf, q_wf, r_f, censor_f)
                if policy_active and (j + 1) % ref_every == 0 and c > 0:
                    rel_error = abs(estimate - c) / c
                    if rel_error > policy.tolerance:
                        try:
                            slope = one_point_recalibration(
                                slope, c, measured, intercept)
                            n_recals[i] += 1
                        except ValueError:
                            pass
                in_range_count[i] += (plan.window.low_molar <= c
                                      <= plan.window.high_molar)
                below_count[i] += c < plan.window.low_molar
                above_count[i] += c > plan.window.high_molar
                over_sum[i] += max(c - plan.window.high_molar, 0.0)
                if plan.keep_traces:
                    true_c[i, j] = c
                    est_c[i, j] = estimate
                    meas_i[i, j] = measured
                if j == (k + 1) * spi - 1:
                    trough_true[i, k] = c
                    if plan.filter_troughs:
                        trough_est[i, k] = max(
                            float(filter_state.m1[0]), 0.0)
                        trough_var[i, k] = max(
                            float(filter_state.p11[0]), 0.0)
                    else:
                        trough_est[i, k] = estimate

    period_h = plan.sample_period_s / 3600.0
    target = plan.window.target_trough_molar
    skip = 1 if plan.n_doses > 1 else 0
    return TherapyResult(
        plan=plan,
        doses_mol=doses,
        trough_true_molar=trough_true,
        trough_estimated_molar=trough_est,
        time_in_range=in_range_count / n_samples,
        fraction_below=below_count / n_samples,
        fraction_above=above_count / n_samples,
        trough_abs_rel_error=trough_abs_rel_error(
            trough_true, target, skip_first=skip),
        overdose_exposure_molar_h=over_sum * period_h,
        n_recalibrations=n_recals,
        trough_variance_molar2=trough_var,
        time_h=plan.sample_times_h(0, n_samples)
        if plan.keep_traces else None,
        true_concentration_molar=true_c if plan.keep_traces else None,
        estimated_concentration_molar=est_c if plan.keep_traces else None,
        measured_current_a=meas_i if plan.keep_traces else None,
    )


class TherapyKernels(KernelSet):
    """The closed-loop therapy workload as a kernel set on the core.

    One segment per dose interval: ``begin_segment`` is the controller's
    dose decision (the closed-loop step), chunks stream the interval
    through the wear physics, and the last chunk of each segment takes
    the trough readout.  The carry state threads calibration, OU and
    trough-filter states across both chunk and interval boundaries.
    """

    name = "therapy"
    plan_type = TherapyPlan
    bench_record = "therapy"
    floor_env = "THERAPY_SPEEDUP_FLOOR"

    def compile(self, plan: TherapyPlan):
        """One segment per dose interval, chunked within intervals."""
        return uniform_segments(self.name, plan.n_patients,
                                plan.n_doses, plan.samples_per_interval,
                                plan.chunk_samples)

    def init_state(self, plan: TherapyPlan) -> SimpleNamespace:
        """Generator streams, PK params, calibration and accumulators."""
        return _init_therapy_state(plan)

    def begin_segment(self, plan: TherapyPlan, state,
                      segment: Segment) -> None:
        """Controller dose decision for interval ``segment.index``."""
        _begin_interval(plan, state, segment)

    def run_chunk(self, plan: TherapyPlan, state, segment: Segment,
                  start: int, stop: int) -> None:
        """Advance the cohort across samples ``[start, stop)``."""
        _therapy_chunk(plan, state, segment, start, stop)

    def finalize(self, plan: TherapyPlan, state) -> TherapyResult:
        """Assemble the :class:`TherapyResult`."""
        return _finalize_therapy(plan, state)

    def describe_metrics(self, plan: TherapyPlan,
                         result: TherapyResult) -> dict:
        """Closed-loop health counters: doses administered, doses the
        controller actually changed between consecutive intervals, and
        recalibrations fired on the sensing side."""
        adjusted = np.diff(result.doses_mol, axis=1) != 0.0
        return {
            "doses": int(result.doses_mol.size),
            "doses_adjusted": int(np.sum(adjusted)),
            "recalibrations": int(np.sum(result.n_recalibrations)),
        }

    def run_scalar(self, plan: TherapyPlan) -> TherapyResult:
        """Per-(patient, sample) reference through the scalar APIs."""
        return _run_therapy_scalar(plan)

    def contract_plan(self) -> TherapyPlan:
        """Four cyclosporine patients, three Bayesian-dosed intervals
        with the online trough filter engaged."""
        from repro.pk.drugs import CYCLOSPORINE
        from repro.therapy.controllers import BayesianTroughController

        cohort = CYCLOSPORINE.population.sample(n_patients=4, seed=5)
        return TherapyPlan.for_drug(
            CYCLOSPORINE, cohort=cohort,
            controller=BayesianTroughController(
                prior=CYCLOSPORINE.typical_model(),
                target_trough_molar=(
                    CYCLOSPORINE.window.target_trough_molar),
                observation_sigma_molar=4e-7),
            n_doses=3, dose_interval_h=8.0, sample_period_s=1800.0,
            chunk_samples=7, seed=5, filter_troughs=True,
            process_noise_sigma_molar=1e-7, wander_sigma_a=2e-9)

    def contract_fields(self, result: TherapyResult) -> dict:
        """Doses, troughs, window metrics and the filter posterior."""
        return {
            "doses_mol": Check(result.doses_mol, atol=1e-18, rtol=1e-9),
            "trough_true_molar": Check(result.trough_true_molar,
                                       atol=1e-15, rtol=1e-9),
            "trough_estimated_molar": Check(
                result.trough_estimated_molar, atol=1e-12, rtol=1e-9),
            "trough_variance_molar2": Check(
                result.trough_variance_molar2, atol=1e-24, rtol=1e-9),
            "true_concentration_molar": Check(
                result.true_concentration_molar, atol=1e-15, rtol=1e-9),
            "estimated_concentration_molar": Check(
                result.estimated_concentration_molar, atol=1e-15,
                rtol=1e-9),
            "measured_current_a": Check(
                result.measured_current_a, atol=1e-15),
            "time_in_range": Check(result.time_in_range, atol=1e-12),
            "n_recalibrations": Check(result.n_recalibrations,
                                      exact=True),
        }


#: The registered therapy kernel set (the target of ``run_therapy``).
THERAPY_KERNELS = register_kernels(TherapyKernels())
