"""State snapshots: suspend a run at sample *k*, serialize, resume.

The incremental-execution half of the serving subsystem
(:mod:`repro.serve`) rests on one contract: a kernel set that declares
``snapshot_version`` can export its carry state as a *snapshot* — a
schema-versioned, JSON-serializable dict — and rebuild an equivalent
state from it later, in another process, on another machine.  This
module owns the snapshot wire format; the per-workload content lives on
the kernel sets themselves
(:meth:`~repro.engine.core.kernelset.KernelSet.export_state` /
:meth:`~repro.engine.core.kernelset.KernelSet.restore_state`).

Wire format:

* NumPy arrays travel as ``{"__ndarray__": true, "dtype", "shape",
  "data"}`` mappings (:func:`encode_array` / :func:`decode_array`).
  ``float64`` survives the JSON round trip exactly — Python serializes
  floats as shortest-round-trip ``repr`` — so a restored run is
  bit-identical, not merely close.
* Generator streams travel as their ``bit_generator`` state dict
  (:func:`encode_rng` / :func:`decode_rng`), which NumPy defines to be
  JSON-safe (plain ints and strings) and settable.
* The envelope carries ``schema_version`` (this module's
  :data:`SNAPSHOT_SCHEMA_VERSION`), the ``workload`` name, the kernel
  set's own ``snapshot_version`` and the suspension ``cursor``
  (samples completed); :func:`require_snapshot` validates all four.

:func:`save_snapshot` / :func:`load_snapshot` put snapshots on disk as
``.json`` (human-readable, exact) or ``.npz`` (arrays stored natively —
compact for large cursors).
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Any, Mapping

import numpy as np

#: Version stamp of the snapshot envelope and array/rng wire format.
#: Bump when the envelope changes shape; :func:`require_snapshot`
#: rejects versions it does not understand instead of misreading them.
SNAPSHOT_SCHEMA_VERSION = 1

#: Envelope keys every snapshot must carry (validated by
#: :func:`require_snapshot`).
ENVELOPE_KEYS = ("schema_version", "workload", "snapshot_version",
                 "cursor")


def encode_array(array: np.ndarray) -> dict:
    """Encode one array as a JSON-safe mapping.

    Args:
        array: any numeric NumPy array (or something ``np.asarray``
            accepts).

    Returns:
        ``{"__ndarray__": True, "dtype", "shape", "data"}`` with the
        values flattened to a plain list.  ``float64`` values survive
        the JSON round trip exactly.
    """
    array = np.asarray(array)
    return {
        "__ndarray__": True,
        "dtype": str(array.dtype),
        "shape": list(array.shape),
        "data": array.ravel().tolist(),
    }


def decode_array(data: Mapping[str, Any]) -> np.ndarray:
    """Rebuild an array from :func:`encode_array` output."""
    if not (isinstance(data, Mapping) and data.get("__ndarray__")):
        raise ValueError(
            f"not an encoded array: {type(data).__name__}")
    return np.asarray(data["data"],
                      dtype=np.dtype(data["dtype"])).reshape(
                          tuple(data["shape"]))


def encode_rng(generator: np.random.Generator) -> dict:
    """Encode a generator's position as its bit-generator state dict.

    The returned mapping is exactly
    ``generator.bit_generator.state`` — NumPy defines it to be a plain,
    JSON-safe dict (the bit-generator name plus integer state words),
    and assigning it back advances a fresh generator to the identical
    stream position.
    """
    return dict(generator.bit_generator.state)


def decode_rng(state: Mapping[str, Any]) -> np.random.Generator:
    """Rebuild a generator at the position :func:`encode_rng` captured.

    Raises:
        ValueError: unknown bit-generator name (a snapshot from a NumPy
            build this one does not have).
    """
    name = state.get("bit_generator")
    try:
        bit_generator = getattr(np.random, name)()
    except (TypeError, AttributeError):
        raise ValueError(
            f"unknown bit generator {name!r} in rng snapshot") from None
    bit_generator.state = dict(state)
    return np.random.Generator(bit_generator)


def snapshot_envelope(workload: str, snapshot_version: int,
                      cursor: int) -> dict:
    """The common envelope every kernel-set snapshot starts from.

    Args:
        workload: registry name of the exporting kernel set.
        snapshot_version: the kernel set's declared
            ``snapshot_version``.
        cursor: samples completed at suspension time.

    Returns:
        A dict carrying :data:`ENVELOPE_KEYS`; the kernel set adds its
        state fields next to them.
    """
    return {
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "workload": workload,
        "snapshot_version": int(snapshot_version),
        "cursor": int(cursor),
    }


def require_snapshot(snapshot: Mapping[str, Any], workload: str,
                     snapshot_version: int, n_samples: int) -> int:
    """Validate a snapshot envelope and return its cursor.

    Args:
        snapshot: the mapping to validate.
        workload: the restoring kernel set's registry name.
        snapshot_version: the restoring kernel set's declared version.
        n_samples: the restoring plan's sample-axis length (the cursor
            must lie in ``[0, n_samples]``).

    Raises:
        ValueError: missing envelope keys, a schema or workload or
            version mismatch, or an out-of-range cursor — each named
            explicitly so a stale snapshot fails loudly.
    """
    if not isinstance(snapshot, Mapping):
        raise ValueError(
            f"snapshot must be a mapping, got {type(snapshot).__name__}")
    missing = [key for key in ENVELOPE_KEYS if key not in snapshot]
    if missing:
        raise ValueError(f"snapshot is missing {missing}")
    if snapshot["schema_version"] != SNAPSHOT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported snapshot schema_version "
            f"{snapshot['schema_version']!r} (this build reads version "
            f"{SNAPSHOT_SCHEMA_VERSION})")
    if snapshot["workload"] != workload:
        raise ValueError(
            f"snapshot belongs to workload {snapshot['workload']!r}, "
            f"not {workload!r}")
    if snapshot["snapshot_version"] != snapshot_version:
        raise ValueError(
            f"unsupported {workload} snapshot_version "
            f"{snapshot['snapshot_version']!r} (this build reads "
            f"version {snapshot_version})")
    cursor = snapshot["cursor"]
    if not isinstance(cursor, int) or not 0 <= cursor <= n_samples:
        raise ValueError(
            f"snapshot cursor {cursor!r} outside [0, {n_samples}]")
    return cursor


def _extract_arrays(node: Any, arrays: dict, prefix: str) -> Any:
    """Replace encoded arrays with ``{"__npz__": key}`` placeholders."""
    if isinstance(node, Mapping):
        if node.get("__ndarray__"):
            key = f"arr_{len(arrays)}"
            arrays[key] = decode_array(node)
            return {"__npz__": key}
        return {key: _extract_arrays(value, arrays, f"{prefix}.{key}")
                for key, value in node.items()}
    if isinstance(node, list):
        return [_extract_arrays(item, arrays, f"{prefix}[{i}]")
                for i, item in enumerate(node)]
    return node


def _restore_arrays(node: Any, arrays: Mapping[str, np.ndarray]) -> Any:
    """Inverse of :func:`_extract_arrays`: placeholders back to arrays."""
    if isinstance(node, Mapping):
        if "__npz__" in node:
            return encode_array(arrays[node["__npz__"]])
        return {key: _restore_arrays(value, arrays)
                for key, value in node.items()}
    if isinstance(node, list):
        return [_restore_arrays(item, arrays) for item in node]
    return node


def save_snapshot(snapshot: Mapping[str, Any],
                  path: "str | Path") -> Path:
    """Write a snapshot to disk and return the path.

    ``.json`` targets get the snapshot verbatim (exact float64 round
    trip, human-readable).  ``.npz`` targets store every encoded array
    natively (binary, compact) next to a JSON skeleton — the format for
    week-long cursors where a list-of-floats JSON would be bulky.

    Args:
        snapshot: a kernel set's ``export_state`` output.
        path: target file; the suffix selects the format.
    """
    target = Path(path)
    if target.suffix == ".npz":
        arrays: dict[str, np.ndarray] = {}
        skeleton = _extract_arrays(dict(snapshot), arrays, "snapshot")
        buffer = io.BytesIO()
        np.savez(buffer, __snapshot__=np.frombuffer(
            json.dumps(skeleton, sort_keys=True).encode(),
            dtype=np.uint8), **arrays)
        target.write_bytes(buffer.getvalue())
    else:
        target.write_text(json.dumps(snapshot, indent=2,
                                     sort_keys=True) + "\n")
    return target


def load_snapshot(path: "str | Path") -> dict:
    """Read a snapshot written by :func:`save_snapshot`.

    Returns:
        The snapshot dict, with ``.npz`` arrays re-encoded into the
        JSON-safe :func:`encode_array` form so both formats restore
        through one code path.
    """
    source = Path(path)
    if source.suffix == ".npz":
        with np.load(source) as archive:
            skeleton = json.loads(
                archive["__snapshot__"].tobytes().decode())
            arrays = {key: archive[key] for key in archive.files
                      if key != "__snapshot__"}
        return _restore_arrays(skeleton, arrays)
    return json.loads(source.read_text())
