"""One execution core for every workload: plan graph -> chunked kernels.

The four engine workloads (calibration batches, continuous monitoring,
closed-loop therapy, concentration estimation) share one execution
skeleton: a declarative plan is compiled to an
:class:`~repro.engine.core.plan.ExecutionPlan` (channel axis, sample
axis, chunking policy, segment graph), and a registered
:class:`~repro.engine.core.kernelset.KernelSet` advances carry state
through :func:`~repro.engine.core.executor.execute`'s chunk loop.  The
core provides, once for everyone: chunked iteration, carry-state
threading, chunk-size invariance and scalar-equivalence checking
(:mod:`~repro.engine.core.contract`), and the gated speedup-bench
harness (:mod:`~repro.engine.core.bench`).

Entry points:

* :func:`run_workload` — vectorized path for any registered workload.
* :func:`run_scalar` — the per-element scalar reference, replacing the
  historical ``run_*_scalar`` quartet.

Adding a fifth workload means writing a kernel set and registering it —
not a fifth engine.  See ``docs/architecture.md``.
"""

from repro.engine.core.bench import (
    best_of,
    floor_from_env,
    measure_speedup,
)
from repro.engine.core.contract import (
    DEFAULT_CHUNK_SIZES,
    assert_fields_match,
    check_chunk_invariance,
    check_deterministic_replay,
    check_scalar_equivalence,
)
from repro.engine.core.executor import execute
from repro.engine.core.kernelset import Check, KernelSet
from repro.engine.core.plan import (
    ExecutionPlan,
    PlanBase,
    Segment,
    require_at_least,
    require_in_open_unit_interval,
    require_non_empty,
    require_non_negative,
    require_positive,
    single_segment,
    spans_to_segments,
    uniform_segments,
)
from repro.engine.core.registry import (
    kernels_for,
    register_kernels,
    registered_workloads,
    run_scalar,
    run_workload,
)
from repro.engine.core.snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    decode_array,
    decode_rng,
    encode_array,
    encode_rng,
    load_snapshot,
    require_snapshot,
    save_snapshot,
    snapshot_envelope,
)

__all__ = [
    "Check",
    "DEFAULT_CHUNK_SIZES",
    "ExecutionPlan",
    "KernelSet",
    "PlanBase",
    "SNAPSHOT_SCHEMA_VERSION",
    "Segment",
    "assert_fields_match",
    "best_of",
    "check_chunk_invariance",
    "check_deterministic_replay",
    "check_scalar_equivalence",
    "decode_array",
    "decode_rng",
    "encode_array",
    "encode_rng",
    "execute",
    "floor_from_env",
    "kernels_for",
    "load_snapshot",
    "measure_speedup",
    "register_kernels",
    "registered_workloads",
    "require_snapshot",
    "save_snapshot",
    "snapshot_envelope",
    "require_at_least",
    "require_in_open_unit_interval",
    "require_non_empty",
    "require_non_negative",
    "require_positive",
    "run_scalar",
    "run_workload",
    "single_segment",
    "spans_to_segments",
    "uniform_segments",
]
