"""The chunk executor: one loop that runs every workload.

:func:`execute` is the single execution path behind ``run_batch``,
``run_monitor``, ``run_therapy`` and ``run_estimation``.  It compiles
the declarative plan, builds the kernel set's carry state, then walks
the segment graph chunk by chunk:

    compile -> init_state
    for each segment:
        begin_segment
        for each chunk in segment:          # never crosses a boundary
            run_chunk(start, stop)
        end_segment
    finalize -> result

Because all cross-chunk information lives in the carry state and each
kernel consumes its random streams strictly in sample order, results
depend only on the plan (and its seed), never on the chunking policy —
the property the shared contract suite gates for every workload.

Telemetry rides on this one loop, so every workload — and any future
fifth kernel set — gets timing for free: when the process-local
recorder is enabled (:func:`repro.telemetry.get_recorder`), the
executor emits per-phase spans (``core.compile`` / ``core.init_state``
/ ``core.segment`` / ``core.run_chunk`` / ``core.finalize``), a
``core.samples`` cells-times-samples throughput counter, and the kernel
set's optional :meth:`~repro.engine.core.kernelset.KernelSet.describe_metrics`
counters.  When the recorder is disabled — the default — :func:`execute`
takes a branch that never touches telemetry at all, so the hot loop is
byte-for-byte the uninstrumented one (gated to <= 3 % overhead in
``benchmarks/bench_core.py``).
"""

from __future__ import annotations

from repro.engine.core.kernelset import KernelSet
from repro.telemetry import get_recorder


def execute(kernels: KernelSet, plan):
    """Run one declarative plan through its kernel set.

    Args:
        kernels: the workload's registered :class:`KernelSet`.
        plan: an instance of ``kernels.plan_type``.

    Returns:
        The workload's result object (``kernels.finalize``'s return),
        satisfying the scenario layer's ``ResultProtocol``.

    Raises:
        TypeError: if ``plan`` is not the plan type the kernel set
            compiles.
    """
    if not isinstance(plan, kernels.plan_type):
        raise TypeError(
            f"{kernels.name} kernels expect {kernels.plan_type.__name__}, "
            f"got {type(plan).__name__}")
    recorder = get_recorder()
    if not recorder.enabled:
        # The zero-cost default: identical to the pre-telemetry loop,
        # no per-chunk telemetry calls or allocations of any kind.
        compiled = kernels.compile(plan)
        state = kernels.init_state(plan)
        for segment in compiled.segments:
            kernels.begin_segment(plan, state, segment)
            for start in range(segment.start, segment.stop,
                               compiled.chunk_samples):
                stop = min(start + compiled.chunk_samples, segment.stop)
                kernels.run_chunk(plan, state, segment, start, stop)
            kernels.end_segment(plan, state, segment)
        return kernels.finalize(plan, state)
    return _execute_instrumented(kernels, plan, recorder)


def _execute_instrumented(kernels: KernelSet, plan, recorder):
    """The same loop with spans and counters around every phase."""
    workload = kernels.name
    with recorder.span("core.execute", workload=workload):
        with recorder.span("core.compile", workload=workload):
            compiled = kernels.compile(plan)
        with recorder.span("core.init_state", workload=workload):
            state = kernels.init_state(plan)
        n_channels = compiled.n_channels
        for segment in compiled.segments:
            with recorder.span("core.segment", workload=workload,
                               segment=segment.index):
                kernels.begin_segment(plan, state, segment)
                for start in range(segment.start, segment.stop,
                                   compiled.chunk_samples):
                    stop = min(start + compiled.chunk_samples,
                               segment.stop)
                    with recorder.span("core.run_chunk",
                                       workload=workload,
                                       segment=segment.index):
                        kernels.run_chunk(plan, state, segment, start,
                                          stop)
                    recorder.count("core.chunks")
                    recorder.count("core.samples",
                                   n_channels * (stop - start))
                kernels.end_segment(plan, state, segment)
        with recorder.span("core.finalize", workload=workload):
            result = kernels.finalize(plan, state)
    for metric, value in kernels.describe_metrics(plan, result).items():
        recorder.count(f"{workload}.{metric}", float(value))
    return result
