"""The chunk executor: one loop that runs every workload.

:func:`execute` is the single execution path behind ``run_batch``,
``run_monitor``, ``run_therapy`` and ``run_estimation``.  It compiles
the declarative plan, builds the kernel set's carry state, then walks
the segment graph chunk by chunk:

    compile -> init_state
    for each segment:
        begin_segment
        for each chunk in segment:          # never crosses a boundary
            run_chunk(start, stop)
        end_segment
    finalize -> result

Because all cross-chunk information lives in the carry state and each
kernel consumes its random streams strictly in sample order, results
depend only on the plan (and its seed), never on the chunking policy —
the property the shared contract suite gates for every workload.

Observability rides on this one loop, so every workload — and any
future fifth kernel set — gets timing for free.  Two independent
layers, each with its own on/off switch:

* **Spans** (:func:`repro.telemetry.get_recorder` enabled): per-phase
  spans (``core.compile`` / ``core.init_state`` / ``core.segment`` /
  ``core.run_chunk`` / ``core.finalize``), a ``core.samples``
  cells-times-samples throughput counter, and the kernel set's optional
  :meth:`~repro.engine.core.kernelset.KernelSet.describe_metrics`
  counters.
* **Metrics** (:func:`repro.telemetry.get_metrics_registry` enabled):
  per-workload ``repro_core_execute_seconds`` and
  ``repro_core_chunk_seconds`` latency histograms plus
  ``repro_core_chunks_total`` / ``repro_core_samples_total`` throughput
  counters — the fleet-aggregable view ``campaign report`` and the
  serve front door expose.

When both are disabled — the default — :func:`execute` takes a branch
that never touches telemetry at all, so the hot loop is byte-for-byte
the uninstrumented one (gated to <= 3 % overhead in
``benchmarks/bench_core.py``; the *enabled*-metrics path carries its
own <= 3 % gate there too).
"""

from __future__ import annotations

import time

from repro.engine.core.kernelset import KernelSet
from repro.telemetry import get_metrics_registry, get_recorder
from repro.telemetry.metrics import exponential_buckets

#: Buckets for whole-``execute()`` latency: 1 ms doubling to ~65 s.
EXECUTE_BUCKETS_S = exponential_buckets(1e-3, 2.0, 17)

#: Buckets for per-chunk latency: 10 µs doubling to ~0.33 s.
CHUNK_BUCKETS_S = exponential_buckets(1e-5, 2.0, 16)


def execute(kernels: KernelSet, plan):
    """Run one declarative plan through its kernel set.

    Args:
        kernels: the workload's registered :class:`KernelSet`.
        plan: an instance of ``kernels.plan_type``.

    Returns:
        The workload's result object (``kernels.finalize``'s return),
        satisfying the scenario layer's ``ResultProtocol``.

    Raises:
        TypeError: if ``plan`` is not the plan type the kernel set
            compiles.
    """
    if not isinstance(plan, kernels.plan_type):
        raise TypeError(
            f"{kernels.name} kernels expect {kernels.plan_type.__name__}, "
            f"got {type(plan).__name__}")
    recorder = get_recorder()
    registry = get_metrics_registry()
    if not recorder.enabled and not registry.enabled:
        # The zero-cost default: identical to the pre-telemetry loop,
        # no per-chunk telemetry calls or allocations of any kind.
        compiled = kernels.compile(plan)
        state = kernels.init_state(plan)
        for segment in compiled.segments:
            kernels.begin_segment(plan, state, segment)
            for start in range(segment.start, segment.stop,
                               compiled.chunk_samples):
                stop = min(start + compiled.chunk_samples, segment.stop)
                kernels.run_chunk(plan, state, segment, start, stop)
            kernels.end_segment(plan, state, segment)
        return kernels.finalize(plan, state)
    return _execute_instrumented(kernels, plan, recorder, registry)


def _core_instruments(registry, workload: str):
    """The executor's per-workload metric series (get-or-create)."""
    labels = ("workload",)
    return (
        registry.histogram(
            "repro_core_execute_seconds",
            "End-to-end execute() latency per workload.",
            labels, buckets=EXECUTE_BUCKETS_S).labels(workload=workload),
        registry.histogram(
            "repro_core_chunk_seconds",
            "Per-chunk kernel latency per workload.",
            labels, buckets=CHUNK_BUCKETS_S).labels(workload=workload),
        registry.counter(
            "repro_core_chunks_total",
            "Chunks executed per workload.",
            labels).labels(workload=workload),
        registry.counter(
            "repro_core_samples_total",
            "Cells-times-samples processed per workload.",
            labels).labels(workload=workload),
    )


def _execute_instrumented(kernels: KernelSet, plan, recorder, registry):
    """The same loop with spans, counters and metrics around every phase."""
    workload = kernels.name
    metrics_on = registry.enabled
    if metrics_on:
        (execute_seconds, chunk_seconds, chunks_total,
         samples_total) = _core_instruments(registry, workload)
    execute_start = time.perf_counter()
    with recorder.span("core.execute", workload=workload):
        with recorder.span("core.compile", workload=workload):
            compiled = kernels.compile(plan)
        with recorder.span("core.init_state", workload=workload):
            state = kernels.init_state(plan)
        n_channels = compiled.n_channels
        for segment in compiled.segments:
            with recorder.span("core.segment", workload=workload,
                               segment=segment.index):
                kernels.begin_segment(plan, state, segment)
                for start in range(segment.start, segment.stop,
                                   compiled.chunk_samples):
                    stop = min(start + compiled.chunk_samples,
                               segment.stop)
                    chunk_start = time.perf_counter()
                    with recorder.span("core.run_chunk",
                                       workload=workload,
                                       segment=segment.index):
                        kernels.run_chunk(plan, state, segment, start,
                                          stop)
                    recorder.count("core.chunks")
                    recorder.count("core.samples",
                                   n_channels * (stop - start))
                    if metrics_on:
                        chunk_seconds.observe(
                            time.perf_counter() - chunk_start)
                        chunks_total.inc()
                        samples_total.inc(n_channels * (stop - start))
                kernels.end_segment(plan, state, segment)
        with recorder.span("core.finalize", workload=workload):
            result = kernels.finalize(plan, state)
    if metrics_on:
        execute_seconds.observe(time.perf_counter() - execute_start)
    for metric, value in kernels.describe_metrics(plan, result).items():
        recorder.count(f"{workload}.{metric}", float(value))
    return result
