"""The chunk executor: one loop that runs every workload.

:func:`execute` is the single execution path behind ``run_batch``,
``run_monitor``, ``run_therapy`` and ``run_estimation``.  It compiles
the declarative plan, builds the kernel set's carry state, then walks
the segment graph chunk by chunk:

    compile -> init_state
    for each segment:
        begin_segment
        for each chunk in segment:          # never crosses a boundary
            run_chunk(start, stop)
        end_segment
    finalize -> result

Because all cross-chunk information lives in the carry state and each
kernel consumes its random streams strictly in sample order, results
depend only on the plan (and its seed), never on the chunking policy —
the property the shared contract suite gates for every workload.
"""

from __future__ import annotations

from repro.engine.core.kernelset import KernelSet


def execute(kernels: KernelSet, plan):
    """Run one declarative plan through its kernel set.

    Args:
        kernels: the workload's registered :class:`KernelSet`.
        plan: an instance of ``kernels.plan_type``.

    Returns:
        The workload's result object (``kernels.finalize``'s return),
        satisfying the scenario layer's ``ResultProtocol``.

    Raises:
        TypeError: if ``plan`` is not the plan type the kernel set
            compiles.
    """
    if not isinstance(plan, kernels.plan_type):
        raise TypeError(
            f"{kernels.name} kernels expect {kernels.plan_type.__name__}, "
            f"got {type(plan).__name__}")
    compiled = kernels.compile(plan)
    state = kernels.init_state(plan)
    for segment in compiled.segments:
        kernels.begin_segment(plan, state, segment)
        for start in range(segment.start, segment.stop,
                           compiled.chunk_samples):
            stop = min(start + compiled.chunk_samples, segment.stop)
            kernels.run_chunk(plan, state, segment, start, stop)
        kernels.end_segment(plan, state, segment)
    return kernels.finalize(plan, state)
