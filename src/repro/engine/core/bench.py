"""Shared speedup-bench harness: time once, gate everywhere.

Every workload's benchmark pairs the chunked executor against an honest
scalar baseline and gates the ratio on a floor read from the
environment (relaxed in CI, strict locally).  This module owns the
mechanics all four used to copy-paste:

* :func:`best_of` — min-of-N wall-clock timing.
* :func:`floor_from_env` — resolve a workload's speedup floor.
* :func:`measure_speedup` — warm, time both sides, return the JSON
  payload (``scalar_wall_s`` / ``batch_wall_s`` / ``speedup`` /
  ``speedup_floor`` plus workload-specific extras) written to
  ``BENCH_<record>.json``.

``benchmarks/bench_core.py`` drives this harness over every registered
workload in one loop and additionally emits the unified
``BENCH_core.json`` record.
"""

from __future__ import annotations

import os
import time


def best_of(fn, repeats: int = 3) -> float:
    """Minimum wall-clock seconds of ``fn()`` over ``repeats`` calls."""
    return min(_timed(fn) for _ in range(max(1, repeats)))


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def floor_from_env(env_var: str, default: float = 5.0) -> float:
    """Speedup floor for one workload, from ``env_var`` or ``default``.

    Local runs keep the strict acceptance floor; CI exports relaxed
    values because shared runners add timing noise.
    """
    return float(os.environ.get(env_var, str(default)))


def measure_speedup(fast, slow, floor: float, extras=None,
                    repeats: int = 3, scalar_repeats: int = 1,
                    warm: bool = True) -> dict:
    """Time a vectorized/scalar pair and assemble the bench payload.

    Args:
        fast: zero-argument callable running the chunked-executor path.
        slow: zero-argument callable running the scalar baseline.
        floor: minimum acceptable ``fast``-over-``slow`` speedup
            (stored in the payload; the caller asserts it).
        extras: workload-specific payload fields (sample counts, ...).
        repeats: best-of count for the fast path.
        scalar_repeats: best-of count for the slow path (1 keeps the
            smoke run short; min-of-1 only over-estimates the scalar
            time, which relaxes, never tightens, the gate).
        warm: run ``fast()`` once untimed first (JIT-free here, but it
            fills lazy caches so the timed runs compare steady state).

    Returns:
        The JSON-serializable payload for ``BENCH_<record>.json``.
    """
    if warm:
        fast()
    batch_wall = best_of(fast, repeats=repeats)
    scalar_wall = best_of(slow, repeats=scalar_repeats)
    payload = dict(extras or {})
    payload.update(
        scalar_wall_s=scalar_wall,
        batch_wall_s=batch_wall,
        speedup=scalar_wall / batch_wall,
        speedup_floor=floor,
    )
    return payload
