"""Workload registry: names -> kernel sets, plus the unified entry points.

Engines register their kernel set at import time; the registry is how
everything above the engine layer (scenarios, benchmarks, the contract
suite) reaches an execution path without hard-coding four functions:

* :func:`run_workload` — the vectorized path (compile + chunked
  executor) for any registered workload.
* :func:`run_scalar` — the per-element reference path, replacing the
  four historical ``run_*_scalar`` functions (kept as deprecated
  aliases in their home modules).

Lookups lazily import :mod:`repro.engine` so the four built-in kernel
sets are registered on first use even when only
``repro.engine.core`` was imported.
"""

from __future__ import annotations

from repro.engine.core.executor import execute
from repro.engine.core.kernelset import KernelSet

_KERNEL_SETS: "dict[str, KernelSet]" = {}


def register_kernels(kernels: KernelSet,
                     replace: bool = False) -> KernelSet:
    """Register a kernel set under its ``name``; returns it.

    Args:
        kernels: the kernel set to register.
        replace: allow overwriting an existing registration (tests).

    Raises:
        ValueError: if the name is taken and ``replace`` is false.
    """
    if not replace and kernels.name in _KERNEL_SETS:
        raise ValueError(
            f"kernel set {kernels.name!r} is already registered")
    _KERNEL_SETS[kernels.name] = kernels
    return kernels


def _ensure_builtin_kernels() -> None:
    # The built-in engines register on import; anything that reached
    # this registry through repro.engine already triggered it, but a
    # bare `import repro.engine.core` has not.
    import repro.engine  # noqa: F401


def registered_workloads() -> "tuple[str, ...]":
    """Names of every registered workload, in registration order."""
    _ensure_builtin_kernels()
    return tuple(_KERNEL_SETS)


def kernels_for(workload: str) -> KernelSet:
    """Look up the kernel set registered under ``workload``.

    Raises:
        KeyError: for an unknown workload name (the message lists
            what is registered).
    """
    _ensure_builtin_kernels()
    try:
        return _KERNEL_SETS[workload]
    except KeyError:
        known = ", ".join(sorted(_KERNEL_SETS)) or "none"
        raise KeyError(
            f"unknown workload {workload!r}; registered: {known}") from None


def run_workload(workload: str, plan):
    """Run ``plan`` through the chunked executor of the named workload.

    This is the single vectorized execution path; the public
    ``run_batch`` / ``run_monitor`` / ``run_therapy`` /
    ``run_estimation`` functions are thin wrappers over it.
    """
    return execute(kernels_for(workload), plan)


def run_scalar(workload: str, plan):
    """Run ``plan`` through the named workload's scalar reference.

    Replaces the historical ``run_batch_scalar`` /
    ``run_monitor_scalar`` / ``run_therapy_scalar`` /
    ``run_estimation_scalar`` quartet; those names remain as
    ``DeprecationWarning`` aliases of this entry point.
    """
    return kernels_for(workload).run_scalar(plan)
