"""The kernel-set contract: what a workload registers with the core.

A workload joins the execution core by subclassing :class:`KernelSet`
and registering one instance.  The subclass supplies three surfaces:

* **Execution** — ``compile`` turns the declarative plan into an
  :class:`~repro.engine.core.plan.ExecutionPlan`; ``init_state`` builds
  the carry state threaded through every chunk; ``begin_segment`` /
  ``run_chunk`` / ``end_segment`` advance it; ``finalize`` assembles
  the result object.  The executor owns the loop — kernel sets never
  iterate chunks themselves.

* **Reference** — ``run_scalar`` is the slow, per-element reference
  implementation the vectorized kernels are checked against (the
  registry exposes it as ``run_scalar(workload, plan)``).

* **Contract** — ``contract_plan`` / ``with_chunk_samples`` /
  ``contract_fields`` let the shared contract suite prove chunk-size
  invariance, scalar equivalence, and deterministic replay for every
  registered workload from one parametrized test, with each field's
  tolerance declared as a :class:`Check`.

* **Snapshot** (optional) — a kernel set that declares
  ``snapshot_version`` additionally supports incremental execution:
  ``export_state`` serializes the carry state at sample *k* as a
  schema-versioned snapshot (:mod:`repro.engine.core.snapshot` wire
  format), ``restore_state`` rebuilds it, and ``stream_update`` yields
  the incremental per-chunk outputs a live consumer (a
  :class:`repro.serve.StreamSession`) reads as readings arrive.
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar

from repro.engine.core.plan import ExecutionPlan, Segment


@dataclass(frozen=True)
class Check:
    """One result field plus the tolerance it is compared under.

    Attributes:
        value: the field's value in one particular run.
        atol: absolute tolerance for float comparisons.
        rtol: relative tolerance for float comparisons.
        exact: compare with ``==`` (ints, tuples, event lists) instead
            of a toleranced float comparison.
    """

    value: Any
    atol: float = 1e-9
    rtol: float = 0.0
    exact: bool = False


class KernelSet(abc.ABC):
    """Everything one workload teaches the execution core.

    Class attributes:
        name: registry key (``"calibration"``, ``"monitor"``, ...).
        plan_type: the declarative plan dataclass this set compiles.
        bench_record: stem of the per-workload benchmark record the
            shared harness writes (``BENCH_<bench_record>.json``).
        floor_env: environment variable holding this workload's
            speedup floor (read by the shared bench harness).
        snapshot_version: version stamp of this kernel set's snapshot
            content (``None`` — the default — means the workload does
            not support suspend/resume; see the snapshot surface
            below).
    """

    name: ClassVar[str]
    plan_type: ClassVar[type]
    bench_record: ClassVar[str]
    floor_env: ClassVar[str]
    snapshot_version: ClassVar["int | None"] = None

    # -- execution surface -------------------------------------------------

    @abc.abstractmethod
    def compile(self, plan) -> ExecutionPlan:
        """Compile the declarative plan into an execution plan."""

    @abc.abstractmethod
    def init_state(self, plan) -> Any:
        """Build the carry state threaded through every chunk."""

    def begin_segment(self, plan, state, segment: Segment) -> None:
        """Hook run before a segment's first chunk (default: no-op)."""

    @abc.abstractmethod
    def run_chunk(self, plan, state, segment: Segment,
                  start: int, stop: int) -> None:
        """Advance the carry state over samples ``[start, stop)``."""

    def end_segment(self, plan, state, segment: Segment) -> None:
        """Hook run after a segment's last chunk (default: no-op)."""

    @abc.abstractmethod
    def finalize(self, plan, state):
        """Assemble the workload's result object from the carry state."""

    # -- snapshot surface --------------------------------------------------

    def export_state(self, plan, state, cursor: int) -> dict:
        """Serialize the carry state after ``cursor`` completed samples.

        Returns a schema-versioned, JSON-serializable snapshot dict
        (see :mod:`repro.engine.core.snapshot` for the wire format and
        the envelope helpers).  Restoring it with :meth:`restore_state`
        and finishing the run must reproduce the uninterrupted result
        bit-identically (<= 1e-9, property-tested in
        ``tests/serve/test_snapshot_property.py``).  Only kernel sets
        declaring ``snapshot_version`` implement this.
        """
        raise NotImplementedError(
            f"{self.name} kernels do not support state snapshots "
            f"(snapshot_version is None)")

    def restore_state(self, plan, snapshot) -> "tuple[Any, int]":
        """Rebuild ``(state, cursor)`` from an :meth:`export_state` dict.

        The returned state must be indistinguishable from one that ran
        ``[0, cursor)`` in-process: generator streams repositioned,
        accumulators and live calibration restored, trace prefixes
        filled.  Raises ``ValueError`` for snapshots of another
        workload, schema or plan shape.
        """
        raise NotImplementedError(
            f"{self.name} kernels do not support state snapshots "
            f"(snapshot_version is None)")

    def stream_update(self, plan, state, start: int, stop: int) -> dict:
        """Incremental outputs of the chunk that just ran.

        Called by a :class:`repro.serve.StreamSession` immediately
        after ``run_chunk(plan, state, segment, start, stop)`` with the
        same bounds; returns ``{field: (n_channels, stop - start)
        array}`` of the per-sample quantities a live consumer wants
        (filtered estimates, measured currents, truth where the
        simulator knows it).  Only kernel sets declaring
        ``snapshot_version`` implement this.
        """
        raise NotImplementedError(
            f"{self.name} kernels do not support streaming "
            f"(snapshot_version is None)")

    # -- telemetry surface -------------------------------------------------

    def describe_metrics(self, plan, result) -> "dict[str, float]":
        """Workload-specific telemetry counters for one finished run.

        Called by the executor *only when telemetry is enabled*, after
        ``finalize``; each ``{metric: value}`` entry lands on the active
        recorder as the counter ``<workload>.<metric>`` (e.g.
        ``monitor.recalibrations``).  Values must be plain numbers.
        The default is no workload-specific counters — the core's
        spans and throughput counters still apply.
        """
        return {}

    # -- reference surface -------------------------------------------------

    @abc.abstractmethod
    def run_scalar(self, plan):
        """Per-element reference implementation (slow, no chunking)."""

    # -- contract surface --------------------------------------------------

    @abc.abstractmethod
    def contract_plan(self):
        """A small declarative plan the shared contract suite can run
        in well under a second."""

    def with_chunk_samples(self, plan, chunk_samples: int):
        """Return a copy of ``plan`` with a different chunking policy.

        The default assumes the plan dataclass carries a
        ``chunk_samples`` field; workloads whose knob lives elsewhere
        (calibration chunks cells, estimation chunks the wrapped
        monitor) override this.
        """
        return dataclasses.replace(plan, chunk_samples=chunk_samples)

    @abc.abstractmethod
    def contract_fields(self, result) -> "dict[str, Check]":
        """Map result-field names to :class:`Check` comparisons.

        The shared contract suite runs the workload twice (different
        chunking, or batch vs. scalar) and asserts each named field
        agrees under its declared tolerance.
        """
