"""The execution contract every registered workload must honour.

Three properties, checked once here instead of once per engine:

* **Chunk-size invariance** — results depend only on the plan, never
  on ``chunk_samples`` (chunks of 1, a prime, and one covering the
  whole axis all agree).
* **Scalar equivalence** — the vectorized kernels agree with the
  per-element ``run_scalar`` reference to each field's declared
  tolerance (``<= 1e-9`` for concentrations and derived scores).
* **Deterministic replay** — the same plan replays bit for bit.

Each check runs the workload through :func:`~.executor.execute` and
compares the field dictionaries the kernel set declares via
``contract_fields`` — a field compares either exactly (counts, event
times) or under its :class:`~.kernelset.Check` tolerances.  The
parametrized suite in ``tests/engine/test_core_contract.py`` applies
these helpers to every registered workload.
"""

from __future__ import annotations

import numpy as np

from repro.engine.core.executor import execute
from repro.engine.core.kernelset import Check, KernelSet

#: Chunk sizes the invariance check compares against the plan's own
#: chunking: single-sample, an awkward prime, and one chunk spanning
#: everything.
DEFAULT_CHUNK_SIZES = (1, 13, 10**6)


def _compare_field(workload: str, context: str, name: str,
                   reference: Check, candidate: Check) -> None:
    ref, cand = reference.value, candidate.value
    label = f"{workload} {context}: field {name!r}"
    if ref is None or cand is None:
        assert ref is None and cand is None, label
        return
    if reference.exact:
        if isinstance(ref, np.ndarray) or isinstance(cand, np.ndarray):
            np.testing.assert_array_equal(cand, ref, err_msg=label)
        else:
            assert cand == ref, f"{label}: {cand!r} != {ref!r}"
        return
    np.testing.assert_allclose(cand, ref, rtol=reference.rtol,
                               atol=reference.atol, err_msg=label)


def assert_fields_match(workload: str, context: str,
                        reference: "dict[str, Check]",
                        candidate: "dict[str, Check]") -> None:
    """Assert two contract-field dictionaries agree field by field.

    Tolerances come from the ``reference`` side; both dictionaries
    must declare the same field names.
    """
    assert set(reference) == set(candidate), (
        f"{workload} {context}: field sets differ: "
        f"{sorted(set(reference) ^ set(candidate))}")
    for name, ref_check in reference.items():
        _compare_field(workload, context, name, ref_check,
                       candidate[name])


def check_chunk_invariance(kernels: KernelSet,
                           chunk_sizes=DEFAULT_CHUNK_SIZES) -> None:
    """Prove results are independent of the chunking policy.

    Runs the kernel set's contract plan as declared, then once per
    entry in ``chunk_sizes``, and asserts every contract field agrees.
    """
    plan = kernels.contract_plan()
    reference = kernels.contract_fields(execute(kernels, plan))
    for chunk in chunk_sizes:
        rechunked = kernels.with_chunk_samples(plan, chunk)
        candidate = kernels.contract_fields(execute(kernels, rechunked))
        assert_fields_match(kernels.name, f"chunk={chunk}", reference,
                            candidate)


def check_scalar_equivalence(kernels: KernelSet) -> None:
    """Prove the vectorized kernels match the scalar reference."""
    plan = kernels.contract_plan()
    reference = kernels.contract_fields(execute(kernels, plan))
    candidate = kernels.contract_fields(kernels.run_scalar(plan))
    assert_fields_match(kernels.name, "scalar reference", reference,
                        candidate)


def check_deterministic_replay(kernels: KernelSet) -> None:
    """Prove the same plan replays identically (exact comparison)."""
    plan = kernels.contract_plan()
    first = kernels.contract_fields(execute(kernels, plan))
    second = kernels.contract_fields(execute(kernels, plan))
    exact = {name: Check(value=check.value, exact=True)
             for name, check in first.items()}
    again = {name: Check(value=check.value, exact=True)
             for name, check in second.items()}
    assert_fields_match(kernels.name, "replay", exact, again)
