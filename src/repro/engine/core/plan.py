"""Plan graph: validated plan base + compiled execution descriptions.

Two layers live here, one declarative and one compiled:

* :class:`PlanBase` is the shared root of every engine plan dataclass
  (:class:`~repro.engine.BatchPlan`, :class:`~repro.engine.MonitorPlan`,
  :class:`~repro.engine.TherapyPlan`,
  :class:`~repro.engine.EstimationPlan`).  It routes ``__post_init__``
  into a single ``validate()`` hook and ships the field validators
  (:func:`require_positive` and friends) that keep ``ValueError``
  wording consistent across all workloads — "duration_h must be > 0"
  reads the same whether a monitor or a therapy plan raised it.

* :class:`ExecutionPlan` is what a workload's kernel set *compiles* a
  declarative plan into: the channel axis, the sample axis, the chunking
  policy, and the segment graph the executor walks.  A
  :class:`Segment` is a half-open ``[start, stop)`` range of absolute
  sample indices with begin/end hooks — one segment per dose interval
  for therapy, one per sensor for calibration campaigns, one spanning
  the whole horizon for monitoring.  Chunking never crosses a segment
  boundary, and all state threading between chunks happens through the
  kernel set's carry state, which is exactly why results are
  chunk-size-invariant by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any


def require_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is finite and > 0."""
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")


def require_non_negative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is finite and >= 0."""
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")


def require_at_least(name: str, value: float, minimum: float) -> None:
    """Raise ``ValueError`` unless ``value`` >= ``minimum``."""
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")


def require_in_open_unit_interval(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` lies strictly in (0, 1)."""
    if not 0.0 < value < 1.0:
        raise ValueError(f"{name} must be in (0, 1), got {value}")


def require_non_empty(name: str, value) -> None:
    """Raise ``ValueError`` unless the sequence has at least one entry."""
    if not value:
        raise ValueError(f"plan needs at least one {name}")


@dataclass(frozen=True)
class PlanBase:
    """Shared, validated base of every declarative engine plan.

    Subclasses are frozen dataclasses describing one workload run; they
    implement :meth:`validate` (called automatically after
    construction) using the module's ``require_*`` validators so every
    engine raises field-level ``ValueError`` messages with one wording.
    """

    def __post_init__(self) -> None:
        """Dataclass hook: run :meth:`validate` on every construction."""
        self.validate()

    def validate(self) -> None:
        """Check field-level invariants; raise ``ValueError`` on the
        first violation.  Subclasses must override."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement validate()")


@dataclass(frozen=True)
class Segment:
    """One contiguous stretch of the sample axis the executor walks.

    Attributes:
        index: position of the segment in its execution plan — the dose
            interval number for therapy, the sensor index for
            calibration campaigns.
        start: first absolute sample index of the segment (inclusive).
        stop: one past the last absolute sample index (exclusive).

    Segments carry *meaning* for the kernel set's begin/end hooks (a
    therapy controller fixes the cohort's doses when its interval
    segment begins; a campaign splits one sensor's cells into replicate
    groups when its segment ends); the executor itself only walks them
    in order and never chunks across a boundary.
    """

    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise ValueError(
                f"segment [{self.start}, {self.stop}) must be a "
                "non-empty range of non-negative sample indices")


@dataclass(frozen=True)
class ExecutionPlan:
    """A declarative plan compiled for the chunked kernel executor.

    Attributes:
        workload: registry name of the kernel set that compiled it.
        n_channels: size of the vectorized (channel / patient / cell
            row) axis.
        n_samples: total length of the sample axis across all segments.
        chunk_samples: samples advanced per kernel invocation — purely
            a memory/throughput knob, never a semantic one (results
            are chunk-size-invariant).
        segments: the ordered segment graph; segments must tile
            ``[0, n_samples)`` without gaps or overlaps.
    """

    workload: str
    n_channels: int
    n_samples: int
    chunk_samples: int
    segments: tuple[Segment, ...]

    def __post_init__(self) -> None:
        require_positive("n_channels", self.n_channels)
        require_positive("n_samples", self.n_samples)
        require_at_least("chunk_samples", self.chunk_samples, 1)
        require_non_empty("segment", self.segments)
        cursor = 0
        for segment in self.segments:
            if segment.start != cursor:
                raise ValueError(
                    f"segments must tile the sample axis: segment "
                    f"{segment.index} starts at {segment.start}, "
                    f"expected {cursor}")
            cursor = segment.stop
        if cursor != self.n_samples:
            raise ValueError(
                f"segments cover [0, {cursor}) but the plan declares "
                f"{self.n_samples} samples")

    @property
    def n_chunks(self) -> int:
        """Total kernel invocations the executor will make."""
        return sum(
            -(-(segment.stop - segment.start) // self.chunk_samples)
            for segment in self.segments)


def single_segment(workload: str, n_channels: int, n_samples: int,
                   chunk_samples: int) -> ExecutionPlan:
    """Compile the common one-segment shape (monitor, estimation).

    Args:
        workload: registry name of the compiling kernel set.
        n_channels / n_samples: axis sizes.
        chunk_samples: chunking policy.

    Returns:
        An :class:`ExecutionPlan` whose single segment spans the whole
        sample axis.
    """
    return ExecutionPlan(
        workload=workload,
        n_channels=n_channels,
        n_samples=n_samples,
        chunk_samples=chunk_samples,
        segments=(Segment(index=0, start=0, stop=n_samples),))


def uniform_segments(workload: str, n_channels: int, n_segments: int,
                     samples_per_segment: int,
                     chunk_samples: int) -> ExecutionPlan:
    """Compile an evenly tiled segment graph (therapy dose intervals).

    Args:
        workload: registry name of the compiling kernel set.
        n_channels: vectorized axis size.
        n_segments: number of equal segments (e.g. dose intervals).
        samples_per_segment: sample-axis length of each segment.
        chunk_samples: chunking policy (applied within each segment).

    Returns:
        An :class:`ExecutionPlan` with ``n_segments`` equal segments.
    """
    require_positive("n_segments", n_segments)
    require_positive("samples_per_segment", samples_per_segment)
    return ExecutionPlan(
        workload=workload,
        n_channels=n_channels,
        n_samples=n_segments * samples_per_segment,
        chunk_samples=chunk_samples,
        segments=tuple(
            Segment(index=k, start=k * samples_per_segment,
                    stop=(k + 1) * samples_per_segment)
            for k in range(n_segments)))


def spans_to_segments(workload: str, n_channels: int,
                      spans: "tuple[tuple[int, int], ...]",
                      chunk_samples: int) -> ExecutionPlan:
    """Compile explicit half-open spans (calibration sensor slices).

    Args:
        workload: registry name of the compiling kernel set.
        n_channels: vectorized axis size.
        spans: one ``(start, stop)`` per segment, tiling the axis.
        chunk_samples: chunking policy.

    Returns:
        An :class:`ExecutionPlan` with one segment per span.
    """
    require_non_empty("span", spans)
    return ExecutionPlan(
        workload=workload,
        n_channels=n_channels,
        n_samples=spans[-1][1],
        chunk_samples=chunk_samples,
        segments=tuple(
            Segment(index=i, start=start, stop=stop)
            for i, (start, stop) in enumerate(spans)))


#: Convenience alias used in kernel-set type hints.
AnyPlan = Any
