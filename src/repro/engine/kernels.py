"""Memoized noiseless kernels for the batch engine.

Inside one campaign the same deterministic work repeats constantly: every
replicate at a given concentration shares the same noiseless step response,
and the acquisition chain's ground-truth ("clean") path re-filters that
identical trace once per replicate.  Since every component involved is a
frozen dataclass, the noiseless response is a pure function of
``(chain, protocol, response time, duration, plateau set)`` — ideal LRU
material.

Cached arrays are returned read-only and must not be mutated; callers that
need a scratch copy take one explicitly.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.instrument.chain import AcquisitionChain
from repro.signal.steady_state import extract_steady_state_batch
from repro.techniques.chronoamperometry import Chronoamperometry


def _frozen(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


@lru_cache(maxsize=256)
def amperometric_clean_rows(chain: AcquisitionChain,
                            protocol: Chronoamperometry,
                            response_time_s: float,
                            duration_s: float,
                            plateaus_a: tuple[float, ...],
                            ) -> tuple[np.ndarray, np.ndarray]:
    """Noiseless digitized step responses for a set of plateau currents.

    Returns ``(time_s, clean_rows)`` with shapes ``(n_samples,)`` and
    ``(len(plateaus_a), n_samples)``: the exact ground-truth rows the
    scalar chain computes per measurement (TIA → anti-alias → ADC, noise
    off), evaluated once per *unique* plateau instead of once per cell.
    Both arrays are cached and read-only.
    """
    __, current = protocol.simulate_step_batch(
        np.array(plateaus_a, dtype=float), duration_s, response_time_s)
    trace = chain.acquire_batch(current, protocol.sampling_rate_hz,
                                add_noise=False)
    return _frozen(trace.time_s), _frozen(trace.current_a)


@lru_cache(maxsize=256)
def amperometric_clean_plateaus(chain: AcquisitionChain,
                                protocol: Chronoamperometry,
                                response_time_s: float,
                                duration_s: float,
                                plateaus_a: tuple[float, ...]) -> np.ndarray:
    """Noiseless extracted plateau value [A] per unique plateau current.

    The steady-state tail mean of :func:`amperometric_clean_rows` — the
    value a noiseless scalar measurement reports.  Cached and read-only.
    """
    times, clean_rows = amperometric_clean_rows(
        chain, protocol, response_time_s, duration_s, plateaus_a)
    return _frozen(extract_steady_state_batch(times, clean_rows))


def cache_info() -> dict[str, object]:
    """Hit/miss statistics of the engine kernel caches (diagnostics)."""
    return {
        "clean_rows": amperometric_clean_rows.cache_info(),
        "clean_plateaus": amperometric_clean_plateaus.cache_info(),
    }


def clear_caches() -> None:
    """Drop every memoized kernel (tests and memory-pressure hooks)."""
    amperometric_clean_rows.cache_clear()
    amperometric_clean_plateaus.cache_clear()
