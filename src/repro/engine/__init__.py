"""Batched, vectorized simulation engine for calibration campaigns.

The scalar pipeline reproduces the bench protocol one point at a time:
one (sensor, concentration, replicate) cell per call through technique →
TIA → filter → ADC → DSP.  This package evaluates whole campaigns —
sensor panel × concentration grid × replicates — as NumPy array
operations:

* :class:`BatchPlan` / :class:`BatchResult` describe and hold a campaign;
* :func:`run_batch` executes it with deterministic per-cell randomness
  (``np.random.SeedSequence`` spawning — results depend only on the seed
  and the cell's position, never on batch grouping);
* an LRU kernel cache (:mod:`repro.engine.kernels`) serves the repeated
  noiseless step responses and ground-truth chain outputs;
* :func:`run_calibration_batch` / :func:`run_campaign` produce the usual
  :class:`~repro.core.calibration.CalibrationResult` rows through the
  shared analysis stage.

Quickstart::

    from repro.core import build_sensor, spec_by_id
    from repro.core import default_protocol_for_range
    from repro.engine import run_calibration_batch

    sensor = build_sensor(spec_by_id("glucose/this-work"))
    protocol = default_protocol_for_range(1e-3)
    result = run_calibration_batch(sensor, protocol, seed=7)
    print(result.summary())

The scalar API (:mod:`repro.core.detection`) remains available and the
amperometric scalar path is a thin single-cell wrapper over this engine.

Beyond single-shot campaigns, :mod:`repro.engine.monitor` streams whole
cohorts of (patient × sensor) channels through days of wear-time as
chunked ``(n_channels, chunk_samples)`` blocks — drift, fouling,
physiological trajectories, online recalibration — with per-channel
MARD / time-in-spec summaries (:class:`MonitorResult`).

The third workload class closes the personalized-medicine loop:
:mod:`repro.engine.therapy` doses virtual patient cohorts
(:mod:`repro.pk`), measures the resulting drug levels through the same
wear physics, and lets a :mod:`repro.therapy` controller adjust every
patient's next dose — scored against the therapeutic window
(:class:`TherapyResult`).

All three workloads share one declarative front door:
:mod:`repro.scenarios` wraps them behind a registry of named workloads,
serializes any configured run as a JSON :class:`~repro.scenarios.Scenario`
artifact, and dispatches them through ``run_scenario`` or the
``python -m repro`` command line.

Under all of them sits one execution core (:mod:`repro.engine.core`):
each workload is a registered :class:`~repro.engine.core.KernelSet`
whose declarative plan compiles to a segment/chunk
:class:`~repro.engine.core.ExecutionPlan`, and the shared executor
threads carry state through the chunk loop.  The historical
``run_*_scalar`` quartet is deprecated in favour of
:func:`repro.engine.core.run_scalar`.
"""

from repro.engine import core
from repro.engine import kernels
from repro.engine import monitor
from repro.engine import therapy
from repro.engine import estimation
from repro.engine.plan import BatchPlan, BatchResult, CellIndex
from repro.engine.measure import (
    measure_amperometric_batch,
    measure_voltammetric_batch,
)
from repro.engine.runner import run_batch, run_batch_scalar
from repro.engine.calibrate import (
    calibration_plan,
    calibration_result_from_batch,
    run_calibration_batch,
    run_campaign,
)
from repro.engine.monitor import (
    MonitorChannel,
    MonitorPlan,
    MonitorResult,
    RecalibrationPolicy,
    cohort,
    digitize_rows,
    glucose_cohort,
    reading_noise_sigma_a,
    run_monitor,
    run_monitor_scalar,
)
from repro.engine.therapy import (
    TherapyPlan,
    TherapyResult,
    run_therapy,
    run_therapy_scalar,
)
from repro.engine.estimation import (
    EstimationPlan,
    EstimationResult,
    run_estimation,
    run_estimation_scalar,
)
from repro.engine.core import (
    kernels_for,
    registered_workloads,
    run_scalar,
    run_workload,
)

__all__ = [
    "BatchPlan",
    "core",
    "kernels_for",
    "registered_workloads",
    "run_scalar",
    "run_workload",
    "BatchResult",
    "CellIndex",
    "kernels",
    "monitor",
    "MonitorChannel",
    "MonitorPlan",
    "MonitorResult",
    "RecalibrationPolicy",
    "cohort",
    "digitize_rows",
    "glucose_cohort",
    "reading_noise_sigma_a",
    "run_monitor",
    "run_monitor_scalar",
    "therapy",
    "TherapyPlan",
    "TherapyResult",
    "run_therapy",
    "run_therapy_scalar",
    "estimation",
    "EstimationPlan",
    "EstimationResult",
    "run_estimation",
    "run_estimation_scalar",
    "measure_amperometric_batch",
    "measure_voltammetric_batch",
    "run_batch",
    "run_batch_scalar",
    "calibration_plan",
    "calibration_result_from_batch",
    "run_calibration_batch",
    "run_campaign",
]
