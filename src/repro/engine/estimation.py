"""Estimation engine: reconstruct cohort concentrations from currents.

The fourth workload class.  :func:`run_estimation` composes the
streaming monitor's forward physics (:func:`repro.engine.run_monitor`
provides the ground truth *and* the digitized current streams) with the
inverse layer of :mod:`repro.inference`: an observation model derived
from the plan's own physics, a batch Kalman filter over the cohort, an
optional RTS smoothing pass, and the evaluation metrics (RMSE, MARD,
95 %-credible-interval coverage) that say whether the reconstruction can
be trusted.

Because filter and simulator share one physics description
(:func:`repro.inference.observation.monitor_observation_model`), the
credible intervals are *calibrated*: empirical coverage of the nominal
95 % band is gated within [0.90, 0.99] in
``benchmarks/bench_inference.py``.

Quickstart::

    from repro.engine import MonitorPlan, glucose_cohort
    from repro.engine.estimation import EstimationPlan, run_estimation

    plan = EstimationPlan(monitor=MonitorPlan(
        channels=glucose_cohort(n_patients=8), duration_h=48.0, seed=42))
    print(run_estimation(plan).summary())
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from types import SimpleNamespace

import numpy as np
from scipy.stats import norm

from repro.engine.core import (
    Check,
    KernelSet,
    PlanBase,
    decode_array,
    encode_array,
    execute,
    register_kernels,
    require_snapshot,
    single_segment,
    snapshot_envelope,
)
from repro.engine.monitor import (
    MONITOR_KERNELS,
    MonitorPlan,
    MonitorResult,
    _finalize_monitor,
    _init_monitor_state,
    _monitor_chunk,
    glucose_cohort,
    run_monitor,
)
from repro.inference.evaluate import (
    credible_interval,
    detection_delay_h,
    interval_coverage,
    reconstruction_mard,
    reconstruction_rmse,
)
from repro.inference.kalman import (
    KalmanState,
    KalmanTrace,
    kalman_filter_batch,
    kalman_filter_scalar,
    rts_smoother_batch,
    rts_smoother_scalar,
)
from repro.inference.observation import (
    MonitorObservationModel,
    monitor_observation_model,
    rail_censored_mask,
)


@dataclass(frozen=True)
class EstimationPlan(PlanBase):
    """Declarative description of one cohort reconstruction run.

    Attributes:
        monitor: the wear simulation whose current streams are
            inverted; must keep traces (the filter consumes the
            digitized readings sample by sample).
        smooth: also run the RTS backward pass (the offline
            reconstruction); the causal filter output is always
            produced.
        interval_level: nominal credible level of the reported bands
            (0.95 -> the central 95 % interval).
    """

    monitor: MonitorPlan
    smooth: bool = True
    interval_level: float = 0.95

    def validate(self) -> None:
        """Field-level invariants, in the shared ``PlanBase`` wording."""
        if not self.monitor.keep_traces:
            raise ValueError(
                "estimation needs the monitor traces: set keep_traces=True")
        if not 0.0 < self.interval_level < 1.0:
            raise ValueError("interval level must be in (0, 1)")

    @property
    def n_channels(self) -> int:
        """Cohort size (delegates to the wrapped monitor plan)."""
        return self.monitor.n_channels

    @property
    def n_samples(self) -> int:
        """Readings per channel (delegates to the monitor plan)."""
        return self.monitor.n_samples

    @property
    def seed(self) -> int | None:
        """Root seed of the underlying wear simulation."""
        return self.monitor.seed

    @property
    def duration_h(self) -> float:
        """Wear horizon [h] (delegates to the monitor plan)."""
        return self.monitor.duration_h

    @property
    def interval_z(self) -> float:
        """Two-sided normal quantile of ``interval_level`` (1.96 at 95 %)."""
        return float(norm.ppf(0.5 * (1.0 + self.interval_level)))


@dataclass(frozen=True)
class EstimationResult:
    """Evaluated reconstruction: traces, bands and per-channel scores.

    Attributes:
        plan: the estimation run that produced these numbers.
        monitor: the underlying wear simulation (truth + currents).
        filtered_concentration_molar / filtered_std_molar: causal
            (online) reconstruction and its posterior standard
            deviation, ``(n_channels, n_samples)``.
        smoothed_concentration_molar / smoothed_std_molar: RTS-smoothed
            reconstruction (``None`` unless ``plan.smooth``).
        filtered_rmse_molar / filtered_mard / filtered_coverage:
            per-channel accuracy and empirical interval coverage of the
            causal reconstruction, ``(n_channels,)``.
        smoothed_rmse_molar / smoothed_mard / smoothed_coverage: same
            for the smoothed pass (``None`` unless ``plan.smooth``).
    """

    plan: EstimationPlan
    monitor: MonitorResult = field(repr=False)
    filtered_concentration_molar: np.ndarray = field(repr=False)
    filtered_std_molar: np.ndarray = field(repr=False)
    filtered_rmse_molar: np.ndarray
    filtered_mard: np.ndarray
    filtered_coverage: np.ndarray
    smoothed_concentration_molar: np.ndarray | None = field(
        default=None, repr=False)
    smoothed_std_molar: np.ndarray | None = field(default=None, repr=False)
    smoothed_rmse_molar: np.ndarray | None = None
    smoothed_mard: np.ndarray | None = None
    smoothed_coverage: np.ndarray | None = None

    @property
    def time_h(self) -> np.ndarray:
        """Sample times [h] of every trace."""
        return self.monitor.time_h

    @property
    def true_concentration_molar(self) -> np.ndarray:
        """The simulator's ground truth, ``(n_channels, n_samples)``."""
        return self.monitor.true_concentration_molar

    @property
    def linear_mard(self) -> np.ndarray:
        """MARD of the monitor's own linear estimator — the baseline the
        filter is measured against, ``(n_channels,)``."""
        return self.monitor.mard

    def reconstruction(self) -> tuple[np.ndarray, np.ndarray]:
        """The best available reconstruction and its standard deviation.

        The smoothed pass when the plan ran one, the causal filter
        otherwise — what an offline consumer (plotting, reporting)
        should use by default.
        """
        if self.smoothed_concentration_molar is not None:
            return (self.smoothed_concentration_molar,
                    self.smoothed_std_molar)
        return self.filtered_concentration_molar, self.filtered_std_molar

    def interval(self, smoothed: bool | None = None
                 ) -> tuple[np.ndarray, np.ndarray]:
        """The ``(lower, upper)`` credible band at the plan's level.

        Args:
            smoothed: which pass the band belongs to — ``True`` for the
                RTS pass (requires ``plan.smooth``), ``False`` for the
                causal filter, and ``None`` (the default) for the best
                available pass, matching :meth:`reconstruction` so the
                default mean/band pair is always consistent.
        """
        if smoothed is None:
            smoothed = self.smoothed_concentration_molar is not None
        if smoothed:
            if self.smoothed_concentration_molar is None:
                raise ValueError("plan did not run the smoother")
            return credible_interval(self.smoothed_concentration_molar,
                                     self.smoothed_std_molar,
                                     self.plan.interval_z)
        return credible_interval(self.filtered_concentration_molar,
                                 self.filtered_std_molar,
                                 self.plan.interval_z)

    def excursion_detection_delays_h(self, low_molar: float,
                                     high_molar: float,
                                     smoothed: bool = False) -> np.ndarray:
        """Per-channel time-to-detection of window excursions [h].

        Delegates to :func:`repro.inference.evaluate.detection_delay_h`
        on the chosen reconstruction against the simulator truth.

        Args:
            low_molar / high_molar: therapeutic-window bounds [mol/L].
            smoothed: score the RTS pass instead of the causal filter.
        """
        estimate = (self.smoothed_concentration_molar if smoothed
                    else self.filtered_concentration_molar)
        if estimate is None:
            raise ValueError("plan did not run the smoother")
        return detection_delay_h(
            self.true_concentration_molar, estimate, low_molar,
            high_molar, self.plan.monitor.sample_period_s)

    def channel_summary(self, index: int) -> str:
        """One-line reconstruction summary for one channel."""
        channel = self.plan.monitor.channels[index]
        line = (
            f"{channel.patient_id} [{channel.sensor.analyte.name}]: "
            f"filtered MARD {self.filtered_mard[index] * 100:.1f} % "
            f"(linear {self.linear_mard[index] * 100:.1f} %), "
            f"coverage {self.filtered_coverage[index] * 100:.1f} %")
        if self.smoothed_mard is not None:
            line += (f", smoothed MARD "
                     f"{self.smoothed_mard[index] * 100:.1f} %")
        return line

    def summary(self) -> str:
        """Cohort-level reconstruction summary plus one line per channel."""
        plan = self.plan
        level = plan.interval_level * 100
        head = (
            f"{plan.n_channels} channels x {plan.n_samples} samples over "
            f"{plan.duration_h:.0f} h: filtered MARD "
            f"{float(np.mean(self.filtered_mard)) * 100:.1f} % "
            f"(linear estimator "
            f"{float(np.mean(self.linear_mard)) * 100:.1f} %), "
            f"{level:.0f} %-interval coverage "
            f"{float(np.mean(self.filtered_coverage)) * 100:.1f} %")
        if self.smoothed_mard is not None:
            head += (f"; smoothed MARD "
                     f"{float(np.mean(self.smoothed_mard)) * 100:.1f} %, "
                     f"coverage "
                     f"{float(np.mean(self.smoothed_coverage)) * 100:.1f} %")
        lines = [head] + [f"  {self.channel_summary(i)}"
                          for i in range(plan.n_channels)]
        return "\n".join(lines)

    def summary_row(self) -> dict:
        """Flat scalar metrics of the reconstruction (JSON-serializable).

        The tabular-export half of the shared result contract
        (:class:`repro.scenarios.ResultProtocol`).
        """
        row = {
            "workload": "estimation",
            "n_channels": self.plan.n_channels,
            "n_samples": self.plan.n_samples,
            "duration_h": float(self.plan.duration_h),
            "seed": self.plan.seed,
            "interval_level": float(self.plan.interval_level),
            "cohort_filtered_rmse_molar": float(
                np.mean(self.filtered_rmse_molar)),
            "cohort_filtered_mard": float(np.mean(self.filtered_mard)),
            "cohort_filtered_coverage": float(
                np.mean(self.filtered_coverage)),
            "cohort_linear_mard": float(np.mean(self.linear_mard)),
        }
        if self.smoothed_rmse_molar is not None:
            row.update({
                "cohort_smoothed_rmse_molar": float(
                    np.mean(self.smoothed_rmse_molar)),
                "cohort_smoothed_mard": float(np.mean(self.smoothed_mard)),
                "cohort_smoothed_coverage": float(
                    np.mean(self.smoothed_coverage)),
            })
        return row

    def to_dict(self, include_traces: bool = False) -> dict:
        """JSON-serializable export of the evaluated reconstruction.

        Args:
            include_traces: also include the per-sample truth,
                reconstruction means and standard deviations (they
                dominate the payload for long cohorts; off by default).

        Returns:
            ``summary_row()`` plus one accuracy entry per channel.
        """
        channels = [{
            "patient_id": channel.patient_id,
            "analyte": channel.sensor.analyte.name,
            "filtered_rmse_molar": float(self.filtered_rmse_molar[i]),
            "filtered_mard": float(self.filtered_mard[i]),
            "filtered_coverage": float(self.filtered_coverage[i]),
            "linear_mard": float(self.linear_mard[i]),
            **({"smoothed_rmse_molar": float(self.smoothed_rmse_molar[i]),
                "smoothed_mard": float(self.smoothed_mard[i]),
                "smoothed_coverage": float(self.smoothed_coverage[i])}
               if self.smoothed_rmse_molar is not None else {}),
        } for i, channel in enumerate(self.plan.monitor.channels)]
        data = {**self.summary_row(), "channels": channels}
        if include_traces:
            data["time_h"] = self.time_h.tolist()
            data["true_concentration_molar"] = (
                self.true_concentration_molar.tolist())
            data["filtered_concentration_molar"] = (
                self.filtered_concentration_molar.tolist())
            data["filtered_std_molar"] = self.filtered_std_molar.tolist()
            if self.smoothed_concentration_molar is not None:
                data["smoothed_concentration_molar"] = (
                    self.smoothed_concentration_molar.tolist())
                data["smoothed_std_molar"] = (
                    self.smoothed_std_molar.tolist())
        return data


def _reconstruct(model: MonitorObservationModel, m1: np.ndarray,
                 p11: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Deviation state + trajectory mean -> clipped concentration, std."""
    concentration = np.maximum(model.mean_molar + m1, 0.0)
    std = np.sqrt(np.maximum(p11, 0.0))
    return concentration, std


def _evaluate(truth: np.ndarray, concentration: np.ndarray,
              std: np.ndarray, z: float):
    """Score one reconstruction pass: RMSE, MARD, interval coverage."""
    lower, upper = credible_interval(concentration, std, z)
    return (reconstruction_rmse(truth, concentration),
            reconstruction_mard(truth, concentration),
            interval_coverage(truth, lower, upper))


def _observation_inputs(plan: EstimationPlan,
                        monitor_result: MonitorResult):
    """Observation model and per-sample measurement variances.

    Rail-saturated readings carry no amplitude information: censor
    them (infinite variance -> pure prediction) instead of letting
    the clipped value masquerade as a measurement.
    """
    model = monitor_observation_model(plan.monitor)
    censored = rail_censored_mask(
        [channel.sensor for channel in plan.monitor.channels],
        monitor_result.measured_current_a)
    r = np.where(censored, np.inf,
                 model.measurement_variance_a2[:, None])
    return model, r


def _assemble(plan: EstimationPlan, monitor_result: MonitorResult,
              model: MonitorObservationModel, trace,
              smoothed) -> EstimationResult:
    """Score filter (and optional smoother) traces into the result."""
    truth = monitor_result.true_concentration_molar
    z = plan.interval_z
    filtered_c, filtered_std = _reconstruct(model, trace.m1, trace.p11)
    filtered_scores = _evaluate(truth, filtered_c, filtered_std, z)
    smoothed_c = smoothed_std = None
    smoothed_scores = (None, None, None)
    if smoothed is not None:
        smoothed_c, smoothed_std = _reconstruct(
            model, smoothed.m1, smoothed.p11)
        smoothed_scores = _evaluate(truth, smoothed_c, smoothed_std, z)
    return EstimationResult(
        plan=plan,
        monitor=monitor_result,
        filtered_concentration_molar=filtered_c,
        filtered_std_molar=filtered_std,
        filtered_rmse_molar=filtered_scores[0],
        filtered_mard=filtered_scores[1],
        filtered_coverage=filtered_scores[2],
        smoothed_concentration_molar=smoothed_c,
        smoothed_std_molar=smoothed_std,
        smoothed_rmse_molar=smoothed_scores[0],
        smoothed_mard=smoothed_scores[1],
        smoothed_coverage=smoothed_scores[2],
    )


def run_estimation(plan: EstimationPlan) -> EstimationResult:
    """Reconstruct a cohort's concentrations on the vectorized path.

    Runs the wear simulation (truth + digitized currents), builds the
    consistent-by-construction observation model, filters the whole
    cohort as ``(n_channels,)`` array recursions, optionally smooths,
    and scores the result.

    Returns:
        The evaluated :class:`EstimationResult`.

    Determinism: with a fixed monitor seed the result is reproducible;
    the filter itself is deterministic given the currents.
    """
    return execute(ESTIMATION_KERNELS, plan)


def run_estimation_scalar(plan: EstimationPlan) -> EstimationResult:
    """Deprecated alias of ``run_scalar("estimation", plan)``.

    The scalar reference now lives on the registered kernel set; use
    :func:`repro.engine.core.run_scalar` instead.
    """
    warnings.warn(
        "run_estimation_scalar() is deprecated; use "
        "repro.engine.core.run_scalar('estimation', plan)",
        DeprecationWarning, stacklevel=2)
    return _run_estimation_scalar(plan)


def _run_estimation_scalar(plan: EstimationPlan) -> EstimationResult:
    """Per-channel scalar reference of :func:`run_estimation`.

    Identical wear simulation and observation model; the filter and
    smoother run channel by channel through plain float arithmetic
    (:func:`repro.inference.kalman.kalman_filter_scalar`).  Agrees with
    the vectorized path to <= 1e-9 (gated by the shared contract
    suite).
    """
    monitor_result = run_monitor(plan.monitor)
    model, r = _observation_inputs(plan, monitor_result)
    trace = kalman_filter_scalar(
        monitor_result.measured_current_a,
        model.gain_a_per_molar, model.offset_a, r,
        model.a_signal, model.q_signal, model.a_wander, model.q_wander)
    smoothed = (rts_smoother_scalar(trace, model.a_signal,
                                    model.a_wander)
                if plan.smooth else None)
    return _assemble(plan, monitor_result, model, trace, smoothed)


#: Forward-pass trace fields carried chunk to chunk (and snapshotted).
_TRACE_FIELDS = ("m1", "m2", "p11", "p12", "p22",
                 "pm1", "pm2", "pp11", "pp12", "pp22")


class EstimationKernels(KernelSet):
    """The estimation workload as a kernel set on the execution core.

    The wear simulation and the Kalman filter advance *together*, chunk
    by chunk: each chunk runs the wrapped monitor's physics over
    ``[start, stop)``, inverts the freshly digitized currents through
    the observation model, and carries the filtered belief
    (:meth:`KalmanState.from_trace`) into the next chunk — bit-identical
    to one uninterrupted pass, which is what makes the workload
    suspendable (``export_state`` / ``restore_state``) and streamable
    (:class:`repro.serve.StreamSession`).  The smoother, inherently
    offline, runs once in ``finalize`` over the full forward trace.
    """

    name = "estimation"
    plan_type = EstimationPlan
    bench_record = "inference"
    floor_env = "INFERENCE_SPEEDUP_FLOOR"
    snapshot_version = 1

    def compile(self, plan: EstimationPlan):
        """One segment chunked like the wrapped wear simulation."""
        return single_segment(self.name, plan.n_channels,
                              plan.n_samples,
                              plan.monitor.chunk_samples)

    def init_state(self, plan: EstimationPlan) -> SimpleNamespace:
        """Monitor carry state, observation model, and filter carry."""
        n, t = plan.n_channels, plan.n_samples
        return SimpleNamespace(
            monitor=_init_monitor_state(plan.monitor),
            model=monitor_observation_model(plan.monitor),
            sensors=[channel.sensor
                     for channel in plan.monitor.channels],
            trace=KalmanTrace(*(np.empty((n, t)) for _ in range(10))),
            carry=KalmanState.zeros(n),
        )

    def run_chunk(self, plan: EstimationPlan, state, segment,
                  start: int, stop: int) -> None:
        """Simulate and filter the cohort over samples ``[start, stop)``.

        Rail-saturated readings carry no amplitude information: they
        are censored per chunk (infinite variance -> pure prediction),
        sample for sample the same mask the batch path applies.
        """
        _monitor_chunk(plan.monitor, state.monitor, start, stop)
        model = state.model
        measured = state.monitor.last_update["measured_current_a"]
        censored = rail_censored_mask(state.sensors, measured)
        r_chunk = np.where(censored, np.inf,
                           model.measurement_variance_a2[:, None])
        chunk = kalman_filter_batch(
            measured, model.gain_a_per_molar[:, start:stop],
            model.offset_a[:, start:stop], r_chunk,
            model.a_signal, model.q_signal,
            model.a_wander, model.q_wander, initial=state.carry)
        for name in _TRACE_FIELDS:
            getattr(state.trace, name)[:, start:stop] = getattr(chunk,
                                                               name)
        state.carry = KalmanState.from_trace(chunk)

    def finalize(self, plan: EstimationPlan, state) -> EstimationResult:
        """Smooth (optionally) and score the :class:`EstimationResult`."""
        monitor_result = _finalize_monitor(plan.monitor, state.monitor)
        smoothed = (rts_smoother_batch(state.trace, state.model.a_signal,
                                       state.model.a_wander)
                    if plan.smooth else None)
        return _assemble(plan, monitor_result, state.model,
                         state.trace, smoothed)

    def export_state(self, plan: EstimationPlan, state,
                     cursor: int) -> dict:
        """Serialize the estimation carry state after ``cursor`` samples.

        Nests the wrapped monitor's own snapshot, the filtered belief
        entering the next sample, and the forward-trace prefixes
        ``[:, :cursor]`` (the smoother needs the full forward pass, so
        an estimation snapshot grows with the cursor — unlike a
        trace-free monitor snapshot).
        """
        snapshot = snapshot_envelope(self.name, self.snapshot_version,
                                     cursor)
        snapshot.update({
            "n_channels": plan.n_channels,
            "monitor": MONITOR_KERNELS.export_state(
                plan.monitor, state.monitor, cursor),
            "kalman": {name: encode_array(getattr(state.carry, name))
                       for name in ("m1", "m2", "p11", "p12", "p22")},
            "trace": {name: encode_array(
                getattr(state.trace, name)[:, :cursor])
                for name in _TRACE_FIELDS},
        })
        return snapshot

    def restore_state(self, plan: EstimationPlan, snapshot):
        """Rebuild ``(state, cursor)`` from an exported snapshot.

        Restores the wrapped monitor's carry state through its own
        kernel set, recomputes the observation model from the plan
        (snapshots never store derived physics), and refills the
        forward-trace prefixes and filtered belief.
        """
        cursor = require_snapshot(snapshot, self.name,
                                  self.snapshot_version, plan.n_samples)
        if snapshot["n_channels"] != plan.n_channels:
            raise ValueError(
                f"snapshot holds {snapshot['n_channels']} channels, "
                f"plan has {plan.n_channels}")
        state = self.init_state(plan)
        monitor_state, monitor_cursor = MONITOR_KERNELS.restore_state(
            plan.monitor, snapshot["monitor"])
        if monitor_cursor != cursor:
            raise ValueError(
                f"nested monitor snapshot is at sample {monitor_cursor},"
                f" estimation snapshot at {cursor}")
        state.monitor = monitor_state
        state.carry = KalmanState(
            *(decode_array(snapshot["kalman"][name])
              for name in ("m1", "m2", "p11", "p12", "p22")))
        for name in _TRACE_FIELDS:
            getattr(state.trace, name)[:, :cursor] = decode_array(
                snapshot["trace"][name])
        return state, cursor

    def stream_update(self, plan: EstimationPlan, state, start: int,
                      stop: int) -> dict:
        """The chunk that just ran, as incremental per-sample outputs.

        The monitor's truth / measurement block plus the causal
        reconstruction — the filtered concentration and its posterior
        standard deviation — for ``[start, stop)``.  The smoothed pass
        is offline by nature and only exists in the final result.
        """
        update = dict(MONITOR_KERNELS.stream_update(
            plan.monitor, state.monitor, start, stop))
        mean = state.model.mean_molar[:, start:stop]
        update["filtered_concentration_molar"] = np.maximum(
            mean + state.trace.m1[:, start:stop], 0.0)
        update["filtered_std_molar"] = np.sqrt(
            np.maximum(state.trace.p11[:, start:stop], 0.0))
        return update

    def run_scalar(self, plan: EstimationPlan) -> EstimationResult:
        """Per-channel reference through the scalar filter/smoother."""
        return _run_estimation_scalar(plan)

    def contract_plan(self) -> EstimationPlan:
        """Two glucose wearers over 12 h at 10-min cadence."""
        return EstimationPlan(monitor=MonitorPlan(
            channels=glucose_cohort(2), duration_h=12.0,
            sample_period_s=600.0, chunk_samples=16, seed=3))

    def with_chunk_samples(self, plan: EstimationPlan,
                           chunk_samples: int) -> EstimationPlan:
        """Re-chunk the wrapped wear simulation (the filter itself is
        a single sequential pass)."""
        return replace(plan, monitor=replace(
            plan.monitor, chunk_samples=chunk_samples))

    def contract_fields(self, result: EstimationResult) -> dict:
        """Reconstruction traces, bands and per-channel scores."""
        return {
            "filtered_concentration_molar": Check(
                result.filtered_concentration_molar, atol=1e-9),
            "filtered_std_molar": Check(result.filtered_std_molar,
                                        atol=1e-9),
            "smoothed_concentration_molar": Check(
                result.smoothed_concentration_molar, atol=1e-9),
            "smoothed_std_molar": Check(result.smoothed_std_molar,
                                        atol=1e-9),
            "filtered_rmse_molar": Check(result.filtered_rmse_molar,
                                         atol=1e-12, rtol=1e-9),
            "filtered_mard": Check(result.filtered_mard, atol=1e-9),
        }


#: The registered estimation kernel set (target of ``run_estimation``).
ESTIMATION_KERNELS = register_kernels(EstimationKernels())
