"""Engine-backed calibration: whole panels through one batched campaign.

The scalar pipeline (:func:`repro.core.calibration.run_calibration`)
measures blank replicates and a standard staircase one point at a time.
Here the same protocol becomes one :class:`BatchPlan` — blanks are the
0.0-concentration group with their own replicate count — and the whole
panel evaluates in a handful of vectorized passes before the shared
analysis stage (:func:`extract_calibration_result`) produces the usual
:class:`CalibrationResult` rows.
"""

from __future__ import annotations

from repro.core.calibration import (
    CalibrationPoint,
    CalibrationProtocol,
    CalibrationResult,
    extract_calibration_result,
)
from repro.core.sensor import Biosensor
from repro.engine.plan import BatchPlan, BatchResult
from repro.engine.runner import run_batch


def calibration_plan(sensors: list[Biosensor],
                     protocols: list[CalibrationProtocol],
                     seed: int | None = None,
                     add_noise: bool = True,
                     step_duration_s: float = 16.0) -> BatchPlan:
    """Build the campaign plan for a panel calibration.

    Each sensor's grid is its protocol's blank (0.0, ``n_blanks``
    replicates) followed by the standards (``n_replicates`` each).
    """
    if len(sensors) != len(protocols):
        raise ValueError(
            f"{len(sensors)} sensors but {len(protocols)} protocols")
    return BatchPlan(
        sensors=tuple(sensors),
        concentrations_molar=tuple(
            (0.0,) + tuple(p.concentrations_molar) for p in protocols),
        replicates=tuple(
            (p.n_blanks,) + (p.n_replicates,) * len(p.concentrations_molar)
            for p in protocols),
        seed=seed,
        add_noise=add_noise,
        step_duration_s=step_duration_s,
    )


def calibration_result_from_batch(result: BatchResult,
                                  sensor_index: int,
                                  protocol: CalibrationProtocol,
                                  ) -> CalibrationResult:
    """Extract one sensor's Table 2 metrics from an evaluated campaign."""
    sensor = result.plan.sensors[sensor_index]
    means = result.means(sensor_index)
    stds = result.stds(sensor_index)
    blanks = result.replicate_values(sensor_index, 0)
    points = [
        CalibrationPoint(
            concentration_molar=concentration,
            mean_a=float(means[j + 1]),
            std_a=float(stds[j + 1]),
            n=result.replicate_values(sensor_index, j + 1).size,
        )
        for j, concentration in enumerate(protocol.concentrations_molar)
    ]
    return extract_calibration_result(
        sensor, protocol, points,
        blank_mean=float(means[0]),
        blank_std=float(stds[0]),
        metadata={"engine": True, "seed": result.plan.seed,
                  "n_blank_cells": int(blanks.size)},
    )


def run_calibration_batch(sensor: Biosensor,
                          protocol: CalibrationProtocol,
                          seed: int | None = None,
                          add_noise: bool = True) -> CalibrationResult:
    """Calibrate one sensor through the batch engine.

    Drop-in counterpart of :func:`repro.core.calibration.run_calibration`
    that evaluates the whole protocol as one vectorized campaign with
    deterministic per-cell randomness derived from ``seed``.
    """
    plan = calibration_plan([sensor], [protocol], seed=seed,
                            add_noise=add_noise)
    return calibration_result_from_batch(run_batch(plan), 0, protocol)


def run_campaign(sensors: list[Biosensor],
                 protocols: list[CalibrationProtocol],
                 seed: int | None = None,
                 add_noise: bool = True) -> list[CalibrationResult]:
    """Calibrate a whole sensor panel as one batched campaign.

    Returns one :class:`CalibrationResult` per sensor, in panel order.
    Each cell's randomness is derived from ``(seed, flat cell position)``,
    so a sensor's numbers are stable exactly when its cells keep their
    flat positions: *appending* sensors to a panel preserves the results
    of every sensor already in it, while inserting or reordering shifts
    the positions (and therefore the noise realizations) of everything
    after the insertion point.
    """
    plan = calibration_plan(sensors, protocols, seed=seed,
                            add_noise=add_noise)
    result = run_batch(plan)
    return [calibration_result_from_batch(result, i, protocol)
            for i, protocol in enumerate(protocols)]
