"""Streaming long-term monitoring engine: cohorts through wear-time.

The batch engine of PR 1 made single-shot calibration campaigns fast;
this module opens the paper's actual workload — *continuous* monitoring
of chronic patients over days-to-weeks of wear — as a second vectorized
workload class.  A cohort of (patient × sensor) channels advances through
wear-time in ``(n_channels, chunk_samples)`` NumPy blocks, composing:

* physiological concentration trajectories
  (:class:`repro.analytes.physiological.ConcentrationTrajectory`) with a
  seedable Ornstein-Uhlenbeck physiological noise component;
* sensitivity drift — enzyme/film degradation (Arrhenius-scaled) and
  matrix fouling via :class:`repro.core.longterm.DriftBudget`;
* additive baseline drift and reference-electrode wander
  (:func:`repro.signal.drift.ou_process_batch`);
* the existing instrument chain: the chain's input-referred noise floor,
  TIA rail saturation and SAR-ADC quantization shape every reading;
* online recalibration scheduling — periodic reference samples
  (finger-stick protocol) trigger a one-point re-fit
  (:func:`repro.core.longterm.one_point_recalibration_batch`) whenever
  the reading error exceeds the policy tolerance.

Determinism contract (mirrors :mod:`repro.engine.plan`): every channel
owns three independent generator streams spawned from the plan seed —
trajectory noise, baseline wander, measurement noise — each consumed
strictly sequentially along the sample axis.  Results therefore depend
only on ``(seed, channel position, sample index)``, never on
``chunk_samples``: streaming a week in one block or in 4-sample slivers
produces identical traces.  Recalibration decisions fire at absolute
sample indices, so they are chunk-invariant too.

Quickstart::

    from repro.engine.monitor import MonitorPlan, glucose_cohort, run_monitor

    plan = MonitorPlan(channels=glucose_cohort(n_patients=8),
                       duration_h=7 * 24.0, seed=42)
    result = run_monitor(plan)
    print(result.summary())
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from types import SimpleNamespace

import numpy as np

from repro.analytes.physiological import ConcentrationTrajectory
from repro.bio.matrix import SERUM
from repro.core.longterm import (
    DriftBudget,
    one_point_recalibration,
    one_point_recalibration_batch,
)
from repro.core.sensor import Biosensor
from repro.engine.core import (
    Check,
    KernelSet,
    PlanBase,
    decode_array,
    decode_rng,
    encode_array,
    encode_rng,
    execute,
    register_kernels,
    require_at_least,
    require_in_open_unit_interval,
    require_non_empty,
    require_non_negative,
    require_positive,
    require_snapshot,
    single_segment,
    snapshot_envelope,
)
from repro.enzymes.stability import EnzymeStability
from repro.rng import spawn_generators
from repro.signal.drift import ou_process_batch

#: Generator streams spawned per channel (trajectory, wander, measurement).
_STREAMS_PER_CHANNEL = 3


@dataclass(frozen=True)
class RecalibrationPolicy:
    """When and how a deployed channel is re-fit in the field.

    Attributes:
        reference_interval_h: cadence of reference measurements [h]
            (finger-stick / spiked-sample availability).
        tolerance: relative reading error at a reference sample beyond
            which a one-point recalibration is applied.
        enabled: disable to monitor open-loop (drift uncorrected).
    """

    reference_interval_h: float = 12.0
    tolerance: float = 0.10
    enabled: bool = True

    def __post_init__(self) -> None:
        require_positive("reference_interval_h", self.reference_interval_h)
        require_in_open_unit_interval("tolerance", self.tolerance)


@dataclass(frozen=True)
class MonitorChannel:
    """One (patient × sensor) channel of a monitoring cohort.

    Attributes:
        patient_id: cohort identity of the wearer.
        sensor: the deployed biosensor.
        trajectory: the patient's concentration course.
        budget: sensitivity-drift model (enzyme decay + fouling) for this
            deployment.
        wander_sigma_a: stationary RMS of the reference-electrode /
            baseline wander [A] (0 disables it).
        wander_tau_h: correlation time of the wander [h].
        slope_a_per_molar: day-0 calibrated slope [A/M]; ``None`` uses
            the sensor's analytic linear-regime slope.
        intercept_a: day-0 calibration intercept [A] the estimator
            subtracts; ``None`` uses the sensor's stationary background
            current.  Pass the fitted intercept when wiring a
            :class:`~repro.core.calibration.CalibrationResult` in.
    """

    patient_id: str
    sensor: Biosensor
    trajectory: ConcentrationTrajectory
    budget: DriftBudget
    wander_sigma_a: float = 0.0
    wander_tau_h: float = 6.0
    slope_a_per_molar: float | None = None
    intercept_a: float | None = None

    def __post_init__(self) -> None:
        require_non_negative("wander_sigma_a", self.wander_sigma_a)
        require_positive("wander_tau_h", self.wander_tau_h)
        if self.slope_a_per_molar is not None:
            require_positive("slope_a_per_molar", self.slope_a_per_molar)

    @property
    def day0_slope_a_per_molar(self) -> float:
        """The slope [A/M] the channel's estimator starts from."""
        if self.slope_a_per_molar is not None:
            return self.slope_a_per_molar
        return self.sensor.expected_slope_a_per_molar()

    @property
    def day0_intercept_a(self) -> float:
        """The intercept [A] the channel's estimator starts from."""
        if self.intercept_a is not None:
            return self.intercept_a
        return self.sensor.background_current_a


@dataclass(frozen=True)
class MonitorPlan(PlanBase):
    """Declarative description of a cohort wear-time simulation.

    Attributes:
        channels: the cohort, one entry per (patient × sensor) channel.
        duration_h: wear horizon [h].
        sample_period_s: monitoring cadence [s] (one reading per period).
        chunk_samples: samples advanced per vectorized block; purely a
            memory/throughput knob — results are chunk-size-invariant.
        seed: root seed for the per-channel generator streams; ``None``
            draws an entropy root (irreproducible, channels still
            mutually independent).
        add_noise: include every stochastic component (physiological
            noise, wander, instrument noise); disable for deterministic
            reference runs.
        recalibration: the online re-fit policy.
        spec_tolerance: relative error bound defining "time in spec"
            (the CGM-style accuracy window, e.g. 0.20 for ±20 %).
        keep_traces: store full per-sample traces on the result (disable
            for long cohorts where only summaries matter).
    """

    channels: tuple[MonitorChannel, ...]
    duration_h: float
    sample_period_s: float = 300.0
    chunk_samples: int = 4096
    seed: int | None = None
    add_noise: bool = True
    recalibration: RecalibrationPolicy = field(
        default_factory=RecalibrationPolicy)
    spec_tolerance: float = 0.20
    keep_traces: bool = True

    def validate(self) -> None:
        """Field-level invariants, in the shared ``PlanBase`` wording."""
        require_non_empty("channel", self.channels)
        require_positive("duration_h", self.duration_h)
        require_positive("sample_period_s", self.sample_period_s)
        require_at_least("chunk_samples", self.chunk_samples, 1)
        require_in_open_unit_interval("spec_tolerance", self.spec_tolerance)
        if self.n_samples < 1:
            raise ValueError("horizon shorter than one sample period")
        if (self.recalibration.enabled
                and self.recalibration.reference_interval_h * 3600.0
                < self.sample_period_s):
            raise ValueError(
                "reference interval shorter than the sample period")

    @property
    def n_channels(self) -> int:
        """Number of (patient × sensor) channels in the cohort."""
        return len(self.channels)

    @property
    def n_samples(self) -> int:
        """Total readings per channel over the wear horizon."""
        return int(self.duration_h * 3600.0 // self.sample_period_s)

    @property
    def reference_every_samples(self) -> int:
        """Reference-measurement cadence in samples (>= 1)."""
        return max(1, int(round(
            self.recalibration.reference_interval_h * 3600.0
            / self.sample_period_s)))

    @property
    def n_reference_draws(self) -> int:
        """Reference draws that actually fire within the wear horizon.

        Zero when the policy is disabled — or when the reference
        interval is longer than the wear time, in which case the plan
        degrades to open-loop monitoring *by design*: short regimens
        (e.g. a 6 h course with 12-hourly lab draws, the situation every
        short ``run_therapy`` regimen hits) are legal, they just never
        recalibrate.  Both engine paths branch on this explicitly.
        """
        if not self.recalibration.enabled:
            return 0
        return self.n_samples // self.reference_every_samples

    def sample_times_h(self, start: int, stop: int) -> np.ndarray:
        """Wear times [h] of the samples in ``[start, stop)``.

        Sample ``k`` is taken at ``(k + 1) * sample_period_s`` — the
        first reading lands one period after the day-0 calibration, and
        times depend only on the absolute index (chunk-invariance).
        """
        return ((np.arange(start, stop) + 1)
                * (self.sample_period_s / 3600.0))


@dataclass(frozen=True)
class MonitorResult:
    """Evaluated wear-time simulation: per-channel accuracy summaries.

    Attributes:
        plan: the simulation that produced these numbers.
        mard: mean absolute relative difference between estimated and
            true concentration per channel (the CGM accuracy metric),
            shape ``(n_channels,)``.
        time_in_spec: fraction of readings whose relative error stays
            within ``plan.spec_tolerance``, shape ``(n_channels,)``.
        n_recalibrations: accepted one-point re-fits per channel.
        recalibration_times_h: the wear times [h] at which each channel
            was re-fit (one tuple per channel).
        final_retention: modeled sensitivity retention at the end of
            wear, shape ``(n_channels,)``.
        final_slope_a_per_molar: the estimator's slope after the last
            re-fit, shape ``(n_channels,)``.
        time_h: sample times [h] (``None`` unless ``plan.keep_traces``).
        true_concentration_molar / estimated_concentration_molar:
            ``(n_channels, n_samples)`` traces (``None`` unless
            ``plan.keep_traces``).
        measured_current_a: digitized readings [A] (``None`` unless
            ``plan.keep_traces``).
    """

    plan: MonitorPlan
    mard: np.ndarray
    time_in_spec: np.ndarray
    n_recalibrations: np.ndarray
    recalibration_times_h: tuple[tuple[float, ...], ...]
    final_retention: np.ndarray
    final_slope_a_per_molar: np.ndarray
    time_h: np.ndarray | None = field(default=None, repr=False)
    true_concentration_molar: np.ndarray | None = field(
        default=None, repr=False)
    estimated_concentration_molar: np.ndarray | None = field(
        default=None, repr=False)
    measured_current_a: np.ndarray | None = field(default=None, repr=False)

    def channel_summary(self, index: int) -> str:
        """One-line accuracy summary for one channel."""
        channel = self.plan.channels[index]
        return (
            f"{channel.patient_id} [{channel.sensor.analyte.name}]: "
            f"MARD {self.mard[index] * 100:.1f} %, "
            f"in-spec {self.time_in_spec[index] * 100:.1f} %, "
            f"{int(self.n_recalibrations[index])} recals, "
            f"retention {self.final_retention[index]:.3f}")

    def summary(self) -> str:
        """Cohort-level summary plus one line per channel."""
        lines = [
            f"{self.plan.n_channels} channels x {self.plan.n_samples} "
            f"samples over {self.plan.duration_h:.0f} h "
            f"(every {self.plan.sample_period_s / 60:.0f} min): "
            f"cohort MARD {float(np.mean(self.mard)) * 100:.1f} %, "
            f"in-spec {float(np.mean(self.time_in_spec)) * 100:.1f} %, "
            f"{int(np.sum(self.n_recalibrations))} recalibrations"]
        lines += [f"  {self.channel_summary(i)}"
                  for i in range(self.plan.n_channels)]
        return "\n".join(lines)

    def summary_row(self) -> dict:
        """Flat scalar metrics of the wear simulation (JSON-serializable).

        The tabular-export half of the shared result contract
        (:class:`repro.scenarios.ResultProtocol`).
        """
        return {
            "workload": "monitor",
            "n_channels": self.plan.n_channels,
            "n_samples": self.plan.n_samples,
            "duration_h": float(self.plan.duration_h),
            "seed": self.plan.seed,
            "cohort_mard": float(np.mean(self.mard)),
            "cohort_time_in_spec": float(np.mean(self.time_in_spec)),
            "n_recalibrations": int(np.sum(self.n_recalibrations)),
            "mean_final_retention": float(np.mean(self.final_retention)),
        }

    def to_dict(self, include_traces: bool = False) -> dict:
        """JSON-serializable export of the evaluated wear simulation.

        Args:
            include_traces: also include the per-sample true/estimated
                concentration and measured-current traces (only possible
                when the plan kept them; off by default — they dominate
                the payload for week-long cohorts).

        Returns:
            ``summary_row()`` plus one accuracy entry per channel.
        """
        channels = [{
            "patient_id": channel.patient_id,
            "analyte": channel.sensor.analyte.name,
            "mard": float(self.mard[i]),
            "time_in_spec": float(self.time_in_spec[i]),
            "n_recalibrations": int(self.n_recalibrations[i]),
            "recalibration_times_h": list(self.recalibration_times_h[i]),
            "final_retention": float(self.final_retention[i]),
            "final_slope_a_per_molar": float(
                self.final_slope_a_per_molar[i]),
        } for i, channel in enumerate(self.plan.channels)]
        data = {**self.summary_row(), "channels": channels}
        if include_traces and self.time_h is not None:
            data["time_h"] = self.time_h.tolist()
            data["true_concentration_molar"] = (
                self.true_concentration_molar.tolist())
            data["estimated_concentration_molar"] = (
                self.estimated_concentration_molar.tolist())
            data["measured_current_a"] = self.measured_current_a.tolist()
        return data


@dataclass
class _ChannelParams:
    """Per-channel scalars gathered once so chunks evaluate as arrays."""

    decay_rate_per_hour: np.ndarray
    background_a: np.ndarray
    baseline_drift_a_per_hour: np.ndarray
    wander_sigma_a: np.ndarray
    wander_tau_s: np.ndarray
    noise_sigma_molar: np.ndarray
    noise_tau_s: np.ndarray
    floor_molar: np.ndarray
    measurement_sigma_a: np.ndarray
    day0_slope: np.ndarray
    day0_intercept: np.ndarray


def _gather(plan: MonitorPlan) -> _ChannelParams:
    """Collect the per-channel scalar parameters of a cohort."""
    channels = plan.channels
    return _ChannelParams(
        decay_rate_per_hour=np.array(
            [c.budget.decay_rate_per_hour for c in channels]),
        background_a=np.array(
            [c.sensor.background_current_a for c in channels]),
        baseline_drift_a_per_hour=np.array(
            [c.budget.matrix.baseline_drift_a_per_hour_per_m2
             * c.sensor.area_m2 for c in channels]),
        wander_sigma_a=np.array([c.wander_sigma_a for c in channels]),
        wander_tau_s=np.array(
            [c.wander_tau_h * 3600.0 for c in channels]),
        noise_sigma_molar=np.array(
            [c.trajectory.noise_sigma_molar for c in channels]),
        noise_tau_s=np.array(
            [c.trajectory.noise_tau_h * 3600.0 for c in channels]),
        floor_molar=np.array(
            [c.trajectory.floor_molar for c in channels]),
        measurement_sigma_a=np.array(
            [reading_noise_sigma_a(c.sensor) for c in channels]),
        day0_slope=np.array(
            [c.day0_slope_a_per_molar for c in channels]),
        day0_intercept=np.array(
            [c.day0_intercept_a for c in channels]),
    )


def reading_noise_sigma_a(sensor: Biosensor) -> float:
    """Per-reading 1-sigma measurement noise of a deployed sensor [A].

    The acquisition chain's input-referred noise floor combined with the
    sensor's repeatability — the sigma both streaming engines (monitor
    and therapy) inject per digitized reading.
    """
    return float(np.hypot(sensor.chain.input_referred_noise_rms(),
                          sensor.repeatability_std_a))


def digitize_rows(sensors: "list[Biosensor] | tuple[Biosensor, ...]",
                  currents: np.ndarray) -> np.ndarray:
    """Push reading currents through each row's acquisition chain.

    At monitoring cadence every reading is a settled plateau, so the
    chain's contribution per sample is its static transfer: TIA gain with
    rail saturation, then SAR-ADC quantization, referred back to input.
    (The chain's *noise* floor enters separately as part of the
    per-reading measurement sigma.)  Shared by the monitor and therapy
    engines — row ``i`` of ``currents`` goes through ``sensors[i]``.

    Args:
        sensors: one deployed sensor per row (repeat an instance for a
            cohort wearing copies of one design).
        currents: reading currents [A], ``(n_rows, n_samples)``.

    Returns:
        Input-referred digitized readings [A], same shape.
    """
    digitized = np.empty_like(currents)
    for i, sensor in enumerate(sensors):
        chain = sensor.chain
        volts = np.clip(currents[i] * chain.tia.gain_v_per_a,
                        -chain.tia.rail_v, chain.tia.rail_v)
        digitized[i] = chain.adc.convert(volts) / chain.tia.gain_v_per_a
    return digitized


def _digitize_rows(plan: MonitorPlan, currents: np.ndarray) -> np.ndarray:
    """Digitize a monitor chunk through the cohort's chains."""
    return digitize_rows([c.sensor for c in plan.channels], currents)


def estimate_chunk_with_recalibration(
        measured: np.ndarray,
        reference_concentration: np.ndarray,
        start: int,
        stop: int,
        slopes: np.ndarray,
        intercepts: np.ndarray,
        ref_every: int,
        tolerance: float,
        policy_active: bool,
) -> tuple[np.ndarray, np.ndarray, list[tuple[int, np.ndarray]]]:
    """Linear estimation with segment-wise one-point recalibration.

    The shared vector-path core of both streaming engines (monitor and
    therapy): a chunk of digitized readings is inverted through the
    current per-channel calibration, split at the absolute reference
    sample indices so re-fits apply *from the next sample on* — the
    arithmetic the chunk-invariance contract rests on.  A reference
    fires at absolute index ``k`` when ``(k + 1) % ref_every == 0``;
    channels whose reading error at a reference exceeds ``tolerance``
    are re-fit via :func:`one_point_recalibration_batch` (a channel
    with a non-positive reference level skips its re-fit).  With
    ``policy_active`` false — disabled policy *or* a schedule that
    cannot fire inside the horizon — the chunk estimates in one segment
    with no recalibration arithmetic at all.

    Args:
        measured: digitized readings [A], ``(n_channels, chunk)``.
        reference_concentration: true levels at each sample [mol/L]
            (the lab-draw ground truth), same shape.
        start / stop: absolute sample range ``[start, stop)`` of the
            chunk.
        slopes / intercepts: current calibration, ``(n_channels,)``.
        ref_every: reference cadence in samples.
        tolerance: relative error triggering a re-fit.
        policy_active: whether any reference can fire this run.

    Returns:
        ``(estimates, slopes, events)``: the ``(n_channels, chunk)``
        concentration estimates, the (possibly re-fit) slopes, and one
        ``(absolute_index, accepted_mask)`` entry per reference sample
        where at least one channel was re-fit.
    """
    n_channels, chunk = measured.shape
    estimates = np.empty((n_channels, chunk))
    events: list[tuple[int, np.ndarray]] = []
    segment_start = start
    while segment_start < stop:
        if policy_active:
            # Next reference sample at an absolute index (chunk-
            # invariant): k is a reference when (k + 1) % ref == 0.
            next_ref = ((segment_start + ref_every)
                        // ref_every) * ref_every - 1
            segment_stop = min(stop, next_ref + 1)
        else:
            segment_stop = stop
        local = slice(segment_start - start, segment_stop - start)
        estimates[:, local] = np.maximum(
            0.0, (measured[:, local] - intercepts[:, None])
            / slopes[:, None])
        last = segment_stop - 1
        if policy_active and (last + 1) % ref_every == 0:
            j = last - start
            reference_c = reference_concentration[:, j]
            # A channel whose true level sits at a 0.0 trajectory
            # floor has no usable reference draw this round: skip
            # its re-fit instead of aborting the cohort.
            has_reference = reference_c > 0
            rel_error = np.zeros(n_channels)
            np.divide(np.abs(estimates[:, j] - reference_c),
                      reference_c, out=rel_error, where=has_reference)
            triggered = has_reference & (rel_error > tolerance)
            if np.any(triggered):
                refit, applied = one_point_recalibration_batch(
                    slopes, np.where(has_reference, reference_c, 1.0),
                    measured[:, j], intercepts)
                accepted = triggered & applied
                slopes = np.where(accepted, refit, slopes)
                if np.any(accepted):
                    events.append((last, accepted))
        segment_start = segment_stop
    return estimates, slopes, events


def run_monitor(plan: MonitorPlan) -> MonitorResult:
    """Stream a cohort through wear-time in chunked, vectorized blocks.

    The engine entry point for the monitoring workload.  Each chunk
    advances every channel by up to ``plan.chunk_samples`` readings as
    ``(n_channels, chunk)`` array passes; recalibration state (the
    estimator slope) carries across chunk boundaries.

    Returns:
        A :class:`MonitorResult` with per-channel MARD / time-in-spec
        summaries (and full traces when ``plan.keep_traces``).

    Determinism: with a fixed ``plan.seed`` the result is reproducible
    and independent of ``plan.chunk_samples`` (asserted to <= 1e-9 by
    the shared contract suite, ``tests/engine/test_core_contract.py``).
    """
    return execute(MONITOR_KERNELS, plan)


def _init_monitor_state(plan: MonitorPlan) -> SimpleNamespace:
    """Carry state threaded through the monitor chunks: generator
    streams, live calibration, OU states and accuracy accumulators."""
    params = _gather(plan)
    n_channels, n_samples = plan.n_channels, plan.n_samples
    rngs = spawn_generators(plan.seed, _STREAMS_PER_CHANNEL * n_channels)
    keep = plan.keep_traces
    return SimpleNamespace(
        params=params,
        trajectory_rngs=rngs[0::_STREAMS_PER_CHANNEL],
        wander_rngs=rngs[1::_STREAMS_PER_CHANNEL],
        measurement_rngs=rngs[2::_STREAMS_PER_CHANNEL],
        slopes=params.day0_slope.copy(),
        intercepts=params.day0_intercept,
        trajectory_state=np.zeros(n_channels),
        wander_state=np.zeros(n_channels),
        ref_every=plan.reference_every_samples,
        # The explicit zero-recalibration path: a reference schedule
        # that cannot fire inside the horizon (interval > wear time)
        # degrades to open-loop monitoring instead of dead
        # segment-splitting arithmetic.
        policy_active=plan.n_reference_draws > 0,
        abs_rel_error_sum=np.zeros(n_channels),
        in_spec_count=np.zeros(n_channels),
        valid_count=np.zeros(n_channels),
        recal_times=[[] for _ in range(n_channels)],
        true_c=np.empty((n_channels, n_samples)) if keep else None,
        est_c=np.empty((n_channels, n_samples)) if keep else None,
        meas_i=np.empty((n_channels, n_samples)) if keep else None,
        last_update=None,
    )


def _monitor_chunk(plan: MonitorPlan, state: SimpleNamespace,
                   start: int, stop: int) -> None:
    """Advance every channel by one ``(n_channels, chunk)`` block."""
    params = state.params
    n_channels = plan.n_channels
    chunk = stop - start
    t_h = plan.sample_times_h(start, stop)

    # --- truth: physiological concentration per channel ------------
    c_mean = np.stack([
        channel.trajectory.mean_molar(t_h)
        for channel in plan.channels])
    if plan.add_noise:
        c_noise, state.trajectory_state = ou_process_batch(
            chunk, plan.sample_period_s, params.noise_tau_s,
            params.noise_sigma_molar, state.trajectory_state,
            rngs=state.trajectory_rngs)
    else:
        c_noise = np.zeros((n_channels, chunk))
    c = np.maximum(c_mean + c_noise, params.floor_molar[:, None])

    # --- sensor physics: drifted faradaic response + baseline ------
    faradaic = np.stack([
        np.asarray(channel.sensor.layer.steady_state_current(
            c[i], channel.sensor.area_m2), dtype=float)
        for i, channel in enumerate(plan.channels)])
    retention = np.exp(
        -params.decay_rate_per_hour[:, None] * t_h[None, :])
    baseline = (params.background_a[:, None]
                + params.baseline_drift_a_per_hour[:, None]
                * t_h[None, :])
    if plan.add_noise:
        wander, state.wander_state = ou_process_batch(
            chunk, plan.sample_period_s, params.wander_tau_s,
            params.wander_sigma_a, state.wander_state,
            rngs=state.wander_rngs)
    else:
        wander = np.zeros((n_channels, chunk))
    current = retention * faradaic + baseline + wander

    # --- instrument chain: noise floor, rails, quantization --------
    if plan.add_noise:
        shocks = np.stack([
            rng.standard_normal(chunk) for rng in state.measurement_rngs])
        current = current + params.measurement_sigma_a[:, None] * shocks
    measured = _digitize_rows(plan, current)

    # --- estimation + online recalibration, segment-wise -----------
    estimates, state.slopes, events = estimate_chunk_with_recalibration(
        measured, c, start, stop, state.slopes, state.intercepts,
        state.ref_every, plan.recalibration.tolerance,
        state.policy_active)
    for last, accepted in events:
        when = float(t_h[last - start])
        for i in np.flatnonzero(accepted):
            state.recal_times[i].append(when)

    # --- accuracy accounting ---------------------------------------
    valid = c > 0
    rel_errors = np.zeros((n_channels, chunk))
    np.divide(np.abs(estimates - c), c, out=rel_errors, where=valid)
    state.abs_rel_error_sum += np.sum(rel_errors, axis=1, where=valid)
    state.in_spec_count += np.sum(
        (rel_errors <= plan.spec_tolerance) & valid, axis=1)
    state.valid_count += np.sum(valid, axis=1)
    if plan.keep_traces:
        state.true_c[:, start:stop] = c
        state.est_c[:, start:stop] = estimates
        state.meas_i[:, start:stop] = measured
    # References to this chunk's freshly allocated arrays — what
    # stream_update hands to a live consumer without needing traces.
    state.last_update = {
        "time_h": t_h,
        "true_concentration_molar": c,
        "estimated_concentration_molar": estimates,
        "measured_current_a": measured,
    }


def _finalize_monitor(plan: MonitorPlan,
                      state: SimpleNamespace) -> MonitorResult:
    """Assemble the :class:`MonitorResult` from the carry state."""
    params = state.params
    n_samples = plan.n_samples
    recal_times = state.recal_times
    safe_n = np.maximum(state.valid_count, 1.0)
    return MonitorResult(
        plan=plan,
        mard=state.abs_rel_error_sum / safe_n,
        time_in_spec=state.in_spec_count / safe_n,
        n_recalibrations=np.array([len(times) for times in recal_times]),
        recalibration_times_h=tuple(tuple(times) for times in recal_times),
        final_retention=np.exp(
            -params.decay_rate_per_hour
            * float(plan.sample_times_h(n_samples - 1, n_samples)[0])),
        final_slope_a_per_molar=state.slopes,
        time_h=plan.sample_times_h(0, n_samples)
        if plan.keep_traces else None,
        true_concentration_molar=state.true_c,
        estimated_concentration_molar=state.est_c,
        measured_current_a=state.meas_i,
    )


def run_monitor_scalar(plan: MonitorPlan) -> MonitorResult:
    """Deprecated alias of ``run_scalar("monitor", plan)``.

    The scalar reference now lives on the registered kernel set; use
    :func:`repro.engine.core.run_scalar` instead.
    """
    warnings.warn(
        "run_monitor_scalar() is deprecated; use "
        "repro.engine.core.run_scalar('monitor', plan)",
        DeprecationWarning, stacklevel=2)
    return _run_monitor_scalar(plan)


def _run_monitor_scalar(plan: MonitorPlan) -> MonitorResult:
    """Day-by-day scalar reference: one channel, one sample at a time.

    The historical way the long-term examples advanced wear-time — a
    Python loop over every (channel, sample) pair through the *scalar*
    APIs (``DriftBudget.sensitivity_retention``, scalar OU updates,
    scalar ``one_point_recalibration``).  Consumes the same per-channel
    generator streams as :func:`run_monitor`, so the two paths agree to
    floating-point reassociation (asserted to <= 1e-9) — which is exactly
    why the chunked engine exists: same physics, >= 5x the throughput
    (gated by the shared bench harness, ``benchmarks/bench_core.py``).
    """
    params = _gather(plan)
    n_channels, n_samples = plan.n_channels, plan.n_samples
    rngs = spawn_generators(plan.seed, _STREAMS_PER_CHANNEL * n_channels)
    dt_s = plan.sample_period_s
    ref_every = plan.reference_every_samples
    policy = plan.recalibration
    policy_active = plan.n_reference_draws > 0  # zero-recal path explicit

    mard = np.zeros(n_channels)
    time_in_spec = np.zeros(n_channels)
    final_slopes = np.zeros(n_channels)
    recal_times: list[tuple[float, ...]] = []
    if plan.keep_traces:
        true_c = np.empty((n_channels, n_samples))
        est_c = np.empty((n_channels, n_samples))
        meas_i = np.empty((n_channels, n_samples))

    for i, channel in enumerate(plan.channels):
        trajectory_rng = rngs[_STREAMS_PER_CHANNEL * i]
        wander_rng = rngs[_STREAMS_PER_CHANNEL * i + 1]
        measurement_rng = rngs[_STREAMS_PER_CHANNEL * i + 2]
        sensor = channel.sensor
        chain = sensor.chain
        slope = float(params.day0_slope[i])
        intercept = float(params.day0_intercept[i])
        background = float(params.background_a[i])
        noise_a = np.exp(-dt_s / params.noise_tau_s[i])
        noise_scale = (params.noise_sigma_molar[i]
                       * np.sqrt(1.0 - noise_a ** 2))
        wander_a = np.exp(-dt_s / params.wander_tau_s[i])
        wander_scale = (params.wander_sigma_a[i]
                        * np.sqrt(1.0 - wander_a ** 2))
        trajectory_state = 0.0
        wander_state = 0.0
        error_sum = 0.0
        in_spec = 0
        valid = 0
        times: list[float] = []

        for k in range(n_samples):
            t_h = (k + 1) * dt_s / 3600.0
            mean = channel.trajectory.mean_molar(t_h)
            if plan.add_noise:
                trajectory_state = (noise_a * trajectory_state
                                    + noise_scale
                                    * trajectory_rng.standard_normal())
            c = max(mean + trajectory_state, channel.trajectory.floor_molar)
            faradaic = float(sensor.layer.steady_state_current(
                c, sensor.area_m2))
            retention = channel.budget.sensitivity_retention(t_h)
            baseline = (background
                        + channel.budget.matrix.baseline_drift_a(
                            sensor.area_m2, t_h))
            if plan.add_noise:
                wander_state = (wander_a * wander_state
                                + wander_scale
                                * wander_rng.standard_normal())
            current = retention * faradaic + baseline + wander_state
            if plan.add_noise:
                current += (params.measurement_sigma_a[i]
                            * measurement_rng.standard_normal())
            volts = float(np.clip(current * chain.tia.gain_v_per_a,
                                  -chain.tia.rail_v, chain.tia.rail_v))
            measured = float(chain.adc.convert(volts)[0]
                             / chain.tia.gain_v_per_a)
            estimate = max(0.0, (measured - intercept) / slope)
            if policy_active and (k + 1) % ref_every == 0 and c > 0:
                rel_error = abs(estimate - c) / c
                if rel_error > policy.tolerance:
                    try:
                        slope = one_point_recalibration(
                            slope, c, measured, intercept)
                        times.append(t_h)
                    except ValueError:
                        pass
            if c > 0:
                error_sum += abs(estimate - c) / c
                in_spec += abs(estimate - c) / c <= plan.spec_tolerance
                valid += 1
            if plan.keep_traces:
                true_c[i, k] = c
                est_c[i, k] = estimate
                meas_i[i, k] = measured

        mard[i] = error_sum / max(valid, 1)
        time_in_spec[i] = in_spec / max(valid, 1)
        final_slopes[i] = slope
        recal_times.append(tuple(times))

    final_t_h = n_samples * dt_s / 3600.0
    return MonitorResult(
        plan=plan,
        mard=mard,
        time_in_spec=time_in_spec,
        n_recalibrations=np.array([len(t) for t in recal_times]),
        recalibration_times_h=tuple(recal_times),
        final_retention=np.exp(-params.decay_rate_per_hour * final_t_h),
        final_slope_a_per_molar=final_slopes,
        time_h=plan.sample_times_h(0, n_samples)
        if plan.keep_traces else None,
        true_concentration_molar=true_c if plan.keep_traces else None,
        estimated_concentration_molar=est_c if plan.keep_traces else None,
        measured_current_a=meas_i if plan.keep_traces else None,
    )


def cohort(sensor: Biosensor,
           analyte: str,
           n_patients: int,
           matrix=SERUM,
           enzyme_half_life_s: float = 2 * 7 * 24 * 3600.0,
           temperature_k: float = 310.15,
           wander_sigma_a: float = 0.0) -> tuple[MonitorChannel, ...]:
    """Build a cohort of patients wearing copies of one sensor.

    Patients differ deterministically — circadian phases and baselines
    spread across the clinical window as a function of the patient index,
    no randomness — so cohorts are reproducible even before seeding.

    Args:
        sensor: the deployed sensor design (shared by every patient).
        analyte: key into the physiological-range catalog.
        n_patients: cohort size.
        matrix: wear matrix (fouling / baseline drift source).
        enzyme_half_life_s: operational half-life of the immobilized
            enzyme at its reference temperature.
        temperature_k: wear temperature (body temperature default).
        wander_sigma_a: per-channel baseline-wander RMS [A].

    Returns:
        ``n_patients`` :class:`MonitorChannel` entries.
    """
    if n_patients < 1:
        raise ValueError("need at least one patient")
    base = ConcentrationTrajectory.for_analyte(analyte)
    budget = DriftBudget(
        stability=EnzymeStability(half_life_s=enzyme_half_life_s),
        matrix=matrix,
        temperature_k=temperature_k)
    channels = []
    for i in range(n_patients):
        spread = (i / n_patients - 0.5)  # in [-0.5, 0.5)
        trajectory = replace(
            base,
            baseline_molar=base.baseline_molar * (1.0 + 0.4 * spread),
            circadian_phase_h=(i * 24.0 / max(n_patients, 1)) % 24.0,
        )
        channels.append(MonitorChannel(
            patient_id=f"patient-{i:03d}",
            sensor=sensor,
            trajectory=trajectory,
            budget=budget,
            wander_sigma_a=wander_sigma_a,
        ))
    return tuple(channels)


def glucose_cohort(n_patients: int = 8,
                   wander_sigma_a: float = 2e-9) -> tuple[MonitorChannel, ...]:
    """A ready-made glucose cohort on the paper's "this work" sensor.

    Convenience for examples, tests and docs: ``n_patients`` wearers of
    the MWCNT/Nafion + GOD glucose sensor in serum at body temperature.

    Args:
        n_patients: cohort size.
        wander_sigma_a: baseline-wander RMS [A] per channel.

    Returns:
        ``n_patients`` :class:`MonitorChannel` entries.
    """
    # Imported here: the registry composes sensors out of half the
    # library, and the monitor only needs it for this convenience.
    from repro.core.registry import build_sensor, spec_by_id

    sensor = build_sensor(spec_by_id("glucose/this-work"))
    return cohort(sensor, "glucose", n_patients,
                  wander_sigma_a=wander_sigma_a)


class MonitorKernels(KernelSet):
    """The monitoring workload as a kernel set on the execution core.

    One segment spans the whole wear horizon; the carry state threads
    the live calibration (slopes), both OU states and the accuracy
    accumulators across chunks, which is what makes results
    chunk-size-invariant.
    """

    name = "monitor"
    plan_type = MonitorPlan
    bench_record = "monitor"
    floor_env = "MONITOR_SPEEDUP_FLOOR"
    snapshot_version = 1

    def compile(self, plan: MonitorPlan):
        """One segment spanning the wear horizon, chunked as planned."""
        return single_segment(self.name, plan.n_channels,
                              plan.n_samples, plan.chunk_samples)

    def init_state(self, plan: MonitorPlan) -> SimpleNamespace:
        """Generator streams, day-0 calibration and accumulators."""
        return _init_monitor_state(plan)

    def run_chunk(self, plan: MonitorPlan, state, segment,
                  start: int, stop: int) -> None:
        """Advance the cohort across samples ``[start, stop)``."""
        _monitor_chunk(plan, state, start, stop)

    def finalize(self, plan: MonitorPlan, state) -> MonitorResult:
        """Assemble the :class:`MonitorResult`."""
        return _finalize_monitor(plan, state)

    def export_state(self, plan: MonitorPlan, state,
                     cursor: int) -> dict:
        """Serialize the monitor carry state after ``cursor`` samples.

        The snapshot holds the three generator-stream positions per
        channel, the live calibration (slopes), both OU states, the
        accuracy accumulators and the recalibration record — plus the
        trace prefixes ``[:, :cursor]`` when the plan keeps traces.
        With ``keep_traces=False`` the snapshot size is independent of
        the cursor (the bounded-memory property
        ``benchmarks/bench_serve.py`` gates).
        """
        snapshot = snapshot_envelope(self.name, self.snapshot_version,
                                     cursor)
        snapshot.update({
            "n_channels": plan.n_channels,
            "rngs": {
                "trajectory": [encode_rng(g)
                               for g in state.trajectory_rngs],
                "wander": [encode_rng(g) for g in state.wander_rngs],
                "measurement": [encode_rng(g)
                                for g in state.measurement_rngs],
            },
            "slopes": encode_array(state.slopes),
            "trajectory_state": encode_array(state.trajectory_state),
            "wander_state": encode_array(state.wander_state),
            "abs_rel_error_sum": encode_array(state.abs_rel_error_sum),
            "in_spec_count": encode_array(state.in_spec_count),
            "valid_count": encode_array(state.valid_count),
            "recal_times": [list(times) for times in state.recal_times],
        })
        if plan.keep_traces:
            snapshot["traces"] = {
                "true_concentration_molar": encode_array(
                    state.true_c[:, :cursor]),
                "estimated_concentration_molar": encode_array(
                    state.est_c[:, :cursor]),
                "measured_current_a": encode_array(
                    state.meas_i[:, :cursor]),
            }
        return snapshot

    def restore_state(self, plan: MonitorPlan, snapshot):
        """Rebuild ``(state, cursor)`` from an exported snapshot.

        The returned state is indistinguishable from one that streamed
        ``[0, cursor)`` in-process: a fresh :func:`_init_monitor_state`
        whose generator streams are repositioned and whose calibration,
        OU states, accumulators and trace prefixes are overwritten from
        the snapshot.
        """
        cursor = require_snapshot(snapshot, self.name,
                                  self.snapshot_version, plan.n_samples)
        if snapshot["n_channels"] != plan.n_channels:
            raise ValueError(
                f"snapshot holds {snapshot['n_channels']} channels, "
                f"plan has {plan.n_channels}")
        if plan.keep_traces and "traces" not in snapshot:
            raise ValueError(
                "plan keeps traces but the snapshot carries none "
                "(exported with keep_traces=False)")
        state = _init_monitor_state(plan)
        rngs = snapshot["rngs"]
        state.trajectory_rngs = [decode_rng(s)
                                 for s in rngs["trajectory"]]
        state.wander_rngs = [decode_rng(s) for s in rngs["wander"]]
        state.measurement_rngs = [decode_rng(s)
                                  for s in rngs["measurement"]]
        state.slopes = decode_array(snapshot["slopes"])
        state.trajectory_state = decode_array(
            snapshot["trajectory_state"])
        state.wander_state = decode_array(snapshot["wander_state"])
        state.abs_rel_error_sum = decode_array(
            snapshot["abs_rel_error_sum"])
        state.in_spec_count = decode_array(snapshot["in_spec_count"])
        state.valid_count = decode_array(snapshot["valid_count"])
        state.recal_times = [list(times)
                             for times in snapshot["recal_times"]]
        if plan.keep_traces and cursor > 0:
            traces = snapshot["traces"]
            state.true_c[:, :cursor] = decode_array(
                traces["true_concentration_molar"])
            state.est_c[:, :cursor] = decode_array(
                traces["estimated_concentration_molar"])
            state.meas_i[:, :cursor] = decode_array(
                traces["measured_current_a"])
        return state, cursor

    def stream_update(self, plan: MonitorPlan, state, start: int,
                      stop: int) -> dict:
        """The chunk that just ran, as incremental per-sample outputs.

        Returns ``time_h`` plus the true / estimated concentration and
        measured-current blocks for ``[start, stop)`` — available with
        or without ``keep_traces`` (the chunk arrays are handed over
        directly, so streaming never forces trace retention).
        """
        update = state.last_update
        if update is None or update["time_h"].shape[0] != stop - start:
            raise ValueError(
                f"no pending chunk update for [{start}, {stop})")
        return update

    def describe_metrics(self, plan: MonitorPlan,
                         result: MonitorResult) -> dict:
        """Monitoring health counters: recalibrations fired, readings
        taken, and TIA-rail-censored samples (readings pinned at a rail
        carry no amplitude information — the estimation layer treats
        them as missing).  The censoring count needs the current trace,
        so it is only reported when ``plan.keep_traces``."""
        metrics = {
            "recalibrations": int(np.sum(result.n_recalibrations)),
            "readings": plan.n_channels * plan.n_samples,
        }
        if result.measured_current_a is not None:
            from repro.inference.observation import rail_censored_mask

            censored = rail_censored_mask(
                [channel.sensor for channel in plan.channels],
                result.measured_current_a)
            metrics["rail_censored_samples"] = int(np.sum(censored))
        return metrics

    def run_scalar(self, plan: MonitorPlan) -> MonitorResult:
        """Per-(channel, sample) reference through the scalar APIs."""
        return _run_monitor_scalar(plan)

    def contract_plan(self) -> MonitorPlan:
        """Three glucose wearers over 36 h at 15-min cadence."""
        return MonitorPlan(channels=glucose_cohort(3), duration_h=36.0,
                           sample_period_s=900.0, chunk_samples=64,
                           seed=7)

    def contract_fields(self, result: MonitorResult) -> dict:
        """Traces, accuracy scores and the recalibration record."""
        return {
            "true_concentration_molar": Check(
                result.true_concentration_molar, atol=1e-9),
            "measured_current_a": Check(
                result.measured_current_a, atol=1e-15),
            "estimated_concentration_molar": Check(
                result.estimated_concentration_molar, atol=1e-9),
            "mard": Check(result.mard, atol=1e-9),
            "time_in_spec": Check(result.time_in_spec, atol=1e-12),
            "n_recalibrations": Check(result.n_recalibrations,
                                      exact=True),
            "recalibration_times_h": Check(
                np.array([t for times in result.recalibration_times_h
                          for t in times]), atol=1e-9),
            "final_slope_a_per_molar": Check(
                result.final_slope_a_per_molar, atol=0.0, rtol=1e-9),
        }


#: The registered monitor kernel set (the target of ``run_monitor``).
MONITOR_KERNELS = register_kernels(MonitorKernels())
