"""Batch campaign description: what to simulate, and in which cells.

A *campaign* is the cross product the bench protocol walks one point at a
time: sensor panel × concentration grid × replicates.  :class:`BatchPlan`
describes the whole campaign declaratively; the runner
(:func:`repro.engine.run_batch`) evaluates it as array operations instead
of nested Python loops.

Cell indexing is the engine's reproducibility contract: cells are
enumerated sensor-major, then concentration, then replicate, and each cell
gets its own child generator spawned from the plan seed
(``np.random.SeedSequence``).  The result of a cell therefore never
depends on how the campaign is grouped, vectorized, or split across
workers — only on ``(seed, cell index)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, NamedTuple

import numpy as np

from repro.core.sensor import Biosensor
from repro.engine.core import (
    PlanBase,
    require_at_least,
    require_non_empty,
    require_positive,
)


class CellIndex(NamedTuple):
    """Address of one simulation cell inside a campaign.

    Attributes:
        flat: position in the campaign-wide enumeration (seed order).
        sensor: index into ``plan.sensors``.
        concentration: index into that sensor's concentration grid.
        replicate: replicate number at that concentration.
    """

    flat: int
    sensor: int
    concentration: int
    replicate: int


@dataclass(frozen=True)
class BatchPlan(PlanBase):
    """Declarative description of a calibration campaign.

    Attributes:
        sensors: the sensor panel (one entry per channel).
        concentrations_molar: one concentration grid per sensor [mol/L];
            grids may differ in length and values (each analyte has its
            own range).  Zero entries are blanks.
        replicates: replicate count — a single int applied everywhere, or
            one tuple per sensor with one count per concentration (so a
            calibration can take 8 blanks but 3 replicates per standard).
        seed: root seed for the campaign's per-cell generators; ``None``
            draws an entropy root (irreproducible, but cells stay
            mutually independent).
        add_noise: include instrument + repeatability noise.
        step_duration_s: chronoamperometric step length per cell [s].
        chunk_cells: executor chunk size along the flat cell axis; any
            value yields bit-identical results (per-cell generators make
            each cell independent of its neighbours), so this is purely
            a working-set knob.
    """

    sensors: tuple[Biosensor, ...]
    concentrations_molar: tuple[tuple[float, ...], ...]
    replicates: int | tuple[tuple[int, ...], ...] = 3
    seed: int | None = None
    add_noise: bool = True
    step_duration_s: float = 16.0
    chunk_cells: int = 4096

    def validate(self) -> None:
        """Field-level invariants, in the shared ``PlanBase`` wording."""
        require_non_empty("sensor", self.sensors)
        if len(self.concentrations_molar) != len(self.sensors):
            raise ValueError(
                f"{len(self.sensors)} sensors but "
                f"{len(self.concentrations_molar)} concentration grids")
        for grid in self.concentrations_molar:
            if not grid:
                raise ValueError("every sensor needs at least one "
                                 "concentration (0.0 for a blank)")
            for c in grid:
                if not math.isfinite(c) or c < 0:
                    raise ValueError(
                        f"concentrations must be finite and >= 0, got {c}")
        if isinstance(self.replicates, int):
            if self.replicates < 1:
                raise ValueError("replicates must be >= 1")
        else:
            if len(self.replicates) != len(self.sensors):
                raise ValueError(
                    f"{len(self.sensors)} sensors but "
                    f"{len(self.replicates)} replicate tuples")
            for grid, reps in zip(self.concentrations_molar, self.replicates):
                if len(reps) != len(grid):
                    raise ValueError(
                        "replicate counts must match the concentration "
                        f"grid: {len(reps)} != {len(grid)}")
                if any(r < 1 for r in reps):
                    raise ValueError("replicates must be >= 1")
        require_positive("step_duration_s", self.step_duration_s)
        require_at_least("chunk_cells", self.chunk_cells, 1)

    def replicates_for(self, sensor_index: int) -> tuple[int, ...]:
        """Replicate count at each concentration of one sensor."""
        if isinstance(self.replicates, int):
            return tuple(
                self.replicates
                for __ in self.concentrations_molar[sensor_index])
        return self.replicates[sensor_index]

    @property
    def n_cells(self) -> int:
        """Total number of simulation cells in the campaign."""
        return sum(sum(self.replicates_for(i))
                   for i in range(len(self.sensors)))

    def cells(self) -> Iterator[CellIndex]:
        """Enumerate every cell in canonical (seed) order."""
        flat = 0
        for i, grid in enumerate(self.concentrations_molar):
            reps = self.replicates_for(i)
            for j in range(len(grid)):
                for k in range(reps[j]):
                    yield CellIndex(flat=flat, sensor=i,
                                    concentration=j, replicate=k)
                    flat += 1

    def sensor_cell_span(self, sensor_index: int) -> tuple[int, int]:
        """Half-open range of flat cell indices belonging to one sensor."""
        start = sum(sum(self.replicates_for(i)) for i in range(sensor_index))
        return start, start + sum(self.replicates_for(sensor_index))


@dataclass(frozen=True)
class BatchResult:
    """Evaluated campaign: one signal value per cell.

    Attributes:
        plan: the campaign that produced these values.
        values_a: nested per-sensor, per-concentration replicate arrays —
            ``values_a[i][j]`` is the ``(n_replicates,)`` array of signals
            [A] for sensor ``i`` at its ``j``-th concentration.
    """

    plan: BatchPlan
    values_a: tuple[tuple[np.ndarray, ...], ...] = field(repr=False)

    def __post_init__(self) -> None:
        if len(self.values_a) != len(self.plan.sensors):
            raise ValueError("one value group per sensor required")
        for i, groups in enumerate(self.values_a):
            reps = self.plan.replicates_for(i)
            if len(groups) != len(reps):
                raise ValueError(
                    f"sensor {i}: {len(groups)} concentration groups, "
                    f"expected {len(reps)}")
            for j, (group, n) in enumerate(zip(groups, reps)):
                if group.shape != (n,):
                    raise ValueError(
                        f"sensor {i} concentration {j}: shape "
                        f"{group.shape}, expected ({n},)")

    def replicate_values(self, sensor_index: int,
                         concentration_index: int) -> np.ndarray:
        """Raw replicate signals [A] for one (sensor, concentration)."""
        return self.values_a[sensor_index][concentration_index]

    def means(self, sensor_index: int) -> np.ndarray:
        """Replicate-mean signal [A] at each concentration of a sensor."""
        return np.array([float(np.mean(group))
                         for group in self.values_a[sensor_index]])

    def stds(self, sensor_index: int) -> np.ndarray:
        """Replicate sample std [A] per concentration (0 for one rep)."""
        return np.array([
            float(np.std(group, ddof=1)) if group.size > 1 else 0.0
            for group in self.values_a[sensor_index]])

    def flat_values(self) -> np.ndarray:
        """All cell values in canonical (seed) order, ``(n_cells,)``."""
        return np.concatenate(
            [group for groups in self.values_a for group in groups])

    def summary(self) -> str:
        """Campaign-level summary plus one line per sensor."""
        plan = self.plan
        lines = [f"{len(plan.sensors)} sensors x {plan.n_cells} cells "
                 f"(seed {plan.seed})"]
        for i, sensor in enumerate(plan.sensors):
            means = self.means(i)
            lines.append(
                f"  {sensor.analyte.name}: {means.size} concentrations, "
                f"mean signal {float(means.min()) * 1e9:.2f} - "
                f"{float(means.max()) * 1e9:.2f} nA")
        return "\n".join(lines)

    def summary_row(self) -> dict:
        """Flat scalar metrics of the campaign (JSON-serializable).

        The tabular-export half of the shared result contract
        (:class:`repro.scenarios.ResultProtocol`): one row a sweep over
        many scenarios can concatenate without schema knowledge.
        """
        flat = self.flat_values()
        return {
            "workload": "calibration",
            "n_sensors": len(self.plan.sensors),
            "n_cells": int(flat.size),
            "seed": self.plan.seed,
            "mean_abs_signal_a": float(np.mean(np.abs(flat))),
            "max_abs_signal_a": float(np.max(np.abs(flat))),
        }

    def to_dict(self, include_traces: bool = False) -> dict:
        """JSON-serializable export of the evaluated campaign.

        Args:
            include_traces: also include every raw replicate value (the
                full per-cell record; off by default — grids and
                replicate statistics are always included).

        Returns:
            ``summary_row()`` plus one entry per sensor with its
            concentration grid and replicate means/stds.
        """
        sensors = []
        for i, sensor in enumerate(self.plan.sensors):
            entry = {
                "analyte": sensor.analyte.name,
                "concentrations_molar": list(
                    self.plan.concentrations_molar[i]),
                "replicates": list(self.plan.replicates_for(i)),
                "mean_a": [float(v) for v in self.means(i)],
                "std_a": [float(v) for v in self.stds(i)],
            }
            if include_traces:
                entry["values_a"] = [
                    [float(v) for v in group] for group in self.values_a[i]]
            sensors.append(entry)
        return {**self.summary_row(), "sensors": sensors}
