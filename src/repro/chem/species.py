"""Redox species and couples used by the sensor simulations.

A :class:`RedoxCouple` bundles the thermodynamic and transport parameters of
an O + n e- <-> R half reaction.  The couples defined here are the ones that
actually carry current in the paper's sensors:

* ``HYDROGEN_PEROXIDE`` — the oxidase product detected at +650 mV in the
  chronoamperometric metabolite sensors (glucose, lactate, glutamate);
* ``CYP_HEME`` — the immobilized cytochrome P450 heme centre whose direct
  electron transfer produces the cyclic-voltammetry reduction peak used for
  drug sensing;
* ``FERRICYANIDE`` — the classic reversible outer-sphere probe, used for
  solver validation against Randles-Sevcik;
* ``OXYGEN`` — co-substrate of the oxidases.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class RedoxCouple:
    """Parameters of a one-step redox couple O + n e- <-> R.

    Attributes:
        name: human-readable species name.
        n_electrons: number of electrons transferred per molecule.
        formal_potential: formal potential E0' [V vs. reference].
        diffusion_ox: diffusion coefficient of the oxidized form [m^2/s].
        diffusion_red: diffusion coefficient of the reduced form [m^2/s].
        k0: standard heterogeneous rate constant [m/s] on a bare electrode.
        alpha: cathodic transfer coefficient (0 < alpha < 1).
    """

    name: str
    n_electrons: int
    formal_potential: float
    diffusion_ox: float
    diffusion_red: float
    k0: float
    alpha: float = 0.5

    def __post_init__(self) -> None:
        if self.n_electrons < 1:
            raise ValueError(
                f"{self.name}: n_electrons must be >= 1, got {self.n_electrons}")
        if self.diffusion_ox <= 0 or self.diffusion_red <= 0:
            raise ValueError(f"{self.name}: diffusion coefficients must be > 0")
        if self.k0 <= 0:
            raise ValueError(f"{self.name}: k0 must be > 0, got {self.k0}")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"{self.name}: alpha must be in (0, 1), got {self.alpha}")

    def with_rate_enhancement(self, factor: float) -> "RedoxCouple":
        """Return a copy with ``k0`` multiplied by ``factor``.

        Carbon-nanotube films enhance heterogeneous electron transfer (paper
        section 2.4); :mod:`repro.nano.film` applies the enhancement through
        this method so the couple itself stays immutable.
        """
        if factor <= 0:
            raise ValueError(f"enhancement factor must be > 0, got {factor}")
        return replace(self, k0=self.k0 * factor)

    @property
    def mean_diffusion(self) -> float:
        """Geometric mean of the two diffusion coefficients [m^2/s]."""
        return (self.diffusion_ox * self.diffusion_red) ** 0.5


#: Ferri/ferrocyanide: fast outer-sphere couple used for solver validation.
FERRICYANIDE = RedoxCouple(
    name="ferricyanide",
    n_electrons=1,
    formal_potential=0.225,
    diffusion_ox=7.2e-10,
    diffusion_red=6.7e-10,
    k0=1.0e-4,
    alpha=0.5,
)

#: Hydrogen peroxide oxidation (H2O2 -> O2 + 2 H+ + 2 e-) at ~+0.65 V on
#: Au/CNT; the signal of all oxidase-based sensors in the paper.
HYDROGEN_PEROXIDE = RedoxCouple(
    name="hydrogen_peroxide",
    n_electrons=2,
    formal_potential=0.45,
    diffusion_ox=1.4e-9,
    diffusion_red=1.4e-9,
    k0=5.0e-6,
    alpha=0.5,
)

#: Dissolved oxygen (co-substrate of oxidases, reducible at the electrode).
OXYGEN = RedoxCouple(
    name="oxygen",
    n_electrons=2,
    formal_potential=-0.1,
    diffusion_ox=2.0e-9,
    diffusion_red=2.0e-9,
    k0=1.0e-7,
    alpha=0.5,
)

#: Immobilized cytochrome P450 heme Fe(III)/Fe(II) centre.  The formal
#: potential of CYP adsorbed on MWCNT is around -0.35 V vs Ag/AgCl; direct
#: electron transfer is fast thanks to the nanotubes (paper section 2.4).
CYP_HEME = RedoxCouple(
    name="cyp_heme",
    n_electrons=1,
    formal_potential=-0.35,
    diffusion_ox=1.0e-10,
    diffusion_red=1.0e-10,
    k0=2.0e-5,
    alpha=0.5,
)
