"""Butler-Volmer interfacial electron-transfer kinetics.

The Butler-Volmer equation links the overpotential at an electrode to the
net faradaic current density.  It is the kinetic boundary condition of the
diffusion engine (:mod:`repro.chem.diffusion`) and the basis of the CNT
rate-enhancement model: multiplying ``k0`` shifts a sluggish reaction toward
the reversible limit, which is exactly the effect the paper attributes to
MWCNT electrode modification.
"""

from __future__ import annotations

import math

from scipy.optimize import brentq

from repro.constants import FARADAY, STANDARD_TEMPERATURE, thermal_voltage


def rate_constants(potential: float,
                   formal_potential: float,
                   k0: float,
                   alpha: float,
                   n_electrons: int,
                   temperature: float = STANDARD_TEMPERATURE,
                   ) -> tuple[float, float]:
    """Return (k_forward, k_backward) [m/s] at ``potential``.

    Forward means reduction (O + n e- -> R):

    ``kf = k0 exp(-alpha   * nf * (E - E0'))``
    ``kb = k0 exp((1-alpha) * nf * (E - E0'))``

    with ``nf = nF/RT``.  Exponents are clamped to avoid overflow at extreme
    sweep vertices; at +-0.5 V overpotential the clamp never engages.
    """
    if k0 <= 0:
        raise ValueError(f"k0 must be > 0, got {k0}")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    nf = n_electrons / thermal_voltage(temperature)
    overpotential = potential - formal_potential
    exp_f = max(min(-alpha * nf * overpotential, 500.0), -500.0)
    exp_b = max(min((1.0 - alpha) * nf * overpotential, 500.0), -500.0)
    return k0 * math.exp(exp_f), k0 * math.exp(exp_b)


def exchange_current_density(k0: float,
                             n_electrons: int,
                             conc_ox: float,
                             conc_red: float,
                             alpha: float = 0.5) -> float:
    """Return the exchange current density j0 [A/m^2].

    ``j0 = n F k0 C_O^(1-alpha) C_R^alpha`` with concentrations in mol/m^3.
    """
    if conc_ox < 0 or conc_red < 0:
        raise ValueError("concentrations must be non-negative")
    return (FARADAY * n_electrons * k0
            * conc_ox ** (1.0 - alpha) * conc_red ** alpha)


def butler_volmer_current_density(overpotential: float,
                                  exchange_density: float,
                                  alpha: float = 0.5,
                                  n_electrons: int = 1,
                                  temperature: float = STANDARD_TEMPERATURE,
                                  ) -> float:
    """Return the net anodic current density [A/m^2] at ``overpotential`` [V].

    Sign convention: positive overpotential drives oxidation and produces a
    positive (anodic) current density.

    ``j = j0 [exp((1-alpha) nf eta) - exp(-alpha nf eta)]``
    """
    if exchange_density < 0:
        raise ValueError(f"exchange density must be >= 0, got {exchange_density}")
    nf = n_electrons / thermal_voltage(temperature)
    exp_a = max(min((1.0 - alpha) * nf * overpotential, 500.0), -500.0)
    exp_c = max(min(-alpha * nf * overpotential, 500.0), -500.0)
    return exchange_density * (math.exp(exp_a) - math.exp(exp_c))


def tafel_slope(alpha: float,
                n_electrons: int = 1,
                temperature: float = STANDARD_TEMPERATURE) -> float:
    """Return the anodic Tafel slope [V/decade].

    ``b = ln(10) RT / ((1-alpha) nF)`` — about 118 mV/decade for
    alpha = 0.5, n = 1 at 25 C.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    return math.log(10.0) * thermal_voltage(temperature) / ((1.0 - alpha) * n_electrons)


def overpotential_for_current_density(target_density: float,
                                      exchange_density: float,
                                      alpha: float = 0.5,
                                      n_electrons: int = 1,
                                      temperature: float = STANDARD_TEMPERATURE,
                                      ) -> float:
    """Invert Butler-Volmer: overpotential [V] producing ``target_density``.

    Solved numerically with Brent's method on a bracket of +-2 V, which is
    far wider than any realistic aqueous window.
    """
    if exchange_density <= 0:
        raise ValueError("exchange density must be > 0 to invert")

    def residual(eta: float) -> float:
        return butler_volmer_current_density(
            eta, exchange_density, alpha, n_electrons, temperature) - target_density

    return brentq(residual, -2.0, 2.0)
