"""Nernst equation and equilibrium surface composition.

For a reversible couple O + n e- <-> R the electrode potential fixes the
ratio of surface concentrations; these helpers convert between the two
descriptions.  They are used by the voltammetry simulator in the reversible
limit and by tests validating the Butler-Volmer implementation (equilibrium
means zero net current).
"""

from __future__ import annotations

import math

from repro.constants import STANDARD_TEMPERATURE, nernst_slope


def nernst_potential(formal_potential: float,
                     n_electrons: int,
                     conc_ox: float,
                     conc_red: float,
                     temperature: float = STANDARD_TEMPERATURE) -> float:
    """Return the equilibrium potential [V] for given O/R concentrations.

    ``E = E0' + (RT/nF) ln(C_O / C_R)``.  Concentrations may be in any
    (common) unit since only their ratio matters; both must be positive.
    """
    if conc_ox <= 0 or conc_red <= 0:
        raise ValueError(
            f"concentrations must be positive, got ox={conc_ox}, red={conc_red}")
    slope = nernst_slope(n_electrons, temperature)
    return formal_potential + slope * math.log(conc_ox / conc_red)


def surface_concentration_ratio(potential: float,
                                formal_potential: float,
                                n_electrons: int,
                                temperature: float = STANDARD_TEMPERATURE,
                                ) -> float:
    """Return the Nernstian surface ratio C_O/C_R imposed by ``potential``.

    This inverts :func:`nernst_potential`.  The result spans many orders of
    magnitude around E0'; callers should expect overflow-free values only for
    overpotentials within roughly +-0.5 V, which covers every technique in
    the paper.
    """
    slope = nernst_slope(n_electrons, temperature)
    exponent = (potential - formal_potential) / slope
    # math.exp overflows above ~709; clamp to keep the reversible-limit
    # simulator robust at extreme sweep vertices.
    exponent = max(min(exponent, 500.0), -500.0)
    return math.exp(exponent)


def equilibrium_surface_fractions(potential: float,
                                  formal_potential: float,
                                  n_electrons: int,
                                  temperature: float = STANDARD_TEMPERATURE,
                                  ) -> tuple[float, float]:
    """Return (fraction_ox, fraction_red) at equilibrium for a surface couple.

    For an adsorbed (immobilized) redox protein such as cytochrome P450 the
    total coverage is fixed and the potential partitions it between the two
    oxidation states:

    ``f_ox = r / (1 + r)`` with ``r = C_O/C_R`` from the Nernst equation.
    """
    ratio = surface_concentration_ratio(
        potential, formal_potential, n_electrons, temperature)
    fraction_ox = ratio / (1.0 + ratio)
    return fraction_ox, 1.0 - fraction_ox
