"""One-dimensional diffusion engines for electrode simulations.

Two engines are provided:

* :class:`DiffusionGrid1D` — a single-species Crank-Nicolson solver with
  Dirichlet or no-flux boundaries.  It validates against the Cottrell
  equation and is reused for enzyme-layer transport studies.
* :class:`ElectrodeDiffusionSystem` — the classic explicit two-species
  (O/R) simulator with a Butler-Volmer surface boundary, the workhorse
  behind the cyclic-voltammetry simulator.  In the fast-kinetics limit it
  reproduces the Randles-Sevcik peak current within a few percent (tested).

Both engines work in SI units (metres, seconds, mol/m^3) internally and
expose molar (mol/L) concentrations at their API boundary, consistent with
:mod:`repro.units`.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.linalg import solve_banded

from repro.constants import FARADAY
from repro.chem.butler_volmer import rate_constants
from repro.chem.species import RedoxCouple

_MIN_NODES = 12


class DiffusionGrid1D:
    """Crank-Nicolson solver for d(C)/dt = D d2C/dx2 on [0, L].

    Node 0 is the electrode surface; node ``nx - 1`` is the bulk end.

    Args:
        diffusion_m2_s: diffusion coefficient D [m^2/s].
        dx_m: grid spacing [m].
        n_nodes: number of grid nodes (>= 12).
        dt_s: time step [s].
        bulk_concentration_molar: initial (and right-Dirichlet) value [mol/L].
        left_bc: ``"dirichlet"`` (fixed surface value) or ``"noflux"``.
        left_value_molar: surface concentration for a Dirichlet left BC.
        right_bc: ``"dirichlet"`` (bulk reservoir) or ``"noflux"`` (closed).
    """

    def __init__(self,
                 diffusion_m2_s: float,
                 dx_m: float,
                 n_nodes: int,
                 dt_s: float,
                 bulk_concentration_molar: float,
                 left_bc: str = "dirichlet",
                 left_value_molar: float = 0.0,
                 right_bc: str = "dirichlet") -> None:
        if diffusion_m2_s <= 0:
            raise ValueError(f"diffusion must be > 0, got {diffusion_m2_s}")
        if dx_m <= 0 or dt_s <= 0:
            raise ValueError("dx and dt must be > 0")
        if n_nodes < _MIN_NODES:
            raise ValueError(f"need at least {_MIN_NODES} nodes, got {n_nodes}")
        if left_bc not in ("dirichlet", "noflux"):
            raise ValueError(f"unknown left_bc {left_bc!r}")
        if right_bc not in ("dirichlet", "noflux"):
            raise ValueError(f"unknown right_bc {right_bc!r}")
        if bulk_concentration_molar < 0 or left_value_molar < 0:
            raise ValueError("concentrations must be >= 0")

        self.diffusion = diffusion_m2_s
        self.dx = dx_m
        self.dt = dt_s
        self.n_nodes = n_nodes
        self.left_bc = left_bc
        self.right_bc = right_bc
        self._left_value_si = left_value_molar * 1e3
        self._bulk_si = bulk_concentration_molar * 1e3
        self.time = 0.0
        self._conc = np.full(n_nodes, self._bulk_si, dtype=float)
        if left_bc == "dirichlet":
            self._conc[0] = self._left_value_si
        self._lhs_banded, self._rhs_matrix = self._build_operators()

    @classmethod
    def for_transient(cls,
                      diffusion_m2_s: float,
                      duration_s: float,
                      n_time_steps: int,
                      bulk_concentration_molar: float,
                      left_value_molar: float = 0.0,
                      nodes_per_layer: int = 40,
                      box_factor: float = 6.0) -> "DiffusionGrid1D":
        """Build a grid sized for a transient of ``duration_s`` seconds.

        The box extends ``box_factor`` diffusion lengths so the bulk boundary
        never feels the perturbation; ``nodes_per_layer`` nodes resolve one
        diffusion length at the end of the transient.
        """
        if duration_s <= 0 or n_time_steps < 1:
            raise ValueError("duration and steps must be positive")
        layer = math.sqrt(diffusion_m2_s * duration_s)
        dx = layer / nodes_per_layer
        n_nodes = max(_MIN_NODES, int(math.ceil(box_factor * layer / dx)) + 1)
        return cls(diffusion_m2_s, dx, n_nodes, duration_s / n_time_steps,
                   bulk_concentration_molar,
                   left_bc="dirichlet", left_value_molar=left_value_molar)

    def _build_operators(self) -> tuple[np.ndarray, np.ndarray]:
        """Assemble the Crank-Nicolson banded LHS and tridiagonal RHS."""
        n = self.n_nodes
        r = self.diffusion * self.dt / self.dx ** 2
        half = r / 2.0

        lower = np.full(n, -half)
        diag = np.full(n, 1.0 + r)
        upper = np.full(n, -half)
        rhs_lower = np.full(n, half)
        rhs_diag = np.full(n, 1.0 - r)
        rhs_upper = np.full(n, half)

        if self.left_bc == "dirichlet":
            diag[0], upper[0] = 1.0, 0.0
            rhs_diag[0], rhs_upper[0] = 1.0, 0.0
        else:  # no-flux: mirror node, C[-1] == C[1]
            diag[0] = 1.0 + r
            upper[0] = -r
            rhs_diag[0] = 1.0 - r
            rhs_upper[0] = r

        if self.right_bc == "dirichlet":
            diag[-1], lower[-1] = 1.0, 0.0
            rhs_diag[-1], rhs_lower[-1] = 1.0, 0.0
        else:
            diag[-1] = 1.0 + r
            lower[-1] = -r
            rhs_diag[-1] = 1.0 - r
            rhs_lower[-1] = r

        lhs_banded = np.zeros((3, n))
        lhs_banded[0, 1:] = upper[:-1]
        lhs_banded[1, :] = diag
        lhs_banded[2, :-1] = lower[1:]
        rhs_matrix = np.vstack([rhs_lower, rhs_diag, rhs_upper])
        return lhs_banded, rhs_matrix

    def step(self) -> None:
        """Advance the concentration field by one time step."""
        c = self._conc
        rhs_lower, rhs_diag, rhs_upper = self._rhs_matrix
        rhs = rhs_diag * c
        rhs[1:] += rhs_lower[1:] * c[:-1]
        rhs[:-1] += rhs_upper[:-1] * c[1:]
        self._conc = solve_banded((1, 1), self._lhs_banded, rhs)
        if self.left_bc == "dirichlet":
            self._conc[0] = self._left_value_si
        if self.right_bc == "dirichlet":
            self._conc[-1] = self._bulk_si
        self.time += self.dt

    def run(self, n_steps: int) -> np.ndarray:
        """Advance ``n_steps`` and return the surface flux after each [mol/(m^2 s)]."""
        if n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {n_steps}")
        fluxes = np.empty(n_steps)
        for i in range(n_steps):
            self.step()
            fluxes[i] = self.surface_flux()
        return fluxes

    def surface_flux(self) -> float:
        """Return the flux into the electrode [mol/(m^2 s)].

        Second-order one-sided derivative at node 0:
        ``J = D (-3 C0 + 4 C1 - C2) / (2 dx)`` — positive when material
        flows toward the electrode (consumed at the surface).
        """
        c = self._conc
        gradient = (-3.0 * c[0] + 4.0 * c[1] - c[2]) / (2.0 * self.dx)
        return self.diffusion * gradient

    @property
    def profile_molar(self) -> np.ndarray:
        """Concentration profile [mol/L], surface first."""
        return self._conc / 1e3

    @property
    def positions_m(self) -> np.ndarray:
        """Node positions [m] measured from the electrode surface."""
        return np.arange(self.n_nodes) * self.dx

    def total_amount_per_area(self) -> float:
        """Return the integral of C over the box [mol/m^2] (trapezoidal).

        With no-flux boundaries on both ends this is conserved — the property
        test for the solver.
        """
        return float(np.trapezoid(self._conc, dx=self.dx))


class ElectrodeDiffusionSystem:
    """Two-species explicit diffusion with a Butler-Volmer electrode boundary.

    The classic electrochemical digital simulation (Feldberg scheme): both
    members of a redox couple diffuse in solution; at each time step the
    applied potential sets finite-rate surface kinetics which exchange O and
    R one-for-one and produce the faradaic current.

    Sign convention: anodic (oxidation, R -> O) current is positive.

    Args:
        couple: the redox couple being simulated.
        area_m2: electrode area [m^2].
        bulk_ox_molar / bulk_red_molar: bulk concentrations [mol/L].
        duration_s: total simulated time (sizes the box).
        n_time_steps: number of steps ``duration_s`` is divided into.
        stability_factor: explicit-scheme mesh ratio D dt/dx^2 (< 0.5).
        box_factor: box length in units of the final diffusion length.
    """

    def __init__(self,
                 couple: RedoxCouple,
                 area_m2: float,
                 bulk_ox_molar: float,
                 bulk_red_molar: float,
                 duration_s: float,
                 n_time_steps: int,
                 stability_factor: float = 0.4,
                 box_factor: float = 6.0) -> None:
        if area_m2 <= 0:
            raise ValueError(f"area must be > 0, got {area_m2}")
        if bulk_ox_molar < 0 or bulk_red_molar < 0:
            raise ValueError("bulk concentrations must be >= 0")
        if duration_s <= 0 or n_time_steps < 10:
            raise ValueError("need positive duration and >= 10 steps")
        if not 0.0 < stability_factor < 0.5:
            raise ValueError(
                f"stability_factor must be in (0, 0.5), got {stability_factor}")

        self.couple = couple
        self.area = area_m2
        self.dt = duration_s / n_time_steps
        d_max = max(couple.diffusion_ox, couple.diffusion_red)
        self.dx = math.sqrt(d_max * self.dt / stability_factor)
        box_length = box_factor * math.sqrt(d_max * duration_s)
        self.n_nodes = max(_MIN_NODES, int(math.ceil(box_length / self.dx)) + 1)
        self._lambda_ox = couple.diffusion_ox * self.dt / self.dx ** 2
        self._lambda_red = couple.diffusion_red * self.dt / self.dx ** 2
        self._c_ox = np.full(self.n_nodes, bulk_ox_molar * 1e3)
        self._c_red = np.full(self.n_nodes, bulk_red_molar * 1e3)
        self.time = 0.0

    def step(self, potential: float) -> float:
        """Advance one time step at ``potential`` [V]; return the current [A]."""
        c_ox, c_red = self._c_ox, self._c_red
        # Interior diffusion update (explicit FTCS).
        c_ox[1:-1] = c_ox[1:-1] + self._lambda_ox * (
            c_ox[2:] - 2.0 * c_ox[1:-1] + c_ox[:-2])
        c_red[1:-1] = c_red[1:-1] + self._lambda_red * (
            c_red[2:] - 2.0 * c_red[1:-1] + c_red[:-2])

        # Butler-Volmer surface boundary, linearized flux balance.
        kf, kb = rate_constants(
            potential, self.couple.formal_potential, self.couple.k0,
            self.couple.alpha, self.couple.n_electrons)
        d_ox, d_red = self.couple.diffusion_ox, self.couple.diffusion_red
        reduction_flux = ((kf * c_ox[1] - kb * c_red[1])
                          / (1.0 + kf * self.dx / d_ox + kb * self.dx / d_red))
        c_ox[0] = max(c_ox[1] - reduction_flux * self.dx / d_ox, 0.0)
        c_red[0] = max(c_red[1] + reduction_flux * self.dx / d_red, 0.0)

        self.time += self.dt
        # Anodic-positive convention: net reduction gives negative current.
        return -self.couple.n_electrons * FARADAY * self.area * reduction_flux

    def run(self, potentials: np.ndarray) -> np.ndarray:
        """Step through a potential waveform; return the current trace [A]."""
        potentials = np.asarray(potentials, dtype=float)
        currents = np.empty(potentials.size)
        for i, potential in enumerate(potentials):
            currents[i] = self.step(float(potential))
        return currents

    @property
    def profile_ox_molar(self) -> np.ndarray:
        """Oxidized-form concentration profile [mol/L], surface first."""
        return self._c_ox / 1e3

    @property
    def profile_red_molar(self) -> np.ndarray:
        """Reduced-form concentration profile [mol/L], surface first."""
        return self._c_red / 1e3

    def total_amount_per_area(self) -> float:
        """Return integral of (C_O + C_R) over the box [mol/m^2].

        The electrode converts O into R one-for-one, so with equal diffusion
        coefficients the sum behaves as an inert diffusing species — used by
        the conservation property test.
        """
        return float(np.trapezoid(self._c_ox + self._c_red, dx=self.dx))
