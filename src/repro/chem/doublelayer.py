"""Electrochemical double-layer (capacitive background) model.

Every potential excursion charges the electrode/solution interface; the
resulting non-faradaic current is the dominant background of cyclic
voltammetry and the initial spike of chronoamperometry.  CNT films raise the
double-layer capacitance roughly in proportion to their huge electroactive
area — the same property that boosts the faradaic signal (paper section 2.4)
— so a faithful background model matters when extracting peak heights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DoubleLayer:
    """Series-RC model of the electrode/solution interface.

    Attributes:
        capacitance_per_area: specific double-layer capacitance [F/m^2].
            Typical values: ~0.2 F/m^2 (20 uF/cm^2) for a flat metal,
            1-2 orders of magnitude more for porous CNT films.
        series_resistance: uncompensated solution resistance [ohm].
    """

    capacitance_per_area: float
    series_resistance: float = 100.0

    def __post_init__(self) -> None:
        if self.capacitance_per_area <= 0:
            raise ValueError(
                f"capacitance_per_area must be > 0, got {self.capacitance_per_area}")
        if self.series_resistance < 0:
            raise ValueError(
                f"series_resistance must be >= 0, got {self.series_resistance}")

    def capacitance(self, area_m2: float) -> float:
        """Return the total interfacial capacitance [F] of ``area_m2``."""
        if area_m2 <= 0:
            raise ValueError(f"area must be > 0, got {area_m2}")
        return self.capacitance_per_area * area_m2

    def time_constant(self, area_m2: float) -> float:
        """Return the RC charging time constant [s]."""
        return self.series_resistance * self.capacitance(area_m2)

    def sweep_current(self, scan_rate_v_s: float, area_m2: float) -> float:
        """Return the steady capacitive current [A] during a linear sweep.

        ``i_c = C_dl * A * dE/dt`` — sign follows the sweep direction.
        """
        return self.capacitance(area_m2) * scan_rate_v_s

    def step_transient(self,
                       time: np.ndarray,
                       step_volt: float,
                       area_m2: float) -> np.ndarray:
        """Return the charging transient [A] after a potential step.

        ``i(t) = (dE/Rs) exp(-t/(Rs C))``.  With ``series_resistance == 0``
        the transient is an ideal impulse, which we approximate as zero for
        t > 0 (the charge is delivered instantaneously).
        """
        time = np.asarray(time, dtype=float)
        if np.any(time < 0):
            raise ValueError("time values must be >= 0")
        if self.series_resistance == 0.0:
            return np.zeros_like(time)
        tau = self.time_constant(area_m2)
        return (step_volt / self.series_resistance) * np.exp(-time / tau)

    def sweep_transient(self,
                        time: np.ndarray,
                        scan_rate_v_s: float,
                        area_m2: float) -> np.ndarray:
        """Return the capacitive current [A] after a sweep starts at t = 0.

        The current rises exponentially to ``C A v`` with the RC time
        constant: ``i(t) = C A v (1 - exp(-t/tau))`` (tau -> 0 gives the
        ideal rectangular background).
        """
        time = np.asarray(time, dtype=float)
        if np.any(time < 0):
            raise ValueError("time values must be >= 0")
        plateau = self.sweep_current(scan_rate_v_s, area_m2)
        tau = self.time_constant(area_m2)
        if tau == 0.0:
            return np.full_like(time, plateau)
        return plateau * (1.0 - np.exp(-time / tau))

    def ir_drop(self, current_a: float) -> float:
        """Return the uncompensated ohmic potential error [V] at ``current_a``."""
        return current_a * self.series_resistance

    def charge_for_step(self, step_volt: float, area_m2: float) -> float:
        """Return the total charge [C] delivered by a potential step."""
        return abs(step_volt) * self.capacitance(area_m2)

    def settling_time(self, area_m2: float, tolerance: float = 1e-3) -> float:
        """Return the time [s] for the step transient to decay to ``tolerance``.

        ``t = tau ln(1/tolerance)``; with zero series resistance settling is
        instantaneous.
        """
        if not 0.0 < tolerance < 1.0:
            raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
        tau = self.time_constant(area_m2)
        return tau * math.log(1.0 / tolerance)
