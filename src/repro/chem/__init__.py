"""Electrochemistry substrate: species, interfacial kinetics and transport.

This package implements the textbook electrochemistry the paper's sensors
rest on: Nernst equilibrium, Butler-Volmer interfacial kinetics, Cottrell
transients, Randles-Sevcik voltammetric peaks, a finite-difference 1-D
diffusion engine and a double-layer charging model.  The technique
simulators in :mod:`repro.techniques` are thin orchestration layers over
these primitives.
"""

from repro.chem.species import (
    RedoxCouple,
    FERRICYANIDE,
    HYDROGEN_PEROXIDE,
    OXYGEN,
    CYP_HEME,
)
from repro.chem.nernst import (
    nernst_potential,
    surface_concentration_ratio,
    equilibrium_surface_fractions,
)
from repro.chem.butler_volmer import (
    butler_volmer_current_density,
    exchange_current_density,
    rate_constants,
    tafel_slope,
    overpotential_for_current_density,
)
from repro.chem.cottrell import (
    cottrell_current,
    cottrell_charge,
    diffusion_layer_thickness,
)
from repro.chem.randles_sevcik import (
    peak_current_reversible,
    peak_current_irreversible,
    peak_separation_reversible,
    scan_rate_for_peak_current,
)
from repro.chem.diffusion import DiffusionGrid1D, ElectrodeDiffusionSystem
from repro.chem.doublelayer import DoubleLayer
from repro.chem.impedance import (
    RandlesCircuit,
    charge_transfer_resistance,
    binding_rct_shift,
    binding_capacitance_shift,
)

__all__ = [
    "RedoxCouple",
    "FERRICYANIDE",
    "HYDROGEN_PEROXIDE",
    "OXYGEN",
    "CYP_HEME",
    "nernst_potential",
    "surface_concentration_ratio",
    "equilibrium_surface_fractions",
    "butler_volmer_current_density",
    "exchange_current_density",
    "rate_constants",
    "tafel_slope",
    "overpotential_for_current_density",
    "cottrell_current",
    "cottrell_charge",
    "diffusion_layer_thickness",
    "peak_current_reversible",
    "peak_current_irreversible",
    "peak_separation_reversible",
    "scan_rate_for_peak_current",
    "DiffusionGrid1D",
    "ElectrodeDiffusionSystem",
    "DoubleLayer",
    "RandlesCircuit",
    "charge_transfer_resistance",
    "binding_rct_shift",
    "binding_capacitance_shift",
]
