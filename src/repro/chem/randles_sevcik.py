"""Randles-Sevcik relations for linear-sweep and cyclic voltammetry.

These closed-form peak laws serve two purposes in the reproduction:

1. validation — the finite-difference voltammetry engine must reproduce the
   reversible peak current within a few percent (tested);
2. fast analytics — the CYP drug sensors report peak heights, and the
   Randles-Sevcik scaling (ip proportional to sqrt(scan rate) and to
   concentration) is asserted by the property tests.
"""

from __future__ import annotations

import math

from repro.constants import FARADAY, GAS_CONSTANT, STANDARD_TEMPERATURE


def peak_current_reversible(n_electrons: int,
                            area_m2: float,
                            diffusion_m2_s: float,
                            concentration_molar: float,
                            scan_rate_v_s: float,
                            temperature: float = STANDARD_TEMPERATURE) -> float:
    """Return the reversible voltammetric peak current [A].

    ``ip = 0.4463 n F A C sqrt(n F v D / (R T))`` with C in mol/m^3
    internally.  At 25 C this reduces to the familiar
    ``2.69e5 n^{3/2} A D^{1/2} C v^{1/2}`` (A in cm^2, C in mol/cm^3).
    """
    _validate(area_m2, diffusion_m2_s, concentration_molar, scan_rate_v_s)
    conc_si = concentration_molar * 1e3
    inner = (n_electrons * FARADAY * scan_rate_v_s * diffusion_m2_s
             / (GAS_CONSTANT * temperature))
    return 0.4463 * n_electrons * FARADAY * area_m2 * conc_si * math.sqrt(inner)


def peak_current_irreversible(n_electrons: int,
                              alpha: float,
                              area_m2: float,
                              diffusion_m2_s: float,
                              concentration_molar: float,
                              scan_rate_v_s: float,
                              temperature: float = STANDARD_TEMPERATURE) -> float:
    """Return the totally irreversible peak current [A].

    ``ip = 0.4958 n F A C sqrt(alpha n F v D / (R T))`` — note the extra
    transfer-coefficient factor; an irreversible wave is lower and broader
    than a reversible one at the same scan rate.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    _validate(area_m2, diffusion_m2_s, concentration_molar, scan_rate_v_s)
    conc_si = concentration_molar * 1e3
    inner = (alpha * n_electrons * FARADAY * scan_rate_v_s * diffusion_m2_s
             / (GAS_CONSTANT * temperature))
    return 0.4958 * n_electrons * FARADAY * area_m2 * conc_si * math.sqrt(inner)


def peak_separation_reversible(n_electrons: int,
                               temperature: float = STANDARD_TEMPERATURE) -> float:
    """Return the anodic-cathodic peak separation [V] of a reversible couple.

    ``dEp = 2.218 RT/(nF)`` — about 57 mV/n at 25 C.  Larger separations in
    a measured voltammogram diagnose sluggish kinetics; CNT modification
    shrinks the separation toward this limit (paper section 2.4).
    """
    if n_electrons < 1:
        raise ValueError(f"n_electrons must be >= 1, got {n_electrons}")
    return 2.218 * GAS_CONSTANT * temperature / (n_electrons * FARADAY)


def scan_rate_for_peak_current(target_peak_a: float,
                               n_electrons: int,
                               area_m2: float,
                               diffusion_m2_s: float,
                               concentration_molar: float,
                               temperature: float = STANDARD_TEMPERATURE) -> float:
    """Invert the reversible peak law for the scan rate [V/s].

    Useful when designing a measurement protocol that needs the peak to sit
    within the front-end's dynamic range.
    """
    if target_peak_a <= 0:
        raise ValueError(f"target peak must be > 0, got {target_peak_a}")
    _validate(area_m2, diffusion_m2_s, concentration_molar, 1.0)
    reference = peak_current_reversible(
        n_electrons, area_m2, diffusion_m2_s, concentration_molar, 1.0,
        temperature)
    return (target_peak_a / reference) ** 2


def _validate(area_m2: float, diffusion_m2_s: float,
              concentration_molar: float, scan_rate_v_s: float) -> None:
    if area_m2 <= 0:
        raise ValueError(f"area must be > 0, got {area_m2}")
    if diffusion_m2_s <= 0:
        raise ValueError(f"diffusion coefficient must be > 0, got {diffusion_m2_s}")
    if concentration_molar < 0:
        raise ValueError(f"concentration must be >= 0, got {concentration_molar}")
    if scan_rate_v_s <= 0:
        raise ValueError(f"scan rate must be > 0, got {scan_rate_v_s}")
