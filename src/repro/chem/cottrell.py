"""Cottrell transient for potential-step chronoamperometry.

After a potential step that fully depletes the electroactive species at the
electrode surface, the diffusion-limited current decays as 1/sqrt(t).  The
paper's oxidase sensors are read out chronoamperometrically at +650 mV; each
substrate addition produces a Cottrell-like transient that relaxes to the
enzymatic steady state simulated in :mod:`repro.techniques.chronoamperometry`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import FARADAY


def cottrell_current(time: np.ndarray | float,
                     n_electrons: int,
                     area_m2: float,
                     concentration_molar: float,
                     diffusion_m2_s: float) -> np.ndarray | float:
    """Return the Cottrell current [A] at ``time`` [s] after the step.

    ``i(t) = n F A C sqrt(D / (pi t))`` with C converted from mol/L to
    mol/m^3 internally.  ``time`` may be a scalar or array; zeros or negative
    times are invalid because the expression diverges.
    """
    if area_m2 <= 0:
        raise ValueError(f"area must be positive, got {area_m2}")
    if concentration_molar < 0:
        raise ValueError(f"concentration must be >= 0, got {concentration_molar}")
    if diffusion_m2_s <= 0:
        raise ValueError(f"diffusion coefficient must be > 0, got {diffusion_m2_s}")
    time_arr = np.asarray(time, dtype=float)
    if np.any(time_arr <= 0):
        raise ValueError("Cottrell current diverges at t <= 0")
    conc_si = concentration_molar * 1e3  # mol/m^3
    value = (n_electrons * FARADAY * area_m2 * conc_si
             * np.sqrt(diffusion_m2_s / (math.pi * time_arr)))
    if np.isscalar(time):
        return float(value)
    return value


def cottrell_charge(time: float,
                    n_electrons: int,
                    area_m2: float,
                    concentration_molar: float,
                    diffusion_m2_s: float) -> float:
    """Return the integrated Cottrell charge [C] up to ``time`` [s].

    ``Q(t) = 2 n F A C sqrt(D t / pi)`` (the Anson equation).
    """
    if time < 0:
        raise ValueError(f"time must be >= 0, got {time}")
    conc_si = concentration_molar * 1e3
    return (2.0 * n_electrons * FARADAY * area_m2 * conc_si
            * math.sqrt(diffusion_m2_s * time / math.pi))


def diffusion_layer_thickness(time: float, diffusion_m2_s: float) -> float:
    """Return the diffusion-layer thickness sqrt(pi D t) [m] at ``time`` [s].

    Used to size the simulation box of the finite-difference engine and to
    reason about the miniaturization argument of the paper (smaller sensors
    reach steady state faster).
    """
    if time < 0:
        raise ValueError(f"time must be >= 0, got {time}")
    if diffusion_m2_s <= 0:
        raise ValueError(f"diffusion coefficient must be > 0, got {diffusion_m2_s}")
    return math.sqrt(math.pi * diffusion_m2_s * time)
