"""Electrochemical impedance spectroscopy (EIS) substrate.

Section 2.3 classifies *impedimetric* biosensors into capacitive and
faradic sub-groups; the measured quantities are the interfacial
capacitance and the charge-transfer resistance.  The standard model is the
Randles equivalent circuit:

``Z(w) = Rs + (Rct + Zw) || C_dl``

with ``Zw`` the Warburg (diffusion) impedance.  Binding events modulate
``Rct`` (faradic sensors) or ``C_dl`` (capacitive sensors); the helpers
here compute spectra, Nyquist geometry and the quantities those sensors
report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import FARADAY, GAS_CONSTANT, STANDARD_TEMPERATURE


@dataclass(frozen=True)
class RandlesCircuit:
    """Randles equivalent circuit of a biosensing interface.

    Attributes:
        solution_resistance_ohm: series (electrolyte) resistance Rs.
        charge_transfer_resistance_ohm: faradaic resistance Rct.
        double_layer_capacitance_f: interfacial capacitance C_dl.
        warburg_sigma_ohm_rts: Warburg coefficient [ohm/sqrt(s^-1)];
            zero disables the diffusion tail.
    """

    solution_resistance_ohm: float
    charge_transfer_resistance_ohm: float
    double_layer_capacitance_f: float
    warburg_sigma_ohm_rts: float = 0.0

    def __post_init__(self) -> None:
        if self.solution_resistance_ohm < 0:
            raise ValueError("Rs must be >= 0")
        if self.charge_transfer_resistance_ohm <= 0:
            raise ValueError("Rct must be > 0")
        if self.double_layer_capacitance_f <= 0:
            raise ValueError("Cdl must be > 0")
        if self.warburg_sigma_ohm_rts < 0:
            raise ValueError("Warburg coefficient must be >= 0")

    def impedance(self, frequency_hz: np.ndarray | float
                  ) -> np.ndarray | complex:
        """Complex impedance [ohm] at ``frequency_hz`` (> 0)."""
        freq = np.asarray(frequency_hz, dtype=float)
        if np.any(freq <= 0):
            raise ValueError("frequencies must be > 0")
        omega = 2.0 * math.pi * freq
        warburg = (self.warburg_sigma_ohm_rts * (1.0 - 1j)
                   / np.sqrt(omega))
        faradaic = self.charge_transfer_resistance_ohm + warburg
        admittance = 1.0 / faradaic + 1j * omega * self.double_layer_capacitance_f
        value = self.solution_resistance_ohm + 1.0 / admittance
        if np.isscalar(frequency_hz):
            return complex(value)
        return value

    def spectrum(self,
                 f_low_hz: float = 0.1,
                 f_high_hz: float = 1e5,
                 n_points: int = 60) -> tuple[np.ndarray, np.ndarray]:
        """Log-spaced (frequencies, complex impedance) spectrum."""
        if not 0.0 < f_low_hz < f_high_hz:
            raise ValueError("need 0 < f_low < f_high")
        if n_points < 2:
            raise ValueError("need >= 2 points")
        freqs = np.logspace(math.log10(f_low_hz), math.log10(f_high_hz),
                            n_points)
        return freqs, self.impedance(freqs)

    def characteristic_frequency_hz(self) -> float:
        """Apex frequency of the Nyquist semicircle: 1/(2 pi Rct Cdl)."""
        return 1.0 / (2.0 * math.pi
                      * self.charge_transfer_resistance_ohm
                      * self.double_layer_capacitance_f)

    def nyquist_diameter_ohm(self) -> float:
        """Semicircle diameter (= Rct for the ideal Randles circuit)."""
        return self.charge_transfer_resistance_ohm


def charge_transfer_resistance(exchange_current_a: float,
                               n_electrons: int = 1,
                               temperature_k: float = STANDARD_TEMPERATURE,
                               ) -> float:
    """Rct [ohm] from the exchange current: ``RT/(nF i0)``.

    Links EIS to the Butler-Volmer kinetics: CNT rate enhancement raises
    i0, shrinking the semicircle — the EIS signature of nanostructuring.
    """
    if exchange_current_a <= 0:
        raise ValueError("exchange current must be > 0")
    return (GAS_CONSTANT * temperature_k
            / (n_electrons * FARADAY * exchange_current_a))


def binding_rct_shift(baseline: RandlesCircuit,
                      surface_occupancy: float,
                      max_blocking: float = 0.95) -> RandlesCircuit:
    """Return the circuit after target binding blocks the interface.

    A faradic impedimetric immunosensor (Prodromidis [37]) reports the Rct
    increase caused by bound antigen insulating the electrode:

    ``Rct' = Rct / (1 - theta * max_blocking)``
    """
    if not 0.0 <= surface_occupancy <= 1.0:
        raise ValueError("occupancy must be in [0, 1]")
    if not 0.0 < max_blocking < 1.0:
        raise ValueError("max blocking must be in (0, 1)")
    blocked = 1.0 - surface_occupancy * max_blocking
    from dataclasses import replace
    return replace(
        baseline,
        charge_transfer_resistance_ohm=(
            baseline.charge_transfer_resistance_ohm / blocked))


def binding_capacitance_shift(baseline: RandlesCircuit,
                              surface_occupancy: float,
                              layer_capacitance_f: float) -> RandlesCircuit:
    """Return the circuit after binding thins the interfacial capacitance.

    A capacitive sensor (Tsouti et al. [50]): the bound layer adds a
    series capacitance over the covered fraction, reducing the total:

    ``C' = (1-theta) C + theta * (C * C_layer)/(C + C_layer)``
    """
    if not 0.0 <= surface_occupancy <= 1.0:
        raise ValueError("occupancy must be in [0, 1]")
    if layer_capacitance_f <= 0:
        raise ValueError("layer capacitance must be > 0")
    base = baseline.double_layer_capacitance_f
    covered = base * layer_capacitance_f / (base + layer_capacitance_f)
    new_capacitance = ((1.0 - surface_occupancy) * base
                       + surface_occupancy * covered)
    from dataclasses import replace
    return replace(baseline, double_layer_capacitance_f=new_capacitance)
