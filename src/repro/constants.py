"""Physical constants used throughout the electrochemical simulation.

All values are CODATA-2018 and expressed in SI units.  The module is the
single source of truth for constants: other modules must import from here
instead of re-declaring literals, so that tests can assert consistency.
"""

from __future__ import annotations

#: Faraday constant [C/mol] — charge of one mole of electrons.
FARADAY = 96485.33212

#: Molar gas constant [J/(mol*K)].
GAS_CONSTANT = 8.314462618

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23

#: Elementary charge [C].
ELEMENTARY_CHARGE = 1.602176634e-19

#: Avogadro constant [1/mol].
AVOGADRO = 6.02214076e23

#: Standard laboratory temperature [K] (25 degrees Celsius).
STANDARD_TEMPERATURE = 298.15

#: Zero Celsius in Kelvin.
ZERO_CELSIUS = 273.15


def thermal_voltage(temperature: float = STANDARD_TEMPERATURE) -> float:
    """Return the thermal voltage RT/F [V] at ``temperature`` [K].

    At 25 C this is about 25.693 mV; it sets the natural potential scale of
    every Nernstian and Butler-Volmer expression in :mod:`repro.chem`.
    """
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    return GAS_CONSTANT * temperature / FARADAY


def nernst_slope(n_electrons: int = 1,
                 temperature: float = STANDARD_TEMPERATURE) -> float:
    """Return the Nernst slope RT/(nF) [V per decade factor ln(10) excluded].

    This is the prefactor of ``ln(C_ox/C_red)`` in the Nernst equation for a
    transfer of ``n_electrons``.
    """
    if n_electrons < 1:
        raise ValueError(f"n_electrons must be >= 1, got {n_electrons}")
    return thermal_voltage(temperature) / n_electrons
