"""Text rendering of the paper's tables."""

from __future__ import annotations

from repro.core.calibration import CalibrationResult
from repro.core.registry import SensorSpec, TABLE1_SPECS
from repro.units import micromolar_from_molar, millimolar_from_molar

#: Technique names as printed in Table 1.
_TECHNIQUE_NAMES = {"CA": "Chronoamperometry", "CV": "Cyclic voltammetry"}


def table1_rows(specs: tuple[SensorSpec, ...] = TABLE1_SPECS
                ) -> list[tuple[str, str, str]]:
    """Return (target, probe, technique) rows in Table 1 order."""
    rows = []
    for spec in specs:
        rows.append((
            spec.analyte_name.upper(),
            spec.enzyme_name,
            _TECHNIQUE_NAMES[spec.technique],
        ))
    return rows


def render_table1(specs: tuple[SensorSpec, ...] = TABLE1_SPECS) -> str:
    """Render Table 1 ("Features of different metabolite biosensors")."""
    rows = table1_rows(specs)
    width_target = max(len(r[0]) for r in rows) + 2
    width_probe = max(len(r[1]) for r in rows) + 2
    lines = ["Table 1: Features of different metabolite biosensors.",
             f"{'Target':<{width_target}}{'Probe':<{width_probe}}Technique"]
    for target, probe, technique in rows:
        lines.append(f"{target:<{width_target}}{probe:<{width_probe}}{technique}")
    return "\n".join(lines)


def format_table2_row(spec: SensorSpec,
                      result: CalibrationResult | None = None) -> str:
    """Format one Table 2 row, optionally with measured values appended."""
    lod = ("-" if spec.paper_lod_um is None
           else f"{spec.paper_lod_um:g} uM")
    line = (f"{spec.label + ' ' + spec.reference:<34} "
            f"{spec.paper_sensitivity:>8.3f} uA/mM/cm^2  "
            f"{spec.paper_range_mm[0]:g} - {spec.paper_range_mm[1]:g} mM  "
            f"LOD {lod}")
    if result is not None:
        low_mm = millimolar_from_molar(result.linear_range_molar[0])
        high_mm = millimolar_from_molar(result.linear_range_molar[1])
        line += (f"  || measured: {result.sensitivity_paper:.3f}, "
                 f"{low_mm:.3g} - {high_mm:.3g} mM, "
                 f"LOD {micromolar_from_molar(result.lod_molar):.2g} uM")
    return line


def render_table2(results: dict[str, tuple[SensorSpec, CalibrationResult]],
                  title: str = "Table 2: Comparison of electrochemical "
                               "enzyme-based biosensors.") -> str:
    """Render (a group of) Table 2 with paper and measured values.

    Args:
        results: sensor_id -> (spec, calibration result); insertion order
            is preserved.
    """
    lines = [title]
    current_group = None
    for spec, result in results.values():
        if spec.group != current_group:
            current_group = spec.group
            lines.append(f"--- {current_group.upper()} ---")
        lines.append(format_table2_row(spec, result))
    return "\n".join(lines)
