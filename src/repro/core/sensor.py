"""The composed biosensor: chemical layer + electrical layer.

Following the paper's platform philosophy, a :class:`Biosensor` is an
explicit composition — electrode cell, nanostructured film, immobilized
enzyme, measurement technique and acquisition chain — with "a clear
separation between the chemical and the electrical components" (abstract).
Swapping the enzyme retargets the sensor; swapping the chain retargets the
electronics; nothing else changes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.analytes.catalog import Analyte
from repro.chem.doublelayer import DoubleLayer
from repro.chem.species import CYP_HEME, HYDROGEN_PEROXIDE, RedoxCouple
from repro.electrodes.cell import ThreeElectrodeCell
from repro.enzymes.catalog import EnzymeFamily
from repro.enzymes.immobilization import ImmobilizedLayer
from repro.instrument.chain import AcquisitionChain
from repro.nano.film import NanostructuredFilm
from repro.techniques.chronoamperometry import Chronoamperometry
from repro.techniques.cyclic_voltammetry import CyclicVoltammetry
from repro.units import sensitivity_paper_from_slope


class ReadoutMode(enum.Enum):
    """How the calibration signal is extracted."""

    AMPEROMETRIC_STEADY_STATE = "amperometric_steady_state"
    VOLTAMMETRIC_PEAK = "voltammetric_peak"


@dataclass(frozen=True)
class Biosensor:
    """A fully composed biosensor channel.

    Attributes:
        name: sensor identity (e.g. ``"MWCNT/Nafion + GOD (this work)"``).
        analyte: the target molecule.
        layer: immobilized enzyme layer (coverage, kinetics, collection).
        cell: three-electrode cell.
        film: nanostructured surface modification.
        chain: acquisition electronics.
        readout: signal-extraction mode.
        response_time_s: first-order response time of the sensor.
        repeatability_std_a: per-measurement 1-sigma reproducibility [A];
            aggregates drop-casting variability, baseline wander and O2
            background — the quantity that sets the limit of detection.
        ca_protocol: chronoamperometry settings (amperometric mode).
        cv_protocol: cyclic-voltammetry settings (voltammetric mode).
        background_current_a: stationary background current [A].
    """

    name: str
    analyte: Analyte
    layer: ImmobilizedLayer
    cell: ThreeElectrodeCell
    film: NanostructuredFilm
    chain: AcquisitionChain
    readout: ReadoutMode
    response_time_s: float = 2.0
    repeatability_std_a: float = 0.0
    ca_protocol: Chronoamperometry = field(
        default_factory=Chronoamperometry)
    cv_protocol: CyclicVoltammetry = field(
        default_factory=lambda: CyclicVoltammetry(
            e_start_v=0.1, e_vertex_v=-0.8, scan_rate_v_s=0.1,
            sampling_rate_hz=100.0))
    background_current_a: float = 0.0

    def __post_init__(self) -> None:
        if self.response_time_s <= 0:
            raise ValueError("response time must be > 0")
        if self.repeatability_std_a < 0:
            raise ValueError("repeatability must be >= 0")

    # ------------------------------------------------------------------
    # Geometry and interfacial properties.
    # ------------------------------------------------------------------

    @property
    def area_m2(self) -> float:
        """Geometric working-electrode area [m^2]."""
        return self.cell.working_area_m2

    def double_layer(self) -> DoubleLayer:
        """Double layer of the film-modified electrode."""
        bare = self.cell.bare_double_layer()
        return DoubleLayer(
            capacitance_per_area=(bare.capacitance_per_area
                                  * self.film.capacitance_enhancement()),
            series_resistance=bare.series_resistance,
        )

    def detected_couple(self) -> RedoxCouple:
        """The film-enhanced redox couple that carries the signal."""
        if self.layer.enzyme.family is EnzymeFamily.OXIDASE:
            base = HYDROGEN_PEROXIDE
        else:
            base = CYP_HEME
        return self.film.modify_couple(base)

    # ------------------------------------------------------------------
    # Response model.
    # ------------------------------------------------------------------

    def steady_state_current(self, concentration_molar: float) -> float:
        """Plateau faradaic current [A] at ``concentration_molar``."""
        signal = self.layer.steady_state_current(
            concentration_molar, self.area_m2)
        return float(signal) + self.background_current_a

    def expected_slope_a_per_molar(self) -> float:
        """Analytic linear-regime calibration slope [A/M]."""
        return self.layer.sensitivity_si() * self.area_m2

    def expected_sensitivity_paper(self) -> float:
        """Analytic sensitivity in the paper's uA mM^-1 cm^-2 unit."""
        return sensitivity_paper_from_slope(
            self.expected_slope_a_per_molar(), self.area_m2)

    def expected_lod_molar(self) -> float:
        """Analytic limit of detection [mol/L]: 3 sigma / slope.

        Combines the per-measurement repeatability with the acquisition
        chain's input-referred noise.
        """
        slope = self.expected_slope_a_per_molar()
        if slope <= 0:
            raise ValueError("sensor has a non-positive calibration slope")
        chain_noise = self.chain.input_referred_noise_rms()
        sigma = float(np.hypot(self.repeatability_std_a, chain_noise))
        return 3.0 * sigma / slope

    def linear_range_upper_molar(self, tolerance: float = 0.1) -> float:
        """Analytic upper linearity limit [mol/L] (MM deviation criterion)."""
        if not 0.0 < tolerance < 1.0:
            raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
        return self.layer.apparent_km * tolerance / (1.0 - tolerance)

    def describe(self) -> str:
        """One-paragraph human-readable description of the composition."""
        film_label = (f"{self.film.medium.name} film"
                      if not self.film.has_nanotubes
                      else f"MWCNT/{self.film.medium.name} film "
                           f"({self.film.loading_kg_m2 * 1e5:.1f} ug/cm^2)")
        return (
            f"{self.name}: {self.analyte.name} sensor, "
            f"{self.layer.enzyme.name} on {film_label}, "
            f"{self.cell.name} ({self.area_m2 * 1e6:.2f} mm^2), "
            f"{self.readout.value} readout")
