"""Long-term monitoring: drift budget and recalibration scheduling.

The paper's target application is continuous monitoring of chronic
patients — which means the calibration must survive days of enzyme decay,
electrode fouling and reference wander.  This module budgets those drift
sources, schedules recalibrations so the total error stays within a
clinical tolerance, and applies one-point recalibration corrections.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bio.matrix import SampleMatrix
from repro.enzymes.stability import EnzymeStability


@dataclass(frozen=True)
class DriftBudget:
    """Multiplicative sensitivity-drift model for a deployed sensor.

    Attributes:
        stability: enzyme operational-stability model.
        matrix: the sample matrix (fouling rate).
        temperature_k: operating temperature (body temperature for
            implanted/worn sensors accelerates enzyme decay).
    """

    stability: EnzymeStability
    matrix: SampleMatrix
    temperature_k: float = 310.15

    def sensitivity_retention(self, elapsed_hours: float) -> float:
        """Fraction of the initial sensitivity left after ``elapsed_hours``.

        Product of enzyme decay (Arrhenius-scaled) and matrix fouling.
        """
        if elapsed_hours < 0:
            raise ValueError("elapsed time must be >= 0")
        enzyme = self.stability.remaining_activity(
            elapsed_hours * 3600.0, temperature_k=self.temperature_k)
        fouling = self.matrix.sensitivity_retention(elapsed_hours)
        return float(enzyme) * fouling

    def hours_to_error(self, max_relative_error: float) -> float:
        """Hours until the un-recalibrated reading error hits the limit.

        A sensitivity retention of ``r`` biases concentration estimates by
        ``1 - r``; solving ``1 - r(t) = e`` for the combined exponential
        decay gives the recalibration deadline.
        """
        if not 0.0 < max_relative_error < 1.0:
            raise ValueError("error limit must be in (0, 1)")
        rate_per_hour = (
            self.stability.rate_at(self.temperature_k) * 3600.0
            + self.matrix.fouling_rate_per_hour)
        if rate_per_hour == 0.0:
            return float("inf")
        return -math.log(1.0 - max_relative_error) / rate_per_hour

    def recalibration_schedule(self,
                               horizon_hours: float,
                               max_relative_error: float) -> list[float]:
        """Recalibration times [h] keeping the error within the limit.

        Equal-interval schedule at the drift deadline; the sensor is
        assumed fully corrected at each recalibration (one-point spike).
        """
        if horizon_hours <= 0:
            raise ValueError("horizon must be > 0")
        interval = self.hours_to_error(max_relative_error)
        if math.isinf(interval):
            return []
        times = []
        t = interval
        while t < horizon_hours:
            times.append(t)
            t += interval
        return times


def one_point_recalibration(slope_a_per_molar: float,
                            reference_concentration_molar: float,
                            measured_signal_a: float,
                            intercept_a: float = 0.0) -> float:
    """Return the corrected slope [A/M] from one reference measurement.

    The field protocol: measure a known standard (finger-stick reference,
    spiked sample), attribute the discrepancy to sensitivity drift, and
    rescale the slope:

    ``slope' = (signal - intercept) / C_ref``

    Raises when the implied slope is non-positive (sensor dead or the
    reference measurement failed).
    """
    if slope_a_per_molar <= 0:
        raise ValueError("prior slope must be > 0")
    if reference_concentration_molar <= 0:
        raise ValueError("reference concentration must be > 0")
    implied = (measured_signal_a - intercept_a) / reference_concentration_molar
    if implied <= 0:
        raise ValueError(
            "reference measurement implies a non-positive slope; "
            "recalibration aborted")
    return implied


def drift_corrected_estimate(signal_a: float,
                             slope_a_per_molar: float,
                             intercept_a: float,
                             retention: float) -> float:
    """Concentration estimate [mol/L] correcting for known drift.

    When the retention model says the slope has decayed to ``retention``
    of its calibrated value, dividing it out de-biases the estimate.
    """
    if not 0.0 < retention <= 1.0:
        raise ValueError("retention must be in (0, 1]")
    if slope_a_per_molar <= 0:
        raise ValueError("slope must be > 0")
    effective_slope = slope_a_per_molar * retention
    return max(0.0, (signal_a - intercept_a) / effective_slope)
