"""Long-term monitoring: drift budget and recalibration scheduling.

The paper's target application is continuous monitoring of chronic
patients — which means the calibration must survive days of enzyme decay,
electrode fouling and reference wander.  This module budgets those drift
sources, schedules recalibrations so the total error stays within a
clinical tolerance, and applies one-point recalibration corrections.

Every quantitative routine exists in two forms, following the engine
convention established in PR 1: a **batch kernel** operating on whole
``(n_channels, ...)`` arrays — what the streaming monitor
(:mod:`repro.engine.monitor`) consumes while advancing a cohort through
wear-time — and the historical **scalar API**, kept as a thin wrapper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.bio.matrix import SampleMatrix
from repro.enzymes.stability import EnzymeStability


@dataclass(frozen=True)
class DriftBudget:
    """Multiplicative sensitivity-drift model for a deployed sensor.

    Attributes:
        stability: enzyme operational-stability model.
        matrix: the sample matrix (fouling rate).
        temperature_k: operating temperature (body temperature for
            implanted/worn sensors accelerates enzyme decay).
    """

    stability: EnzymeStability
    matrix: SampleMatrix
    temperature_k: float = 310.15

    @property
    def decay_rate_per_hour(self) -> float:
        """Combined sensitivity decay rate [1/h].

        Sum of the Arrhenius-scaled enzyme denaturation rate and the
        matrix fouling rate — the single exponent governing
        ``sensitivity_retention``.  The streaming monitor gathers this
        scalar per channel to evaluate whole cohorts in one array pass.
        """
        return (self.stability.rate_at(self.temperature_k) * 3600.0
                + self.matrix.fouling_rate_per_hour)

    def sensitivity_retention_batch(self,
                                    elapsed_hours: np.ndarray) -> np.ndarray:
        """Sensitivity retention over an array of elapsed times.

        Batch kernel: the product of enzyme decay (Arrhenius-scaled) and
        matrix fouling, ``exp(-rate * t)``, evaluated shape-preservingly
        (e.g. on a ``(n_channels, n_samples)`` wear-time block).

        Args:
            elapsed_hours: elapsed wear times [h], any shape.

        Returns:
            Fractions of the initial sensitivity left, same shape.
        """
        times = np.asarray(elapsed_hours, dtype=float)
        if np.any(times < 0):
            raise ValueError("elapsed time must be >= 0")
        return np.exp(-self.decay_rate_per_hour * times)

    def sensitivity_retention(self, elapsed_hours: float) -> float:
        """Fraction of the initial sensitivity left after ``elapsed_hours``.

        Thin scalar wrapper over :meth:`sensitivity_retention_batch`.
        """
        if elapsed_hours < 0:
            raise ValueError("elapsed time must be >= 0")
        return float(
            self.sensitivity_retention_batch(np.asarray(elapsed_hours)))

    def hours_to_error(self, max_relative_error: float) -> float:
        """Hours until the un-recalibrated reading error hits the limit.

        A sensitivity retention of ``r`` biases concentration estimates by
        ``1 - r``; solving ``1 - r(t) = e`` for the combined exponential
        decay gives the recalibration deadline.
        """
        if not 0.0 < max_relative_error < 1.0:
            raise ValueError("error limit must be in (0, 1)")
        rate_per_hour = self.decay_rate_per_hour
        if rate_per_hour == 0.0:
            return float("inf")
        return -math.log(1.0 - max_relative_error) / rate_per_hour

    def recalibration_schedule(self,
                               horizon_hours: float,
                               max_relative_error: float) -> list[float]:
        """Recalibration times [h] keeping the error within the limit.

        Equal-interval schedule at the drift deadline; the sensor is
        assumed fully corrected at each recalibration (one-point spike).
        """
        if horizon_hours <= 0:
            raise ValueError("horizon must be > 0")
        interval = self.hours_to_error(max_relative_error)
        if math.isinf(interval):
            return []
        times = []
        t = interval
        while t < horizon_hours:
            times.append(t)
            t += interval
        return times


def one_point_recalibration_batch(slopes_a_per_molar: np.ndarray,
                                  reference_concentrations_molar: np.ndarray,
                                  measured_signals_a: np.ndarray,
                                  intercepts_a: np.ndarray | float = 0.0,
                                  ) -> tuple[np.ndarray, np.ndarray]:
    """One-point recalibration across a whole cohort of channels.

    Vectorized counterpart of :func:`one_point_recalibration` with the
    field-robust failure semantics a streaming monitor needs: a channel
    whose reference measurement implies a non-positive slope (sensor dead,
    reference mis-draw) *keeps its prior slope* and is flagged instead of
    aborting the whole cohort.

    Args:
        slopes_a_per_molar: prior calibration slopes, ``(n_channels,)``.
        reference_concentrations_molar: reference (finger-stick / spiked)
            concentrations per channel [mol/L], > 0.
        measured_signals_a: sensor signals at the reference samples [A].
        intercepts_a: calibration intercepts (scalar broadcasts).

    Returns:
        ``(new_slopes, applied)``: the updated ``(n_channels,)`` slopes
        and a boolean mask of channels whose recalibration was accepted.
    """
    slopes = np.atleast_1d(np.asarray(slopes_a_per_molar, dtype=float))
    references = np.broadcast_to(
        np.asarray(reference_concentrations_molar, dtype=float), slopes.shape)
    signals = np.broadcast_to(
        np.asarray(measured_signals_a, dtype=float), slopes.shape)
    intercepts = np.broadcast_to(
        np.asarray(intercepts_a, dtype=float), slopes.shape)
    if np.any(slopes <= 0):
        raise ValueError("prior slopes must be > 0")
    if np.any(references <= 0):
        raise ValueError("reference concentrations must be > 0")
    implied = (signals - intercepts) / references
    applied = implied > 0
    return np.where(applied, implied, slopes), applied


def one_point_recalibration(slope_a_per_molar: float,
                            reference_concentration_molar: float,
                            measured_signal_a: float,
                            intercept_a: float = 0.0) -> float:
    """Return the corrected slope [A/M] from one reference measurement.

    The field protocol: measure a known standard (finger-stick reference,
    spiked sample), attribute the discrepancy to sensitivity drift, and
    rescale the slope:

    ``slope' = (signal - intercept) / C_ref``

    Thin scalar wrapper over :func:`one_point_recalibration_batch`.
    Raises when the implied slope is non-positive (sensor dead or the
    reference measurement failed).
    """
    new_slopes, applied = one_point_recalibration_batch(
        np.array([slope_a_per_molar]),
        np.array([reference_concentration_molar]),
        np.array([measured_signal_a]),
        np.array([intercept_a]))
    if not applied[0]:
        raise ValueError(
            "reference measurement implies a non-positive slope; "
            "recalibration aborted")
    return float(new_slopes[0])


def drift_corrected_estimate_batch(signals_a: np.ndarray,
                                   slopes_a_per_molar: np.ndarray,
                                   intercepts_a: np.ndarray | float,
                                   retentions: np.ndarray,
                                   ) -> np.ndarray:
    """Drift-corrected concentration estimates over a cohort block.

    Vectorized counterpart of :func:`drift_corrected_estimate`:
    per-channel slopes/intercepts (column broadcast) against a
    ``(n_channels, n_samples)`` block of signals and modeled retentions.
    Negative estimates (blank noise) clip to zero.

    Args:
        signals_a: measured signals [A], ``(n_channels, n_samples)`` or
            ``(n_channels,)``.
        slopes_a_per_molar: calibrated slopes, ``(n_channels,)``.
        intercepts_a: calibration intercepts (scalar broadcasts).
        retentions: modeled sensitivity retention at each sample, shaped
            like ``signals_a`` (or broadcastable to it), in (0, 1].

    Returns:
        Concentration estimates [mol/L], shaped like ``signals_a``.
    """
    signals = np.asarray(signals_a, dtype=float)
    slopes = np.atleast_1d(np.asarray(slopes_a_per_molar, dtype=float))
    retention = np.asarray(retentions, dtype=float)
    if np.any(slopes <= 0):
        raise ValueError("slopes must be > 0")
    if np.any(retention <= 0) or np.any(retention > 1.0):
        raise ValueError("retention must be in (0, 1]")
    if signals.ndim == 2:
        slopes = slopes[:, None]
        intercepts = np.asarray(intercepts_a, dtype=float)
        if intercepts.ndim == 1:
            intercepts = intercepts[:, None]
    else:
        intercepts = np.asarray(intercepts_a, dtype=float)
    return np.maximum(
        0.0, (signals - intercepts) / (slopes * retention))


def drift_corrected_estimate(signal_a: float,
                             slope_a_per_molar: float,
                             intercept_a: float,
                             retention: float) -> float:
    """Concentration estimate [mol/L] correcting for known drift.

    When the retention model says the slope has decayed to ``retention``
    of its calibrated value, dividing it out de-biases the estimate.
    Thin scalar wrapper over :func:`drift_corrected_estimate_batch`.
    """
    return float(drift_corrected_estimate_batch(
        np.array([signal_a]), np.array([slope_a_per_molar]),
        np.array([intercept_a]), np.array([retention]))[0])
