"""Validation helpers: paper-vs-measured comparisons.

The reproduction's acceptance criterion is *shape*, not absolute equality:
who wins, by roughly what factor, and where the crossovers fall.  These
helpers encode those checks for the benchmarks and integration tests.
"""

from __future__ import annotations


def relative_error(measured: float, expected: float) -> float:
    """Return |measured - expected| / |expected| (expected must be non-zero)."""
    if expected == 0:
        raise ValueError("expected value must be non-zero")
    return abs(measured - expected) / abs(expected)


def within_factor(measured: float, expected: float, factor: float) -> bool:
    """True when measured and expected agree within a multiplicative factor.

    ``within_factor(x, y, 2)`` accepts x in [y/2, 2y].  Both values must be
    positive; ``factor`` must be >= 1.
    """
    if measured <= 0 or expected <= 0:
        raise ValueError("values must be positive")
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    ratio = measured / expected
    return 1.0 / factor <= ratio <= factor


def ranking_matches(values_by_id: dict[str, float],
                    expected_order: list[str]) -> bool:
    """True when ids sorted by descending value equal ``expected_order``.

    Used for the section 3.2 narratives, e.g. the CYP sensitivities must
    rank arachidonic acid > Ftorafur > ifosfamide > cyclophosphamide.
    """
    if set(values_by_id) != set(expected_order):
        raise ValueError("ids and expected order must contain the same keys")
    actual = sorted(values_by_id, key=values_by_id.__getitem__, reverse=True)
    return actual == expected_order


def winner(values_by_id: dict[str, float]) -> str:
    """Return the id with the largest value."""
    if not values_by_id:
        raise ValueError("empty comparison")
    return max(values_by_id, key=values_by_id.__getitem__)
