"""Multi-target biosensor platform.

The paper's system proposition: five working electrodes on one
microfabricated chip, each carrying a different enzyme, sharing counter,
reference and readout — "a platform for multiple target detection ...
modular and achieves a clear separation between the chemical and the
electrical components" (abstract).  The platform calibrates every channel,
then estimates all analyte concentrations from one sample.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.calibration import (
    CalibrationProtocol,
    CalibrationResult,
    default_protocol_for_range,
    run_calibration,
)
from repro.core.detection import estimate_concentration, measure_point
from repro.core.registry import SensorSpec, build_sensor
from repro.core.sensor import Biosensor
from repro.rng import get_rng
from repro.electrodes.microchip import MicrofabricatedChip
from repro.instrument.multiplexer import ChannelMultiplexer
from repro.units import molar_from_millimolar


@dataclass
class MultiTargetPlatform:
    """A chip hosting several single-analyte biosensor channels.

    Attributes:
        chip: the microfabricated electrode array.
        channels: channel index -> composed biosensor.
        calibrations: channel index -> calibration result (after
            :meth:`calibrate`).
        multiplexer: optional shared-readout switch matrix; when present,
            panel measurements include inter-channel crosstalk and the
            scan timing accounts for settling between channels.
    """

    chip: MicrofabricatedChip = field(default_factory=MicrofabricatedChip)
    channels: dict[int, Biosensor] = field(default_factory=dict)
    calibrations: dict[int, CalibrationResult] = field(default_factory=dict)
    multiplexer: ChannelMultiplexer | None = None

    @classmethod
    def from_specs(cls, specs: list[SensorSpec]) -> "MultiTargetPlatform":
        """Build a platform hosting one channel per spec (chip order)."""
        chip = MicrofabricatedChip()
        if len(specs) > chip.n_channels:
            raise ValueError(
                f"chip has {chip.n_channels} channels, got {len(specs)} specs")
        platform = cls(chip=chip)
        for channel, spec in enumerate(specs):
            platform.add_channel(channel, build_sensor(spec))
        return platform

    def add_channel(self, channel: int, sensor: Biosensor) -> None:
        """Attach ``sensor`` to ``channel`` (must be free and on-chip)."""
        if not 0 <= channel < self.chip.n_channels:
            raise ValueError(
                f"channel must be in [0, {self.chip.n_channels}), got {channel}")
        if channel in self.channels:
            raise ValueError(f"channel {channel} already hosts a sensor")
        self.channels[channel] = sensor

    @property
    def analytes(self) -> dict[int, str]:
        """Channel -> analyte name mapping."""
        return {ch: sensor.analyte.name
                for ch, sensor in sorted(self.channels.items())}

    def calibrate(self,
                  rng: np.random.Generator | None = None,
                  upper_molar_by_channel: dict[int, float] | None = None,
                  ) -> dict[int, CalibrationResult]:
        """Calibrate every channel; returns and stores the results.

        Args:
            rng: shared random generator (reproducibility).
            upper_molar_by_channel: optional expected range upper bound per
                channel; defaults to the sensor's analytic linearity limit.
        """
        rng = get_rng(rng)
        results: dict[int, CalibrationResult] = {}
        for channel, sensor, protocol in self._channel_protocols(
                upper_molar_by_channel):
            results[channel] = run_calibration(sensor, protocol, rng)
        self.calibrations = results
        return results

    def _channel_protocols(self,
                           upper_molar_by_channel: dict[int, float] | None,
                           ) -> list[tuple[int, Biosensor, CalibrationProtocol]]:
        """Resolve the calibration protocol for every channel, in order.

        Shared by the scalar and batch calibration paths so their
        protocol-selection policy cannot drift apart.
        """
        resolved = []
        for channel, sensor in sorted(self.channels.items()):
            if upper_molar_by_channel and channel in upper_molar_by_channel:
                upper = upper_molar_by_channel[channel]
            else:
                upper = sensor.linear_range_upper_molar()
            resolved.append((channel, sensor,
                             default_protocol_for_range(upper)))
        return resolved

    def calibrate_batch(self,
                        seed: int | None = None,
                        upper_molar_by_channel: dict[int, float] | None = None,
                        ) -> dict[int, CalibrationResult]:
        """Calibrate every channel as one batched campaign (engine path).

        Vectorized counterpart of :meth:`calibrate`: the whole panel —
        every channel's blanks, standards and replicates — evaluates
        through :func:`repro.engine.run_campaign` with deterministic
        per-cell randomness derived from ``seed``.  Results are stored
        and returned exactly like :meth:`calibrate`.
        """
        from repro.engine import run_campaign

        resolved = self._channel_protocols(upper_molar_by_channel)
        results = run_campaign([sensor for __, sensor, __p in resolved],
                               [protocol for __, __s, protocol in resolved],
                               seed=seed)
        self.calibrations = {channel: result
                             for (channel, __, __p), result
                             in zip(resolved, results)}
        return self.calibrations

    def measure_sample(self,
                       concentrations_molar: dict[str, float],
                       rng: np.random.Generator | None = None,
                       ) -> dict[str, float]:
        """Estimate analyte concentrations [mol/L] in one sample.

        ``concentrations_molar`` maps analyte name -> true level; channels
        whose analyte is absent from the sample see zero.  Requires a prior
        :meth:`calibrate`.
        """
        if not self.calibrations:
            raise RuntimeError("platform must be calibrated before measuring")
        rng = get_rng(rng)
        signals: dict[int, float] = {}
        for channel, sensor in sorted(self.channels.items()):
            true_level = concentrations_molar.get(sensor.analyte.name, 0.0)
            signals[channel] = measure_point(sensor, true_level, rng)
        if self.multiplexer is not None:
            signals = {channel: self.multiplexer.observed_current(
                channel, signals) for channel in signals}
        estimates: dict[str, float] = {}
        for channel, sensor in sorted(self.channels.items()):
            calibration = self.calibrations[channel]
            estimates[sensor.analyte.name] = estimate_concentration(
                signals[channel],
                calibration.slope_a_per_molar,
                calibration.intercept_a,
            )
        return estimates

    def panel_duration_s(self, dwell_time_s: float = 20.0) -> float:
        """Time [s] for one full panel scan through the shared readout.

        Requires a multiplexer (a parallel-readout platform has no scan).
        """
        if self.multiplexer is None:
            raise RuntimeError("panel timing requires a multiplexer")
        return self.multiplexer.scan_duration_s(
            dwell_time_s, channels=sorted(self.channels))

    def monitor(self,
                timeline_hours: np.ndarray,
                concentration_profiles: dict[str, "np.ndarray"],
                rng: np.random.Generator | None = None,
                ) -> dict[str, np.ndarray]:
        """Track analyte levels over a timeline (cell-culture scenario).

        Args:
            timeline_hours: sample times [h].
            concentration_profiles: analyte name -> true concentration at
                each time [mol/L].

        Returns:
            analyte name -> estimated concentration series [mol/L].
        """
        rng = get_rng(rng)
        timeline_hours = np.asarray(timeline_hours, dtype=float)
        for name, profile in concentration_profiles.items():
            if np.asarray(profile).shape != timeline_hours.shape:
                raise ValueError(
                    f"profile for {name!r} does not match the timeline")
        estimates = {name: np.empty_like(timeline_hours)
                     for name in self.analytes.values()}
        for index in range(timeline_hours.size):
            sample = {name: float(np.asarray(profile)[index])
                      for name, profile in concentration_profiles.items()}
            estimated = self.measure_sample(sample, rng)
            for name, value in estimated.items():
                estimates[name][index] = value
        return estimates


def reference_metabolite_platform() -> MultiTargetPlatform:
    """The paper's metabolite panel: glucose, lactate, glutamate channels."""
    from repro.core.registry import spec_by_id

    return MultiTargetPlatform.from_specs([
        spec_by_id("glucose/this-work"),
        spec_by_id("lactate/this-work"),
        spec_by_id("glutamate/this-work"),
    ])


def default_calibration_upper(spec: SensorSpec) -> float:
    """Published linear-range upper bound of a spec [mol/L]."""
    return molar_from_millimolar(spec.paper_range_mm[1])
