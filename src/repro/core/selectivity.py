"""Cross-reactivity and selectivity of the multi-target platform.

The abstract credits the platform's performance to "the excellent
properties of electron transfer and selectivity showed by enzymes
immobilized on carbon nanotubes".  Enzymatic recognition is what keeps a
five-channel chip honest: glucose oxidase barely turns over lactate, and
vice versa.  This module models the residual cross-reactivity and
computes the selectivity matrix a multi-analyte paper would report.
"""

from __future__ import annotations

import numpy as np

from repro.core.detection import measure_point
from repro.core.sensor import Biosensor

#: Relative catalytic activity of each probe enzyme toward non-target
#: analytes (fraction of the cognate response at equal concentration).
#: Oxidases are highly specific; CYP isoforms overlap more (their broad
#: substrate ranges are why the paper needs one isoform per drug).
CROSS_REACTIVITY: dict[str, dict[str, float]] = {
    "GOD": {"glucose": 1.0},
    "LOD": {"lactate": 1.0, "glucose": 0.002},
    "GlOD": {"glutamate": 1.0, "lactate": 0.003},
    "custom-CYP": {"arachidonic acid": 1.0, "ifosfamide": 0.01},
    "CYP1A2": {"ftorafur": 1.0, "cyclophosphamide": 0.03},
    "CYP2B6": {"cyclophosphamide": 1.0, "ifosfamide": 0.08,
               "ftorafur": 0.02},
    "CYP3A4": {"ifosfamide": 1.0, "cyclophosphamide": 0.06},
}


def cross_reactivity_factor(enzyme_abbreviation: str,
                            analyte_name: str) -> float:
    """Relative response of ``enzyme_abbreviation`` to ``analyte_name``.

    1.0 for the cognate substrate, 0 for analytes the enzyme ignores.
    """
    profile = CROSS_REACTIVITY.get(enzyme_abbreviation)
    if profile is None:
        raise KeyError(
            f"no cross-reactivity profile for {enzyme_abbreviation!r}; "
            f"available: {sorted(CROSS_REACTIVITY)}")
    return profile.get(analyte_name, 0.0)


def response_to_analyte(sensor: Biosensor,
                        analyte_name: str,
                        concentration_molar: float,
                        rng: np.random.Generator | None = None,
                        add_noise: bool = False) -> float:
    """Signal of ``sensor`` exposed to a (possibly non-target) analyte.

    The cross-reactivity factor scales the effective concentration seen by
    the enzyme; the full readout pipeline then runs as usual.
    """
    if concentration_molar < 0:
        raise ValueError("concentration must be >= 0")
    factor = cross_reactivity_factor(
        sensor.layer.enzyme.abbreviation, analyte_name)
    return measure_point(sensor, concentration_molar * factor, rng,
                         add_noise=add_noise)


def selectivity_matrix(sensors: dict[str, Biosensor],
                       test_concentration_molar: float = 1e-4,
                       rng: np.random.Generator | None = None) -> dict:
    """Normalized response matrix: sensor x analyte.

    Each sensor is exposed to every analyte at the same concentration;
    responses are blank-subtracted and normalized to the sensor's cognate
    response.  A selective panel yields a near-identity matrix.

    Returns a dict with ``analytes`` (column order) and ``rows``
    (sensor name -> list of normalized responses).
    """
    if not sensors:
        raise ValueError("need at least one sensor")
    analytes = [sensor.analyte.name for sensor in sensors.values()]
    rows: dict[str, list[float]] = {}
    for name, sensor in sensors.items():
        blank = response_to_analyte(sensor, sensor.analyte.name, 0.0,
                                    rng, add_noise=False)
        cognate = response_to_analyte(
            sensor, sensor.analyte.name, test_concentration_molar,
            rng, add_noise=False) - blank
        if cognate <= 0:
            raise RuntimeError(f"{name}: no cognate response")
        row = []
        for analyte in analytes:
            response = response_to_analyte(
                sensor, analyte, test_concentration_molar,
                rng, add_noise=False) - blank
            row.append(response / cognate)
        rows[name] = row
    return {"analytes": analytes, "rows": rows}


def worst_cross_talk(matrix: dict) -> float:
    """Largest off-diagonal entry of a selectivity matrix."""
    worst = 0.0
    for i, (__, row) in enumerate(matrix["rows"].items()):
        for j, value in enumerate(row):
            if i != j:
                worst = max(worst, abs(value))
    return worst
