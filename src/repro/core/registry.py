"""Sensor registry: every configuration evaluated in the paper.

``TABLE2_SPECS`` holds the 18 rows of Table 2 — the authors' seven sensors
plus eleven literature baselines — with the published sensitivity, linear
range and limit of detection.  ``build_sensor`` turns a spec into a runnable
:class:`repro.core.sensor.Biosensor` through the documented physical
inversion (DESIGN.md section 2):

* apparent Km from the linear-range upper bound (10 % deviation criterion);
* enzyme coverage from the sensitivity (pmol/cm^2-scale monolayers);
* per-measurement repeatability from the LOD (3 sigma / slope);
* a two-point noiseless gain trim absorbing readout non-idealities
  (the voltammetric peak extraction recovers only a fraction of the
  catalytic plateau — exactly what a lab standardization corrects).

The forward simulation then re-derives every metric through the full
pipeline; the benchmarks compare those measurements against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analytes.catalog import analyte_by_name
from repro.core.sensor import Biosensor, ReadoutMode
from repro.core.detection import measure_point
from repro.electrodes.cell import ThreeElectrodeCell
from repro.electrodes.geometry import ElectrodeGeometry
from repro.electrodes.materials import material_by_name
from repro.electrodes.microchip import MicrofabricatedChip
from repro.electrodes.spe import screen_printed_electrode
from repro.enzymes.catalog import enzyme_by_name
from repro.enzymes.immobilization import ImmobilizedLayer, coverage_from_sensitivity
from repro.enzymes.michaelis_menten import km_for_linear_range
from repro.instrument.chain import AcquisitionChain
from repro.nano.dispersion import medium_by_name
from repro.nano.film import NanostructuredFilm
from repro.techniques.chronoamperometry import Chronoamperometry
from repro.techniques.cyclic_voltammetry import CyclicVoltammetry
from repro.units import (
    molar_from_micromolar,
    molar_from_millimolar,
    sensitivity_si_from_paper,
    square_metre_from_square_millimetre,
)

#: Default immobilization activity retention (fraction of kcat kept).
DEFAULT_ACTIVITY_RETENTION = 0.5

#: Default CNT film loadings [kg/m^2].
_NAFION_LOADING = 3e-4
_CHLOROFORM_LOADING = 4e-4


@dataclass(frozen=True)
class SensorSpec:
    """One Table 2 row (or Table 1 entry) of the paper.

    Attributes:
        sensor_id: unique id, ``"<group>/<short-ref>"``.
        group: analyte group (``glucose`` / ``lactate`` / ``glutamate`` /
            ``cyp``).
        label: surface-modification label exactly as printed in Table 2.
        reference: bracketed citation, or ``"this work"``.
        analyte_name: target analyte (catalog key).
        enzyme_name: probe enzyme (catalog key).
        electrode: ``"microchip"``, ``"spe"`` or a plain material name
            (``"glassy carbon"``, ``"platinum"``, ``"gold"``,
            ``"carbon paste"``).
        electrode_area_mm2: geometric working area [mm^2].
        film_medium: dispersion-medium catalog key.
        has_nanotubes: whether the film contains CNTs.
        technique: ``"CA"`` (chronoamperometry) or ``"CV"`` (cyclic
            voltammetry).
        paper_sensitivity: published sensitivity [uA mM^-1 cm^-2].
        paper_range_mm: published linear range (low, high) [mM].
        paper_lod_um: published LOD [uM], or ``None`` when not reported.
        is_this_work: True for the authors' own sensors.
        notes: provenance notes / assumptions.
    """

    sensor_id: str
    group: str
    label: str
    reference: str
    analyte_name: str
    enzyme_name: str
    electrode: str
    electrode_area_mm2: float
    film_medium: str
    has_nanotubes: bool
    technique: str
    paper_sensitivity: float
    paper_range_mm: tuple[float, float]
    paper_lod_um: float | None
    is_this_work: bool
    notes: str = ""

    def __post_init__(self) -> None:
        if self.technique not in ("CA", "CV"):
            raise ValueError(f"technique must be CA or CV, got {self.technique}")
        if self.paper_sensitivity <= 0:
            raise ValueError("paper sensitivity must be > 0")
        low, high = self.paper_range_mm
        if low < 0 or high <= low:
            raise ValueError(f"bad linear range {self.paper_range_mm}")
        if self.paper_lod_um is not None and self.paper_lod_um <= 0:
            raise ValueError("LOD must be > 0 when reported")
        if self.electrode_area_mm2 <= 0:
            raise ValueError("electrode area must be > 0")

    @property
    def assumed_lod_um(self) -> float:
        """Published LOD, or a documented assumption when unreported.

        Ref [42] does not report an LOD; we assume one tenth of its linear-
        range lower bound scaled to uM (a typical relationship).
        """
        if self.paper_lod_um is not None:
            return self.paper_lod_um
        return max(self.paper_range_mm[0] * 1e3 / 10.0, 1.0)


# ---------------------------------------------------------------------------
# Table 2 — all 18 rows.
# ---------------------------------------------------------------------------

TABLE2_SPECS: tuple[SensorSpec, ...] = (
    # ----- glucose --------------------------------------------------------
    SensorSpec(
        sensor_id="glucose/ryu2010",
        group="glucose", label="CNT mat + GOD", reference="[42]",
        analyte_name="glucose", enzyme_name="GOD",
        electrode="glassy carbon", electrode_area_mm2=7.0,
        film_medium="chloroform", has_nanotubes=True, technique="CA",
        paper_sensitivity=4.05, paper_range_mm=(0.2, 2.18),
        paper_lod_um=None, is_this_work=False,
        notes="CNT network mat, covalent GOD; LOD not reported (assumed)",
    ),
    SensorSpec(
        sensor_id="glucose/tsai2005",
        group="glucose", label="MWCNT/Nafion + GOD", reference="[49]",
        analyte_name="glucose", enzyme_name="GOD",
        electrode="glassy carbon", electrode_area_mm2=7.0,
        film_medium="nafion", has_nanotubes=True, technique="CA",
        paper_sensitivity=4.7, paper_range_mm=(0.025, 2.0),
        paper_lod_um=4.0, is_this_work=False,
        notes="cast MWCNT/Nafion/GOD composite on glassy carbon",
    ),
    SensorSpec(
        sensor_id="glucose/wang2003",
        group="glucose", label="MWCNT + GOD", reference="[55]",
        analyte_name="glucose", enzyme_name="GOD",
        electrode="gold", electrode_area_mm2=25.0,
        film_medium="chloroform", has_nanotubes=True, technique="CA",
        paper_sensitivity=14.2, paper_range_mm=(0.05, 13.0),
        paper_lod_um=10.0, is_this_work=False,
        notes="Au film evaporated onto grown MWCNT, drop-cast GOD",
    ),
    SensorSpec(
        sensor_id="glucose/hua2012",
        group="glucose", label="MWCNT-BA + GOD", reference="[18]",
        analyte_name="glucose", enzyme_name="GOD",
        electrode="glassy carbon", electrode_area_mm2=7.0,
        film_medium="nafion", has_nanotubes=True, technique="CA",
        paper_sensitivity=23.5, paper_range_mm=(0.01, 2.5),
        paper_lod_um=10.0, is_this_work=False,
        notes="butyric-acid functionalized MWCNT, water dispersible",
    ),
    SensorSpec(
        sensor_id="glucose/this-work",
        group="glucose", label="MWCNT/Nafion + GOD", reference="this work",
        analyte_name="glucose", enzyme_name="GOD",
        electrode="microchip", electrode_area_mm2=0.25,
        film_medium="nafion", has_nanotubes=True, technique="CA",
        paper_sensitivity=55.5, paper_range_mm=(0.0, 1.0),
        paper_lod_um=2.0, is_this_work=True,
        notes="Au microelectrode chip, MWCNT in Nafion 0.5%, +650 mV",
    ),
    # ----- lactate --------------------------------------------------------
    SensorSpec(
        sensor_id="lactate/rubianes2005",
        group="lactate", label="MWCNT/mineral oil + LOD", reference="[41]",
        analyte_name="lactate", enzyme_name="LOD",
        electrode="carbon paste", electrode_area_mm2=7.0,
        film_medium="mineral oil", has_nanotubes=True, technique="CA",
        paper_sensitivity=0.204, paper_range_mm=(0.0, 7.0),
        paper_lod_um=300.0, is_this_work=False,
        notes="CNT paste electrode (CNT + mineral oil)",
    ),
    SensorSpec(
        sensor_id="lactate/yang2008",
        group="lactate", label="Titanate NT + LOD", reference="[57]",
        analyte_name="lactate", enzyme_name="LOD",
        electrode="glassy carbon", electrode_area_mm2=7.0,
        film_medium="sol-gel", has_nanotubes=False, technique="CA",
        paper_sensitivity=0.24, paper_range_mm=(0.5, 14.0),
        paper_lod_um=200.0, is_this_work=False,
        notes="titanate (not carbon) nanotubes — material comparison row",
    ),
    SensorSpec(
        sensor_id="lactate/huang2007",
        group="lactate", label="MWCNT + sol-gel/LOD", reference="[19]",
        analyte_name="lactate", enzyme_name="LOD",
        electrode="glassy carbon", electrode_area_mm2=7.0,
        film_medium="sol-gel", has_nanotubes=True, technique="CA",
        paper_sensitivity=2.1, paper_range_mm=(0.3, 1.5),
        paper_lod_um=0.3, is_this_work=False,
        notes="MWCNT in sol-gel film on glassy carbon",
    ),
    SensorSpec(
        sensor_id="lactate/goran2011",
        group="lactate", label="N-doped CNT/Nafion + LOD", reference="[16]",
        analyte_name="lactate", enzyme_name="LOD",
        electrode="glassy carbon", electrode_area_mm2=7.0,
        film_medium="nafion", has_nanotubes=True, technique="CA",
        paper_sensitivity=40.0, paper_range_mm=(0.014, 0.325),
        paper_lod_um=4.0, is_this_work=False,
        notes="nitrogen-doped CNT; carbon beats metal for H2O2 (sec. 3.2.2)",
    ),
    SensorSpec(
        sensor_id="lactate/this-work",
        group="lactate", label="MWCNT/Nafion + LOD", reference="this work",
        analyte_name="lactate", enzyme_name="LOD",
        electrode="microchip", electrode_area_mm2=0.25,
        film_medium="nafion", has_nanotubes=True, technique="CA",
        paper_sensitivity=25.0, paper_range_mm=(0.0, 1.0),
        paper_lod_um=11.0, is_this_work=True,
        notes="Au microelectrode chip, MWCNT in Nafion 0.5%, +650 mV",
    ),
    # ----- glutamate ------------------------------------------------------
    SensorSpec(
        sensor_id="glutamate/pan1996",
        group="glutamate", label="Nafion + GlOD", reference="[33]",
        analyte_name="glutamate", enzyme_name="GlOD",
        electrode="platinum", electrode_area_mm2=0.8,
        film_medium="nafion", has_nanotubes=False, technique="CA",
        paper_sensitivity=16.1, paper_range_mm=(0.001, 0.013),
        paper_lod_um=0.3, is_this_work=False,
        notes="Pt electrode, Nafion-entrapped GlOD, no nanomaterial",
    ),
    SensorSpec(
        sensor_id="glutamate/zhang2006",
        group="glutamate", label="Chit + GlOD", reference="[59]",
        analyte_name="glutamate", enzyme_name="GlOD",
        electrode="glassy carbon", electrode_area_mm2=7.0,
        film_medium="chitosan", has_nanotubes=False, technique="CA",
        paper_sensitivity=85.0, paper_range_mm=(0.0, 0.2),
        paper_lod_um=0.1, is_this_work=False,
        notes="chitosan enzyme film",
    ),
    SensorSpec(
        sensor_id="glutamate/ammam2010",
        group="glutamate", label="PU/MWCNT + GlOD/PP", reference="[1]",
        analyte_name="glutamate", enzyme_name="GlOD",
        electrode="platinum", electrode_area_mm2=0.8,
        film_medium="polyurethane/polypyrrole", has_nanotubes=True,
        technique="CA",
        paper_sensitivity=384.0, paper_range_mm=(0.0, 0.14),
        paper_lod_um=0.3, is_this_work=False,
        notes="AC-electrophoresis-packed MWCNT + polypyrrole-entrapped GlOD",
    ),
    SensorSpec(
        sensor_id="glutamate/this-work",
        group="glutamate", label="MWCNT/Nafion + GlOD", reference="this work",
        analyte_name="glutamate", enzyme_name="GlOD",
        electrode="microchip", electrode_area_mm2=0.25,
        film_medium="nafion", has_nanotubes=True, technique="CA",
        paper_sensitivity=0.9, paper_range_mm=(0.0, 2.0),
        paper_lod_um=78.0, is_this_work=True,
        notes="wide 0-2 mM range for cell-culture monitoring (sec. 3.2.3)",
    ),
    # ----- CYP drug sensors (all this work, SPE + CV) ---------------------
    SensorSpec(
        sensor_id="cyp/arachidonic-acid",
        group="cyp", label="MWCNT + CYP", reference="this work",
        analyte_name="arachidonic acid", enzyme_name="custom-CYP",
        electrode="spe", electrode_area_mm2=13.0,
        film_medium="chloroform", has_nanotubes=True, technique="CV",
        paper_sensitivity=1140.0, paper_range_mm=(0.0, 0.04),
        paper_lod_um=0.4, is_this_work=True,
        notes="customized fatty-acid CYP isoform from EMPA",
    ),
    SensorSpec(
        sensor_id="cyp/cyclophosphamide",
        group="cyp", label="MWCNT + CYP", reference="this work",
        analyte_name="cyclophosphamide", enzyme_name="CYP2B6",
        electrode="spe", electrode_area_mm2=13.0,
        film_medium="chloroform", has_nanotubes=True, technique="CV",
        paper_sensitivity=102.0, paper_range_mm=(0.0, 0.07),
        paper_lod_um=2.0, is_this_work=True,
        notes="alkylating anticancer agent",
    ),
    SensorSpec(
        sensor_id="cyp/ifosfamide",
        group="cyp", label="MWCNT + CYP", reference="this work",
        analyte_name="ifosfamide", enzyme_name="CYP3A4",
        electrode="spe", electrode_area_mm2=13.0,
        film_medium="chloroform", has_nanotubes=True, technique="CV",
        paper_sensitivity=160.0, paper_range_mm=(0.0, 0.14),
        paper_lod_um=2.0, is_this_work=True,
        notes="alkylating anticancer agent (CP isomer)",
    ),
    SensorSpec(
        sensor_id="cyp/ftorafur",
        group="cyp", label="MWCNT + CYP", reference="this work",
        analyte_name="ftorafur", enzyme_name="CYP1A2",
        electrode="spe", electrode_area_mm2=13.0,
        film_medium="chloroform", has_nanotubes=True, technique="CV",
        paper_sensitivity=883.0, paper_range_mm=(0.0, 0.008),
        paper_lod_um=0.7, is_this_work=True,
        notes="chemotherapeutic prodrug (tegafur)",
    ),
)

#: The paper's own seven sensors in Table 1 order.
TABLE1_SPECS: tuple[SensorSpec, ...] = tuple(
    spec for spec in TABLE2_SPECS if spec.is_this_work)

_BY_ID = {spec.sensor_id: spec for spec in TABLE2_SPECS}


def spec_by_id(sensor_id: str) -> SensorSpec:
    """Look up a spec by id; raises ``KeyError`` listing available ids."""
    try:
        return _BY_ID[sensor_id]
    except KeyError:
        raise KeyError(
            f"unknown sensor {sensor_id!r}; available: {sorted(_BY_ID)}"
        ) from None


def specs_by_group(group: str) -> tuple[SensorSpec, ...]:
    """Return the Table 2 rows of one analyte group, in table order."""
    selected = tuple(s for s in TABLE2_SPECS if s.group == group)
    if not selected:
        groups = sorted({s.group for s in TABLE2_SPECS})
        raise KeyError(f"unknown group {group!r}; available: {groups}")
    return selected


# ---------------------------------------------------------------------------
# Spec -> Biosensor construction (the physical inversion).
# ---------------------------------------------------------------------------


def _cell_for(spec: SensorSpec) -> ThreeElectrodeCell:
    """Build the three-electrode cell named by the spec."""
    if spec.electrode == "microchip":
        return MicrofabricatedChip().channel_cell(0)
    if spec.electrode == "spe":
        return screen_printed_electrode()
    material = material_by_name(spec.electrode)
    area_m2 = square_metre_from_square_millimetre(spec.electrode_area_mm2)
    return ThreeElectrodeCell(
        name=f"{material.name} disk electrode",
        working_geometry=ElectrodeGeometry.from_area(area_m2),
        working_material=material,
        counter_material=material_by_name("platinum"),
        counter_area_m2=4.0 * area_m2,
        solution_resistance_ohm=100.0,
    )


def _film_for(spec: SensorSpec) -> NanostructuredFilm:
    """Build the surface-modification film named by the spec."""
    medium = medium_by_name(spec.film_medium)
    if not spec.has_nanotubes:
        return NanostructuredFilm(nanotube=None, medium=medium,
                                  loading_kg_m2=0.0,
                                  intrinsic_rate_enhancement=1.0)
    loading = (_CHLOROFORM_LOADING if spec.film_medium == "chloroform"
               else _NAFION_LOADING)
    return NanostructuredFilm(medium=medium, loading_kg_m2=loading)


def build_sensor(spec: SensorSpec,
                 linearity_tolerance: float = 0.1,
                 gain_trim: bool = True) -> Biosensor:
    """Construct a runnable :class:`Biosensor` from a Table 2 spec.

    Args:
        spec: the sensor configuration.
        linearity_tolerance: deviation criterion linking the published
            linear range to the apparent Km.
        gain_trim: apply the two-point noiseless standardization that
            absorbs readout non-idealities (recommended; disable only for
            studying the raw inversion).
    """
    enzyme = enzyme_by_name(spec.enzyme_name)
    analyte = analyte_by_name(spec.analyte_name)
    cell = _cell_for(spec)
    film = _film_for(spec)

    km_app = km_for_linear_range(
        molar_from_millimolar(spec.paper_range_mm[1]), linearity_tolerance)
    collection = film.collection_efficiency()
    target_si = sensitivity_si_from_paper(spec.paper_sensitivity)
    coverage = coverage_from_sensitivity(
        enzyme, target_si, km_app,
        activity_retention=DEFAULT_ACTIVITY_RETENTION,
        collection_efficiency=collection)
    layer = ImmobilizedLayer(
        enzyme=enzyme,
        coverage_mol_m2=coverage,
        activity_retention=DEFAULT_ACTIVITY_RETENTION,
        km_app_molar=km_app,
        collection_efficiency=collection,
    )

    readout = (ReadoutMode.VOLTAMMETRIC_PEAK if spec.technique == "CV"
               else ReadoutMode.AMPEROMETRIC_STEADY_STATE)
    area_m2 = cell.working_area_m2
    slope = target_si * area_m2
    lod_molar = molar_from_micromolar(spec.assumed_lod_um)
    repeatability = lod_molar * slope / 3.0

    sensor = _assemble(spec, analyte, layer, cell, film, readout,
                       repeatability)
    if gain_trim:
        upper = molar_from_millimolar(spec.paper_range_mm[1])
        bias_two_point = _mm_two_point_bias(km_app, 0.05 * upper, 0.15 * upper)
        bias_regression = _mm_regression_bias(km_app, upper,
                                              linearity_tolerance)
        trim_target = slope * bias_two_point / bias_regression
        sensor = _trim_gain(sensor, spec, trim_target)
    return sensor


def _mm_saturation(concentration: float, km: float) -> float:
    """Michaelis-Menten response normalized to unit initial slope."""
    return concentration / (1.0 + concentration / km)


def _mm_two_point_bias(km: float, c_low: float, c_high: float) -> float:
    """Slope of the normalized MM curve between two standards.

    This is the factor by which the two-point gain trim under-reads the
    true initial slope because of residual curvature.
    """
    return ((_mm_saturation(c_high, km) - _mm_saturation(c_low, km))
            / (c_high - c_low))


def _mm_regression_bias(km: float, upper: float, tolerance: float) -> float:
    """Expected regression slope of the calibration extraction.

    Replays the linear-region selection of :mod:`repro.core.calibration`
    on the noiseless Michaelis-Menten model over the default standard grid
    and returns the least-squares slope of the selected points (normalized
    to unit initial slope).  Published sensitivities are regression slopes
    over the reported linear range, so the registry anchors the inversion
    to this quantity rather than to the initial slope.
    """
    import numpy as np

    from repro.core.calibration import DEFAULT_RANGE_FRACTIONS

    standards = [f * upper for f in DEFAULT_RANGE_FRACTIONS]
    responses = [_mm_saturation(c, km) for c in standards]
    anchor_x = np.array([0.0] + standards[:2])
    anchor_y = np.array([0.0] + responses[:2])
    ref_slope, ref_intercept = np.polyfit(anchor_x, anchor_y, 1)
    included_x = [0.0] + standards[:2]
    included_y = [0.0] + responses[:2]
    for concentration, response in zip(standards[2:], responses[2:]):
        predicted = ref_slope * concentration + ref_intercept
        if predicted <= 0:
            break
        if (predicted - response) / predicted > tolerance:
            break
        included_x.append(concentration)
        included_y.append(response)
    slope, __ = np.polyfit(np.array(included_x), np.array(included_y), 1)
    return float(slope)


def _assemble(spec: SensorSpec,
              analyte,
              layer: ImmobilizedLayer,
              cell: ThreeElectrodeCell,
              film: NanostructuredFilm,
              readout: ReadoutMode,
              repeatability: float) -> Biosensor:
    """Wire the chain and technique protocols around the chemical layer."""
    area_m2 = cell.working_area_m2
    max_conc = molar_from_millimolar(spec.paper_range_mm[1]) * 1.6

    if readout is ReadoutMode.AMPEROMETRIC_STEADY_STATE:
        adc_rate = 10.0
        analog_rate = 20.0
        full_scale = max(
            layer.steady_state_current(max_conc, area_m2) * 2.0,
            repeatability * 100.0)
        ca = Chronoamperometry(potential_v=0.65, sampling_rate_hz=analog_rate)
        cv = CyclicVoltammetry(e_start_v=0.1, e_vertex_v=-0.8,
                               scan_rate_v_s=0.1, sampling_rate_hz=100.0)
    else:
        adc_rate = 50.0
        analog_rate = 100.0
        cv = CyclicVoltammetry(e_start_v=0.1, e_vertex_v=-0.8,
                               scan_rate_v_s=0.1, sampling_rate_hz=analog_rate)
        ca = Chronoamperometry(potential_v=0.65, sampling_rate_hz=20.0)
        # Full scale must fit the capacitive envelope, not just the peak.
        double_layer_guess = (cell.bare_double_layer().capacitance_per_area
                              * film.capacitance_enhancement())
        capacitive = double_layer_guess * area_m2 * cv.scan_rate_v_s
        catalytic = layer.steady_state_current(max_conc, area_m2)
        surface = (layer.enzyme.n_electrons * 96485.0) ** 2 / (4 * 8.314 * 298.15) \
            * cv.scan_rate_v_s * area_m2 * layer.coverage_mol_m2
        full_scale = 2.0 * (capacitive + catalytic + surface)

    white_density = max(repeatability / (20.0 * (adc_rate / 2.0) ** 0.5),
                        1e-14)
    chain = AcquisitionChain.for_full_scale(
        full_scale_current_a=full_scale,
        adc_rate_hz=adc_rate,
        n_bits=16,
        white_noise_a_rthz=white_density,
        flicker_corner_hz=0.5,
    )
    response_time = 1.0 if spec.electrode == "microchip" else 2.0
    return Biosensor(
        name=f"{spec.label} ({spec.reference})",
        analyte=analyte,
        layer=layer,
        cell=cell,
        film=film,
        chain=chain,
        readout=readout,
        response_time_s=response_time,
        repeatability_std_a=repeatability,
        ca_protocol=ca,
        cv_protocol=cv,
    )


def _trim_gain(sensor: Biosensor, spec: SensorSpec,
               target_slope_a_per_molar: float) -> Biosensor:
    """Two-point noiseless standardization against the target slope.

    Measures the sensor at 5 % and 15 % of the published range through the
    *full* readout pipeline without noise, compares the implied slope to
    the target, and rescales the enzyme coverage accordingly.  This absorbs
    systematic extraction losses (peak-height fraction of the catalytic
    plateau, residual settling error) exactly as a laboratory calibration
    against standards would.
    """
    upper = molar_from_millimolar(spec.paper_range_mm[1])
    c_low, c_high = 0.05 * upper, 0.15 * upper
    m_low = measure_point(sensor, c_low, add_noise=False)
    m_high = measure_point(sensor, c_high, add_noise=False)
    implied = (m_high - m_low) / (c_high - c_low)
    if implied <= 0:
        raise RuntimeError(
            f"{sensor.name}: non-positive implied slope during gain trim")
    scale = target_slope_a_per_molar / implied
    trimmed_layer = replace(sensor.layer,
                            coverage_mol_m2=sensor.layer.coverage_mol_m2 * scale)
    return replace(sensor, layer=trimmed_layer)
