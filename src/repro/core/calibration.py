"""Calibration pipeline: from raw measurements to Table 2 metrics.

Implements the analysis a bench electrochemist performs:

1. measure replicate blanks and a concentration staircase;
2. find the linear region by extending a low-concentration fit until the
   next point deviates beyond the linearity tolerance (Michaelis-Menten
   saturation bends the curve down);
3. report sensitivity (slope normalized by electrode area, in the paper's
   uA mM^-1 cm^-2), the linear range, and the limit of detection
   ``LOD = 3 sigma_blank / slope``.

The same pipeline serves amperometric and voltammetric sensors — only the
single-point measurement differs (:mod:`repro.core.detection`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.detection import measure_point
from repro.core.sensor import Biosensor
from repro.rng import get_rng
from repro.units import (
    micromolar_from_molar,
    millimolar_from_molar,
    sensitivity_paper_from_slope,
)


class CalibrationError(RuntimeError):
    """Raised when a calibration cannot produce a usable line."""


@dataclass(frozen=True)
class CalibrationProtocol:
    """Measurement plan for one calibration.

    Attributes:
        concentrations_molar: non-zero standards, ascending [mol/L].
        n_blanks: number of blank (zero) replicates.
        n_replicates: replicates per standard.
        linearity_tolerance: maximum relative shortfall from the linear
            extrapolation before a point is declared out of range.
        min_r_squared: minimum acceptable coefficient of determination of
            the final linear fit; a dead or noise-dominated sensor fails
            this gate instead of producing silent garbage.
    """

    concentrations_molar: tuple[float, ...]
    n_blanks: int = 5
    n_replicates: int = 3
    linearity_tolerance: float = 0.1
    min_r_squared: float = 0.8

    def __post_init__(self) -> None:
        if len(self.concentrations_molar) < 3:
            raise ValueError("need at least three standards")
        ordered = list(self.concentrations_molar)
        if ordered != sorted(ordered) or min(ordered) <= 0:
            raise ValueError("standards must be positive and ascending")
        if self.n_blanks < 2:
            raise ValueError("need at least two blanks for an LOD")
        if self.n_replicates < 1:
            raise ValueError("need at least one replicate")
        if not 0.0 < self.linearity_tolerance < 1.0:
            raise ValueError("linearity tolerance must be in (0, 1)")
        if not 0.0 <= self.min_r_squared < 1.0:
            raise ValueError("min_r_squared must be in [0, 1)")


#: Standard-concentration grid of the default protocol, as fractions of the
#: expected linear-range upper bound.  Exposed so the registry can predict
#: the regression bias of the extraction analytically.
DEFAULT_RANGE_FRACTIONS: tuple[float, ...] = (
    0.1, 0.2, 0.35, 0.5, 0.7, 0.85, 1.0, 1.25, 1.6)


def default_protocol_for_range(upper_molar: float,
                               n_blanks: int = 5,
                               n_replicates: int = 3) -> CalibrationProtocol:
    """Build a staircase spanning (and overshooting) an expected range.

    Nine standards from 10 % to 160 % of ``upper_molar``: enough density to
    locate the saturation bend on either side of the nominal limit.
    """
    if upper_molar <= 0:
        raise ValueError("upper range must be > 0")
    return CalibrationProtocol(
        concentrations_molar=tuple(
            f * upper_molar for f in DEFAULT_RANGE_FRACTIONS),
        n_blanks=n_blanks,
        n_replicates=n_replicates,
    )


@dataclass(frozen=True)
class CalibrationPoint:
    """Aggregated replicates at one concentration.

    Attributes:
        concentration_molar: standard concentration [mol/L].
        mean_a: mean signal [A].
        std_a: replicate standard deviation [A] (0 for one replicate).
        n: number of replicates.
    """

    concentration_molar: float
    mean_a: float
    std_a: float
    n: int


@dataclass(frozen=True)
class CalibrationResult:
    """Extracted sensor metrics (one Table 2 row).

    Attributes:
        sensor_name: identity of the calibrated sensor.
        points: all measured standards (ascending concentration).
        blank_mean_a / blank_std_a: blank statistics [A].
        slope_a_per_molar: linear-region calibration slope [A/M].
        intercept_a: linear-region intercept [A].
        r_squared: coefficient of determination of the linear fit.
        sensitivity_paper: slope normalized by area [uA mM^-1 cm^-2].
        linear_range_molar: (low, high) linear range [mol/L]; low is the
            limit of quantification, high the last in-tolerance standard.
        lod_molar: limit of detection, 3 sigma_blank / slope [mol/L].
        n_linear_points: standards included in the linear fit.
        area_m2: electrode area used for normalization.
    """

    sensor_name: str
    points: tuple[CalibrationPoint, ...]
    blank_mean_a: float
    blank_std_a: float
    slope_a_per_molar: float
    intercept_a: float
    r_squared: float
    sensitivity_paper: float
    linear_range_molar: tuple[float, float]
    lod_molar: float
    n_linear_points: int
    area_m2: float
    metadata: dict = field(default_factory=dict)

    @property
    def loq_molar(self) -> float:
        """Limit of quantification [mol/L]: 10 sigma / slope."""
        return self.lod_molar * 10.0 / 3.0

    def summary(self) -> str:
        """One-line summary in the paper's units."""
        low_mm = millimolar_from_molar(self.linear_range_molar[0])
        high_mm = millimolar_from_molar(self.linear_range_molar[1])
        return (
            f"{self.sensor_name}: "
            f"S = {self.sensitivity_paper:.2f} uA mM^-1 cm^-2, "
            f"linear {low_mm:.3g} - {high_mm:.3g} mM, "
            f"LOD = {micromolar_from_molar(self.lod_molar):.2g} uM "
            f"(R^2 = {self.r_squared:.4f})")


def run_calibration(sensor: Biosensor,
                    protocol: CalibrationProtocol,
                    rng: np.random.Generator | None = None,
                    ) -> CalibrationResult:
    """Execute a full calibration of ``sensor`` under ``protocol``.

    Raises:
        CalibrationError: when the fitted slope is non-positive or fewer
            than three standards stay within the linear tolerance.
    """
    rng = get_rng(rng)

    blanks = np.array([measure_point(sensor, 0.0, rng)
                       for __ in range(protocol.n_blanks)])
    blank_mean = float(np.mean(blanks))
    blank_std = float(np.std(blanks, ddof=1))

    points: list[CalibrationPoint] = []
    for concentration in protocol.concentrations_molar:
        replicates = np.array([measure_point(sensor, concentration, rng)
                               for __ in range(protocol.n_replicates)])
        std = float(np.std(replicates, ddof=1)) if replicates.size > 1 else 0.0
        points.append(CalibrationPoint(
            concentration_molar=concentration,
            mean_a=float(np.mean(replicates)),
            std_a=std,
            n=replicates.size,
        ))

    return extract_calibration_result(sensor, protocol, points,
                                      blank_mean, blank_std)


def extract_calibration_result(sensor: Biosensor,
                               protocol: CalibrationProtocol,
                               points: list[CalibrationPoint],
                               blank_mean: float,
                               blank_std: float,
                               metadata: dict | None = None,
                               ) -> CalibrationResult:
    """Turn measured standards + blank statistics into Table 2 metrics.

    The analysis half of :func:`run_calibration`, shared with the batch
    engine (:mod:`repro.engine`): linear-region selection, slope fit with
    quality gates, sensitivity / range / LOD extraction.  ``points`` must
    be in ascending concentration order.

    Raises:
        CalibrationError: on a non-positive or insignificant slope, an
            R^2 below the protocol gate, or fewer than three in-tolerance
            standards.
    """
    included = _linear_region(points, blank_mean,
                              protocol.linearity_tolerance, blank_std)
    if len(included) < 3:
        raise CalibrationError(
            f"{sensor.name}: only {len(included)} standards in the linear "
            "region; calibration unusable")

    x = np.array([0.0] + [p.concentration_molar for p in included])
    y = np.array([blank_mean] + [p.mean_a for p in included])
    slope, intercept = np.polyfit(x, y, 1)
    if slope <= 0:
        raise CalibrationError(
            f"{sensor.name}: non-positive calibration slope {slope:.3g}")
    predictions = slope * x + intercept
    total = float(np.sum((y - np.mean(y)) ** 2))
    residual = float(np.sum((y - predictions) ** 2))
    r_squared = 1.0 - residual / total if total > 0 else 0.0
    if r_squared < protocol.min_r_squared:
        raise CalibrationError(
            f"{sensor.name}: linear fit R^2 = {r_squared:.3f} below the "
            f"{protocol.min_r_squared} quality gate")
    if x.size > 2:
        residual_variance = residual / (x.size - 2)
        slope_se = np.sqrt(residual_variance
                           / np.sum((x - np.mean(x)) ** 2))
        if slope < 3.0 * slope_se:
            raise CalibrationError(
                f"{sensor.name}: slope {slope:.3g} not significant "
                f"(SE {slope_se:.3g}); sensor gives no usable response")

    lod = 3.0 * blank_std / slope
    loq = 10.0 * blank_std / slope
    linear_high = included[-1].concentration_molar
    linear_low = min(loq, linear_high)

    combined_metadata = {"protocol": protocol}
    if metadata:
        combined_metadata.update(metadata)
    return CalibrationResult(
        sensor_name=sensor.name,
        points=tuple(points),
        blank_mean_a=blank_mean,
        blank_std_a=blank_std,
        slope_a_per_molar=float(slope),
        intercept_a=float(intercept),
        r_squared=float(r_squared),
        sensitivity_paper=sensitivity_paper_from_slope(
            float(slope), sensor.area_m2),
        linear_range_molar=(float(linear_low), float(linear_high)),
        lod_molar=float(lod),
        n_linear_points=len(included),
        area_m2=sensor.area_m2,
        metadata=combined_metadata,
    )


def _linear_region(points: list[CalibrationPoint],
                   blank_mean: float,
                   tolerance: float,
                   blank_std: float = 0.0) -> list[CalibrationPoint]:
    """Select the standards forming the linear region.

    A reference line is anchored on the blank and the lowest two
    standards (where Michaelis-Menten curvature is negligible); subsequent
    standards stay in the region while their relative shortfall from the
    reference extrapolation is within ``tolerance``.  Saturation always
    bends the curve *below* the line, so the criterion is one-sided; the
    first out-of-tolerance standard terminates the region (no gaps).

    The criterion is noise-aware: a candidate is only declared out of
    range when its shortfall exceeds the tolerance by more than twice its
    own standard error (sensors whose standards sit near the LOD would
    otherwise terminate the region on pure measurement noise).
    """
    if len(points) <= 2:
        return list(points)
    anchor = points[:2]
    x = np.array([0.0] + [p.concentration_molar for p in anchor])
    y = np.array([blank_mean] + [p.mean_a for p in anchor])
    slope, intercept = np.polyfit(x, y, 1)
    included = list(anchor)
    for candidate in points[2:]:
        predicted = slope * candidate.concentration_molar + intercept
        scale = abs(predicted - blank_mean)
        if scale == 0.0:
            break
        candidate_sem = candidate.std_a / np.sqrt(max(candidate.n, 1))
        # The blank std estimates the per-measurement noise floor, which
        # also rides on every standard (repeatability-dominated sensors).
        noise_allowance = 2.0 * (candidate_sem + blank_std) / scale
        shortfall = (predicted - candidate.mean_a) / scale
        if shortfall > tolerance + noise_allowance:
            break
        included.append(candidate)
    return included
