"""The paper's contribution: the multi-target CNT biosensor platform.

This package composes the substrates (electrochemistry, enzymes,
electrodes, nanomaterials, instrumentation, DSP) into the system the paper
describes: modular biosensors with a clean separation between the chemical
layer (electrode + CNT film + enzyme) and the electrical layer (acquisition
chain), a calibration pipeline that extracts the Table 2 metrics
(sensitivity, linear range, limit of detection), and the sensor registry
holding every configuration the paper evaluates.
"""

from repro.core.sensor import Biosensor, ReadoutMode
from repro.core.detection import (
    measure_point,
    measure_amperometric_point,
    measure_voltammetric_point,
    estimate_concentration,
)
from repro.core.calibration import (
    CalibrationError,
    CalibrationPoint,
    CalibrationProtocol,
    CalibrationResult,
    run_calibration,
    default_protocol_for_range,
)
from repro.core.registry import (
    SensorSpec,
    TABLE1_SPECS,
    TABLE2_SPECS,
    specs_by_group,
    spec_by_id,
    build_sensor,
)
from repro.core.platform import MultiTargetPlatform
from repro.core.longterm import (
    DriftBudget,
    one_point_recalibration,
    one_point_recalibration_batch,
    drift_corrected_estimate,
    drift_corrected_estimate_batch,
)
from repro.core.selectivity import (
    cross_reactivity_factor,
    selectivity_matrix,
    worst_cross_talk,
)
from repro.core.tables import render_table1, render_table2
from repro.core.validation import (
    relative_error,
    within_factor,
    ranking_matches,
)

__all__ = [
    "Biosensor",
    "ReadoutMode",
    "measure_point",
    "measure_amperometric_point",
    "measure_voltammetric_point",
    "estimate_concentration",
    "CalibrationError",
    "CalibrationPoint",
    "CalibrationProtocol",
    "CalibrationResult",
    "run_calibration",
    "default_protocol_for_range",
    "SensorSpec",
    "TABLE1_SPECS",
    "TABLE2_SPECS",
    "specs_by_group",
    "spec_by_id",
    "build_sensor",
    "MultiTargetPlatform",
    "DriftBudget",
    "one_point_recalibration",
    "one_point_recalibration_batch",
    "drift_corrected_estimate",
    "drift_corrected_estimate_batch",
    "cross_reactivity_factor",
    "selectivity_matrix",
    "worst_cross_talk",
    "render_table1",
    "render_table2",
    "relative_error",
    "within_factor",
    "ranking_matches",
]
