"""Single-point measurement procedures.

Turning one (sensor, concentration) pair into one calibration datum, the
way the bench protocol does:

* **amperometric** — apply +650 mV, wait for the plateau, digitize through
  the chain, average the settled tail;
* **voltammetric** — run a triangular sweep, digitize, take the forward
  (reducing) branch, fit the flank baseline, report the catalytic peak
  height.

Both add the sensor's per-measurement repeatability scatter, which is the
dominant blank noise and therefore the setter of the extracted LOD.
"""

from __future__ import annotations

import numpy as np

from repro.core.sensor import Biosensor, ReadoutMode
from repro.rng import get_rng
from repro.signal.peaks import measure_peak


def measure_amperometric_point(sensor: Biosensor,
                               concentration_molar: float,
                               rng: np.random.Generator | None = None,
                               step_duration_s: float = 16.0,
                               add_noise: bool = True) -> float:
    """Measure one chronoamperometric calibration point [A].

    Thin single-cell wrapper over the batch engine
    (:func:`repro.engine.measure.measure_amperometric_batch`): the value
    is bit-identical to the historical scalar pipeline for the same
    generator state.  The noiseless kernel is LRU-cached per plateau
    set, so repeated scalar calls at the same concentration skip the
    clean-chain recomputation (campaign runs key on their full grids
    and keep their own entries).

    With ``rng=None`` the shared seedable generator is used
    (:mod:`repro.rng`), so a run seeded once via ``set_global_seed`` is
    reproducible end-to-end.
    """
    # Imported here: the engine layers on top of core, not under it.
    from repro.engine.measure import measure_amperometric_batch

    if concentration_molar < 0:
        raise ValueError("concentration must be >= 0")
    values = measure_amperometric_batch(
        sensor, np.array([concentration_molar]), rngs=get_rng(rng),
        add_noise=add_noise, step_duration_s=step_duration_s)
    return float(values[0])


def measure_voltammetric_point(sensor: Biosensor,
                               concentration_molar: float,
                               rng: np.random.Generator | None = None,
                               add_noise: bool = True) -> float:
    """Measure one cyclic-voltammetric calibration point.

    Returns the baseline-corrected cathodic peak height [A] on the forward
    (reducing) sweep — "the peak height is proportional to drug
    concentration" (paper section 3.1).
    """
    if concentration_molar < 0:
        raise ValueError("concentration must be >= 0")
    rng = get_rng(rng)
    couple = sensor.detected_couple()
    record = sensor.cv_protocol.simulate_catalytic_cyp(
        layer=sensor.layer,
        couple=couple,
        substrate_molar=concentration_molar,
        area_m2=sensor.area_m2,
        double_layer=sensor.double_layer(),
    )
    acquired = sensor.chain.acquire(
        record.current_a, record.sampling_rate_hz, rng=rng,
        add_noise=add_noise)

    # Forward (reducing) branch: from the start potential to the vertex.
    wave_fraction = 1.0 / (2.0 * sensor.cv_protocol.n_cycles)
    n_forward = max(8, int(round(acquired.time_s.size * wave_fraction)))
    forward_slice = slice(0, n_forward)
    potentials = np.interp(
        acquired.time_s, record.time_s, record.potential_v)[forward_slice]
    currents = acquired.current_a[forward_slice]

    formal = couple.formal_potential
    peak = measure_peak(
        potentials, currents,
        peak_window=(formal - 0.13, formal + 0.13),
        polarity=-1,
    )
    value = peak.height
    if add_noise and sensor.repeatability_std_a > 0:
        value += float(rng.normal(0.0, sensor.repeatability_std_a))
    return value


def measure_point(sensor: Biosensor,
                  concentration_molar: float,
                  rng: np.random.Generator | None = None,
                  add_noise: bool = True) -> float:
    """Measure one calibration point with the sensor's readout mode.

    The returned quantity is a current-like signal [A]: a plateau current
    for amperometric sensors, a peak height for voltammetric ones.
    """
    if sensor.readout is ReadoutMode.AMPEROMETRIC_STEADY_STATE:
        return measure_amperometric_point(
            sensor, concentration_molar, rng, add_noise=add_noise)
    if sensor.readout is ReadoutMode.VOLTAMMETRIC_PEAK:
        return measure_voltammetric_point(
            sensor, concentration_molar, rng, add_noise=add_noise)
    raise ValueError(f"unhandled readout mode {sensor.readout}")


def estimate_concentration(signal_a: float,
                           slope_a_per_molar: float,
                           intercept_a: float = 0.0) -> float:
    """Invert a linear calibration: concentration [mol/L] from a signal [A].

    Negative estimates (blank noise) are clipped to zero.
    """
    if slope_a_per_molar <= 0:
        raise ValueError("slope must be > 0")
    return max(0.0, (signal_a - intercept_a) / slope_a_per_molar)
