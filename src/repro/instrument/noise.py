"""Noise sources of the analog front-end.

Three mechanisms dominate an amperometric readout:

* thermal (Johnson) noise of the feedback resistor — white, ``sqrt(4kT/R)``;
* shot noise of the faradaic current — white, ``sqrt(2qI)``;
* flicker (1/f) noise of the transistors — dominant at the sub-hertz
  frequencies where biosensor signals live, and the practical setter of the
  limit of detection.

:class:`NoiseModel` synthesizes time-domain noise with a white floor and a
1/f corner via FFT spectral shaping, reproducible through a seeded
generator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import BOLTZMANN, ELEMENTARY_CHARGE, STANDARD_TEMPERATURE
from repro.rng import get_rng


def thermal_current_noise_density(resistance_ohm: float,
                                  temperature_k: float = STANDARD_TEMPERATURE
                                  ) -> float:
    """Return the Johnson current-noise density sqrt(4kT/R) [A/sqrt(Hz)].

    A 10 Mohm feedback resistor at 25 C contributes ~41 fA/sqrt(Hz) — large
    resistors are *quieter* in current, which is why picoammeter front-ends
    use huge feedback resistances.
    """
    if resistance_ohm <= 0:
        raise ValueError(f"resistance must be > 0, got {resistance_ohm}")
    if temperature_k <= 0:
        raise ValueError(f"temperature must be > 0, got {temperature_k}")
    return math.sqrt(4.0 * BOLTZMANN * temperature_k / resistance_ohm)


def shot_noise_density(current_a: float) -> float:
    """Return the shot-noise density sqrt(2qI) [A/sqrt(Hz)] of a DC current."""
    if current_a < 0:
        raise ValueError(f"current must be >= 0, got {current_a}")
    return math.sqrt(2.0 * ELEMENTARY_CHARGE * current_a)


def flicker_corner_rms(white_density: float,
                       corner_hz: float,
                       f_low_hz: float,
                       f_high_hz: float) -> float:
    """RMS [A] of white + 1/f noise integrated over [f_low, f_high].

    PSD model: ``S(f) = S_w^2 (1 + fc/f)``; integration gives
    ``rms^2 = S_w^2 [(f_high - f_low) + fc ln(f_high/f_low)]``.
    """
    if white_density < 0:
        raise ValueError("white density must be >= 0")
    if corner_hz < 0:
        raise ValueError("corner must be >= 0")
    if not 0.0 < f_low_hz < f_high_hz:
        raise ValueError("need 0 < f_low < f_high")
    band = f_high_hz - f_low_hz
    flicker = corner_hz * math.log(f_high_hz / f_low_hz)
    return white_density * math.sqrt(band + flicker)


@dataclass(frozen=True)
class NoiseModel:
    """Synthesizable input-referred current-noise model.

    Attributes:
        white_density_a_rthz: white-noise floor [A/sqrt(Hz)].
        flicker_corner_hz: frequency below which 1/f noise exceeds the white
            floor [Hz]; zero disables flicker shaping.
    """

    white_density_a_rthz: float
    flicker_corner_hz: float = 0.0

    def __post_init__(self) -> None:
        if self.white_density_a_rthz < 0:
            raise ValueError("white density must be >= 0")
        if self.flicker_corner_hz < 0:
            raise ValueError("flicker corner must be >= 0")

    def white_rms(self, bandwidth_hz: float) -> float:
        """White-only RMS [A] in ``bandwidth_hz``."""
        if bandwidth_hz <= 0:
            raise ValueError("bandwidth must be > 0")
        return self.white_density_a_rthz * math.sqrt(bandwidth_hz)

    def rms(self, f_low_hz: float, f_high_hz: float) -> float:
        """Total RMS [A] between ``f_low_hz`` and ``f_high_hz``."""
        if self.flicker_corner_hz == 0.0:
            if not 0.0 <= f_low_hz < f_high_hz:
                raise ValueError("need 0 <= f_low < f_high")
            return self.white_density_a_rthz * math.sqrt(f_high_hz - f_low_hz)
        return flicker_corner_rms(self.white_density_a_rthz,
                                  self.flicker_corner_hz, f_low_hz, f_high_hz)

    def sample(self,
               n_samples: int,
               sampling_rate_hz: float,
               rng: np.random.Generator | None = None) -> np.ndarray:
        """Synthesize ``n_samples`` of noise at ``sampling_rate_hz`` [A].

        White Gaussian noise of the correct density, optionally spectrally
        shaped so the PSD follows ``S_w^2 (1 + fc/f)``.
        """
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        if sampling_rate_hz <= 0:
            raise ValueError("sampling rate must be > 0")
        rng = get_rng(rng)
        sigma_white = self.white_density_a_rthz * math.sqrt(sampling_rate_hz / 2.0)
        white = rng.normal(0.0, sigma_white, n_samples) if sigma_white > 0 \
            else np.zeros(n_samples)
        if self.flicker_corner_hz == 0.0 or sigma_white == 0.0:
            return white
        return self._shape_flicker(white, sampling_rate_hz)

    def sample_batch(self,
                     n_rows: int,
                     n_samples: int,
                     sampling_rate_hz: float,
                     rngs: "np.random.Generator | list[np.random.Generator] | None" = None,
                     ) -> np.ndarray:
        """Synthesize ``(n_rows, n_samples)`` of noise, one row per cell [A].

        Rows are statistically independent.  ``rngs`` is either one
        generator (rows drawn consecutively from it) or a sequence of
        ``n_rows`` generators, one per row — the latter is what the batch
        engine uses so every cell replays deterministically regardless of
        how a campaign is grouped.  The white draws happen per row but the
        1/f spectral shaping runs vectorized over the whole block.
        """
        if n_rows < 1:
            raise ValueError(f"n_rows must be >= 1, got {n_rows}")
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        if sampling_rate_hz <= 0:
            raise ValueError("sampling rate must be > 0")
        sigma_white = self.white_density_a_rthz * math.sqrt(sampling_rate_hz / 2.0)
        if sigma_white == 0.0:
            return np.zeros((n_rows, n_samples))
        if rngs is None:
            rngs = get_rng()
        if isinstance(rngs, np.random.Generator):
            white = rngs.normal(0.0, sigma_white, (n_rows, n_samples))
        else:
            if len(rngs) != n_rows:
                raise ValueError(
                    f"need one generator per row: {len(rngs)} != {n_rows}")
            white = np.stack([rng.normal(0.0, sigma_white, n_samples)
                              for rng in rngs])
        if self.flicker_corner_hz == 0.0:
            return white
        return self._shape_flicker(white, sampling_rate_hz)

    def _shape_flicker(self, white: np.ndarray,
                       sampling_rate_hz: float) -> np.ndarray:
        """Shape white rows so the PSD follows ``S_w^2 (1 + fc/f)``.

        Operates along the last axis, so one call serves both the scalar
        trace and a whole ``(n_rows, n_samples)`` batch.
        """
        n_samples = white.shape[-1]
        spectrum = np.fft.rfft(white, axis=-1)
        freqs = np.fft.rfftfreq(n_samples, d=1.0 / sampling_rate_hz)
        shaping = np.ones_like(freqs)
        nonzero = freqs > 0
        shaping[nonzero] = np.sqrt(1.0 + self.flicker_corner_hz / freqs[nonzero])
        shaping[0] = 0.0  # no DC noise power (offset handled separately)
        return np.fft.irfft(spectrum * shaping, n=n_samples, axis=-1)
