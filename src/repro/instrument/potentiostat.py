"""Potentiostat control model.

The potentiostat holds the working electrode at the programmed potential
against the reference while sourcing the current through the counter
electrode.  Its non-idealities — finite compliance voltage, incomplete
iR compensation, DAC quantization of the waveform — perturb the potential
the chemistry actually sees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.electrodes.cell import ThreeElectrodeCell


@dataclass(frozen=True)
class Potentiostat:
    """Three-electrode potentiostat.

    Attributes:
        compliance_v: maximum counter-electrode drive voltage [V].
        ir_compensation: fraction of the solution resistance compensated by
            positive feedback (0 = none, 0.9 typical, 1 would oscillate).
        dac_resolution_v: potential programming resolution [V].
        potential_accuracy_v: static offset error of the control loop [V].
    """

    compliance_v: float = 10.0
    ir_compensation: float = 0.0
    dac_resolution_v: float = 1e-3
    potential_accuracy_v: float = 1e-3

    def __post_init__(self) -> None:
        if self.compliance_v <= 0:
            raise ValueError("compliance must be > 0")
        if not 0.0 <= self.ir_compensation < 1.0:
            raise ValueError(
                f"iR compensation must be in [0, 1), got {self.ir_compensation}")
        if self.dac_resolution_v <= 0:
            raise ValueError("DAC resolution must be > 0")
        if self.potential_accuracy_v < 0:
            raise ValueError("potential accuracy must be >= 0")

    def program_waveform(self, potentials_v: np.ndarray) -> np.ndarray:
        """Quantize a requested waveform to the DAC resolution."""
        potentials_v = np.asarray(potentials_v, dtype=float)
        return np.round(potentials_v / self.dac_resolution_v) * self.dac_resolution_v

    def effective_potential(self,
                            set_potential_v: float,
                            current_a: float,
                            cell: ThreeElectrodeCell) -> float:
        """Potential actually applied to the interface [V].

        The uncompensated fraction of the solution resistance steals
        ``I * Ru * (1 - comp)`` from the programmed value.
        """
        uncompensated = cell.solution_resistance_ohm * (1.0 - self.ir_compensation)
        return set_potential_v - current_a * uncompensated

    def within_compliance(self, current_a: float,
                          cell: ThreeElectrodeCell) -> bool:
        """True while the counter electrode can still source the current.

        The drive requirement is approximated by the ohmic drop across the
        full solution resistance plus a 1 V interfacial budget.
        """
        required = abs(current_a) * cell.solution_resistance_ohm + 1.0
        return required <= self.compliance_v

    def max_current_a(self, cell: ThreeElectrodeCell) -> float:
        """Largest current [A] the compliance budget allows in ``cell``."""
        if cell.solution_resistance_ohm == 0.0:
            return float("inf")
        return (self.compliance_v - 1.0) / cell.solution_resistance_ohm
