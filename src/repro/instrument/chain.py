"""Complete acquisition chain: TIA -> anti-alias filter -> ADC.

This is the "electrical component" of the paper's modular platform — the
part that stays fixed while the chemical layer (electrode + film + enzyme)
is swapped per target.  ``acquire`` turns a true current trace into the
digital record an instrument would log, and ``input_referred_noise_rms``
predicts the noise floor that bounds the limit of detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.instrument.adc import SarAdc
from repro.instrument.filters import AnalogLowPass
from repro.instrument.noise import NoiseModel
from repro.instrument.tia import TransimpedanceAmplifier


@dataclass(frozen=True)
class AcquiredTrace:
    """Result of digitizing a current trace.

    Attributes:
        time_s: ADC sample timestamps [s].
        current_a: reconstructed current at each sample [A].
        true_current_a: noiseless input decimated to the same grid [A]
            (ground truth for error analysis; a real instrument lacks it).
    """

    time_s: np.ndarray
    current_a: np.ndarray
    true_current_a: np.ndarray

    def __post_init__(self) -> None:
        if not (self.time_s.shape == self.current_a.shape
                == self.true_current_a.shape):
            raise ValueError("trace arrays must share one shape")

    @property
    def rms_error_a(self) -> float:
        """RMS deviation of the reconstruction from the true current [A]."""
        return float(np.sqrt(np.mean((self.current_a - self.true_current_a) ** 2)))


@dataclass(frozen=True)
class BatchAcquiredTrace:
    """Result of digitizing a whole batch of current traces at once.

    Attributes:
        time_s: ADC sample timestamps [s], shared by every cell
            (``(n_samples,)``).
        current_a: reconstructed currents, ``(n_cells, n_samples)``.
        true_current_a: noiseless inputs decimated to the same grid,
            ``(n_cells, n_samples)``.
    """

    time_s: np.ndarray
    current_a: np.ndarray
    true_current_a: np.ndarray

    def __post_init__(self) -> None:
        if self.current_a.ndim != 2:
            raise ValueError("batch currents must be (n_cells, n_samples)")
        if self.current_a.shape != self.true_current_a.shape:
            raise ValueError("batch trace arrays must share one shape")
        if self.time_s.shape != (self.current_a.shape[1],):
            raise ValueError("time grid must match the sample axis")

    @property
    def n_cells(self) -> int:
        """Number of independent traces in the batch."""
        return self.current_a.shape[0]

    def cell(self, index: int) -> AcquiredTrace:
        """Extract one cell as a scalar-API :class:`AcquiredTrace`."""
        return AcquiredTrace(time_s=self.time_s,
                             current_a=self.current_a[index],
                             true_current_a=self.true_current_a[index])


@dataclass(frozen=True)
class AcquisitionChain:
    """TIA + filter + ADC readout chain.

    Attributes:
        tia: transimpedance stage.
        antialias: analog low-pass before the ADC (``None`` for none).
        adc: the converter.
    """

    tia: TransimpedanceAmplifier
    adc: SarAdc
    antialias: AnalogLowPass | None = field(default=None)

    @classmethod
    def for_full_scale(cls,
                       full_scale_current_a: float,
                       adc_rate_hz: float = 10.0,
                       n_bits: int = 16,
                       white_noise_a_rthz: float | None = None,
                       flicker_corner_hz: float = 0.5,
                       rail_v: float = 2.5) -> "AcquisitionChain":
        """Design a chain for a given full-scale current.

        Picks the TIA gain to map ``full_scale_current_a`` to 80 % of the
        rails, a two-pole anti-alias at 40 % of the ADC Nyquist rate, and a
        default (Johnson-limited) or user-specified noise floor.
        """
        if full_scale_current_a <= 0:
            raise ValueError("full-scale current must be > 0")
        gain = 0.8 * rail_v / full_scale_current_a
        noise = None
        if white_noise_a_rthz is not None:
            noise = NoiseModel(white_density_a_rthz=white_noise_a_rthz,
                               flicker_corner_hz=flicker_corner_hz)
        tia = TransimpedanceAmplifier(
            gain_v_per_a=gain,
            bandwidth_hz=max(10.0, 4.0 * adc_rate_hz),
            rail_v=rail_v,
            input_noise=noise,
        )
        antialias = AnalogLowPass(cutoff_hz=0.4 * adc_rate_hz / 2.0 * 2.0,
                                  order=2)
        adc = SarAdc(n_bits=n_bits, v_ref=rail_v, sampling_rate_hz=adc_rate_hz)
        return cls(tia=tia, adc=adc, antialias=antialias)

    def acquire(self,
                current_a: np.ndarray,
                input_rate_hz: float,
                rng: np.random.Generator | None = None,
                add_noise: bool = True) -> AcquiredTrace:
        """Digitize a true current trace sampled at ``input_rate_hz``.

        The input rate must be an integer multiple of the ADC rate.
        """
        current_a = np.asarray(current_a, dtype=float)
        if current_a.ndim != 1:
            raise ValueError("current trace must be one-dimensional")
        batch = self.acquire_batch(current_a[None, :], input_rate_hz,
                                   rngs=rng, add_noise=add_noise)
        return batch.cell(0)

    def acquire_batch(self,
                      current_a: np.ndarray,
                      input_rate_hz: float,
                      rngs: "np.random.Generator | list[np.random.Generator] | None" = None,
                      add_noise: bool = True,
                      true_current_a: np.ndarray | None = None,
                      ) -> BatchAcquiredTrace:
        """Digitize ``(n_cells, n_samples)`` true current traces at once.

        Vectorized counterpart of :meth:`acquire`: the TIA, anti-alias
        filter and ADC all operate on the whole block along the sample
        axis, so the per-trace Python overhead of a campaign collapses
        into a handful of array passes.

        Args:
            current_a: true currents, one row per cell.
            input_rate_hz: analog simulation rate (integer multiple of the
                ADC rate, as in :meth:`acquire`).
            rngs: one generator per row (deterministic per-cell noise), a
                single shared generator, or ``None``.
            add_noise: disable for noiseless reference runs.
            true_current_a: precomputed noiseless decimated rows (e.g. from
                the engine's kernel cache); when ``None`` the clean path is
                recomputed here exactly as :meth:`acquire` does.
        """
        current_a = np.asarray(current_a, dtype=float)
        if current_a.ndim != 2:
            raise ValueError("batch input must be (n_cells, n_samples)")
        voltage = self.tia.amplify(current_a, input_rate_hz, rng=rngs,
                                   add_noise=add_noise)
        if self.antialias is not None:
            voltage = self.antialias.apply(voltage, input_rate_hz)
        times, reconstructed_v = self.adc.sample_trace(voltage, input_rate_hz)
        measured = reconstructed_v / self.tia.gain_v_per_a

        if true_current_a is None:
            if not add_noise:
                # The noisy path just ran noise-free: it IS the clean path.
                true_current_a = measured
            else:
                clean_v = self.tia.amplify(current_a, input_rate_hz,
                                           add_noise=False)
                if self.antialias is not None:
                    clean_v = self.antialias.apply(clean_v, input_rate_hz)
                __, clean_sampled = self.adc.sample_trace(
                    clean_v, input_rate_hz)
                true_current_a = clean_sampled / self.tia.gain_v_per_a
        else:
            true_current_a = np.asarray(true_current_a, dtype=float)
            if true_current_a.shape != measured.shape:
                raise ValueError(
                    f"precomputed clean rows {true_current_a.shape} do not "
                    f"match the acquired shape {measured.shape}")
        return BatchAcquiredTrace(time_s=times, current_a=measured,
                                  true_current_a=true_current_a)

    def input_referred_noise_rms(self, f_low_hz: float = 0.01) -> float:
        """Total input-referred noise RMS [A] of the chain.

        Quadrature sum of the TIA noise over the post-filter bandwidth and
        the ADC quantization noise referred through the TIA gain.
        """
        bandwidth = (self.antialias.noise_bandwidth_hz()
                     if self.antialias is not None else self.tia.bandwidth_hz)
        bandwidth = min(bandwidth, self.tia.bandwidth_hz)
        tia_rms = self.tia.noise.rms(f_low_hz, max(bandwidth, 2.0 * f_low_hz))
        adc_rms = self.adc.quantization_noise_rms_v / self.tia.gain_v_per_a
        return float(np.hypot(tia_rms, adc_rms))

    def dynamic_range_db(self) -> float:
        """Ratio of full-scale current to the noise floor, in dB."""
        full_scale = self.tia.full_scale_current_a
        noise = self.input_referred_noise_rms()
        if noise == 0.0:
            return float("inf")
        return 20.0 * float(np.log10(full_scale / noise))
