"""Complete acquisition chain: TIA -> anti-alias filter -> ADC.

This is the "electrical component" of the paper's modular platform — the
part that stays fixed while the chemical layer (electrode + film + enzyme)
is swapped per target.  ``acquire`` turns a true current trace into the
digital record an instrument would log, and ``input_referred_noise_rms``
predicts the noise floor that bounds the limit of detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.instrument.adc import SarAdc
from repro.instrument.filters import AnalogLowPass
from repro.instrument.noise import NoiseModel
from repro.instrument.tia import TransimpedanceAmplifier


@dataclass(frozen=True)
class AcquiredTrace:
    """Result of digitizing a current trace.

    Attributes:
        time_s: ADC sample timestamps [s].
        current_a: reconstructed current at each sample [A].
        true_current_a: noiseless input decimated to the same grid [A]
            (ground truth for error analysis; a real instrument lacks it).
    """

    time_s: np.ndarray
    current_a: np.ndarray
    true_current_a: np.ndarray

    def __post_init__(self) -> None:
        if not (self.time_s.shape == self.current_a.shape
                == self.true_current_a.shape):
            raise ValueError("trace arrays must share one shape")

    @property
    def rms_error_a(self) -> float:
        """RMS deviation of the reconstruction from the true current [A]."""
        return float(np.sqrt(np.mean((self.current_a - self.true_current_a) ** 2)))


@dataclass(frozen=True)
class AcquisitionChain:
    """TIA + filter + ADC readout chain.

    Attributes:
        tia: transimpedance stage.
        antialias: analog low-pass before the ADC (``None`` for none).
        adc: the converter.
    """

    tia: TransimpedanceAmplifier
    adc: SarAdc
    antialias: AnalogLowPass | None = field(default=None)

    @classmethod
    def for_full_scale(cls,
                       full_scale_current_a: float,
                       adc_rate_hz: float = 10.0,
                       n_bits: int = 16,
                       white_noise_a_rthz: float | None = None,
                       flicker_corner_hz: float = 0.5,
                       rail_v: float = 2.5) -> "AcquisitionChain":
        """Design a chain for a given full-scale current.

        Picks the TIA gain to map ``full_scale_current_a`` to 80 % of the
        rails, a two-pole anti-alias at 40 % of the ADC Nyquist rate, and a
        default (Johnson-limited) or user-specified noise floor.
        """
        if full_scale_current_a <= 0:
            raise ValueError("full-scale current must be > 0")
        gain = 0.8 * rail_v / full_scale_current_a
        noise = None
        if white_noise_a_rthz is not None:
            noise = NoiseModel(white_density_a_rthz=white_noise_a_rthz,
                               flicker_corner_hz=flicker_corner_hz)
        tia = TransimpedanceAmplifier(
            gain_v_per_a=gain,
            bandwidth_hz=max(10.0, 4.0 * adc_rate_hz),
            rail_v=rail_v,
            input_noise=noise,
        )
        antialias = AnalogLowPass(cutoff_hz=0.4 * adc_rate_hz / 2.0 * 2.0,
                                  order=2)
        adc = SarAdc(n_bits=n_bits, v_ref=rail_v, sampling_rate_hz=adc_rate_hz)
        return cls(tia=tia, adc=adc, antialias=antialias)

    def acquire(self,
                current_a: np.ndarray,
                input_rate_hz: float,
                rng: np.random.Generator | None = None,
                add_noise: bool = True) -> AcquiredTrace:
        """Digitize a true current trace sampled at ``input_rate_hz``.

        The input rate must be an integer multiple of the ADC rate.
        """
        current_a = np.asarray(current_a, dtype=float)
        voltage = self.tia.amplify(current_a, input_rate_hz, rng=rng,
                                   add_noise=add_noise)
        if self.antialias is not None:
            voltage = self.antialias.apply(voltage, input_rate_hz)
        times, reconstructed_v = self.adc.sample_trace(voltage, input_rate_hz)
        measured = reconstructed_v / self.tia.gain_v_per_a

        clean_v = self.tia.amplify(current_a, input_rate_hz, add_noise=False)
        if self.antialias is not None:
            clean_v = self.antialias.apply(clean_v, input_rate_hz)
        __, clean_sampled = self.adc.sample_trace(clean_v, input_rate_hz)
        true_current = clean_sampled / self.tia.gain_v_per_a
        return AcquiredTrace(time_s=times, current_a=measured,
                             true_current_a=true_current)

    def input_referred_noise_rms(self, f_low_hz: float = 0.01) -> float:
        """Total input-referred noise RMS [A] of the chain.

        Quadrature sum of the TIA noise over the post-filter bandwidth and
        the ADC quantization noise referred through the TIA gain.
        """
        bandwidth = (self.antialias.noise_bandwidth_hz()
                     if self.antialias is not None else self.tia.bandwidth_hz)
        bandwidth = min(bandwidth, self.tia.bandwidth_hz)
        tia_rms = self.tia.noise.rms(f_low_hz, max(bandwidth, 2.0 * f_low_hz))
        adc_rms = self.adc.quantization_noise_rms_v / self.tia.gain_v_per_a
        return float(np.hypot(tia_rms, adc_rms))

    def dynamic_range_db(self) -> float:
        """Ratio of full-scale current to the noise floor, in dB."""
        full_scale = self.tia.full_scale_current_a
        noise = self.input_referred_noise_rms()
        if noise == 0.0:
            return float("inf")
        return 20.0 * float(np.log10(full_scale / noise))
