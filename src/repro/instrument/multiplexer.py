"""Channel multiplexer: one readout chain shared by five electrodes.

The paper's modularity argument in hardware form: the expensive electrical
component (potentiostat + TIA + ADC) is shared, and an analog switch
matrix connects it to one working electrode at a time.  The model captures
the non-idealities that matter for sequential multi-target measurement:
switch resistance, charge injection at switching, inter-channel leakage
(crosstalk) and the settling wait after every switch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ChannelMultiplexer:
    """Analog multiplexer in front of a shared acquisition chain.

    Attributes:
        n_channels: number of selectable working electrodes.
        on_resistance_ohm: series resistance of a closed switch.
        charge_injection_c: charge injected into the electrode node at
            every switching event [C].
        off_isolation: fraction of a neighbouring channel's current that
            leaks into the selected one (crosstalk, << 1).
        settling_time_s: wait after switching before samples are valid.
    """

    n_channels: int = 5
    on_resistance_ohm: float = 50.0
    charge_injection_c: float = 1e-12
    off_isolation: float = 1e-4
    settling_time_s: float = 0.5

    def __post_init__(self) -> None:
        if self.n_channels < 1:
            raise ValueError("need >= 1 channel")
        if self.on_resistance_ohm < 0:
            raise ValueError("on-resistance must be >= 0")
        if self.charge_injection_c < 0:
            raise ValueError("charge injection must be >= 0")
        if not 0.0 <= self.off_isolation < 1.0:
            raise ValueError("off isolation must be in [0, 1)")
        if self.settling_time_s < 0:
            raise ValueError("settling time must be >= 0")

    def validate_channel(self, channel: int) -> None:
        """Raise unless ``channel`` exists."""
        if not 0 <= channel < self.n_channels:
            raise ValueError(
                f"channel must be in [0, {self.n_channels}), got {channel}")

    def observed_current(self,
                         channel: int,
                         channel_currents_a: dict[int, float]) -> float:
        """Current [A] seen by the chain with ``channel`` selected.

        The selected channel passes fully; every other channel leaks its
        current scaled by the off-isolation.
        """
        self.validate_channel(channel)
        selected = channel_currents_a.get(channel, 0.0)
        leakage = sum(current for ch, current in channel_currents_a.items()
                      if ch != channel) * self.off_isolation
        return selected + leakage

    def crosstalk_error(self,
                        channel: int,
                        channel_currents_a: dict[int, float]) -> float:
        """Relative error induced by crosstalk on ``channel``.

        Infinite when the selected channel carries no current (a blank
        next to a strong neighbour) — exactly the hazard of multiplexed
        blanks that the scan schedule must account for.
        """
        observed = self.observed_current(channel, channel_currents_a)
        true = channel_currents_a.get(channel, 0.0)
        if true == 0.0:
            return float("inf") if observed != 0.0 else 0.0
        return abs(observed - true) / abs(true)

    def switching_transient(self,
                            time_s: np.ndarray,
                            electrode_capacitance_f: float) -> np.ndarray:
        """Current transient [A] after a switching event.

        The injected charge redistributes through the switch resistance
        into the electrode capacitance: ``i(t) = (Q/tau) exp(-t/tau)``.
        """
        time_s = np.asarray(time_s, dtype=float)
        if np.any(time_s < 0):
            raise ValueError("time values must be >= 0")
        if electrode_capacitance_f <= 0:
            raise ValueError("capacitance must be > 0")
        if self.on_resistance_ohm == 0:
            return np.zeros_like(time_s)
        tau = self.on_resistance_ohm * electrode_capacitance_f
        return (self.charge_injection_c / tau) * np.exp(-time_s / tau)

    def scan_duration_s(self,
                        dwell_time_s: float,
                        channels: list[int] | None = None) -> float:
        """Total time [s] to visit ``channels`` once.

        Each visit pays the settling wait plus the measurement dwell.
        """
        if dwell_time_s <= 0:
            raise ValueError("dwell time must be > 0")
        visit = (list(range(self.n_channels)) if channels is None
                 else channels)
        for channel in visit:
            self.validate_channel(channel)
        return len(visit) * (self.settling_time_s + dwell_time_s)

    def max_scan_rate_hz(self, dwell_time_s: float) -> float:
        """Full-panel refresh rate [Hz] with the given dwell per channel."""
        return 1.0 / self.scan_duration_s(dwell_time_s)
