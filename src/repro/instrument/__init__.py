"""Readout-electronics substrate (paper sections 1 and 2.5).

The paper argues that integrating the electronics with the biosensor is the
route to better signal-to-noise ratio — "signals are weak while the noise is
quite high".  This package models the full acquisition chain a CMOS
front-end implements: potentiostat control loop, transimpedance amplifier,
noise sources (thermal / shot / flicker), anti-alias filtering and a SAR
ADC.  The limit of detection reported by the calibration pipeline emerges
from this chain's noise floor.
"""

from repro.instrument.noise import (
    NoiseModel,
    thermal_current_noise_density,
    shot_noise_density,
    flicker_corner_rms,
)
from repro.instrument.tia import TransimpedanceAmplifier
from repro.instrument.adc import SarAdc
from repro.instrument.filters import AnalogLowPass
from repro.instrument.potentiostat import Potentiostat
from repro.instrument.chain import (
    AcquisitionChain,
    AcquiredTrace,
    BatchAcquiredTrace,
)
from repro.instrument.multiplexer import ChannelMultiplexer

__all__ = [
    "NoiseModel",
    "thermal_current_noise_density",
    "shot_noise_density",
    "flicker_corner_rms",
    "TransimpedanceAmplifier",
    "SarAdc",
    "AnalogLowPass",
    "Potentiostat",
    "AcquisitionChain",
    "AcquiredTrace",
    "BatchAcquiredTrace",
    "ChannelMultiplexer",
]
