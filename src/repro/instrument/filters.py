"""Analog anti-alias filter model.

Between the transimpedance stage and the ADC sits a low-pass filter that
bounds the noise bandwidth and prevents aliasing.  A Butterworth prototype
is standard; the causal form models the real-time chain while the
zero-phase form is available for offline re-analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np
from scipy.signal import butter, sosfilt, sosfiltfilt


@lru_cache(maxsize=128)
def _butter_sos(order: int, normalized_cutoff: float) -> np.ndarray:
    """Design (and memoize) a Butterworth section cascade.

    The design is pure function of (order, cutoff/Nyquist); acquisition
    chains redo it for every trace, which dominates short-trace filtering,
    so the cascade is cached process-wide.
    """
    return butter(order, normalized_cutoff, output="sos")


@dataclass(frozen=True)
class AnalogLowPass:
    """Butterworth low-pass filter.

    Attributes:
        cutoff_hz: -3 dB corner frequency [Hz].
        order: filter order (1-8).
    """

    cutoff_hz: float
    order: int = 2

    def __post_init__(self) -> None:
        if self.cutoff_hz <= 0:
            raise ValueError(f"cutoff must be > 0, got {self.cutoff_hz}")
        if not 1 <= self.order <= 8:
            raise ValueError(f"order must be in [1, 8], got {self.order}")

    def _sos(self, sampling_rate_hz: float) -> np.ndarray:
        nyquist = sampling_rate_hz / 2.0
        if self.cutoff_hz >= nyquist:
            raise ValueError(
                f"cutoff {self.cutoff_hz} Hz must be below Nyquist "
                f"{nyquist} Hz at fs = {sampling_rate_hz} Hz")
        # Copy: scipy's sosfilt kernel requires a writable buffer, and the
        # cached design is shared between every chain in the process.
        return _butter_sos(self.order, self.cutoff_hz / nyquist).copy()

    def apply(self, x: np.ndarray, sampling_rate_hz: float) -> np.ndarray:
        """Causal filtering (what the analog chain does in real time).

        Filters along the last axis: a 1-D trace or a ``(n_cells,
        n_samples)`` batch both work, the batch in one vectorized pass.
        """
        x = np.asarray(x, dtype=float)
        if sampling_rate_hz <= 0:
            raise ValueError("sampling rate must be > 0")
        return sosfilt(self._sos(sampling_rate_hz), x, axis=-1)

    def apply_zero_phase(self, x: np.ndarray,
                         sampling_rate_hz: float) -> np.ndarray:
        """Zero-phase (forward-backward) filtering for offline analysis."""
        x = np.asarray(x, dtype=float)
        if sampling_rate_hz <= 0:
            raise ValueError("sampling rate must be > 0")
        return sosfiltfilt(self._sos(sampling_rate_hz), x, axis=-1)

    def noise_bandwidth_hz(self) -> float:
        """Equivalent noise bandwidth [Hz] of the Butterworth response.

        ``ENBW = fc * pi/(2 n sin(pi/(2 n)))`` — 1.571 fc for order 1,
        approaching the brick-wall fc as the order grows.
        """
        n = self.order
        return self.cutoff_hz * np.pi / (2.0 * n * np.sin(np.pi / (2.0 * n)))
